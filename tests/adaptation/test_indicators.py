"""Tests for repro.adaptation.indicators."""

import numpy as np
import pytest

from repro.adaptation.indicators import (
    aligned_indicator,
    build_joint_indicators,
    dissimilar_indicator,
    sample_link_instances,
    similar_indicator,
)
from repro.exceptions import AlignmentError
from repro.features.intimacy import IntimacyFeatureExtractor
from repro.networks.aligned import AnchorLinks
from repro.networks.social import SocialGraph
from repro.utils.matrices import pairs_to_matrix


@pytest.fixture(scope="module")
def small_sample():
    graph = SocialGraph(pairs_to_matrix([(0, 1), (1, 2), (2, 3)], 5))
    from repro.features.tensor import FeatureTensor

    values = np.random.default_rng(0).random((3, 5, 5))
    values = (values + values.transpose(0, 2, 1)) / 2
    for k in range(3):
        np.fill_diagonal(values[k], 0.0)
    tensor = FeatureTensor(values)
    return graph, tensor


class TestSampling:
    def test_balanced(self, small_sample):
        graph, tensor = small_sample
        sample = sample_link_instances(graph, tensor, 6, random_state=0)
        assert sample.n_instances == 6
        assert 0 < sample.labels.sum() < 6

    def test_features_shape(self, small_sample):
        graph, tensor = small_sample
        sample = sample_link_instances(graph, tensor, 4, random_state=0)
        assert sample.features.shape == (3, 4)

    def test_labels_match_graph(self, small_sample):
        graph, tensor = small_sample
        sample = sample_link_instances(graph, tensor, 8, random_state=0)
        for pair, label in zip(sample.pairs, sample.labels):
            assert graph.adjacency[pair] == label

    def test_forced_pairs_included(self, small_sample):
        graph, tensor = small_sample
        sample = sample_link_instances(
            graph, tensor, 5, random_state=0, forced_pairs=[(0, 4)]
        )
        assert (0, 4) in sample.pairs

    def test_forced_pairs_deduplicated(self, small_sample):
        graph, tensor = small_sample
        sample = sample_link_instances(
            graph, tensor, 5, random_state=0, forced_pairs=[(0, 4), (4, 0)]
        )
        assert sample.pairs.count((0, 4)) == 1

    def test_size_mismatch_raises(self, small_sample):
        graph, _ = small_sample
        from repro.features.tensor import FeatureTensor

        wrong = FeatureTensor(np.zeros((2, 3, 3)))
        with pytest.raises(AlignmentError):
            sample_link_instances(graph, wrong, 4)

    def test_deterministic(self, small_sample):
        graph, tensor = small_sample
        a = sample_link_instances(graph, tensor, 6, random_state=4)
        b = sample_link_instances(graph, tensor, 6, random_state=4)
        assert a.pairs == b.pairs


class TestIndicators:
    def _samples(self, small_sample):
        graph, tensor = small_sample
        a = sample_link_instances(graph, tensor, 6, random_state=0)
        b = sample_link_instances(graph, tensor, 6, random_state=1)
        return a, b

    def test_similar_plus_dissimilar_is_ones(self, small_sample):
        a, b = self._samples(small_sample)
        total = similar_indicator(a, b) + dissimilar_indicator(a, b)
        assert np.array_equal(total, np.ones_like(total))

    def test_similar_matches_labels(self, small_sample):
        a, b = self._samples(small_sample)
        w_s = similar_indicator(a, b)
        assert w_s[0, 0] == float(a.labels[0] == b.labels[0])

    def test_aligned_identity_anchor(self, small_sample):
        a, _ = self._samples(small_sample)
        anchors = AnchorLinks([(i, i) for i in range(5)])
        w_a = aligned_indicator(a, a, anchors)
        # Every pair maps to itself under the identity anchor.
        assert np.array_equal(w_a, np.eye(a.n_instances))

    def test_aligned_no_anchor(self, small_sample):
        a, b = self._samples(small_sample)
        w_a = aligned_indicator(a, b, AnchorLinks())
        assert not w_a.any()


class TestJointIndicators:
    def test_shapes_and_symmetry(self, small_sample):
        graph, tensor = small_sample
        a = sample_link_instances(graph, tensor, 6, random_state=0)
        b = sample_link_instances(graph, tensor, 4, random_state=1)
        anchors = [AnchorLinks([(i, i) for i in range(5)])]
        w_a, w_s, w_d = build_joint_indicators([a, b], anchors)
        assert w_a.shape == w_s.shape == w_d.shape == (10, 10)
        for w in (w_a, w_s, w_d):
            assert np.array_equal(w, w.T)

    def test_w_s_zero_diagonal(self, small_sample):
        graph, tensor = small_sample
        a = sample_link_instances(graph, tensor, 6, random_state=0)
        w_a, w_s, w_d = build_joint_indicators([a], [])
        assert not w_s.diagonal().any()

    def test_count_mismatch(self, small_sample):
        graph, tensor = small_sample
        a = sample_link_instances(graph, tensor, 4, random_state=0)
        with pytest.raises(AlignmentError, match="anchor sets"):
            build_joint_indicators([a, a], [])

    def test_cross_source_alignment_composes(self, small_sample):
        graph, tensor = small_sample
        target = sample_link_instances(graph, tensor, 6, random_state=0)
        s1 = sample_link_instances(graph, tensor, 6, random_state=0)
        s2 = sample_link_instances(graph, tensor, 6, random_state=0)
        identity = AnchorLinks([(i, i) for i in range(5)])
        w_a, _, _ = build_joint_indicators(
            [target, s1, s2], [identity, identity]
        )
        # Identical samples + identity anchors → every off-network block of
        # W_A is the identity.
        block = w_a[6:12, 12:18]
        assert np.array_equal(block, np.eye(6))
