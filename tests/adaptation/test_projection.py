"""Tests for repro.adaptation.projection."""

import numpy as np
import pytest

from repro.adaptation.indicators import sample_link_instances
from repro.adaptation.projection import solve_projections
from repro.exceptions import AlignmentError
from repro.features.intimacy import IntimacyFeatureExtractor
from repro.networks.social import SocialGraph


@pytest.fixture(scope="module")
def fitted_inputs(aligned):
    extractor = IntimacyFeatureExtractor()
    tensors = [extractor.extract(n) for n in aligned.networks]
    graphs = [SocialGraph.from_network(n) for n in aligned.networks]
    samples = [
        sample_link_instances(g, t, 60, random_state=i)
        for i, (g, t) in enumerate(zip(graphs, tensors))
    ]
    return samples, list(aligned.anchors)


class TestSolveProjections:
    def test_shapes(self, fitted_inputs):
        samples, anchors = fitted_inputs
        result = solve_projections(samples, anchors, latent_dimension=4)
        assert len(result.projections) == 2
        for sample, projection in zip(samples, result.projections):
            assert projection.shape == (sample.n_features, 4)
        assert result.latent_dimension == 4

    def test_eigenvalues_sorted_nonnegative(self, fitted_inputs):
        samples, anchors = fitted_inputs
        result = solve_projections(samples, anchors, latent_dimension=4)
        eigs = result.eigenvalues
        assert np.all(np.diff(eigs) >= -1e-12)
        assert eigs.min() > -1e-8

    def test_latent_dimension_too_large(self, fitted_inputs):
        samples, anchors = fitted_inputs
        total = sum(s.n_features for s in samples)
        with pytest.raises(AlignmentError, match="latent_dimension"):
            solve_projections(samples, anchors, latent_dimension=total + 1)

    def test_mu_zero_allowed(self, fitted_inputs):
        samples, anchors = fitted_inputs
        result = solve_projections(samples, anchors, latent_dimension=3, mu=0.0)
        assert result.latent_dimension == 3

    def test_projection_nontrivial(self, fitted_inputs):
        samples, anchors = fitted_inputs
        result = solve_projections(samples, anchors, latent_dimension=4)
        for projection in result.projections:
            assert np.abs(projection).max() > 0

    def test_deterministic(self, fitted_inputs):
        samples, anchors = fitted_inputs
        a = solve_projections(samples, anchors, latent_dimension=3)
        b = solve_projections(samples, anchors, latent_dimension=3)
        assert np.allclose(a.eigenvalues, b.eigenvalues)

    def test_embedding_separates_labels(self, fitted_inputs):
        """Same-label instances should be closer in latent space on average."""
        samples, anchors = fitted_inputs
        result = solve_projections(samples, anchors, latent_dimension=4)
        latent = result.projections[0].T @ samples[0].features  # (c, m)
        labels = samples[0].labels
        points = latent.T
        dists = np.linalg.norm(points[:, None] - points[None, :], axis=-1)
        same = labels[:, None] == labels[None, :]
        np.fill_diagonal(same, False)
        off = ~np.eye(len(labels), dtype=bool)
        assert dists[same & off].mean() < dists[~same & off].mean()
