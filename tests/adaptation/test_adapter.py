"""Tests for repro.adaptation.adapter."""

import numpy as np
import pytest

from repro.adaptation.adapter import DomainAdapter, align_source_to_target
from repro.exceptions import AlignmentError, NotFittedError
from repro.features.intimacy import IntimacyFeatureExtractor
from repro.features.tensor import FeatureTensor
from repro.networks.aligned import AnchorLinks
from repro.networks.social import SocialGraph


@pytest.fixture(scope="module")
def fit_inputs(aligned):
    extractor = IntimacyFeatureExtractor()
    tensors = [extractor.extract(n) for n in aligned.networks]
    graphs = [SocialGraph.from_network(n) for n in aligned.networks]
    return tensors, graphs, list(aligned.anchors)


@pytest.fixture(scope="module")
def fitted(fit_inputs):
    tensors, graphs, anchors = fit_inputs
    adapter = DomainAdapter(
        latent_dimension=4, instances_per_network=80, random_state=7
    )
    adapter.fit(tensors, graphs, anchors)
    return adapter


class TestAlignSourceToTarget:
    def test_anchored_pairs_transferred(self):
        source = FeatureTensor(np.arange(9, dtype=float).reshape(1, 3, 3))
        anchors = AnchorLinks([(0, 1), (1, 2)])
        out = align_source_to_target(source, anchors, 4)
        assert out.values[0, 0, 1] == source.values[0, 1, 2]
        assert out.values[0, 1, 0] == source.values[0, 2, 1]

    def test_unanchored_pairs_zero(self):
        source = FeatureTensor(np.ones((2, 3, 3)))
        anchors = AnchorLinks([(0, 0)])
        out = align_source_to_target(source, anchors, 3)
        assert not out.values[:, 1:, :].any()

    def test_diagonal_zero(self):
        source = FeatureTensor(np.ones((1, 2, 2)))
        anchors = AnchorLinks([(0, 0), (1, 1)])
        out = align_source_to_target(source, anchors, 2)
        assert not np.diagonal(out.values, axis1=1, axis2=2).any()


class TestFit:
    def test_unfitted_raises(self):
        adapter = DomainAdapter()
        with pytest.raises(NotFittedError):
            adapter.result
        with pytest.raises(NotFittedError):
            adapter.pooled_centroids()

    def test_fit_returns_self(self, fit_inputs):
        tensors, graphs, anchors = fit_inputs
        adapter = DomainAdapter(
            latent_dimension=3, instances_per_network=60, random_state=0
        )
        assert adapter.fit(tensors, graphs, anchors) is adapter

    def test_projection_dimensions(self, fitted, fit_inputs):
        tensors, _, _ = fit_inputs
        for tensor, projection in zip(tensors, fitted.result.projections):
            assert projection.shape == (tensor.n_features, 4)

    def test_mismatched_inputs(self, fit_inputs):
        tensors, graphs, anchors = fit_inputs
        adapter = DomainAdapter()
        with pytest.raises(AlignmentError):
            adapter.fit(tensors, graphs[:1], anchors)
        with pytest.raises(AlignmentError):
            adapter.fit(tensors, graphs, [])


class TestTransformAndAffinity:
    def test_transform_shape(self, fitted, fit_inputs):
        tensors, _, _ = fit_inputs
        latent = fitted.transform(tensors[0], 0)
        assert latent.n_features == 4
        assert latent.n_users == tensors[0].n_users

    def test_transform_bad_index(self, fitted, fit_inputs):
        tensors, _, _ = fit_inputs
        with pytest.raises(AlignmentError, match="network_index"):
            fitted.transform(tensors[0], 5)

    def test_centroids_differ(self, fitted):
        link_centroid, non_link_centroid = fitted.pooled_centroids()
        assert link_centroid.shape == (4,)
        assert not np.allclose(link_centroid, non_link_centroid)

    def test_affinity_range(self, fitted, fit_inputs):
        tensors, _, _ = fit_inputs
        affinity = fitted.affinity_matrix(tensors[0], 0)
        assert affinity.min() >= 0.0 and affinity.max() <= 1.0
        assert not affinity.diagonal().any()

    def test_affinity_symmetric(self, fitted, fit_inputs):
        tensors, _, _ = fit_inputs
        affinity = fitted.affinity_matrix(tensors[1], 1)
        assert np.allclose(affinity, affinity.T)

    def test_affinity_predicts_links(self, fitted, fit_inputs, target_graph):
        """Affinity of existing links should exceed that of non-links."""
        tensors, _, _ = fit_inputs
        affinity = fitted.affinity_matrix(tensors[0], 0)
        adjacency = target_graph.adjacency
        off = ~np.eye(adjacency.shape[0], dtype=bool)
        assert (
            affinity[(adjacency == 1) & off].mean()
            > affinity[(adjacency == 0) & off].mean()
        )


class TestFitTransform:
    def test_all_tensors_in_target_space(self, fit_inputs):
        tensors, graphs, anchors = fit_inputs
        adapter = DomainAdapter(
            latent_dimension=3, instances_per_network=60, random_state=1
        )
        adapted = adapter.fit_transform(tensors, graphs, anchors)
        n_target = tensors[0].n_users
        assert len(adapted) == 2
        for tensor in adapted:
            assert tensor.n_users == n_target
            assert tensor.n_features == 3
