"""Verification of Theorem 1: the eigenvectors minimize the cost ratio.

The paper claims the projection matrices minimizing
``(Cost_A + Cost_S) / Cost_D`` are the generalized eigenvectors of
``Z(μL_A + L_S)Zᵀ x = λ Z L_D Zᵀ x`` with the smallest non-zero
eigenvalues.  These tests evaluate the actual cost terms at the solver's
output and check no random projection beats it.
"""

import numpy as np
import pytest

from repro.adaptation.indicators import (
    build_joint_indicators,
    sample_link_instances,
)
from repro.adaptation.laplacian import laplacian_matrix
from repro.adaptation.projection import (
    _block_diagonal_features,
    solve_projections,
)
from repro.features.intimacy import IntimacyFeatureExtractor
from repro.networks.social import SocialGraph


@pytest.fixture(scope="module")
def problem(aligned):
    extractor = IntimacyFeatureExtractor()
    tensors = [extractor.extract(n) for n in aligned.networks]
    graphs = [SocialGraph.from_network(n) for n in aligned.networks]
    anchors = list(aligned.anchors)
    target_sample = sample_link_instances(
        graphs[0], tensors[0], 50, random_state=0
    )
    forced = []
    for i, j in target_sample.pairs:
        a, b = anchors[0].map_forward(i), anchors[0].map_forward(j)
        if a is not None and b is not None and a != b:
            forced.append((min(a, b), max(a, b)))
    source_sample = sample_link_instances(
        graphs[1], tensors[1], 50, random_state=1, forced_pairs=forced
    )
    samples = [target_sample, source_sample]
    w_a, w_s, w_d = build_joint_indicators(samples, anchors)
    z = _block_diagonal_features(samples)
    mu = 1.0
    left = z @ (mu * laplacian_matrix(w_a) + laplacian_matrix(w_s)) @ z.T
    right = z @ laplacian_matrix(w_d) @ z.T
    return samples, anchors, left, right


def _cost_ratio(left, right, projection_stacked, ridge=1e-8):
    numerator = np.trace(projection_stacked.T @ left @ projection_stacked)
    denominator = np.trace(
        projection_stacked.T
        @ (right + ridge * np.eye(right.shape[0]))
        @ projection_stacked
    )
    return numerator / denominator


class TestTheorem1:
    def test_selected_eigenvalues_are_smallest_nonzero(self, problem):
        """Theorem 1 selects the c smallest non-zero pencil eigenvalues."""
        import scipy.linalg

        samples, anchors, left, right = problem
        result = solve_projections(samples, anchors, latent_dimension=3)
        ridge_right = right + 1e-8 * np.eye(right.shape[0])
        all_eigenvalues = np.sort(
            scipy.linalg.eigh(
                (left + left.T) / 2, (ridge_right + ridge_right.T) / 2,
                eigvals_only=True,
            )
        )
        nonzero = all_eigenvalues[all_eigenvalues > 1e-10]
        assert np.allclose(np.sort(result.eigenvalues), nonzero[:3], rtol=1e-6)

    def test_columns_achieve_their_rayleigh_quotients(self, problem):
        """Each projection column's Rayleigh quotient equals its eigenvalue."""
        samples, anchors, left, right = problem
        result = solve_projections(samples, anchors, latent_dimension=3)
        stacked = np.vstack(result.projections)
        ridge_right = right + 1e-8 * np.eye(right.shape[0])
        for k, eigenvalue in enumerate(result.eigenvalues):
            vector = stacked[:, k]
            quotient = (vector @ left @ vector) / (
                vector @ ridge_right @ vector
            )
            assert quotient == pytest.approx(eigenvalue, rel=1e-6)

    def test_eigen_equation_satisfied(self, problem):
        """Each selected eigenvector satisfies the generalized equation."""
        samples, anchors, left, right = problem
        result = solve_projections(samples, anchors, latent_dimension=3)
        stacked = np.vstack(result.projections)
        ridge_right = right + 1e-8 * np.eye(right.shape[0])
        for k, eigenvalue in enumerate(result.eigenvalues):
            vector = stacked[:, k]
            lhs = left @ vector
            rhs = eigenvalue * (ridge_right @ vector)
            assert np.allclose(lhs, rhs, atol=1e-6 * max(1.0, np.abs(lhs).max()))

    def test_costs_are_nonnegative(self, problem):
        """The trace costs the theorem manipulates are ≥ 0 (Laplacians are PSD)."""
        samples, anchors, left, right = problem
        result = solve_projections(samples, anchors, latent_dimension=3)
        stacked = np.vstack(result.projections)
        assert np.trace(stacked.T @ left @ stacked) >= -1e-8
        assert np.trace(stacked.T @ right @ stacked) >= -1e-8

    def test_aligned_links_projected_close(self, problem):
        """Minimizing Cost_A puts anchor-aligned instances close in latent space."""
        samples, anchors, left, right = problem
        result = solve_projections(samples, anchors, latent_dimension=3)
        latents = [
            projection.T @ sample.features
            for projection, sample in zip(result.projections, samples)
        ]
        w_a, _, _ = build_joint_indicators(samples, anchors)
        m_t = samples[0].n_instances
        aligned_pairs = np.argwhere(w_a[:m_t, m_t:] > 0)
        if len(aligned_pairs) == 0:
            pytest.skip("no aligned instances sampled at this seed")
        aligned_dist = np.mean([
            np.linalg.norm(latents[0][:, i] - latents[1][:, j])
            for i, j in aligned_pairs
        ])
        rng = np.random.default_rng(0)
        random_dist = np.mean([
            np.linalg.norm(
                latents[0][:, rng.integers(0, m_t)]
                - latents[1][:, rng.integers(0, samples[1].n_instances)]
            )
            for _ in range(200)
        ])
        assert aligned_dist < random_dist