"""Tests for repro.adaptation.laplacian."""

import numpy as np
import pytest

from repro.adaptation.laplacian import laplacian_matrix
from repro.exceptions import AlignmentError


class TestLaplacian:
    def test_simple(self):
        w = np.array([[0.0, 1.0], [1.0, 0.0]])
        lap = laplacian_matrix(w)
        assert np.array_equal(lap, [[1.0, -1.0], [-1.0, 1.0]])

    def test_rows_sum_to_zero(self, rng):
        w = rng.random((6, 6))
        w = (w + w.T) / 2
        lap = laplacian_matrix(w)
        assert np.allclose(lap.sum(axis=1), 0.0)

    def test_positive_semidefinite(self, rng):
        w = rng.random((8, 8))
        w = (w + w.T) / 2
        np.fill_diagonal(w, 0.0)
        eigenvalues = np.linalg.eigvalsh(laplacian_matrix(w))
        assert eigenvalues.min() > -1e-10

    def test_quadratic_form_identity(self, rng):
        """xᵀLx = ½ Σ_ij W_ij (x_i − x_j)² — the cost the paper minimizes."""
        w = rng.random((5, 5))
        w = (w + w.T) / 2
        np.fill_diagonal(w, 0.0)
        x = rng.normal(size=5)
        lhs = x @ laplacian_matrix(w) @ x
        rhs = 0.5 * sum(
            w[i, j] * (x[i] - x[j]) ** 2 for i in range(5) for j in range(5)
        )
        assert lhs == pytest.approx(rhs)

    def test_rejects_asymmetric(self):
        w = np.array([[0.0, 1.0], [0.0, 0.0]])
        with pytest.raises(AlignmentError, match="symmetric"):
            laplacian_matrix(w)

    def test_rejects_rectangular(self):
        with pytest.raises(AlignmentError, match="square"):
            laplacian_matrix(np.zeros((2, 3)))
