"""Property-based tests for classifiers, anchors and losses."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.models.classifiers import LogisticRegression
from repro.networks.aligned import AnchorLinks
from repro.optim.losses import SquaredFrobeniusLoss


@st.composite
def classification_data(draw):
    n = draw(st.integers(10, 40))
    d = draw(st.integers(1, 4))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    features = rng.normal(size=(n, d))
    labels = (features @ rng.normal(size=d) + rng.normal(scale=0.2, size=n) > 0)
    labels = labels.astype(float)
    assume(0 < labels.sum() < n)
    return features, labels


class TestLogisticRegressionProperties:
    @settings(max_examples=25, deadline=None)
    @given(classification_data())
    def test_probabilities_bounded(self, data):
        features, labels = data
        model = LogisticRegression().fit(features, labels)
        probs = model.predict_proba(features)
        assert np.all((probs >= 0.0) & (probs <= 1.0))

    @settings(max_examples=25, deadline=None)
    @given(classification_data(), st.floats(0.1, 100.0))
    def test_standardized_fit_scale_invariant(self, data, scale):
        """With standardization, per-feature scaling leaves rankings intact."""
        features, labels = data
        base = LogisticRegression(standardize=True).fit(features, labels)
        scaled = LogisticRegression(standardize=True).fit(
            features * scale, labels
        )
        order_base = np.argsort(base.predict_proba(features), kind="stable")
        order_scaled = np.argsort(
            scaled.predict_proba(features * scale), kind="stable"
        )
        assert np.array_equal(order_base, order_scaled)

    @settings(max_examples=25, deadline=None)
    @given(classification_data())
    def test_label_flip_symmetry(self, data):
        """Flipping labels flips the decision function's sign (approx)."""
        features, labels = data
        direct = LogisticRegression(l2=1.0).fit(features, labels)
        flipped = LogisticRegression(l2=1.0).fit(features, 1.0 - labels)
        assert np.allclose(
            direct.decision_function(features),
            -flipped.decision_function(features),
            atol=1e-3,
        )


@st.composite
def anchor_pairs(draw):
    n = draw(st.integers(0, 30))
    lefts = draw(
        st.lists(
            st.integers(0, 1000), min_size=n, max_size=n, unique=True
        )
    )
    rights = draw(
        st.lists(
            st.integers(0, 1000), min_size=n, max_size=n, unique=True
        )
    )
    return list(zip(lefts, rights))


class TestAnchorLinkProperties:
    @given(anchor_pairs())
    def test_double_reverse_identity(self, pairs):
        anchors = AnchorLinks(pairs)
        assert anchors.reversed().reversed().pairs == anchors.pairs

    @given(anchor_pairs(), st.floats(0.0, 1.0))
    def test_sample_size_exact(self, pairs, ratio):
        anchors = AnchorLinks(pairs)
        sampled = anchors.sample(ratio, random_state=0)
        assert len(sampled) == round(len(anchors) * ratio)

    @given(anchor_pairs(), st.floats(0.0, 1.0))
    def test_sample_is_subset(self, pairs, ratio):
        anchors = AnchorLinks(pairs)
        assert anchors.sample(ratio, random_state=1).pairs <= anchors.pairs

    @given(anchor_pairs())
    def test_forward_backward_inverse(self, pairs):
        anchors = AnchorLinks(pairs)
        for a, b in anchors.pairs:
            assert anchors.map_backward(anchors.map_forward(a)) == a
            assert anchors.map_forward(anchors.map_backward(b)) == b


class TestLossProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_squared_loss_convexity(self, seed):
        """Midpoint inequality: f((x+y)/2) ≤ (f(x)+f(y))/2."""
        rng = np.random.default_rng(seed)
        target = rng.normal(size=(4, 4))
        loss = SquaredFrobeniusLoss(target)
        x = rng.normal(size=(4, 4))
        y = rng.normal(size=(4, 4))
        mid = loss.value((x + y) / 2.0)
        assert mid <= (loss.value(x) + loss.value(y)) / 2.0 + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_gradient_is_descent_direction(self, seed):
        rng = np.random.default_rng(seed)
        target = rng.normal(size=(4, 4))
        loss = SquaredFrobeniusLoss(target)
        point = rng.normal(size=(4, 4))
        gradient = loss.gradient(point)
        assume(np.linalg.norm(gradient) > 1e-6)
        stepped = point - 1e-4 * gradient
        assert loss.value(stepped) < loss.value(point)