"""Property-based tests for the proximal operators (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.optim.proximal import (
    BoxProjection,
    singular_value_threshold,
    soft_threshold,
)
from repro.utils.matrices import l1_norm, trace_norm

matrices = hnp.arrays(
    dtype=float,
    shape=st.tuples(st.integers(1, 6), st.integers(1, 6)),
    elements=st.floats(-10, 10, allow_nan=False),
)
square_matrices = hnp.arrays(
    dtype=float,
    shape=st.integers(1, 6).map(lambda n: (n, n)),
    elements=st.floats(-10, 10, allow_nan=False),
)
thresholds = st.floats(0, 5, allow_nan=False)


class TestSoftThresholdProperties:
    @given(matrices, thresholds)
    def test_never_increases_magnitude(self, m, t):
        out = soft_threshold(m, t)
        assert np.all(np.abs(out) <= np.abs(m) + 1e-12)

    @given(matrices, thresholds)
    def test_shrinks_l1_norm(self, m, t):
        assert l1_norm(soft_threshold(m, t)) <= l1_norm(m) + 1e-9

    @given(matrices, thresholds)
    def test_kills_small_entries(self, m, t):
        out = soft_threshold(m, t)
        small = np.abs(m) <= t
        assert np.all(out[small] == 0.0)

    @given(matrices, thresholds)
    def test_nonexpansive(self, m, t):
        """prox operators are 1-Lipschitz: ‖prox(x)−prox(y)‖ ≤ ‖x−y‖."""
        other = m + 1.0
        diff_out = np.linalg.norm(soft_threshold(m, t) - soft_threshold(other, t))
        diff_in = np.linalg.norm(m - other)
        assert diff_out <= diff_in + 1e-9

    @given(matrices, thresholds, thresholds)
    def test_composition(self, m, t1, t2):
        """Soft thresholding composes additively."""
        once = soft_threshold(m, t1 + t2)
        twice = soft_threshold(soft_threshold(m, t1), t2)
        assert np.allclose(once, twice, atol=1e-9)


class TestSvtProperties:
    @settings(max_examples=40)
    @given(matrices, thresholds)
    def test_shrinks_trace_norm(self, m, t):
        assert trace_norm(singular_value_threshold(m, t)) <= trace_norm(m) + 1e-7

    @settings(max_examples=40)
    @given(matrices, thresholds)
    def test_rank_never_increases(self, m, t):
        before = np.linalg.svd(m, compute_uv=False)
        after = np.linalg.svd(
            singular_value_threshold(m, t), compute_uv=False
        )
        tol = 1e-9 + 1e-6 * max(1.0, before.max(initial=0.0))
        assert (after > tol).sum() <= (before > tol).sum()

    @settings(max_examples=40)
    @given(square_matrices)
    def test_zero_threshold_identity(self, m):
        assert np.allclose(singular_value_threshold(m, 0.0), m, atol=1e-8)

    @settings(max_examples=40)
    @given(matrices, thresholds)
    def test_singular_values_shifted(self, m, t):
        before = np.linalg.svd(m, compute_uv=False)
        after = np.linalg.svd(
            singular_value_threshold(m, t), compute_uv=False
        )
        expected = np.maximum(before - t, 0.0)
        assert np.allclose(np.sort(after), np.sort(expected), atol=1e-7)


class TestBoxProperties:
    @given(matrices)
    def test_output_in_box(self, m):
        out = BoxProjection(0.0, 1.0).apply(m, 1.0)
        assert out.min() >= 0.0 and out.max() <= 1.0

    @given(matrices)
    def test_fixed_points(self, m):
        box = BoxProjection(-20.0, 20.0)
        assert np.array_equal(box.apply(m, 1.0), m)
