"""Property-based tests for matrix helpers and graph structures."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.networks.social import SocialGraph
from repro.utils.matrices import (
    density,
    l1_norm,
    symmetrize,
    trace_norm,
    zero_diagonal,
)

square = hnp.arrays(
    dtype=float,
    shape=st.integers(1, 8).map(lambda n: (n, n)),
    elements=st.floats(-100, 100, allow_nan=False),
)


@st.composite
def adjacency_matrices(draw):
    n = draw(st.integers(2, 10))
    bits = draw(
        hnp.arrays(dtype=bool, shape=(n, n), elements=st.booleans())
    )
    a = np.triu(bits, 1).astype(float)
    return a + a.T


class TestMatrixProperties:
    @given(square)
    def test_symmetrize_is_symmetric(self, m):
        out = symmetrize(m)
        assert np.allclose(out, out.T)

    @given(square)
    def test_symmetrize_idempotent(self, m):
        once = symmetrize(m)
        assert np.allclose(once, symmetrize(once))

    @given(square)
    def test_zero_diagonal_idempotent(self, m):
        once = zero_diagonal(m)
        assert np.array_equal(once, zero_diagonal(once))

    @given(square)
    def test_l1_triangle_inequality(self, m):
        assert l1_norm(m + m) <= 2 * l1_norm(m) + 1e-9

    @settings(max_examples=40)
    @given(square)
    def test_trace_norm_bounds_frobenius(self, m):
        """‖M‖_F ≤ ‖M‖_* for every matrix."""
        fro = float(np.linalg.norm(m, "fro"))
        assert fro <= trace_norm(m) + 1e-7

    @given(square)
    def test_density_range(self, m):
        assert 0.0 <= density(m) <= 1.0


class TestSocialGraphProperties:
    @given(adjacency_matrices())
    def test_links_count_matches_adjacency(self, adjacency):
        graph = SocialGraph(adjacency)
        assert graph.n_links == int(adjacency.sum() // 2)

    @given(adjacency_matrices())
    def test_links_union_non_links_is_all_pairs(self, adjacency):
        graph = SocialGraph(adjacency)
        n = graph.n_users
        total = n * (n - 1) // 2
        assert len(graph.links()) + len(graph.non_links()) == total

    @given(adjacency_matrices())
    def test_degrees_sum_to_twice_links(self, adjacency):
        graph = SocialGraph(adjacency)
        assert graph.degrees().sum() == 2 * graph.n_links

    @given(adjacency_matrices())
    def test_neighbors_symmetric(self, adjacency):
        graph = SocialGraph(adjacency)
        for i in range(graph.n_users):
            for j in graph.neighbors(i):
                assert i in graph.neighbors(j)

    @given(adjacency_matrices())
    def test_mask_all_links_empties_graph(self, adjacency):
        graph = SocialGraph(adjacency)
        masked = graph.mask_links(sorted(graph.links()))
        assert masked.n_links == 0
