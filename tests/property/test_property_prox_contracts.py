"""Property-based contracts for the proximal operators (hypothesis).

The properties the solver correctness rests on:

* soft thresholding is *firmly* nonexpansive (the defining inequality of a
  proximal map) and matches its closed form entry-wise;
* SVT never produces larger singular values than its input, and the
  truncated Lanczos path agrees with the dense path whenever ``rank`` is
  not actually discarding spectrum;
* zero thresholds are the identity.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.optim.proximal import (
    singular_value_threshold,
    soft_threshold,
    truncated_singular_value_threshold,
)

matrices = hnp.arrays(
    dtype=float,
    shape=st.tuples(st.integers(1, 8), st.integers(1, 8)),
    elements=st.floats(-10, 10, allow_nan=False),
)
matrix_pairs = st.tuples(st.integers(1, 8), st.integers(1, 8)).flatmap(
    lambda shape: st.tuples(
        hnp.arrays(
            dtype=float,
            shape=shape,
            elements=st.floats(-10, 10, allow_nan=False),
        ),
        hnp.arrays(
            dtype=float,
            shape=shape,
            elements=st.floats(-10, 10, allow_nan=False),
        ),
    )
)
thresholds = st.floats(0, 5, allow_nan=False)


def _low_rank(seed: int, n: int, rank: int, scale: float) -> np.ndarray:
    """A deterministic n×n matrix of exact rank ≤ ``rank``."""
    rng = np.random.default_rng(seed)
    left = rng.normal(size=(n, rank))
    right = rng.normal(size=(rank, n))
    return scale * (left @ right)


class TestSoftThresholdContracts:
    @given(matrix_pairs, thresholds)
    def test_firmly_nonexpansive(self, pair, t):
        """‖T(x)−T(y)‖² ≤ ⟨T(x)−T(y), x−y⟩ — the prox-map inequality.

        Firm nonexpansiveness is strictly stronger than the 1-Lipschitz
        property and characterizes proximal operators of convex functions.
        """
        x, y = pair
        tx, ty = soft_threshold(x, t), soft_threshold(y, t)
        diff = tx - ty
        lhs = float(np.sum(diff * diff))
        rhs = float(np.sum(diff * (x - y)))
        assert lhs <= rhs + 1e-9

    @given(matrices, thresholds)
    def test_matches_closed_form(self, m, t):
        expected = np.sign(m) * np.maximum(np.abs(m) - t, 0.0)
        assert np.array_equal(soft_threshold(m, t), expected)

    @given(matrices)
    def test_zero_threshold_is_identity(self, m):
        assert np.array_equal(soft_threshold(m, 0.0), m)


class TestSvtContracts:
    @settings(max_examples=40)
    @given(matrices, thresholds)
    def test_never_larger_singular_values(self, m, t):
        """Every output singular value is ≤ the matching input one."""
        before = np.sort(np.linalg.svd(m, compute_uv=False))[::-1]
        after = np.sort(
            np.linalg.svd(singular_value_threshold(m, t), compute_uv=False)
        )[::-1]
        assert np.all(after <= before + 1e-8)

    @settings(max_examples=40)
    @given(matrices)
    def test_zero_threshold_is_identity(self, m):
        assert np.allclose(singular_value_threshold(m, 0.0), m, atol=1e-8)


class TestTruncatedSvtContracts:
    @settings(max_examples=25)
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(8, 20),
        true_rank=st.integers(1, 3),
        threshold=st.floats(0.0, 2.0, allow_nan=False),
        slack=st.integers(1, 3),
    )
    def test_agrees_with_dense_when_not_truncating(
        self, seed, n, true_rank, threshold, slack
    ):
        """On a rank-r matrix, any truncation rank ≥ r is exact.

        The discarded tail is identically zero, so the Lanczos path and the
        dense path compute the same prox.
        """
        matrix = _low_rank(seed, n, true_rank, scale=3.0)
        rank = min(true_rank + slack, n - 2)
        dense = singular_value_threshold(matrix, threshold)
        truncated = truncated_singular_value_threshold(
            matrix, threshold, rank
        )
        assert np.allclose(dense, truncated, atol=1e-6)

    @settings(max_examples=25)
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(8, 16),
        true_rank=st.integers(1, 3),
    )
    def test_zero_threshold_identity_on_captured_spectrum(
        self, seed, n, true_rank
    ):
        """Rank-covering truncation at threshold 0 reproduces the matrix."""
        matrix = _low_rank(seed, n, true_rank, scale=3.0)
        rank = min(true_rank + 1, n - 2)
        out = truncated_singular_value_threshold(matrix, 0.0, rank)
        assert np.allclose(out, matrix, atol=1e-6)

    @settings(max_examples=25)
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(10, 20),
        rank=st.integers(1, 4),
        threshold=st.floats(0.0, 2.0, allow_nan=False),
    )
    def test_never_larger_singular_values(self, seed, n, rank, threshold):
        """The truncated path also never grows the spectrum."""
        rng = np.random.default_rng(seed)
        matrix = rng.normal(size=(n, n))
        import warnings

        from repro.exceptions import TruncatedSVTWarning

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", TruncatedSVTWarning)
            out = truncated_singular_value_threshold(matrix, threshold, rank)
        before = np.sort(np.linalg.svd(matrix, compute_uv=False))[::-1]
        after = np.sort(np.linalg.svd(out, compute_uv=False))[::-1]
        assert np.all(after <= before + 1e-6)
