"""Property: any interleaving of acks, crashes and replays converges.

Hypothesis drives arbitrary schedules of durable submits, state applies,
snapshots (with WAL compaction), and crashes — where a crash abandons the
in-memory state, optionally leaves a torn tail of garbage bytes on the
newest segment, and recovery rebuilds from snapshot + replay.  Whatever
the schedule, the recovered state must carry the same digest as one
uninterrupted in-memory apply of every acknowledged delta (dedup across
restarts is what makes this hold)."""

import os
import shutil
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ArtifactCorruptError
from repro.streaming.deltas import (
    Delta,
    StreamState,
    attribute_set,
    link_add,
    link_remove,
)
from repro.streaming.wal import WriteAheadLog

N_USERS = 6

_users = st.integers(0, N_USERS - 1)
_weights = st.floats(0.25, 4.0, allow_nan=False)

_deltas = st.one_of(
    st.builds(
        lambda u, v, w: link_add(u, v + 1 if v >= u else v, w),
        _users, st.integers(0, N_USERS - 2), _weights,
    ),
    st.builds(
        lambda u, v: link_remove(u, v + 1 if v >= u else v),
        _users, st.integers(0, N_USERS - 2),
    ),
    st.builds(attribute_set, _users, st.integers(0, 3), _weights),
)

_ops = st.one_of(
    st.tuples(st.just("submit"), _deltas),
    st.tuples(st.just("apply"), st.none()),
    st.tuples(st.just("snapshot"), st.none()),
    st.tuples(st.just("crash"), st.binary(min_size=0, max_size=40)),
)


def _recover(home, state_path):
    """What a fresh process does: snapshot (if intact) + WAL replay."""
    wal = WriteAheadLog(os.path.join(home, "wal"))
    if os.path.exists(state_path):
        try:
            state = StreamState.load(state_path)
        except ArtifactCorruptError:
            state = StreamState(N_USERS)
    else:
        state = StreamState(N_USERS)
    state.apply_many(
        (seq, Delta.decode(payload))
        for seq, payload in wal.replay(state.applied_seq)
    )
    return wal, state


def _newest_segment(wal_dir):
    segments = sorted(f for f in os.listdir(wal_dir) if f.endswith(".seg"))
    return os.path.join(wal_dir, segments[-1]) if segments else None


@settings(max_examples=30)
@given(ops=st.lists(_ops, max_size=40))
def test_interleaved_crashes_and_replays_converge(ops):
    home = tempfile.mkdtemp(prefix="wal-prop-")
    try:
        wal_dir = os.path.join(home, "wal")
        state_path = os.path.join(home, "state.npz")
        oracle = StreamState(N_USERS)  # the uninterrupted apply
        wal = WriteAheadLog(wal_dir)
        state = StreamState(N_USERS)
        for op, payload in ops:
            if op == "submit":
                seq = wal.append(payload.encode())
                oracle.apply(seq, payload)
            elif op == "apply":
                state.apply_many(
                    (seq, Delta.decode(raw))
                    for seq, raw in wal.replay(state.applied_seq)
                )
            elif op == "snapshot":
                state.save(state_path)
                wal.truncate_through(state.applied_seq)
            else:  # crash: lose memory, maybe tear the newest segment
                wal.close()
                segment = _newest_segment(wal_dir)
                if segment is not None and payload:
                    with open(segment, "ab") as handle:
                        handle.write(payload)
                wal, state = _recover(home, state_path)
        wal.close()
        _, recovered = _recover(home, state_path)
        assert recovered.digest() == oracle.digest()
    finally:
        shutil.rmtree(home, ignore_errors=True)
