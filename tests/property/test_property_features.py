"""Property-based tests for structural feature invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.features.structural import (
    adamic_adar_matrix,
    common_neighbors_matrix,
    jaccard_matrix,
    katz_matrix,
    preferential_attachment_matrix,
    resource_allocation_matrix,
)
from repro.features.tensor import FeatureTensor


@st.composite
def adjacency_matrices(draw, max_n=10):
    n = draw(st.integers(2, max_n))
    bits = draw(hnp.arrays(dtype=bool, shape=(n, n), elements=st.booleans()))
    a = np.triu(bits, 1).astype(float)
    return a + a.T


ALL_FEATURES = [
    common_neighbors_matrix,
    jaccard_matrix,
    adamic_adar_matrix,
    resource_allocation_matrix,
    preferential_attachment_matrix,
    katz_matrix,
]


class TestStructuralInvariants:
    @settings(max_examples=30)
    @given(adjacency_matrices())
    def test_symmetric_zero_diagonal_nonnegative(self, adjacency):
        for feature in ALL_FEATURES:
            out = feature(adjacency)
            assert np.allclose(out, out.T), feature.__name__
            assert not out.diagonal().any(), feature.__name__
            assert out.min() >= 0.0, feature.__name__

    @settings(max_examples=30)
    @given(adjacency_matrices())
    def test_jaccard_bounded(self, adjacency):
        out = jaccard_matrix(adjacency)
        assert out.max() <= 1.0 + 1e-12

    @settings(max_examples=30)
    @given(adjacency_matrices())
    def test_ra_bounded_by_cn(self, adjacency):
        """RA divides each common neighbor by degree ≥ 1 → RA ≤ CN."""
        ra = resource_allocation_matrix(adjacency)
        cn = common_neighbors_matrix(adjacency)
        assert np.all(ra <= cn + 1e-9)

    @settings(max_examples=30)
    @given(adjacency_matrices())
    def test_relabeling_equivariance(self, adjacency):
        """Permuting users permutes the feature matrices identically."""
        n = adjacency.shape[0]
        perm = np.random.default_rng(0).permutation(n)
        permuted = adjacency[np.ix_(perm, perm)]
        for feature in (common_neighbors_matrix, jaccard_matrix):
            direct = feature(permuted)
            relabeled = feature(adjacency)[np.ix_(perm, perm)]
            assert np.allclose(direct, relabeled), feature.__name__

    @settings(max_examples=30)
    @given(adjacency_matrices(), st.floats(0.01, 0.5))
    def test_katz_monotone_in_beta(self, adjacency, beta):
        low = katz_matrix(adjacency, beta=beta / 2, max_length=3)
        high = katz_matrix(adjacency, beta=beta, max_length=3)
        assert np.all(high >= low - 1e-12)


class TestTensorInvariants:
    @settings(max_examples=30)
    @given(
        hnp.arrays(
            dtype=float,
            shape=st.tuples(st.integers(1, 4), st.integers(2, 6)).map(
                lambda t: (t[0], t[1], t[1])
            ),
            elements=st.floats(-5, 5, allow_nan=False),
        )
    )
    def test_normalized_bounded(self, values):
        tensor = FeatureTensor(values)
        assert np.abs(tensor.normalized().values).max() <= 1.0 + 1e-12

    @settings(max_examples=30)
    @given(
        hnp.arrays(
            dtype=float,
            shape=st.integers(2, 5).map(lambda n: (3, n, n)),
            elements=st.floats(-5, 5, allow_nan=False),
        )
    )
    def test_projection_linear(self, values):
        """project(aP + bQ) = a·project(P) + b·project(Q) per pair vector."""
        tensor = FeatureTensor(values)
        rng = np.random.default_rng(0)
        p = rng.normal(size=(3, 2))
        q = rng.normal(size=(3, 2))
        combined = tensor.project(2.0 * p + 0.5 * q)
        separate = 2.0 * tensor.project(p).values + 0.5 * tensor.project(q).values
        assert np.allclose(combined.values, separate, atol=1e-9)

    @settings(max_examples=30)
    @given(
        hnp.arrays(
            dtype=float,
            shape=st.integers(2, 5).map(lambda n: (2, n, n)),
            elements=st.floats(-5, 5, allow_nan=False),
        )
    )
    def test_aggregate_matches_manual_sum(self, values):
        tensor = FeatureTensor(values)
        assert np.allclose(tensor.aggregate(), values.sum(axis=0))
