"""Property-based tests for the evaluation metrics (hypothesis)."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.evaluation.metrics import auc_score, precision_at_k, recall_at_k


@st.composite
def scored_labels(draw, min_size=4, max_size=60):
    n = draw(st.integers(min_size, max_size))
    # Scores are rounded so affine transforms stay rank-preserving in
    # floating point (subnormals like 1e-182 would collapse under 2x+1).
    scores = [
        round(s, 6)
        for s in draw(
            st.lists(st.floats(0, 1, allow_nan=False), min_size=n, max_size=n)
        )
    ]
    labels = draw(st.lists(st.integers(0, 1), min_size=n, max_size=n))
    assume(0 < sum(labels) < n)
    return np.array(scores), np.array(labels, dtype=float)


class TestAucProperties:
    @given(scored_labels())
    def test_range(self, data):
        scores, labels = data
        assert 0.0 <= auc_score(scores, labels) <= 1.0

    @given(scored_labels())
    def test_label_flip_symmetry(self, data):
        """AUC(scores, y) + AUC(scores, 1−y) = 1."""
        scores, labels = data
        total = auc_score(scores, labels) + auc_score(scores, 1.0 - labels)
        assert abs(total - 1.0) < 1e-9

    @given(scored_labels())
    def test_score_negation_symmetry(self, data):
        scores, labels = data
        total = auc_score(scores, labels) + auc_score(-scores, labels)
        assert abs(total - 1.0) < 1e-9

    @given(scored_labels())
    def test_permutation_invariance(self, data):
        scores, labels = data
        perm = np.random.default_rng(0).permutation(len(scores))
        assert auc_score(scores, labels) == auc_score(scores[perm], labels[perm])

    @given(scored_labels())
    def test_monotone_transform_invariance(self, data):
        scores, labels = data
        transformed = 2.0 * scores + 1.0
        assert abs(
            auc_score(scores, labels) - auc_score(transformed, labels)
        ) < 1e-9

    @given(scored_labels())
    def test_constant_scores_half(self, data):
        _, labels = data
        assert auc_score(np.zeros_like(labels), labels) == 0.5


class TestPrecisionRecallProperties:
    @settings(max_examples=60)
    @given(scored_labels(), st.integers(1, 80))
    def test_precision_range(self, data, k):
        scores, labels = data
        assert 0.0 <= precision_at_k(scores, labels, k) <= 1.0

    @settings(max_examples=60)
    @given(scored_labels(), st.integers(1, 80))
    def test_recall_range(self, data, k):
        scores, labels = data
        assert 0.0 <= recall_at_k(scores, labels, k) <= 1.0 + 1e-12

    @settings(max_examples=60)
    @given(scored_labels())
    def test_recall_monotone_in_k(self, data):
        scores, labels = data
        values = [recall_at_k(scores, labels, k) for k in (1, 3, len(labels))]
        assert values[0] <= values[1] + 1e-9 <= values[2] + 2e-9

    @settings(max_examples=60)
    @given(scored_labels())
    def test_full_k_precision_is_base_rate(self, data):
        scores, labels = data
        n = len(labels)
        assert precision_at_k(scores, labels, n) == np.mean(labels)
