"""Tests for repro.applications.denoise."""

import numpy as np
import pytest

from repro.applications.denoise import GraphDenoiser
from repro.exceptions import NotFittedError, OptimizationError
from repro.utils.matrices import pairs_to_matrix


@pytest.fixture()
def noisy_blocks(rng):
    """Two 6-node cliques with 10% flips (spurious + missing links)."""
    n = 12
    clean = np.zeros((n, n))
    clean[:6, :6] = 1.0
    clean[6:, 6:] = 1.0
    np.fill_diagonal(clean, 0.0)
    noisy = clean.copy()
    flips = [(0, 7), (1, 9), (2, 3), (8, 11)]
    for i, j in flips:
        noisy[i, j] = noisy[j, i] = 1.0 - noisy[i, j]
    return clean, noisy


class TestGraphDenoiser:
    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            GraphDenoiser().scores

    def test_rejects_rectangular(self):
        with pytest.raises(OptimizationError):
            GraphDenoiser().fit(np.zeros((2, 3)))

    def test_rejects_asymmetric(self):
        bad = np.zeros((3, 3))
        bad[0, 1] = 1.0
        with pytest.raises(OptimizationError, match="symmetric"):
            GraphDenoiser().fit(bad)

    def test_scores_properties(self, noisy_blocks):
        _, noisy = noisy_blocks
        denoiser = GraphDenoiser().fit(noisy)
        scores = denoiser.scores
        assert scores.min() >= 0.0
        assert not scores.diagonal().any()
        assert np.allclose(scores, scores.T, atol=1e-8)

    def test_recovers_missing_link(self, noisy_blocks):
        """The hidden within-clique link should outscore cross-clique noise."""
        clean, noisy = noisy_blocks
        denoiser = GraphDenoiser(tau=5.0).fit(noisy)
        scores = denoiser.scores
        # (2, 3) was removed from its clique; (0, 7) was added across.
        assert scores[2, 3] > scores[0, 7]

    def test_spurious_links_downweighted(self, noisy_blocks):
        clean, noisy = noisy_blocks
        denoiser = GraphDenoiser(tau=5.0).fit(noisy)
        scores = denoiser.scores
        true_links = (clean > 0) & (noisy > 0)
        spurious = (clean == 0) & (noisy > 0)
        np.fill_diagonal(true_links, False)
        assert scores[true_links].mean() > scores[spurious].mean()

    def test_consistent_links_extraction(self, noisy_blocks):
        _, noisy = noisy_blocks
        denoiser = GraphDenoiser(tau=5.0).fit(noisy)
        links = denoiser.consistent_links(threshold=0.3)
        assert all(i < j for i, j in links)
        assert len(links) > 0

    def test_flagged_links(self, noisy_blocks):
        clean, noisy = noisy_blocks
        denoiser = GraphDenoiser(tau=5.0).fit(noisy)
        flagged = set(denoiser.flagged_links(noisy, threshold=0.4))
        # flagged links must all be observed links
        for i, j in flagged:
            assert noisy[i, j] == 1.0

    def test_flagged_shape_mismatch(self, noisy_blocks):
        _, noisy = noisy_blocks
        denoiser = GraphDenoiser().fit(noisy)
        with pytest.raises(OptimizationError):
            denoiser.flagged_links(np.zeros((3, 3)))

    def test_zero_regularization_reproduces_input(self, noisy_blocks):
        _, noisy = noisy_blocks
        denoiser = GraphDenoiser(gamma=0.0, tau=0.0).fit(noisy)
        assert np.allclose(denoiser.scores, noisy, atol=1e-3)

    def test_svd_rank_path(self, noisy_blocks):
        _, noisy = noisy_blocks
        exact = GraphDenoiser(tau=5.0).fit(noisy).scores
        truncated = GraphDenoiser(tau=5.0, svd_rank=5).fit(noisy).scores
        assert np.allclose(exact, truncated, atol=1e-2)
