"""Tests for repro.applications.covariance."""

import numpy as np
import pytest

from repro.applications.covariance import SparseLowRankCovariance
from repro.exceptions import NotFittedError, OptimizationError


@pytest.fixture()
def factor_data(rng):
    """Samples from a 2-factor model plus sparse idiosyncratic noise."""
    n_samples, n_features = 400, 10
    loadings = rng.normal(size=(n_features, 2))
    factors = rng.normal(size=(n_samples, 2))
    noise = rng.normal(scale=0.3, size=(n_samples, n_features))
    return factors @ loadings.T + noise


class TestSparseLowRankCovariance:
    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            SparseLowRankCovariance().covariance

    def test_rejects_1d(self):
        with pytest.raises(OptimizationError):
            SparseLowRankCovariance().fit(np.zeros(5))

    def test_rejects_single_sample(self):
        with pytest.raises(OptimizationError, match="two samples"):
            SparseLowRankCovariance().fit(np.zeros((1, 3)))

    def test_rejects_asymmetric_empirical(self):
        bad = np.arange(9, dtype=float).reshape(3, 3)
        with pytest.raises(OptimizationError, match="symmetric"):
            SparseLowRankCovariance().fit_from_empirical(bad)

    def test_output_psd_symmetric(self, factor_data):
        estimator = SparseLowRankCovariance().fit(factor_data)
        covariance = estimator.covariance
        assert np.allclose(covariance, covariance.T)
        assert np.linalg.eigvalsh(covariance).min() >= -1e-10

    def test_shrinks_toward_low_rank(self, factor_data):
        """Spectral mass concentrates versus the raw sample covariance."""
        centered = factor_data - factor_data.mean(axis=0)
        empirical = centered.T @ centered / (len(factor_data) - 1)
        estimator = SparseLowRankCovariance(tau=2.0).fit(factor_data)

        def top2_mass(matrix):
            eigenvalues = np.sort(np.linalg.eigvalsh(matrix))[::-1]
            return eigenvalues[:2].sum() / eigenvalues.sum()

        assert top2_mass(estimator.covariance) > top2_mass(empirical)

    def test_diagonal_not_sparsified(self, factor_data):
        estimator = SparseLowRankCovariance(gamma=2.0, tau=0.0).fit(factor_data)
        assert np.all(np.diag(estimator.covariance) > 0)

    def test_gamma_sparsifies_off_diagonal(self, factor_data):
        light = SparseLowRankCovariance(gamma=0.0, tau=0.0).fit(factor_data)
        heavy = SparseLowRankCovariance(gamma=1.0, tau=0.0).fit(factor_data)

        def off_diag_l1(matrix):
            off = matrix - np.diag(np.diag(matrix))
            return np.abs(off).sum()

        assert off_diag_l1(heavy.covariance) < off_diag_l1(light.covariance)

    def test_zero_regularization_recovers_empirical(self, factor_data):
        centered = factor_data - factor_data.mean(axis=0)
        empirical = centered.T @ centered / (len(factor_data) - 1)
        estimator = SparseLowRankCovariance(gamma=0.0, tau=0.0).fit(factor_data)
        assert np.allclose(estimator.covariance, empirical, atol=1e-4)

    def test_precision_is_inverse(self, factor_data):
        estimator = SparseLowRankCovariance(tau=0.5).fit(factor_data)
        product = estimator.covariance @ estimator.precision()
        assert np.allclose(product, np.eye(product.shape[0]), atol=1e-3)

    def test_estimation_error_improves_with_shrinkage(self, rng):
        """With few samples, shrinkage beats the raw sample covariance."""
        n_features = 12
        loadings = rng.normal(size=(n_features, 2))
        truth = loadings @ loadings.T + 0.2 * np.eye(n_features)
        samples = rng.multivariate_normal(
            np.zeros(n_features), truth, size=30
        )
        centered = samples - samples.mean(axis=0)
        empirical = centered.T @ centered / (len(samples) - 1)
        estimator = SparseLowRankCovariance(gamma=0.02, tau=1.0)
        estimator.fit(samples)
        error_shrunk = np.linalg.norm(estimator.covariance - truth)
        error_raw = np.linalg.norm(empirical - truth)
        assert error_shrunk < error_raw * 1.05
