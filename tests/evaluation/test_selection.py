"""Tests for repro.evaluation.selection."""

import pytest

from repro.evaluation.selection import GridSearchResult, grid_search
from repro.exceptions import EvaluationError
from repro.models.slampred import SlamPredT
from repro.models.unsupervised import KatzIndex


class TestGridSearch:
    def test_full_product_evaluated(self, aligned, splits):
        search = grid_search(
            KatzIndex,
            {"beta": [0.05, 0.2], "max_length": [2, 3]},
            aligned,
            splits[:2],
            precision_k=10,
            random_state=0,
        )
        assert len(search.entries) == 4
        params_seen = {tuple(sorted(p.items())) for p, _ in search.entries}
        assert len(params_seen) == 4

    def test_best_params_maximize_metric(self, aligned, splits):
        search = grid_search(
            KatzIndex,
            {"beta": [0.05, 0.2]},
            aligned,
            splits[:2],
            precision_k=10,
            random_state=0,
        )
        best_mean = search.best_result.mean("auc")
        for _, result in search.entries:
            assert best_mean >= result.mean("auc")
        assert search.best_params in [p for p, _ in search.entries]

    def test_ranking_sorted(self, aligned, splits):
        search = grid_search(
            KatzIndex,
            {"beta": [0.05, 0.1, 0.3]},
            aligned,
            splits[:2],
            precision_k=10,
            random_state=0,
        )
        means = [r.mean("auc") for _, r in search.ranking()]
        assert means == sorted(means, reverse=True)

    def test_as_table(self, aligned, splits):
        search = grid_search(
            KatzIndex, {"beta": [0.1]}, aligned, splits[:2],
            precision_k=10, random_state=0,
        )
        table = search.as_table()
        assert "beta=0.1" in table

    def test_empty_grid_rejected(self, aligned, splits):
        with pytest.raises(EvaluationError):
            grid_search(KatzIndex, {}, aligned, splits[:1])

    def test_empty_values_rejected(self, aligned, splits):
        with pytest.raises(EvaluationError, match="no values"):
            grid_search(KatzIndex, {"beta": []}, aligned, splits[:1])

    def test_unknown_metric_surfaces_early(self, aligned, splits):
        with pytest.raises(EvaluationError, match="metric"):
            grid_search(
                KatzIndex, {"beta": [0.1]}, aligned, splits[:1],
                metric="nope", random_state=0,
            )

    def test_works_with_slampred(self, aligned, splits):
        search = grid_search(
            SlamPredT,
            {"gamma": [0.01, 0.2]},
            aligned,
            splits[:1],
            precision_k=10,
            random_state=0,
        )
        assert "gamma" in search.best_params


class TestGridSearchResult:
    def test_empty_result_raises(self):
        result = GridSearchResult()
        with pytest.raises(EvaluationError):
            result.best_params
        with pytest.raises(EvaluationError):
            result.best_result
