"""Tests for repro.evaluation.harness."""

import numpy as np
import pytest

from repro.evaluation.harness import (
    EvaluationResult,
    cross_validate,
    evaluate_model,
)
from repro.exceptions import EvaluationError
from repro.models.unsupervised import CommonNeighbors, PreferentialAttachment


class TestEvaluateModel:
    def test_metrics_present(self, task, split):
        outcome = evaluate_model(CommonNeighbors(), task, split, precision_k=20)
        assert set(outcome.metrics) == {"auc", "precision@20"}
        assert 0.0 <= outcome.metrics["auc"] <= 1.0

    def test_model_name(self, task, split):
        outcome = evaluate_model(CommonNeighbors(), task, split)
        assert outcome.model_name == "CN"


class TestEvaluationResult:
    def test_mean_std(self):
        result = EvaluationResult("x", {"auc": [0.5, 0.7]})
        assert result.mean("auc") == pytest.approx(0.6)
        assert result.std("auc") == pytest.approx(0.1)

    def test_missing_metric(self):
        result = EvaluationResult("x", {"auc": [0.5]})
        with pytest.raises(EvaluationError, match="metric"):
            result.mean("nope")


class TestCrossValidate:
    def test_per_fold_values(self, aligned, splits):
        result = cross_validate(
            CommonNeighbors, aligned, splits, random_state=0, precision_k=20
        )
        assert len(result.metrics["auc"]) == len(splits)
        assert result.model_name == "CN"

    def test_empty_splits_rejected(self, aligned):
        with pytest.raises(EvaluationError):
            cross_validate(CommonNeighbors, aligned, [], random_state=0)

    def test_deterministic(self, aligned, splits):
        a = cross_validate(PreferentialAttachment, aligned, splits, random_state=4)
        b = cross_validate(PreferentialAttachment, aligned, splits, random_state=4)
        assert a.metrics == b.metrics

    def test_fresh_model_per_fold(self, aligned, splits):
        created = []

        def factory():
            model = CommonNeighbors()
            created.append(model)
            return model

        cross_validate(factory, aligned, splits, random_state=0)
        assert len(created) == len(splits)
        assert len(set(map(id, created))) == len(splits)
