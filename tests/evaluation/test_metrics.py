"""Tests for repro.evaluation.metrics."""

import numpy as np
import pytest

from repro.evaluation.metrics import (
    auc_score,
    average_precision,
    f1_at_threshold,
    ndcg_at_k,
    precision_at_k,
    recall_at_k,
)
from repro.exceptions import EvaluationError


class TestAuc:
    def test_perfect(self):
        assert auc_score([0.9, 0.8, 0.2, 0.1], [1, 1, 0, 0]) == 1.0

    def test_inverted(self):
        assert auc_score([0.1, 0.2, 0.8, 0.9], [1, 1, 0, 0]) == 0.0

    def test_random_ties(self):
        assert auc_score([0.5, 0.5, 0.5, 0.5], [1, 1, 0, 0]) == 0.5

    def test_partial(self):
        # pairs: (0.9, 0.6)✓ (0.9, 0.1)✓ (0.5, 0.6)✗ (0.5, 0.1)✓ → 3/4
        assert auc_score([0.9, 0.6, 0.5, 0.1], [1, 0, 1, 0]) == pytest.approx(
            0.75
        )

    def test_tie_half_credit(self):
        # one positive tied with one negative, one negative below
        assert auc_score([0.5, 0.5, 0.1], [1, 0, 0]) == pytest.approx(0.75)

    def test_single_class_raises(self):
        with pytest.raises(EvaluationError, match="both classes"):
            auc_score([0.5, 0.6], [1, 1])

    def test_length_mismatch(self):
        with pytest.raises(EvaluationError):
            auc_score([0.5], [1, 0])

    def test_non_binary_labels(self):
        with pytest.raises(EvaluationError, match="binary"):
            auc_score([0.5, 0.5], [1, 2])

    def test_empty(self):
        with pytest.raises(EvaluationError, match="zero"):
            auc_score([], [])

    def test_invariant_to_monotone_transform(self, rng):
        scores = rng.random(50)
        labels = (rng.random(50) < 0.4).astype(float)
        if labels.min() == labels.max():
            labels[0] = 1 - labels[0]
        assert auc_score(scores, labels) == pytest.approx(
            auc_score(np.exp(3 * scores), labels)
        )


class TestPrecisionAtK:
    def test_all_hits(self):
        assert precision_at_k([0.9, 0.8, 0.1], [1, 1, 0], k=2) == 1.0

    def test_half_hits(self):
        assert precision_at_k([0.9, 0.8, 0.7, 0.1], [1, 0, 1, 0], k=2) == 0.5

    def test_k_larger_than_n(self):
        assert precision_at_k([0.9, 0.1], [1, 0], k=100) == 0.5

    def test_tie_expected_value(self):
        # top-1 of three tied instances, one positive → 1/3 expected
        assert precision_at_k([0.5, 0.5, 0.5], [1, 0, 0], k=1) == pytest.approx(
            1.0 / 3.0
        )

    def test_invalid_k(self):
        with pytest.raises(EvaluationError):
            precision_at_k([0.5], [1], k=0)

    def test_deterministic_under_permutation(self, rng):
        scores = rng.random(30)
        labels = (rng.random(30) < 0.5).astype(float)
        perm = rng.permutation(30)
        assert precision_at_k(scores, labels, k=10) == pytest.approx(
            precision_at_k(scores[perm], labels[perm], k=10)
        )

    def test_all_tied_equals_base_rate_for_every_k(self):
        # With every score identical, any cutoff draws uniformly from the
        # whole pool: precision@k must be the global positive rate.
        scores = [0.5] * 10
        labels = [1, 1, 1, 0, 0, 0, 0, 0, 0, 0]
        for k in (1, 3, 7, 10):
            assert precision_at_k(scores, labels, k=k) == pytest.approx(0.3)

    def test_partial_tie_group_at_cutoff(self):
        # One clear winner, then 3 tied at the cutoff sharing 1 slot with
        # 2 positives among them: 1 + 2/3 hits over k=2.
        scores = [0.9, 0.5, 0.5, 0.5]
        labels = [1, 1, 1, 0]
        assert precision_at_k(scores, labels, k=2) == pytest.approx(
            (1.0 + 2.0 / 3.0) / 2.0
        )

    def test_shares_tie_semantics_with_ndcg(self):
        # The k=n case ignores ordering entirely in both metrics — they
        # must agree on their tie treatment (both read the same expected
        # relevance vector).
        scores = [0.5, 0.5, 0.9, 0.5]
        labels = [1.0, 0.0, 1.0, 0.0]
        assert precision_at_k(scores, labels, k=4) == pytest.approx(0.5)
        assert ndcg_at_k(scores, labels, k=1) == pytest.approx(1.0)


class TestRecallAtK:
    def test_full_recall(self):
        assert recall_at_k([0.9, 0.8, 0.1], [1, 1, 0], k=2) == 1.0

    def test_half_recall(self):
        assert recall_at_k([0.9, 0.1, 0.2, 0.05], [1, 1, 0, 0], k=1) == 0.5

    def test_no_positives(self):
        with pytest.raises(EvaluationError):
            recall_at_k([0.5, 0.5], [0, 0], k=1)

    def test_tied_cutoff_gets_expected_share(self):
        # 2 positives among 4 all-tied instances, k=2 → expected 1 hit.
        assert recall_at_k([0.3] * 4, [1, 1, 0, 0], k=2) == pytest.approx(0.5)

    def test_consistent_with_precision(self, rng):
        # recall@k · n_pos == precision@k · k on the same expected ranking.
        scores = rng.integers(0, 5, size=40).astype(float)  # heavy ties
        labels = (rng.random(40) < 0.4).astype(float)
        k = 15
        assert recall_at_k(scores, labels, k=k) * labels.sum() == (
            pytest.approx(precision_at_k(scores, labels, k=k) * k)
        )


class TestAveragePrecision:
    def test_perfect(self):
        assert average_precision([0.9, 0.8, 0.1], [1, 1, 0]) == 1.0

    def test_worst(self):
        ap = average_precision([0.9, 0.1, 0.2], [0, 1, 1])
        assert ap < 0.7

    def test_single_positive_at_rank_two(self):
        assert average_precision([0.9, 0.8, 0.1], [0, 1, 0]) == pytest.approx(
            0.5
        )

    def test_no_positives(self):
        with pytest.raises(EvaluationError):
            average_precision([0.5], [0])


class TestF1:
    def test_perfect(self):
        assert f1_at_threshold([0.9, 0.1], [1, 0]) == 1.0

    def test_zero_when_no_true_positives(self):
        assert f1_at_threshold([0.1, 0.1], [1, 1]) == 0.0

    def test_threshold_matters(self):
        scores, labels = [0.6, 0.4], [1, 1]
        assert f1_at_threshold(scores, labels, 0.5) < f1_at_threshold(
            scores, labels, 0.3
        )
