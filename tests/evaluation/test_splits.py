"""Tests for repro.evaluation.splits."""

import numpy as np
import pytest

from repro.evaluation.splits import (
    k_fold_link_splits,
    sample_negative_pairs,
)
from repro.exceptions import EvaluationError
from repro.networks.social import SocialGraph
from repro.utils.matrices import pairs_to_matrix


class TestNegativeSampling:
    def test_count(self, target_graph):
        negatives = sample_negative_pairs(target_graph, 10, random_state=0)
        assert len(negatives) == 10

    def test_are_non_links(self, target_graph):
        negatives = sample_negative_pairs(target_graph, 20, random_state=0)
        links = target_graph.links()
        assert not any(pair in links for pair in negatives)

    def test_no_duplicates(self, target_graph):
        negatives = sample_negative_pairs(target_graph, 30, random_state=0)
        assert len(set(negatives)) == 30

    def test_exclusion(self, target_graph):
        pool = target_graph.non_links()
        excluded = set(pool[:5])
        negatives = sample_negative_pairs(
            target_graph, len(pool) - 5, random_state=0, exclude=excluded
        )
        assert not any(p in excluded for p in negatives)

    def test_too_many_raises(self):
        graph = SocialGraph(pairs_to_matrix([(0, 1)], 3))
        with pytest.raises(EvaluationError, match="negative"):
            sample_negative_pairs(graph, 10, random_state=0)

    def test_zero(self, target_graph):
        assert sample_negative_pairs(target_graph, 0) == []

    def test_deterministic(self, target_graph):
        a = sample_negative_pairs(target_graph, 15, random_state=3)
        b = sample_negative_pairs(target_graph, 15, random_state=3)
        assert a == b


class TestKFoldSplits:
    def test_fold_count(self, target_graph):
        splits = k_fold_link_splits(target_graph, n_folds=4, random_state=0)
        assert len(splits) == 4

    def test_folds_partition_links(self, target_graph):
        splits = k_fold_link_splits(target_graph, n_folds=4, random_state=0)
        all_test = [pair for s in splits for pair in s.test_links]
        assert len(all_test) == target_graph.n_links
        assert len(set(all_test)) == target_graph.n_links

    def test_training_graph_masks_test(self, splits):
        for split in splits:
            train_links = split.training_graph.links()
            for pair in split.test_links:
                assert pair not in train_links

    def test_negative_ratio(self, target_graph):
        splits = k_fold_link_splits(
            target_graph, n_folds=3, negative_ratio=2.0, random_state=0
        )
        for split in splits:
            assert len(split.test_non_links) == 2 * len(split.test_links)

    def test_negatives_never_links(self, splits, target_graph):
        links = target_graph.links()
        for split in splits:
            assert not any(p in links for p in split.test_non_links)

    def test_labels_aligned(self, split):
        labels = split.test_labels
        assert labels.sum() == len(split.test_links)
        assert len(labels) == len(split.test_pairs)

    def test_too_few_links(self):
        graph = SocialGraph(pairs_to_matrix([(0, 1)], 4))
        with pytest.raises(EvaluationError, match="folds"):
            k_fold_link_splits(graph, n_folds=5)

    def test_invalid_negative_ratio(self, target_graph):
        with pytest.raises(EvaluationError):
            k_fold_link_splits(target_graph, negative_ratio=0.0)

    def test_deterministic(self, target_graph):
        a = k_fold_link_splits(target_graph, n_folds=3, random_state=9)
        b = k_fold_link_splits(target_graph, n_folds=3, random_state=9)
        for split_a, split_b in zip(a, b):
            assert split_a.test_links == split_b.test_links
            assert split_a.test_non_links == split_b.test_non_links


class TestTwoHopNegatives:
    def test_hard_negatives_share_neighbors(self, target_graph):
        negatives = sample_negative_pairs(
            target_graph, 20, random_state=0, strategy="two_hop"
        )
        adjacency = target_graph.adjacency
        two_hop = adjacency @ adjacency
        # with a well-connected graph, all 20 should come from the hard pool
        assert all(two_hop[p] > 0 for p in negatives)

    def test_still_non_links(self, target_graph):
        negatives = sample_negative_pairs(
            target_graph, 20, random_state=0, strategy="two_hop"
        )
        links = target_graph.links()
        assert not any(p in links for p in negatives)

    def test_tops_up_uniformly_when_hard_pool_small(self):
        import numpy as np
        from repro.utils.matrices import pairs_to_matrix

        # path graph 0-1-2 plus isolated nodes: only (0, 2) is two-hop
        graph = SocialGraph(pairs_to_matrix([(0, 1), (1, 2)], 6))
        negatives = sample_negative_pairs(
            graph, 5, random_state=0, strategy="two_hop"
        )
        assert (0, 2) in negatives
        assert len(negatives) == 5

    def test_unknown_strategy_rejected(self, target_graph):
        with pytest.raises(EvaluationError, match="strategy"):
            sample_negative_pairs(target_graph, 5, strategy="nope")

    def test_splits_accept_strategy(self, target_graph):
        splits = k_fold_link_splits(
            target_graph, n_folds=3, random_state=0,
            negative_strategy="two_hop",
        )
        adjacency = target_graph.adjacency
        two_hop = adjacency @ adjacency
        hard = sum(
            two_hop[p] > 0 for s in splits for p in s.test_non_links
        )
        total = sum(len(s.test_non_links) for s in splits)
        assert hard / total > 0.9

    def test_two_hop_harder_than_uniform(self, aligned, target_graph):
        """Hard negatives should depress neighborhood-predictor AUC."""
        from repro.evaluation.metrics import auc_score
        from repro.models.base import TransferTask
        from repro.models.unsupervised import CommonNeighbors

        def auc_with(strategy):
            splits = k_fold_link_splits(
                target_graph, n_folds=3, random_state=3,
                negative_strategy=strategy,
            )
            values = []
            for split in splits:
                task = TransferTask(aligned.target, split.training_graph)
                model = CommonNeighbors().fit(task)
                values.append(
                    auc_score(
                        model.score_pairs(split.test_pairs), split.test_labels
                    )
                )
            return sum(values) / len(values)

        assert auc_with("two_hop") < auc_with("uniform")
