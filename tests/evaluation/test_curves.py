"""Tests for repro.evaluation.curves."""

import numpy as np
import pytest

from repro.evaluation.curves import (
    auc_from_roc,
    precision_recall_curve,
    roc_curve,
)
from repro.evaluation.metrics import auc_score
from repro.exceptions import EvaluationError


class TestRocCurve:
    def test_endpoints(self):
        fpr, tpr, thresholds = roc_curve([0.9, 0.8, 0.3, 0.1], [1, 1, 0, 0])
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == 1.0 and tpr[-1] == 1.0
        assert thresholds[0] == np.inf

    def test_perfect_classifier(self):
        fpr, tpr, _ = roc_curve([0.9, 0.8, 0.3, 0.1], [1, 1, 0, 0])
        assert auc_from_roc(fpr, tpr) == pytest.approx(1.0)

    def test_monotone(self):
        rng = np.random.default_rng(0)
        scores = rng.random(50)
        labels = (rng.random(50) < 0.4).astype(float)
        fpr, tpr, _ = roc_curve(scores, labels)
        assert np.all(np.diff(fpr) >= 0)
        assert np.all(np.diff(tpr) >= 0)

    def test_area_matches_rank_auc(self):
        """Trapezoidal ROC area must equal the Mann-Whitney AUC (with ties)."""
        rng = np.random.default_rng(1)
        scores = np.round(rng.random(80), 1)  # heavy ties
        labels = (rng.random(80) < 0.5).astype(float)
        fpr, tpr, _ = roc_curve(scores, labels)
        assert auc_from_roc(fpr, tpr) == pytest.approx(
            auc_score(scores, labels)
        )

    def test_single_class_raises(self):
        with pytest.raises(EvaluationError):
            roc_curve([0.5, 0.6], [1, 1])

    def test_tied_scores_collapse(self):
        fpr, tpr, thresholds = roc_curve([0.5, 0.5, 0.5], [1, 0, 1])
        # one distinct threshold plus the (0, 0) anchor
        assert len(thresholds) == 2


class TestPrCurve:
    def test_perfect(self):
        precision, recall, _ = precision_recall_curve(
            [0.9, 0.8, 0.1], [1, 1, 0]
        )
        assert precision[0] == 1.0
        assert recall[-1] == 1.0

    def test_recall_monotone(self):
        rng = np.random.default_rng(2)
        scores = rng.random(60)
        labels = (rng.random(60) < 0.3).astype(float)
        if labels.sum() == 0:
            labels[0] = 1.0
        _, recall, _ = precision_recall_curve(scores, labels)
        assert np.all(np.diff(recall) >= 0)

    def test_final_precision_is_base_rate(self):
        scores = [0.9, 0.5, 0.4, 0.2]
        labels = [1, 0, 1, 0]
        precision, recall, _ = precision_recall_curve(scores, labels)
        assert precision[-1] == pytest.approx(0.5)

    def test_no_positives_raises(self):
        with pytest.raises(EvaluationError):
            precision_recall_curve([0.5], [0])


class TestAucFromRoc:
    def test_shape_mismatch(self):
        with pytest.raises(EvaluationError):
            auc_from_roc([0.0, 1.0], [0.0])

    def test_diagonal_is_half(self):
        assert auc_from_roc([0.0, 1.0], [0.0, 1.0]) == pytest.approx(0.5)
