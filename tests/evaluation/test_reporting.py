"""Tests for repro.evaluation.reporting."""

import pytest

from repro.evaluation.anchor_sweep import AnchorSweepResult
from repro.evaluation.harness import EvaluationResult
from repro.evaluation.reporting import (
    format_cell,
    format_stats_table,
    format_sweep_table,
)


@pytest.fixture()
def sweep():
    result = AnchorSweepResult(ratios=[0.0, 1.0])
    result.table["M1"] = {
        0.0: EvaluationResult("M1", {"auc": [0.5, 0.6]}),
        1.0: EvaluationResult("M1", {"auc": [0.8, 0.9]}),
    }
    result.table["M2"] = {
        0.0: EvaluationResult("M2", {"auc": [0.4]}),
        1.0: EvaluationResult("M2", {"auc": [0.4]}),
    }
    return result


class TestFormatCell:
    def test_default_digits(self):
        assert format_cell(0.9412, 0.0191) == "0.941±0.019"

    def test_custom_digits(self):
        assert format_cell(0.5, 0.25, digits=2) == "0.50±0.25"


class TestSweepTable:
    def test_contains_methods_and_ratios(self, sweep):
        text = format_sweep_table(sweep, "auc")
        assert "M1" in text and "M2" in text
        assert "0.0" in text and "1.0" in text

    def test_contains_cells(self, sweep):
        text = format_sweep_table(sweep, "auc")
        assert "0.550±0.050" in text
        assert "0.850±0.050" in text

    def test_title(self, sweep):
        text = format_sweep_table(sweep, "auc", title="My Table")
        assert text.startswith("My Table")

    def test_row_count(self, sweep):
        lines = format_sweep_table(sweep, "auc").splitlines()
        # header + separator + two method rows
        assert len(lines) == 4


class TestStatsTable:
    def test_layout(self):
        stats = {
            "twitter": {"users": 5223, "posts": 9490707},
            "foursquare": {"users": 5392, "posts": 48756},
        }
        text = format_stats_table(stats, title="Table I")
        assert "Table I" in text
        assert "5,223" in text and "48,756" in text
        assert "users" in text and "posts" in text

    def test_missing_property_renders_zero(self):
        stats = {"a": {"x": 1}, "b": {}}
        text = format_stats_table(stats)
        assert "0" in text
