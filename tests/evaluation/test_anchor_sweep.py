"""Tests for repro.evaluation.anchor_sweep."""

import pytest

from repro.evaluation.anchor_sweep import (
    MethodSpec,
    default_method_specs,
    run_anchor_sweep,
)
from repro.exceptions import EvaluationError
from repro.models.unsupervised import CommonNeighbors
from repro.models.slampred import SlamPred


@pytest.fixture(scope="module")
def small_sweep(aligned, splits):
    methods = [
        MethodSpec("SLAMPRED", SlamPred, True),
        MethodSpec("CN", CommonNeighbors, False),
    ]
    return run_anchor_sweep(
        aligned,
        methods=methods,
        ratios=(0.0, 1.0),
        precision_k=20,
        random_state=3,
        splits=splits[:2],
    )


class TestDefaultSpecs:
    def test_twelve_methods(self):
        specs = default_method_specs()
        assert len(specs) == 12
        assert [s.name for s in specs[:3]] == [
            "SLAMPRED",
            "SLAMPRED-T",
            "SLAMPRED-H",
        ]

    def test_source_usage_flags(self):
        flags = {s.name: s.uses_sources for s in default_method_specs()}
        assert flags["SLAMPRED"] and flags["PL-S"] and flags["SCAN"]
        assert not flags["SLAMPRED-T"] and not flags["JC"]

    def test_kwargs_forwarded(self):
        specs = default_method_specs(gamma=0.42)
        model = specs[0].factory()
        assert model.gamma == 0.42


class TestRunSweep:
    def test_table_shape(self, small_sweep):
        assert small_sweep.methods == ["SLAMPRED", "CN"]
        assert small_sweep.ratios == [0.0, 1.0]

    def test_cells_have_metrics(self, small_sweep):
        cell = small_sweep.cell("SLAMPRED", 1.0)
        assert 0.0 <= cell.mean("auc") <= 1.0
        assert cell.mean("precision@20") >= 0.0

    def test_constant_methods_share_results(self, small_sweep):
        a = small_sweep.cell("CN", 0.0)
        b = small_sweep.cell("CN", 1.0)
        assert a is b

    def test_series(self, small_sweep):
        series = small_sweep.series("SLAMPRED", "auc")
        assert len(series) == 2

    def test_missing_cell(self, small_sweep):
        with pytest.raises(EvaluationError):
            small_sweep.cell("SLAMPRED", 0.5)
        with pytest.raises(EvaluationError):
            small_sweep.cell("nope", 0.0)

    def test_empty_ratios_rejected(self, aligned):
        with pytest.raises(EvaluationError, match="ratio"):
            run_anchor_sweep(aligned, methods=[], ratios=())

    def test_transfer_improves_with_anchors(self, small_sweep):
        low = small_sweep.cell("SLAMPRED", 0.0).mean("auc")
        high = small_sweep.cell("SLAMPRED", 1.0).mean("auc")
        assert high > low - 0.02
