"""Correctness of the warm-started, adaptive-rank SVT engine.

The engine is only allowed to be fast, never different: every property
here pins its output against the exact dense SVT, across random spectra,
thresholds, warm-started sequences and rank adaptation, plus the spectrum
cache that :meth:`TraceNormProx.value` reuses.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import TruncatedSVTWarning
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracer import Tracer
from repro.optim.proximal import TraceNormProx, singular_value_threshold
from repro.perf import WarmStartSVT
from repro.utils.matrices import trace_norm

# Small enough to keep the dense reference cheap, large enough that the
# randomized path (budget = rank + oversample = 16) genuinely truncates.
N = 28
FORCE_RANDOMIZED = dict(dense_cutoff=4)


def _spectrum_matrix(seed: int, n: int, spectrum: np.ndarray) -> np.ndarray:
    """A deterministic n×n matrix with the prescribed singular spectrum."""
    rng = np.random.default_rng(seed)
    u, _ = np.linalg.qr(rng.normal(size=(n, n)))
    v, _ = np.linalg.qr(rng.normal(size=(n, n)))
    return (u * np.sort(spectrum)[::-1]) @ v.T


class TestDenseParity:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 2**20),
        threshold=st.floats(0.0, 6.0, allow_nan=False),
        top=st.floats(0.5, 10.0, allow_nan=False),
        decay=st.floats(0.3, 0.95, allow_nan=False),
    )
    def test_parity_across_spectra_and_thresholds(
        self, seed, threshold, top, decay
    ):
        """Randomized warm path ≡ dense SVT to 1e-8, any spectrum/threshold."""
        spectrum = top * decay ** np.arange(N)
        matrix = _spectrum_matrix(seed, N, spectrum)
        engine = WarmStartSVT(**FORCE_RANDOMIZED)
        out = engine.apply(matrix, threshold)
        exact = singular_value_threshold(matrix, threshold)
        np.testing.assert_allclose(out, exact, atol=1e-8)

    def test_warm_started_sequence_parity(self, rng):
        """A drifting matrix sequence (the solver's pattern) stays exact."""
        spectrum = 8.0 * 0.6 ** np.arange(N)
        matrix = _spectrum_matrix(7, N, spectrum)
        drift = rng.normal(size=(N, N)) * 0.05
        engine = WarmStartSVT(**FORCE_RANDOMIZED)
        for step in range(12):
            current = matrix + step * drift
            out = engine.apply(current, 0.8)
            exact = singular_value_threshold(current, 0.8)
            np.testing.assert_allclose(out, exact, atol=1e-8)
        assert engine.stats["applies"] == 12
        # The warm subspace carries over: after the first apply the engine
        # has a retained subspace to seed from.
        assert engine._subspace is not None

    def test_zero_threshold(self):
        """θ = 0 keeps the full spectrum (forces growth into dense)."""
        matrix = _spectrum_matrix(3, N, 2.0 * 0.9 ** np.arange(N))
        engine = WarmStartSVT(**FORCE_RANDOMIZED)
        out = engine.apply(matrix, 0.0)
        np.testing.assert_allclose(out, matrix, atol=1e-8)


class TestDeterminism:
    def test_same_sequence_same_outputs(self, rng):
        """Two fresh engines over the same sequence agree bit for bit."""
        matrices = [
            _spectrum_matrix(seed, N, 5.0 * 0.7 ** np.arange(N))
            for seed in range(5)
        ]
        first = [
            WarmStartSVT(**FORCE_RANDOMIZED).apply(m, 0.5) for m in matrices
        ]
        engine_a = WarmStartSVT(**FORCE_RANDOMIZED)
        engine_b = WarmStartSVT(**FORCE_RANDOMIZED)
        for matrix in matrices:
            out_a = engine_a.apply(matrix, 0.5)
            out_b = engine_b.apply(matrix, 0.5)
            assert np.array_equal(out_a, out_b)
        # Stateful warm starts may legitimately differ from cold starts in
        # the last bits, but engine-vs-engine must be exactly reproducible.
        assert len(first) == len(matrices)


class TestAdaptiveRank:
    def test_rank_grows_on_heavy_spectrum(self):
        """Many supra-threshold singular values force the rank up."""
        n = 64
        spectrum = np.full(n, 3.0)  # flat spectrum, all above threshold
        matrix = _spectrum_matrix(11, n, spectrum)
        engine = WarmStartSVT(initial_rank=8, **FORCE_RANDOMIZED)
        out = engine.apply(matrix, 0.5)
        exact = singular_value_threshold(matrix, 0.5)
        np.testing.assert_allclose(out, exact, atol=1e-8)
        assert engine.stats["rank_grows"] >= 1
        assert engine.rank > 8

    def test_rank_shrinks_after_overshoot(self):
        """A near-low-rank matrix pulls an oversized rank back down."""
        n = 64
        spectrum = np.concatenate([[9.0, 7.0], np.full(n - 2, 1e-4)])
        matrix = _spectrum_matrix(13, n, spectrum)
        engine = WarmStartSVT(initial_rank=40, **FORCE_RANDOMIZED)
        out = engine.apply(matrix, 0.5)
        exact = singular_value_threshold(matrix, 0.5)
        np.testing.assert_allclose(out, exact, atol=1e-8)
        assert engine.stats["rank_shrinks"] >= 1
        assert engine.rank < 40

    def test_small_matrices_take_dense_path(self, rng):
        engine = WarmStartSVT()  # default dense_cutoff=96
        matrix = rng.normal(size=(30, 30))
        out = engine.apply(matrix, 0.4)
        np.testing.assert_allclose(
            out, singular_value_threshold(matrix, 0.4), atol=1e-10
        )
        assert engine.stats["dense_applies"] == 1
        assert engine.stats["dense_fallbacks"] == 0


def _rank_capped_reference(
    matrix: np.ndarray, threshold: float, cap: int
) -> np.ndarray:
    """The best-effort rank-capped SVT via a dense SVD (the truth the
    legacy truncated path approximates with Lanczos)."""
    u, s, vt = np.linalg.svd(matrix, full_matrices=False)
    shrunk = np.maximum(s[:cap] - threshold, 0.0)
    r = int(np.count_nonzero(shrunk))
    return (u[:, :r] * shrunk[:r]) @ vt[:r]


class TestRankCap:
    def test_lossy_cap_matches_truncated_reference(self):
        """At the cap with supra-threshold tail: warns, counts, and still
        lands on the rank-capped operator (to the lossy tolerances)."""
        spectrum = 8.0 * 0.6 ** np.arange(N)
        matrix = _spectrum_matrix(23, N, spectrum)
        engine = WarmStartSVT(
            initial_rank=6, max_rank=6, **FORCE_RANDOMIZED
        )
        with pytest.warns(TruncatedSVTWarning, match="rank cap 6 is lossy"):
            out = engine.apply(matrix, 0.1)
        np.testing.assert_allclose(
            out, _rank_capped_reference(matrix, 0.1, 6), atol=1e-3
        )
        assert engine.stats["lossy_truncations"] == 1
        assert engine.stats["dense_fallbacks"] == 0
        assert engine.rank == 6

    def test_cap_without_tail_stays_exact(self):
        """A cap that is not binding keeps the exact-prox guarantee."""
        spectrum = np.concatenate([[9.0, 7.0, 5.0], np.full(N - 3, 1e-4)])
        matrix = _spectrum_matrix(29, N, spectrum)
        engine = WarmStartSVT(
            initial_rank=8, max_rank=10, **FORCE_RANDOMIZED
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            out = engine.apply(matrix, 0.5)
        np.testing.assert_allclose(
            out, singular_value_threshold(matrix, 0.5), atol=1e-6
        )
        assert engine.stats["lossy_truncations"] == 0

    def test_growth_respects_the_cap(self):
        """Rank grows toward — but never past — max_rank."""
        n = 64
        matrix = _spectrum_matrix(31, n, np.full(n, 3.0))
        engine = WarmStartSVT(
            initial_rank=4, max_rank=12, **FORCE_RANDOMIZED
        )
        with pytest.warns(TruncatedSVTWarning, match="lossy"):
            engine.apply(matrix, 0.5)
        assert engine.rank == 12
        assert engine.stats["rank_grows"] >= 1

    def test_cap_in_dense_regime_is_not_truncating(self):
        """A cap at/past min(shape)-1 promotes to the exact prox, like
        the legacy path promoted non-truncating ranks."""
        matrix = _spectrum_matrix(37, N, 3.0 * 0.7 ** np.arange(N))
        engine = WarmStartSVT(max_rank=N, **FORCE_RANDOMIZED)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            out = engine.apply(matrix, 0.2)
        np.testing.assert_allclose(
            out, singular_value_threshold(matrix, 0.2), atol=1e-8
        )

    def test_lossy_tracer_metrics(self):
        matrix = _spectrum_matrix(41, N, 8.0 * 0.6 ** np.arange(N))
        registry = MetricsRegistry()
        tracer = Tracer(registry)
        engine = WarmStartSVT(
            initial_rank=6, max_rank=6, **FORCE_RANDOMIZED
        )
        with pytest.warns(TruncatedSVTWarning):
            engine.apply(matrix, 0.1, tracer=tracer)
        assert tracer.counters["svt.lossy_truncations"] == 1
        assert tracer.metrics["svt.tail_excess"]

    def test_invalid_max_rank_rejected(self):
        with pytest.raises(ValueError, match="max_rank"):
            WarmStartSVT(max_rank=0)


class TestObservability:
    def test_tracer_metrics_and_registry_bridge(self):
        matrix = _spectrum_matrix(17, N, 4.0 * 0.7 ** np.arange(N))
        registry = MetricsRegistry()
        tracer = Tracer(registry)
        engine = WarmStartSVT(**FORCE_RANDOMIZED)
        engine.apply(matrix, 0.5, tracer=tracer)
        assert tracer.metrics["svt.adaptive_rank"]
        assert tracer.metrics["svt.retained_rank"]
        rendered = registry.render()
        assert "solver_svt_adaptive_rank" in rendered

    def test_stats_accumulate(self):
        matrix = _spectrum_matrix(19, N, 4.0 * 0.7 ** np.arange(N))
        engine = WarmStartSVT(**FORCE_RANDOMIZED)
        engine.apply(matrix, 0.5)
        engine.apply(matrix, 0.5)
        assert engine.stats["applies"] == 2
        assert engine.stats["seconds"] > 0.0


class TestTraceNormProxEngine:
    def test_apply_routes_through_engine(self, rng):
        engine = WarmStartSVT()
        prox = TraceNormProx(0.7, engine=engine)
        matrix = rng.normal(size=(20, 20))
        out = prox.apply(matrix, 0.5)
        np.testing.assert_allclose(
            out, singular_value_threshold(matrix, 0.5 * 0.7), atol=1e-10
        )
        assert engine.stats["applies"] == 1

    def test_value_reuses_cached_spectrum(self, rng):
        engine = WarmStartSVT()
        prox = TraceNormProx(0.7, engine=engine)
        matrix = rng.normal(size=(20, 20))
        out = prox.apply(matrix, 0.5)
        assert prox.value(out) == pytest.approx(0.7 * trace_norm(out))
        # Plant a sentinel to prove the cached value (not an SVD) is used.
        engine.last_output_trace_norm = 123.0
        assert prox.value(out) == pytest.approx(0.7 * 123.0)

    def test_value_cache_invalidated_by_mutation(self, rng):
        engine = WarmStartSVT()
        prox = TraceNormProx(1.0, engine=engine)
        matrix = rng.normal(size=(20, 20))
        out = prox.apply(matrix, 0.5)
        engine.last_output_trace_norm = 123.0  # sentinel
        out *= 0.5  # in-place mutation (what L1/box proxes do)
        # The ℓ1 fingerprint changed, so the sentinel must be ignored.
        assert prox.value(out) == pytest.approx(trace_norm(out))

    def test_value_without_engine_unchanged(self, rng):
        prox = TraceNormProx(0.3)
        matrix = rng.normal(size=(10, 10))
        assert prox.value(matrix) == pytest.approx(0.3 * trace_norm(matrix))

    def test_repr_mentions_engine(self):
        assert "WarmStartSVT" in repr(TraceNormProx(1.0, engine=WarmStartSVT()))
