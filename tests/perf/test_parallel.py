"""Contracts of the order-preserving thread fan-out used per source."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.perf import default_workers, parallel_map


class TestParallelMap:
    def test_preserves_input_order(self):
        """results[i] belongs to items[i] no matter who finishes first."""
        items = list(range(24))
        results, seconds = parallel_map(lambda x: x * x, items, max_workers=4)
        assert results == [x * x for x in items]
        assert len(seconds) == len(items)

    def test_times_every_item_individually(self):
        def work(ms):
            deadline = threading.Event()
            deadline.wait(ms / 1000.0)
            return ms

        results, seconds = parallel_map(work, [5, 20], max_workers=2)
        assert results == [5, 20]
        assert all(s > 0.0 for s in seconds)
        # Per-item wall time, not the batch's: the slow item's clock must
        # dominate the fast item's.
        assert seconds[1] > seconds[0]

    def test_single_worker_is_sequential(self):
        """max_workers=1 must not spin up a pool (thread identity check)."""
        caller = threading.get_ident()
        threads = []
        results, _ = parallel_map(
            lambda x: threads.append(threading.get_ident()) or x,
            [1, 2, 3],
            max_workers=1,
        )
        assert results == [1, 2, 3]
        assert set(threads) == {caller}

    def test_empty_items(self):
        assert parallel_map(lambda x: x, []) == ([], [])

    def test_propagates_worker_exception(self):
        def explode(x):
            if x == 2:
                raise RuntimeError("boom on item 2")
            return x

        with pytest.raises(RuntimeError, match="boom on item 2"):
            parallel_map(explode, [1, 2, 3], max_workers=2)

    def test_matches_sequential_on_numpy_work(self, rng):
        """Thread fan-out must be bit-identical to the sequential loop."""
        blocks = [rng.normal(size=(16, 16)) for _ in range(6)]
        fn = lambda block: block @ block.T  # noqa: E731
        seq, _ = parallel_map(fn, blocks, max_workers=1)
        par, _ = parallel_map(fn, blocks, max_workers=4)
        for a, b in zip(seq, par):
            assert np.array_equal(a, b)


class TestDefaultWorkers:
    def test_bounded_by_items(self):
        assert default_workers(1, max_workers=8) == 1

    def test_bounded_by_request(self):
        assert default_workers(100, max_workers=3) == 3

    def test_default_is_at_least_one(self):
        assert default_workers(0) >= 0
        assert default_workers(100) >= 1

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError, match="max_workers"):
            default_workers(4, max_workers=0)


class TestParallelMapProcesses:
    def test_preserves_input_order(self):
        """results[i] belongs to items[i] regardless of which child ran it."""
        from repro.perf import parallel_map_processes

        items = list(range(12))
        results, seconds = parallel_map_processes(_square, items, max_workers=2)
        assert results == [x * x for x in items]
        assert len(seconds) == len(items)
        assert all(s >= 0.0 for s in seconds)

    def test_matches_thread_pool_on_numpy_work(self, rng):
        """Process fan-out must be bit-identical to the thread fan-out."""
        from repro.perf import parallel_map, parallel_map_processes

        blocks = [rng.normal(size=(16, 16)) for _ in range(4)]
        thread_results, _ = parallel_map(_gram, blocks, max_workers=2)
        process_results, _ = parallel_map_processes(_gram, blocks, max_workers=2)
        for a, b in zip(thread_results, process_results):
            assert np.array_equal(a, b)

    def test_single_worker_runs_in_calling_process(self):
        from repro.perf import parallel_map_processes

        import os as _os

        results, _ = parallel_map_processes(_pid_of, [0], max_workers=1)
        assert results == [_os.getpid()]

    def test_unpicklable_fn_falls_back_to_threads(self):
        """A lambda cannot cross the process boundary; threads still answer."""
        from repro.perf import parallel_map_processes

        results, _ = parallel_map_processes(
            lambda x: x + 1, [1, 2, 3], max_workers=2
        )
        assert results == [2, 3, 4]

    def test_empty_items(self):
        from repro.perf import parallel_map_processes

        assert parallel_map_processes(_square, []) == ([], [])


def _square(x):
    return x * x


def _gram(block):
    return block @ block.T


def _pid_of(_):
    import os as _os

    return _os.getpid()
