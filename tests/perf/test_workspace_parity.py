"""The workspace-backed inner loop must be fast, never different.

The seed solver's inner loop allocated four n×n temporaries per
iteration; the workspace loop allocates none.  These tests pin the two
loops to *bitwise* equality (``np.array_equal``, not allclose) on the
paper's composite problem, and exercise the workspace mechanics the
equality rests on (ping-pong buffers, ownership, scratch-backed norms).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import OptimizationError
from repro.optim.convergence import ConvergenceCriterion, IterationHistory
from repro.optim.forward_backward import (
    ForwardBackwardSolver,
    GeneralizedForwardBackward,
)
from repro.optim.losses import LinearizedIntimacyTerm, SquaredFrobeniusLoss
from repro.optim.proximal import BoxProjection, L1Prox, TraceNormProx
from repro.perf.workspace import Workspace

N = 24


def _problem(rng):
    """The paper's inner-loop problem: loss + linearized intimacy term,
    trace-norm + l1 + box proxes (no SVT engine: seed numerics)."""
    adjacency = (rng.random((N, N)) < 0.3).astype(float)
    adjacency = np.maximum(adjacency, adjacency.T)
    gradient = rng.normal(size=(N, N)) * 0.1
    smooth = [SquaredFrobeniusLoss(adjacency), LinearizedIntimacyTerm(gradient)]
    proxes = [TraceNormProx(1.0), L1Prox(1.0), BoxProjection(0.0, None)]
    return adjacency, smooth, proxes


def _seed_replica_loop(initial, smooth_terms, prox_terms, step, criterion):
    """The seed solver's allocating inner loop, verbatim semantics."""
    current = np.asarray(initial, dtype=float).copy()
    for _ in range(criterion.max_iterations):
        previous = current
        gradient = np.zeros_like(previous)
        for term in smooth_terms:
            gradient += term.gradient(previous)
        current = previous - step * gradient
        for prox in prox_terms:
            current = prox.apply(current, step)
        if float(np.abs(current - previous).sum()) < criterion.tolerance:
            break
    return current


class TestBitwiseParity:
    def test_fast_loop_matches_seed_replica(self, rng):
        adjacency, smooth, proxes = _problem(rng)
        criterion = ConvergenceCriterion(tolerance=1e-8, max_iterations=40)
        solver = ForwardBackwardSolver(step_size=0.05, criterion=criterion)
        fast = solver.solve(np.zeros_like(adjacency), smooth, proxes)
        reference = _seed_replica_loop(
            np.zeros_like(adjacency), smooth, proxes, 0.05, criterion
        )
        assert np.array_equal(fast, reference)

    def test_workspace_reuse_across_solves_stays_bitwise(self, rng):
        """Round 2 reuses round 1's buffers — contents must not leak in."""
        adjacency, smooth, proxes = _problem(rng)
        criterion = ConvergenceCriterion(tolerance=1e-8, max_iterations=25)
        solver = ForwardBackwardSolver(step_size=0.05, criterion=criterion)
        first = solver.solve(np.zeros_like(adjacency), smooth, proxes)
        ws = solver._workspace
        second = solver.solve(first, smooth, proxes)
        assert solver._workspace is ws  # reused, not reallocated
        reference = _seed_replica_loop(first, smooth, proxes, 0.05, criterion)
        assert np.array_equal(second, reference)

    def test_result_never_aliases_workspace(self, rng):
        adjacency, smooth, proxes = _problem(rng)
        solver = ForwardBackwardSolver(
            step_size=0.05,
            criterion=ConvergenceCriterion(tolerance=1e-8, max_iterations=10),
        )
        result = solver.solve(np.zeros_like(adjacency), smooth, proxes)
        assert not solver._workspace.owns(result)

    def test_history_norms_match_legacy(self, rng):
        """record_norms must produce the same numbers history.record did."""
        adjacency, smooth, proxes = _problem(rng)
        criterion = ConvergenceCriterion(tolerance=1e-8, max_iterations=15)
        solver = ForwardBackwardSolver(step_size=0.05, criterion=criterion)
        history = IterationHistory()
        solver.solve(np.zeros_like(adjacency), smooth, proxes, history=history)
        # Replay the replica loop, collecting the legacy norms.
        current = np.zeros_like(adjacency)
        norms = []
        for _ in range(criterion.max_iterations):
            previous = current
            gradient = np.zeros_like(previous)
            for term in smooth:
                gradient += term.gradient(previous)
            current = previous - 0.05 * gradient
            for prox in proxes:
                current = prox.apply(current, 0.05)
            update = float(np.abs(current - previous).sum())
            norms.append((float(np.abs(current).sum()), update))
            if update < criterion.tolerance:
                break
        assert [
            (r.variable_norm, r.update_norm) for r in history.records
        ] == norms


class TestFastPathRecovery:
    def test_fast_loop_halves_step_and_recovers(self, rng):
        target = (rng.random((12, 12)) < 0.3).astype(float)
        solver = ForwardBackwardSolver(
            step_size=1.8,  # |1 - 2*1.8| = 2.6: diverges unhalved
            criterion=ConvergenceCriterion(
                tolerance=1e-10, max_iterations=500
            ),
            max_step_halvings=3,
        )
        result = solver.solve(
            np.zeros_like(target), [SquaredFrobeniusLoss(target)], []
        )
        np.testing.assert_allclose(result, target, atol=1e-4)

    def test_fast_loop_zero_budget_fails_fast(self, rng):
        target = (rng.random((8, 8)) < 0.3).astype(float)
        solver = ForwardBackwardSolver(
            step_size=1.8,
            criterion=ConvergenceCriterion(max_iterations=500),
            max_step_halvings=0,
        )
        with pytest.raises(OptimizationError, match="diverged"):
            solver.solve(
                np.zeros_like(target), [SquaredFrobeniusLoss(target)], []
            )

    def test_gfb_halves_step_and_recovers(self, rng):
        target = (rng.random((12, 12)) < 0.3).astype(float)
        solver = GeneralizedForwardBackward(
            step_size=1.8,  # diverges unhalved; one halving stabilizes it
            criterion=ConvergenceCriterion(
                tolerance=1e-10, max_iterations=800
            ),
            max_step_halvings=3,
        )
        result = solver.solve(
            np.zeros_like(target),
            [SquaredFrobeniusLoss(target)],
            [L1Prox(1e-3)],
        )
        np.testing.assert_allclose(result, target, atol=1e-3)

    def test_gfb_zero_budget_fails_fast(self, rng):
        target = (rng.random((12, 12)) < 0.3).astype(float)
        solver = GeneralizedForwardBackward(
            step_size=1.8,
            criterion=ConvergenceCriterion(max_iterations=800),
            max_step_halvings=0,
        )
        with pytest.raises(OptimizationError, match="diverged"):
            solver.solve(
                np.zeros_like(target),
                [SquaredFrobeniusLoss(target)],
                [L1Prox(1e-3)],
            )

    def test_gfb_budget_exhaustion_raises(self, rng):
        target = (rng.random((8, 8)) < 0.3).astype(float)
        solver = GeneralizedForwardBackward(
            step_size=1e9,  # even 3 halvings cannot save this
            criterion=ConvergenceCriterion(max_iterations=500),
            max_step_halvings=3,
        )
        with pytest.raises(OptimizationError, match="diverged"):
            solver.solve(
                np.zeros_like(target),
                [SquaredFrobeniusLoss(target)],
                [L1Prox(1e-3)],
            )


class TestWorkspace:
    def test_ensure_reuses_fitting_workspace(self):
        matrix = np.zeros((6, 6))
        ws = Workspace.ensure(None, matrix)
        assert Workspace.ensure(ws, matrix) is ws

    def test_ensure_replaces_mismatched_workspace(self):
        ws = Workspace.ensure(None, np.zeros((6, 6)))
        bigger = Workspace.ensure(ws, np.zeros((8, 8)))
        assert bigger is not ws
        assert bigger.shape == (8, 8)

    def test_step_buffers_ping_pong(self):
        ws = Workspace((4, 4))
        first = ws.step_buffer()
        second = ws.step_buffer()
        assert first is not second
        assert ws.step_buffer() is first

    def test_step_buffer_never_returns_avoid(self):
        ws = Workspace((4, 4))
        held = ws.step_buffer()
        for _ in range(4):
            assert ws.step_buffer(avoid=held) is not held

    def test_owns(self):
        ws = Workspace((4, 4))
        assert ws.owns(ws.gradient)
        assert ws.owns(ws.scratch)
        assert ws.owns(ws.step_buffer())
        assert not ws.owns(np.zeros((4, 4)))

    def test_scratch_backed_norms(self, rng):
        ws = Workspace((5, 5))
        a = rng.normal(size=(5, 5))
        b = rng.normal(size=(5, 5))
        assert ws.l1_norm(a) == float(np.abs(a).sum())
        assert ws.l1_update_norm(a, b) == float(np.abs(a - b).sum())
