"""Tests for solver-side recovery: SVD fallbacks, step halving, resume."""

import numpy as np
import pytest

from repro.exceptions import (
    ConfigurationError,
    OptimizationError,
    TruncatedSVTWarning,
)
from repro.models.slampred import SlamPredH
from repro.observability.tracer import Tracer
from repro.optim.convergence import ConvergenceCriterion
from repro.optim.forward_backward import ForwardBackwardSolver
from repro.optim.losses import SquaredFrobeniusLoss
from repro.optim.proximal import (
    singular_value_threshold,
    truncated_singular_value_threshold,
)
from repro.reliability.faults import GLOBAL_INJECTOR


@pytest.fixture()
def matrix(rng):
    base = rng.normal(size=(20, 20))
    return (base + base.T) / 2.0


class TestSvdFallbacks:
    def test_truncated_fault_falls_back_to_dense(self, matrix):
        exact = singular_value_threshold(matrix, 0.5)
        GLOBAL_INJECTOR.arm("solver.svd.truncated", times=1)
        tracer = Tracer()
        with pytest.warns(TruncatedSVTWarning, match="falling back"):
            recovered = truncated_singular_value_threshold(
                matrix, 0.5, rank=5, tracer=tracer
            )
        np.testing.assert_allclose(recovered, exact, atol=1e-10)
        assert tracer.counters["svt.dense_fallbacks"] == 1

    def test_dense_fault_falls_back_to_eigh(self, matrix):
        exact = singular_value_threshold(matrix, 0.5)
        GLOBAL_INJECTOR.arm("solver.svd.dense", times=1)
        tracer = Tracer()
        recovered = singular_value_threshold(matrix, 0.5, tracer=tracer)
        np.testing.assert_allclose(recovered, exact, atol=1e-8)
        assert tracer.counters["svt.eigh_fallbacks"] == 1

    def test_fallback_counters_bridge_to_registry(self, matrix):
        from repro.observability.metrics import MetricsRegistry

        registry = MetricsRegistry()
        tracer = Tracer(registry)
        GLOBAL_INJECTOR.arm("solver.svd.dense", times=1)
        singular_value_threshold(matrix, 0.5, tracer=tracer)
        assert "reliability_svd_fallbacks_total 1" in registry.render()

    def test_fit_completes_despite_svd_faults(self, task):
        """A fit survives injected SVD failures at both fault sites."""
        GLOBAL_INJECTOR.arm("solver.svd.truncated", times=2)
        GLOBAL_INJECTOR.arm("solver.svd.dense", times=2)
        with pytest.warns(TruncatedSVTWarning):
            model = SlamPredH(
                svd_rank=10, inner_iterations=5, outer_iterations=3
            ).fit(task)
        assert np.all(np.isfinite(model.score_matrix))
        assert GLOBAL_INJECTOR.fired_counts()["solver.svd.truncated"] == 2


class TestStepHalving:
    def test_divergent_step_recovers_by_halving(self, rng):
        target = (rng.random((12, 12)) < 0.3).astype(float)
        solver = ForwardBackwardSolver(
            step_size=1.8,  # factor |1 - 2*1.8| = 2.6: diverges unhalved
            criterion=ConvergenceCriterion(
                tolerance=1e-10, max_iterations=500
            ),
            max_step_halvings=3,
        )
        tracer = Tracer()
        result = solver.solve(
            np.zeros_like(target),
            [SquaredFrobeniusLoss(target)],
            [],
            tracer=tracer,
        )
        np.testing.assert_allclose(result, target, atol=1e-4)
        assert tracer.counters["fb.step_halvings"] >= 1
        assert solver.step_size == 1.8  # the configured step is untouched

    def test_budget_exhaustion_still_fails_loudly(self, rng):
        target = (rng.random((8, 8)) < 0.3).astype(float)
        solver = ForwardBackwardSolver(
            step_size=1e9,  # even 3 halvings cannot save this
            criterion=ConvergenceCriterion(max_iterations=500),
            max_step_halvings=3,
        )
        with pytest.raises(OptimizationError, match="diverged"):
            solver.solve(
                np.zeros_like(target), [SquaredFrobeniusLoss(target)], []
            )

    def test_zero_budget_restores_fail_fast(self, rng):
        target = (rng.random((8, 8)) < 0.3).astype(float)
        solver = ForwardBackwardSolver(
            step_size=1.8,
            criterion=ConvergenceCriterion(max_iterations=500),
            max_step_halvings=0,
        )
        with pytest.raises(OptimizationError, match="diverged"):
            solver.solve(
                np.zeros_like(target), [SquaredFrobeniusLoss(target)], []
            )


class TestCheckpointedFit:
    def test_fit_writes_checkpoints(self, task, tmp_path):
        directory = str(tmp_path / "ckpt")
        model = SlamPredH(inner_iterations=4, outer_iterations=3)
        model.fit(task, checkpoint_dir=directory)
        from repro.reliability.checkpoints import CheckpointManager

        rounds = CheckpointManager(directory).rounds()
        assert rounds  # at least one round checkpointed
        assert model.result.resumed_from is None

    def test_resume_requires_a_checkpoint(self, task, tmp_path):
        with pytest.raises(ConfigurationError, match="no resumable"):
            SlamPredH(inner_iterations=4, outer_iterations=3).resume(
                task, str(tmp_path / "empty")
            )

    def test_resumed_fit_matches_uninterrupted(self, task, tmp_path):
        """Kill after 2 rounds; resume must land on the same trajectory."""
        directory = str(tmp_path / "ckpt")
        config = dict(inner_iterations=4, outer_iterations=6)
        full = SlamPredH(**config).fit(task)
        # "Kill" the run at round 2 by bounding the outer loop, keeping
        # only what a killed process would have: the on-disk checkpoints.
        SlamPredH(inner_iterations=4, outer_iterations=2).fit(
            task, checkpoint_dir=directory
        )
        resumed = SlamPredH(**config).resume(task, directory)
        assert resumed.result.resumed_from == 2
        np.testing.assert_allclose(
            resumed.score_matrix, full.score_matrix, atol=1e-8
        )
        assert resumed.result.n_rounds == full.result.n_rounds
