"""Tests for retry/backoff: schedule properties, deadlines, counters.

The timing-sensitive tests drive :func:`call_with_retry` with a fake
clock/sleep pair, so no test actually waits — the deadline guarantees are
checked as arithmetic, not as wall-clock races.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import (
    ConfigurationError,
    DeadlineExceededError,
    RetryExhaustedError,
)
from repro.observability.metrics import MetricsRegistry
from repro.reliability.retry import (
    RetryPolicy,
    call_with_retry,
    deterministic_jitter,
    retry,
    run_with_timeout,
)


class _FakeTime:
    """A manual clock whose sleep() advances it instantly."""

    def __init__(self):
        self.now = 0.0
        self.sleeps = []

    def clock(self):
        return self.now

    def sleep(self, seconds):
        self.sleeps.append(seconds)
        self.now += seconds


policies = st.builds(
    RetryPolicy,
    max_attempts=st.integers(min_value=1, max_value=12),
    base_delay=st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
    multiplier=st.floats(min_value=1.0, max_value=4.0, allow_nan=False),
    max_delay=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    jitter=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    seed=st.integers(min_value=0, max_value=2**32),
)


class TestScheduleProperties:
    @given(policies)
    def test_monotone_non_decreasing(self, policy):
        schedule = policy.backoff_schedule()
        assert len(schedule) == policy.max_attempts - 1
        assert all(b >= a for a, b in zip(schedule, schedule[1:]))

    @given(policies)
    def test_bounded_by_jittered_cap(self, policy):
        cap = policy.max_delay * (1.0 + policy.jitter)
        assert all(0.0 <= delay <= cap + 1e-9 for delay in policy.backoff_schedule())

    @given(policies)
    def test_schedule_deterministic(self, policy):
        assert policy.backoff_schedule() == policy.backoff_schedule()

    @given(
        st.integers(min_value=0, max_value=2**32),
        st.integers(min_value=0, max_value=100),
    )
    def test_jitter_in_unit_interval(self, seed, attempt):
        draw = deterministic_jitter(seed, attempt)
        assert 0.0 <= draw < 1.0
        assert draw == deterministic_jitter(seed, attempt)

    @given(
        policies.filter(lambda p: p.max_attempts >= 2 and p.base_delay > 0),
        st.floats(min_value=0.05, max_value=30.0, allow_nan=False),
    )
    def test_deadline_budget_respected(self, policy, deadline):
        """No sleep is started that would overrun the deadline budget."""
        bounded = RetryPolicy(
            max_attempts=policy.max_attempts,
            base_delay=policy.base_delay,
            multiplier=policy.multiplier,
            max_delay=policy.max_delay,
            jitter=policy.jitter,
            seed=policy.seed,
            deadline=deadline,
        )
        fake = _FakeTime()
        with pytest.raises((RetryExhaustedError, DeadlineExceededError)):
            call_with_retry(
                lambda: (_ for _ in ()).throw(ValueError("always fails")),
                bounded,
                clock=fake.clock,
                sleep=fake.sleep,
            )
        # Every started sleep fit the remaining budget at its start time.
        assert fake.now <= deadline + 1e-9


class TestPolicyValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(deadline=0.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(attempt_timeout=-1.0)


class TestCallWithRetry:
    def test_first_success_returns_immediately(self):
        fake = _FakeTime()
        result = call_with_retry(
            lambda: 42,
            RetryPolicy(max_attempts=3),
            clock=fake.clock,
            sleep=fake.sleep,
        )
        assert result == 42
        assert fake.sleeps == []

    def test_recovers_after_transient_failures(self):
        fake = _FakeTime()
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise OSError("transient")
            return "ok"

        policy = RetryPolicy(max_attempts=5, base_delay=0.1, jitter=0.0)
        assert (
            call_with_retry(flaky, policy, clock=fake.clock, sleep=fake.sleep)
            == "ok"
        )
        assert len(attempts) == 3
        assert fake.sleeps == pytest.approx([0.1, 0.2])

    def test_exhaustion_chains_last_error(self):
        fake = _FakeTime()

        def always():
            raise OSError("disk on fire")

        with pytest.raises(RetryExhaustedError, match="disk on fire") as info:
            call_with_retry(
                always,
                RetryPolicy(max_attempts=2, base_delay=0.0),
                clock=fake.clock,
                sleep=fake.sleep,
            )
        assert isinstance(info.value.__cause__, OSError)

    def test_non_retriable_error_propagates_untouched(self):
        def boom():
            raise KeyError("not retriable")

        with pytest.raises(KeyError):
            call_with_retry(
                boom,
                RetryPolicy(max_attempts=5, retry_on=(OSError,)),
                sleep=lambda s: None,
            )

    def test_retries_counted_on_registry(self):
        registry = MetricsRegistry()
        fake = _FakeTime()
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise OSError("transient")
            return "ok"

        call_with_retry(
            flaky,
            RetryPolicy(max_attempts=5, base_delay=0.01),
            name="test.op",
            registry=registry,
            clock=fake.clock,
            sleep=fake.sleep,
        )
        rendered = registry.render()
        assert "reliability_retries_total" in rendered
        assert 'op="test.op"' in rendered

    def test_decorator_form(self):
        calls = []

        @retry(RetryPolicy(max_attempts=3, base_delay=0.0), name="decorated")
        def sometimes():
            calls.append(1)
            if len(calls) < 2:
                raise OSError("once")
            return "done"

        assert sometimes() == "done"
        assert len(calls) == 2


class TestAttemptTimeout:
    def test_inline_when_unbounded(self):
        assert run_with_timeout(lambda: "fast", None) == "fast"

    def test_overrun_raises_deadline_error(self):
        import time as _time

        with pytest.raises(DeadlineExceededError, match="timeout"):
            run_with_timeout(lambda: _time.sleep(5.0), 0.05)

    def test_attempt_errors_surface_on_caller_thread(self):
        def boom():
            raise ValueError("from the worker")

        with pytest.raises(ValueError, match="from the worker"):
            run_with_timeout(boom, 1.0)
