"""Tests for checkpoint save/load: atomicity, pruning, corruption handling."""

import os
import struct
import zipfile

import numpy as np
import pytest

from repro.exceptions import ArtifactCorruptError
from repro.reliability.checkpoints import CheckpointManager


def _flip_payload_byte(path, member="solution.npy"):
    """Flip one byte inside a member's compressed data (not zip framing)."""
    with zipfile.ZipFile(path) as archive:
        info = archive.getinfo(member)
    blob = bytearray(open(path, "rb").read())
    # The local header records its own name/extra lengths (they can differ
    # from the central directory's); the compressed stream starts after.
    name_len, extra_len = struct.unpack_from(
        "<HH", blob, info.header_offset + 26
    )
    start = info.header_offset + 30 + name_len + extra_len
    blob[start + info.compress_size // 2] ^= 0xFF
    open(path, "wb").write(bytes(blob))


@pytest.fixture()
def manager(tmp_path):
    return CheckpointManager(str(tmp_path / "ckpt"), keep=3)


class TestRoundTrip:
    def test_save_load_roundtrip(self, manager, rng):
        solution = rng.random((6, 6))
        path = manager.save(4, solution, [3.0, 2.5, 2.1, 2.0], meta={"tag": "x"})
        assert os.path.isfile(path)
        loaded = manager.load(4)
        np.testing.assert_array_equal(loaded.solution, solution)
        assert loaded.round_index == 4
        assert loaded.round_norms == [3.0, 2.5, 2.1, 2.0]
        assert loaded.meta["tag"] == "x"

    def test_no_staging_residue(self, manager, rng):
        manager.save(1, rng.random((4, 4)), [1.0])
        leftovers = [
            f for f in os.listdir(manager.directory) if "staging" in f
        ]
        assert leftovers == []

    def test_cadence(self, tmp_path):
        manager = CheckpointManager(str(tmp_path), every=3)
        assert [r for r in range(1, 10) if manager.should_save(r)] == [3, 6, 9]


class TestPruning:
    def test_keeps_only_newest(self, manager, rng):
        for round_index in range(1, 7):
            manager.save(round_index, rng.random((4, 4)), [1.0] * round_index)
        assert manager.rounds() == [4, 5, 6]

    def test_latest_returns_newest(self, manager, rng):
        for round_index in (1, 2, 3):
            manager.save(round_index, rng.random((4, 4)), [1.0] * round_index)
        assert manager.latest().round_index == 3


class TestCorruption:
    def test_bit_flip_detected(self, manager, rng):
        path = manager.save(2, rng.random((4, 4)), [1.0, 0.5])
        _flip_payload_byte(path, "solution.npy")
        with pytest.raises(ArtifactCorruptError):
            manager.load(2)

    def test_truncated_file_detected(self, manager, rng):
        path = manager.save(2, rng.random((4, 4)), [1.0, 0.5])
        blob = open(path, "rb").read()
        open(path, "wb").write(blob[: len(blob) // 3])
        with pytest.raises(ArtifactCorruptError):
            manager.load(2)

    def test_latest_walks_past_corrupt_newest(self, manager, rng):
        manager.save(1, rng.random((4, 4)), [1.0])
        good = rng.random((4, 4))
        manager.save(2, good, [1.0, 0.5])
        newest = manager.save(3, rng.random((4, 4)), [1.0, 0.5, 0.3])
        open(newest, "wb").write(b"garbage")
        latest = manager.latest()
        assert latest.round_index == 2
        np.testing.assert_array_equal(latest.solution, good)

    def test_latest_none_when_everything_corrupt(self, manager, rng):
        path = manager.save(1, rng.random((4, 4)), [1.0])
        open(path, "wb").write(b"garbage")
        assert manager.latest() is None

    def test_latest_none_on_empty_directory(self, manager):
        assert manager.latest() is None
