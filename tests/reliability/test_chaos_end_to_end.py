"""End-to-end chaos: a killed fit resumes exactly; serving never breaks.

Two acceptance scenarios of the reliability subsystem:

* a CCCP fit killed **mid-round** loses only in-flight work — resuming
  from the on-disk checkpoints reproduces the uninterrupted run's final
  objective to 1e-8;
* an HTTP endpoint with faults armed at every serving site keeps
  answering every request with either a correct payload, a stale-served
  answer, or a clean JSON 503/500 — never an unhandled error, with the
  degradation visible on ``/metrics``.
"""

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.models.persistence import FrozenPredictor
from repro.optim.cccp import CCCPSolver
from repro.optim.convergence import ConvergenceCriterion
from repro.optim.forward_backward import ForwardBackwardSolver
from repro.optim.losses import SquaredFrobeniusLoss
from repro.optim.proximal import BoxProjection, L1Prox, TraceNormProx
from repro.reliability.checkpoints import CheckpointManager
from repro.reliability.faults import GLOBAL_INJECTOR
from repro.serving.http import make_server
from repro.serving.service import LinkPredictionService


class _KillSwitch:
    """Transparent prox wrapper that counts applies on a shared budget.

    ``budget`` is a one-element list shared by all wrapped prox terms:
    counting up when ``kill_at`` is None, killing the process once the
    shared count passes ``kill_at`` otherwise.
    """

    def __init__(self, inner, budget, kill_at=None):
        self.inner = inner
        self.budget = budget
        self.kill_at = kill_at

    def value(self, matrix):
        return self.inner.value(matrix)

    def apply(self, matrix, step, tracer=None):
        self.budget[0] += 1
        if self.kill_at is not None and self.budget[0] > self.kill_at:
            raise KeyboardInterrupt("simulated kill -9 mid-round")
        return self.inner.apply(matrix, step, tracer=tracer)


def _problem(rng):
    adjacency = np.triu((rng.random((24, 24)) < 0.25).astype(float), 1)
    adjacency = adjacency + adjacency.T
    return adjacency


def _solver(prox_wrap=None):
    prox_terms = [TraceNormProx(0.4), L1Prox(0.02), BoxProjection(0.0, None)]
    if prox_wrap is not None:
        prox_terms = [prox_wrap(p) for p in prox_terms]
    return CCCPSolver(
        loss=None,  # set per call below
        prox_terms=prox_terms,
        inner_solver=ForwardBackwardSolver(
            step_size=0.05,
            criterion=ConvergenceCriterion(
                tolerance=1e-7, max_iterations=8
            ),
        ),
        outer_criterion=ConvergenceCriterion(
            tolerance=1e-6, max_iterations=10
        ),
    )


def _solve(adjacency, checkpoint=None, prox_wrap=None):
    solver = _solver(prox_wrap)
    solver.loss = SquaredFrobeniusLoss(adjacency)
    return solver.solve(adjacency, checkpoint=checkpoint)


class TestKilledFitResumes:
    def test_mid_round_kill_resumes_to_same_objective(self, rng, tmp_path):
        adjacency = _problem(rng)
        # Count prox applies in the uninterrupted run to place the kill
        # mid-trajectory regardless of how fast this problem converges.
        count = [0]
        uninterrupted = _solve(
            adjacency, prox_wrap=lambda p: _KillSwitch(p, count)
        )
        assert count[0] > 4  # enough work for a mid-run kill

        directory = str(tmp_path / "ckpt")
        killed = CheckpointManager(directory, keep=10)
        # Kill partway through a later round: some rounds are checkpointed,
        # the in-flight round's work is lost — exactly a kill -9.
        kill_count = [0]
        with pytest.raises(KeyboardInterrupt):
            _solve(
                adjacency,
                checkpoint=killed,
                prox_wrap=lambda p: _KillSwitch(
                    p, kill_count, kill_at=count[0] // 2
                ),
            )
        survivor = killed.latest()
        assert survivor is not None  # progress survived the kill

        resumed = _solve(
            adjacency, checkpoint=CheckpointManager(directory, keep=10)
        )
        assert resumed.resumed_from == survivor.round_index
        final_objective = lambda result: float(  # noqa: E731
            np.sum((result.solution - adjacency) ** 2)
        )
        assert final_objective(resumed) == pytest.approx(
            final_objective(uninterrupted), abs=1e-8
        )
        np.testing.assert_allclose(
            resumed.solution, uninterrupted.solution, atol=1e-8
        )
        assert list(resumed.round_norms) == list(uninterrupted.round_norms)


@pytest.fixture()
def chaos_endpoint(store):
    """A live server with faults armed at every serving-side site."""
    service = LinkPredictionService(store, cache_size=4)
    server = make_server(
        service, port=0, max_inflight=32, request_deadline_s=5.0
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    GLOBAL_INJECTOR._seed = 1234
    GLOBAL_INJECTOR.arm("serving.request", probability=0.15)
    GLOBAL_INJECTOR.arm("serving.reload", probability=0.5)
    GLOBAL_INJECTOR.arm("artifact.read", probability=0.3)
    GLOBAL_INJECTOR.arm("artifact.slow_read", probability=0.3, delay=0.002)
    yield f"http://127.0.0.1:{server.server_address[1]}", service
    GLOBAL_INJECTOR.reset()
    server.shutdown()
    server.server_close()


def _get(url):
    """GET returning (status, parsed-JSON body) for 2xx and errors alike."""
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as exc:
        body = exc.read().decode("utf-8")
        return exc.code, json.loads(body)  # every error body must be JSON


class TestServingUnderChaos:
    def test_every_response_is_json_and_never_unhandled(self, chaos_endpoint):
        base, service = chaos_endpoint
        statuses = []
        for i in range(60):
            status, payload = _get(f"{base}/v1/topk?user={i % 16}&k=3")
            statuses.append(status)
            if status == 200:
                assert len(payload["candidates"]) <= 3
            else:
                # Injected request faults surface as structured JSON
                # errors carrying the request id — never a raw traceback.
                assert payload["status"] == status
                assert payload["request_id"]
                assert "injected" in payload["error"]
        assert 200 in statuses  # chaos at 15% must not take the service down
        assert any(s >= 500 for s in statuses)  # ...and faults did fire

    def test_reload_chaos_degrades_to_stale_serving(self, chaos_endpoint):
        base, service = chaos_endpoint
        served_before = service.version
        for _ in range(12):
            service.reload()  # injected failures: breaker may trip
        assert service.version == served_before  # stale artifact kept
        status, payload = _get(f"{base}/v1/topk?user=3&k=3")
        assert status in (200, 500)  # request-site faults may still fire
        # /readyz reports the breaker verdict either way, as JSON.
        status, payload = _get(f"{base}/readyz")
        assert status in (200, 503)
        assert payload.get("reload_breaker") in ("closed", "open", "half_open")

    def test_degradation_is_visible_on_metrics(self, chaos_endpoint):
        base, service = chaos_endpoint
        for _ in range(10):
            service.reload()
        for i in range(20):
            _get(f"{base}/v1/topk?user={i % 16}&k=3")
        with urllib.request.urlopen(f"{base}/metrics", timeout=10) as resp:
            text = resp.read().decode("utf-8")
        assert "reliability_breaker_state" in text
        assert "reliability_retries_total" in text
        assert "serving_reload_failure_total" in text


class TestLoadShedding:
    def test_excess_inflight_sheds_with_503(self, store):
        service = LinkPredictionService(store)
        server = make_server(service, port=0, max_inflight=1)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            # Saturate the single slot directly, then issue a real request.
            assert server.inflight_acquire()
            status, payload = _get(f"{base}/v1/topk?user=1&k=3")
            assert status == 503
            assert "overloaded" in payload["error"]
            assert payload["request_id"]
            server.inflight_release()
            status, _ = _get(f"{base}/v1/topk?user=1&k=3")
            assert status == 200
            assert (
                "reliability_shed_requests_total 1"
                in service.registry.render()
            )
        finally:
            server.shutdown()
            server.server_close()


class TestStaleServeOnCorruptPublish:
    def test_corrupt_new_version_keeps_old_answers(self, store, rng):
        import os

        service = LinkPredictionService(store)
        before = service.top_k(2, k=3)
        scores = rng.normal(size=(16, 16))
        version = store.publish(FrozenPredictor((scores + scores.T) / 2.0))
        model_path = os.path.join(store.path(version), "model.npz")
        with open(model_path, "wb") as handle:
            handle.write(b"corrupted beyond repair")
        assert service.reload() is False
        assert service.version == 1
        assert service.top_k(2, k=3) == before
        assert "integrity" in service.stats()["last_reload_error"]
