"""Tests for the fault injector: arming, firing, budgets, env config."""

import numpy as np
import pytest

from repro.exceptions import (
    ArtifactCorruptError,
    ConfigurationError,
    SerializationError,
)
from repro.reliability.faults import (
    GLOBAL_INJECTOR,
    KNOWN_SITES,
    FaultInjector,
    InjectedFaultError,
    chaos_enabled,
    configure_from_env,
    fault_point,
)


class TestArming:
    def test_unknown_site_rejected(self):
        injector = FaultInjector()
        with pytest.raises(ConfigurationError, match="unknown fault site"):
            injector.arm("no.such.site")

    def test_invalid_probability_rejected(self):
        injector = FaultInjector()
        with pytest.raises(ConfigurationError, match="probability"):
            injector.arm("artifact.read", probability=1.5)

    def test_negative_delay_rejected(self):
        injector = FaultInjector()
        with pytest.raises(ConfigurationError, match="delay"):
            injector.arm("artifact.read", delay=-0.1)

    def test_inactive_by_default(self):
        assert not FaultInjector().active

    def test_disarm_and_reset(self):
        injector = FaultInjector()
        injector.arm("artifact.read")
        injector.arm("serving.reload")
        injector.disarm("artifact.read")
        assert injector.armed_sites() == ["serving.reload"]
        injector.reset()
        assert not injector.active


class TestFiring:
    def test_default_errors_typed_per_site(self):
        injector = FaultInjector()
        injector.arm("solver.svd.dense")
        with pytest.raises(np.linalg.LinAlgError):
            injector.fire("solver.svd.dense")
        injector.arm("artifact.read")
        with pytest.raises(ArtifactCorruptError):
            injector.fire("artifact.read")
        injector.arm("serving.reload")
        with pytest.raises(SerializationError):
            injector.fire("serving.reload")
        injector.arm("serving.request")
        with pytest.raises(InjectedFaultError):
            injector.fire("serving.request")

    def test_unarmed_site_is_silent(self):
        injector = FaultInjector()
        injector.arm("artifact.read")
        injector.fire("serving.reload")  # not armed: no-op

    def test_times_budget_auto_disarms(self):
        injector = FaultInjector()
        injector.arm("artifact.read", times=2)
        for _ in range(2):
            with pytest.raises(ArtifactCorruptError):
                injector.fire("artifact.read")
        injector.fire("artifact.read")  # budget spent: silent
        assert injector.fired_counts()["artifact.read"] == 2

    def test_delay_only_site_sleeps_without_raising(self):
        injector = FaultInjector()
        injector.arm("artifact.slow_read", delay=0.0)
        injector.fire("artifact.slow_read")  # no error factory by default

    def test_probability_seeded_runs_reproduce(self):
        outcomes = []
        for _ in range(2):
            injector = FaultInjector(seed=7)
            injector.arm("serving.request", probability=0.3)
            fired = []
            for _ in range(50):
                try:
                    injector.fire("serving.request")
                    fired.append(False)
                except InjectedFaultError:
                    fired.append(True)
            outcomes.append(fired)
        assert outcomes[0] == outcomes[1]
        assert any(outcomes[0]) and not all(outcomes[0])


class TestFaultPoint:
    def test_noop_when_nothing_armed(self):
        fault_point("artifact.read")  # must not raise

    def test_fires_through_global_injector(self):
        GLOBAL_INJECTOR.arm("artifact.read", times=1)
        with pytest.raises(ArtifactCorruptError):
            fault_point("artifact.read")


class TestEnvConfig:
    def test_disabled_by_default(self):
        assert not chaos_enabled({})
        assert configure_from_env({}) == []
        assert not GLOBAL_INJECTOR.active

    def test_truthy_spellings(self):
        for value in ("1", "true", "YES", " on "):
            assert chaos_enabled({"REPRO_CHAOS": value})
        assert not chaos_enabled({"REPRO_CHAOS": "0"})

    def test_arms_all_sites_by_default(self):
        armed = configure_from_env({"REPRO_CHAOS": "1"})
        assert armed == sorted(KNOWN_SITES)
        assert GLOBAL_INJECTOR.armed_sites() == sorted(KNOWN_SITES)

    def test_site_subset_and_seed(self):
        armed = configure_from_env(
            {
                "REPRO_CHAOS": "1",
                "REPRO_CHAOS_SITES": "artifact.read, serving.reload",
                "REPRO_CHAOS_RATE": "1.0",
                "REPRO_CHAOS_SEED": "3",
            }
        )
        assert armed == ["artifact.read", "serving.reload"]
        with pytest.raises(ArtifactCorruptError):
            fault_point("artifact.read")
        fault_point("solver.svd.dense")  # outside the subset: silent
