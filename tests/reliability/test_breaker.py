"""Tests for the circuit breaker: state machine legality, metrics, call().

The hypothesis suite drives arbitrary interleavings of
success/failure/allow/time-advance operations against an instrumented
breaker and asserts that every observed transition is one of the four
legal edges — the property the chaos tooling relies on.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import CircuitOpenError, ConfigurationError
from repro.observability.metrics import MetricsRegistry
from repro.reliability.breaker import (
    CLOSED,
    HALF_OPEN,
    LEGAL_TRANSITIONS,
    OPEN,
    CircuitBreaker,
)


class _ManualClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def _make(threshold=2, recovery=10.0, registry=None):
    clock = _ManualClock()
    breaker = CircuitBreaker(
        "test",
        failure_threshold=threshold,
        recovery_timeout=recovery,
        registry=registry,
        clock=clock,
    )
    return breaker, clock


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker("x", failure_threshold=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker("x", recovery_timeout=-1.0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker("x", half_open_max=0)


class TestLifecycle:
    def test_trips_after_threshold_failures(self):
        breaker, _ = _make(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()

    def test_success_resets_the_failure_streak(self):
        breaker, _ = _make(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_recovery_probe_after_timeout(self):
        breaker, clock = _make(threshold=1, recovery=10.0)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(10.0)
        assert breaker.state == HALF_OPEN
        assert breaker.allow()  # the single probe
        assert not breaker.allow()  # concurrent probes bounded
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_failed_probe_reopens_and_restarts_clock(self):
        breaker, clock = _make(threshold=1, recovery=10.0)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        clock.advance(5.0)
        assert not breaker.allow()  # recovery clock restarted at reopen
        clock.advance(5.0)
        assert breaker.allow()

    def test_call_wraps_outcomes(self):
        breaker, clock = _make(threshold=1, recovery=10.0)
        assert breaker.call(lambda: "ok") == "ok"
        with pytest.raises(ValueError):
            breaker.call(lambda: (_ for _ in ()).throw(ValueError("boom")))
        with pytest.raises(CircuitOpenError):
            breaker.call(lambda: "never reached")


class TestMetrics:
    def test_state_gauge_and_transition_counters(self):
        registry = MetricsRegistry()
        breaker, clock = _make(threshold=1, recovery=10.0, registry=registry)
        breaker.record_failure()
        clock.advance(10.0)
        breaker.allow()
        breaker.record_success()
        rendered = registry.render()
        assert 'reliability_breaker_state{breaker="test"} 0' in rendered
        assert 'to="open"' in rendered
        assert 'to="half_open"' in rendered
        assert 'to="closed"' in rendered


operations = st.lists(
    st.sampled_from(["success", "failure", "allow", "advance"]),
    min_size=0,
    max_size=60,
)


class TestTransitionLegality:
    @given(
        operations,
        st.integers(min_value=1, max_value=4),
        # recovery must outlast one op, or closed->open->half_open happens
        # within a single record_failure and reads as an illegal edge
        st.floats(min_value=0.01, max_value=20.0, allow_nan=False),
    )
    def test_any_interleaving_stays_on_legal_edges(
        self, ops, threshold, recovery
    ):
        breaker, clock = _make(threshold=threshold, recovery=recovery)
        observed = []
        last = breaker.state
        for op in ops:
            if op == "success":
                breaker.record_success()
            elif op == "failure":
                breaker.record_failure()
            elif op == "allow":
                breaker.allow()
            else:
                clock.advance(recovery / 2.0 + 0.001)
            state = breaker.state
            if state != last:
                observed.append((last, state))
                last = state
        assert all(edge in LEGAL_TRANSITIONS for edge in observed)

    @given(operations)
    def test_closed_is_reachable_only_from_half_open(self, ops):
        """A tripped breaker never silently closes without a probe success."""
        breaker, clock = _make(threshold=1, recovery=5.0)
        last = breaker.state
        for op in ops:
            if op == "success":
                breaker.record_success()
            elif op == "failure":
                breaker.record_failure()
            elif op == "allow":
                breaker.allow()
            else:
                clock.advance(5.0)
            state = breaker.state
            if last == OPEN and state == CLOSED:
                raise AssertionError("breaker jumped open -> closed")
            last = state
