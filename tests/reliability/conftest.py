"""Shared chaos fixtures: a clean global injector and a tiny serving stack.

Every test in this package runs with the global fault injector reset on
both sides (autouse), so an armed site can never leak across tests — the
exact isolation discipline chaos tooling needs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.persistence import FrozenPredictor
from repro.reliability.faults import GLOBAL_INJECTOR
from repro.serving.artifacts import ArtifactStore
from repro.serving.service import LinkPredictionService

N_USERS = 16


@pytest.fixture(autouse=True)
def clean_injector():
    """Reset the global injector around every test in this package."""
    GLOBAL_INJECTOR.reset()
    yield GLOBAL_INJECTOR
    GLOBAL_INJECTOR.reset()


@pytest.fixture()
def predictor(rng):
    """A tiny frozen predictor with distinct symmetric scores."""
    scores = rng.normal(size=(N_USERS, N_USERS))
    return FrozenPredictor(
        (scores + scores.T) / 2.0, {"name": "chaos-model"}
    )


@pytest.fixture()
def adjacency(rng):
    """A sparse symmetric zero-diagonal binary adjacency."""
    upper = np.triu((rng.random((N_USERS, N_USERS)) < 0.2).astype(float), 1)
    return upper + upper.T


@pytest.fixture()
def store(tmp_path, predictor, adjacency):
    """A store with one published version."""
    store = ArtifactStore(str(tmp_path / "store"))
    store.publish(predictor, graph=adjacency)
    return store


@pytest.fixture()
def service(store):
    """A service over the one-version store."""
    return LinkPredictionService(store, cache_size=16)
