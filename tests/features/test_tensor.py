"""Tests for repro.features.tensor."""

import numpy as np
import pytest

from repro.exceptions import FeatureError
from repro.features.tensor import FeatureTensor


@pytest.fixture()
def tensor():
    values = np.zeros((2, 3, 3))
    values[0, 0, 1] = values[0, 1, 0] = 2.0
    values[1, 1, 2] = values[1, 2, 1] = 4.0
    return FeatureTensor(values, ["a", "b"])


class TestConstruction:
    def test_shapes(self, tensor):
        assert tensor.n_features == 2
        assert tensor.n_users == 3

    def test_default_names(self):
        t = FeatureTensor(np.zeros((3, 2, 2)))
        assert t.feature_names == ["f0", "f1", "f2"]

    def test_rejects_non_3d(self):
        with pytest.raises(FeatureError, match="shape"):
            FeatureTensor(np.zeros((3, 3)))

    def test_rejects_non_square_slices(self):
        with pytest.raises(FeatureError):
            FeatureTensor(np.zeros((2, 3, 4)))

    def test_rejects_name_count_mismatch(self):
        with pytest.raises(FeatureError, match="names"):
            FeatureTensor(np.zeros((2, 2, 2)), ["only-one"])

    def test_rejects_duplicate_names(self):
        with pytest.raises(FeatureError, match="duplicate"):
            FeatureTensor(np.zeros((2, 2, 2)), ["x", "x"])

    def test_from_matrices(self):
        t = FeatureTensor.from_matrices([np.eye(2), np.ones((2, 2))])
        assert t.n_features == 2

    def test_from_matrices_empty(self):
        with pytest.raises(FeatureError, match="zero"):
            FeatureTensor.from_matrices([])

    def test_from_matrices_inconsistent(self):
        with pytest.raises(FeatureError, match="inconsistent"):
            FeatureTensor.from_matrices([np.eye(2), np.eye(3)])


class TestAccess:
    def test_slice_by_index(self, tensor):
        assert tensor.slice(0)[0, 1] == 2.0

    def test_slice_by_name(self, tensor):
        assert tensor.slice("b")[1, 2] == 4.0

    def test_slice_unknown_name(self, tensor):
        with pytest.raises(FeatureError, match="unknown feature"):
            tensor.slice("zzz")

    def test_pair_vector(self, tensor):
        assert list(tensor.pair_vector(0, 1)) == [2.0, 0.0]

    def test_pair_vectors(self, tensor):
        out = tensor.pair_vectors([(0, 1), (1, 2)])
        assert out.shape == (2, 2)
        assert out[0, 0] == 2.0 and out[1, 1] == 4.0

    def test_pair_vectors_empty(self, tensor):
        assert tensor.pair_vectors([]).shape == (0, 2)


class TestOperations:
    def test_normalized_max_one(self, tensor):
        normalized = tensor.normalized()
        assert normalized.slice(0).max() == 1.0
        assert normalized.slice(1).max() == 1.0

    def test_normalized_zero_slice_untouched(self):
        t = FeatureTensor(np.zeros((1, 2, 2)))
        assert t.normalized().values.max() == 0.0

    def test_normalized_preserves_original(self, tensor):
        tensor.normalized()
        assert tensor.slice(0).max() == 2.0

    def test_aggregate_unit(self, tensor):
        agg = tensor.aggregate()
        assert agg[0, 1] == 2.0 and agg[1, 2] == 4.0

    def test_aggregate_weighted(self, tensor):
        agg = tensor.aggregate([0.5, 0.25])
        assert agg[0, 1] == 1.0 and agg[1, 2] == 1.0

    def test_aggregate_bad_weights(self, tensor):
        with pytest.raises(FeatureError, match="weights"):
            tensor.aggregate([1.0])

    def test_project_shape(self, tensor):
        projection = np.array([[1.0], [1.0]])
        out = tensor.project(projection)
        assert out.n_features == 1
        assert out.n_users == 3

    def test_project_values(self, tensor):
        projection = np.array([[1.0], [2.0]])
        out = tensor.project(projection)
        # latent = 1·a + 2·b
        assert out.slice(0)[1, 2] == 8.0
        assert out.slice(0)[0, 1] == 2.0

    def test_project_bad_shape(self, tensor):
        with pytest.raises(FeatureError, match="projection"):
            tensor.project(np.zeros((3, 1)))

    def test_project_custom_names(self, tensor):
        out = tensor.project(np.ones((2, 2)), names=["u", "v"])
        assert out.feature_names == ["u", "v"]
