"""Tests for repro.features.metapath."""

import numpy as np
import pytest

from repro.exceptions import FeatureError
from repro.features.metapath import METAPATHS, metapath_count_matrix
from repro.networks.heterogeneous import HeterogeneousNetwork


@pytest.fixture()
def network():
    net = HeterogeneousNetwork("mp")
    net.add_users(3)
    net.add_location(0)
    net.add_post(0, 0, word_ids=[7], hour=8, location_id=0)
    net.add_post(1, 1, word_ids=[7, 7], hour=8, location_id=0)
    net.add_post(2, 2, word_ids=[3], hour=20)
    return net


class TestMetapathCounts:
    def test_supported_names(self):
        assert set(METAPATHS) == {"UPWPU", "UPTPU", "UPLPU"}

    def test_word_path(self, network):
        counts = metapath_count_matrix(network, "UPWPU")
        # user0 uses word 7 once, user1 twice → 1·2 = 2 path instances
        assert counts[0, 1] == 2.0
        assert counts[0, 2] == 0.0

    def test_time_path(self, network):
        counts = metapath_count_matrix(network, "UPTPU")
        assert counts[0, 1] == 1.0  # both posted once at hour 8
        assert counts[1, 2] == 0.0

    def test_location_path(self, network):
        counts = metapath_count_matrix(network, "UPLPU")
        assert counts[0, 1] == 1.0
        assert counts[0, 2] == 0.0

    def test_symmetric_zero_diag(self, network):
        for name in METAPATHS:
            counts = metapath_count_matrix(network, name)
            assert np.array_equal(counts, counts.T)
            assert not counts.diagonal().any()

    def test_unknown_path(self, network):
        with pytest.raises(FeatureError, match="unknown metapath"):
            metapath_count_matrix(network, "UPXPU")

    def test_empty_network(self):
        net = HeterogeneousNetwork()
        net.add_users(2)
        counts = metapath_count_matrix(net, "UPWPU")
        assert counts.shape == (2, 2)
        assert not counts.any()
