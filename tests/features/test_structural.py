"""Tests for repro.features.structural."""

import numpy as np
import pytest

from repro.exceptions import FeatureError
from repro.features.structural import (
    adamic_adar_matrix,
    common_neighbors_matrix,
    jaccard_matrix,
    katz_matrix,
    preferential_attachment_matrix,
    resource_allocation_matrix,
)
from repro.utils.matrices import pairs_to_matrix


@pytest.fixture()
def triangle_plus():
    """Triangle 0-1-2 plus pendant 3 attached to 0."""
    return pairs_to_matrix([(0, 1), (0, 2), (1, 2), (0, 3)], 4)


class TestCommonNeighbors:
    def test_triangle(self, triangle_plus):
        cn = common_neighbors_matrix(triangle_plus)
        assert cn[1, 2] == 1.0  # share node 0
        assert cn[1, 3] == 1.0  # share node 0
        assert cn[2, 3] == 1.0

    def test_zero_diagonal(self, triangle_plus):
        assert not common_neighbors_matrix(triangle_plus).diagonal().any()

    def test_symmetric(self, triangle_plus):
        cn = common_neighbors_matrix(triangle_plus)
        assert np.array_equal(cn, cn.T)

    def test_rejects_rect(self):
        with pytest.raises(FeatureError):
            common_neighbors_matrix(np.zeros((2, 3)))

    def test_empty_graph(self):
        assert not common_neighbors_matrix(np.zeros((4, 4))).any()


class TestJaccard:
    def test_range(self, triangle_plus):
        jc = jaccard_matrix(triangle_plus)
        assert jc.min() >= 0.0 and jc.max() <= 1.0

    def test_value(self, triangle_plus):
        jc = jaccard_matrix(triangle_plus)
        # Γ(1)={0,2}, Γ(3)={0}: intersection 1, union 2 → wait: union is
        # |Γ(1)| + |Γ(3)| − 1 = 2 + 1 − 1 = 2 → 0.5.
        assert jc[1, 3] == pytest.approx(0.5)

    def test_isolated_pair_zero(self):
        jc = jaccard_matrix(np.zeros((3, 3)))
        assert not jc.any()


class TestAdamicAdar:
    def test_low_degree_neighbors_ignored(self):
        # Path 0-1-2: node 1 has degree 2, contributes 1/log(2).
        adjacency = pairs_to_matrix([(0, 1), (1, 2)], 3)
        aa = adamic_adar_matrix(adjacency)
        assert aa[0, 2] == pytest.approx(1.0 / np.log(2.0))

    def test_degree_one_contributes_nothing(self):
        # Star: hub 0 with leaves; leaf pairs share hub of degree 3.
        adjacency = pairs_to_matrix([(0, 1), (0, 2), (0, 3)], 4)
        aa = adamic_adar_matrix(adjacency)
        assert aa[1, 2] == pytest.approx(1.0 / np.log(3.0))


class TestResourceAllocation:
    def test_value(self):
        adjacency = pairs_to_matrix([(0, 1), (1, 2)], 3)
        ra = resource_allocation_matrix(adjacency)
        assert ra[0, 2] == pytest.approx(0.5)

    def test_empty(self):
        assert not resource_allocation_matrix(np.zeros((3, 3))).any()


class TestPreferentialAttachment:
    def test_degree_product(self, triangle_plus):
        pa = preferential_attachment_matrix(triangle_plus)
        # deg(0)=3, deg(1)=2
        assert pa[0, 1] == 6.0
        assert pa[1, 3] == 2.0

    def test_zero_diagonal(self, triangle_plus):
        assert not preferential_attachment_matrix(triangle_plus).diagonal().any()


class TestKatz:
    def test_path_counting(self):
        adjacency = pairs_to_matrix([(0, 1), (1, 2)], 3)
        katz = katz_matrix(adjacency, beta=0.1, max_length=2)
        # One length-2 path 0→1→2 weighted β².
        assert katz[0, 2] == pytest.approx(0.01)
        # Direct link weighted β (plus no length-2 paths between 0 and 1).
        assert katz[0, 1] == pytest.approx(0.1)

    def test_longer_paths_add(self):
        adjacency = pairs_to_matrix([(0, 1), (1, 2), (2, 3)], 4)
        short = katz_matrix(adjacency, beta=0.2, max_length=2)
        long = katz_matrix(adjacency, beta=0.2, max_length=3)
        assert long[0, 3] > short[0, 3]

    def test_invalid_beta(self):
        with pytest.raises(Exception):
            katz_matrix(np.zeros((2, 2)), beta=1.0)

    def test_invalid_length(self):
        with pytest.raises(Exception):
            katz_matrix(np.zeros((2, 2)), beta=0.1, max_length=0)

    def test_symmetric(self, triangle_plus):
        katz = katz_matrix(triangle_plus)
        assert np.allclose(katz, katz.T)
