"""Tests for the spatial / temporal / textual feature modules."""

import numpy as np
import pytest

from repro.features.spatial import (
    checkin_similarity,
    cosine_similarity_matrix,
    user_location_counts,
)
from repro.features.temporal import temporal_similarity, user_hour_histograms
from repro.features.textual import (
    idf_weights,
    user_word_counts,
    word_usage_similarity,
)
from repro.networks.heterogeneous import HeterogeneousNetwork


@pytest.fixture()
def network():
    net = HeterogeneousNetwork("attrs")
    net.add_users(3)
    net.add_location(0)
    net.add_location(1)
    # User 0: two check-ins at venue 0, words {1, 2}, hours 9/10.
    net.add_post(0, 0, word_ids=[1, 2], hour=9, location_id=0)
    net.add_post(1, 0, word_ids=[1], hour=10, location_id=0)
    # User 1: one check-in at venue 0, word {1}, hour 9.
    net.add_post(2, 1, word_ids=[1], hour=9, location_id=0)
    # User 2: venue 1, word {9}, hour 22.
    net.add_post(3, 2, word_ids=[9], hour=22, location_id=1)
    return net


class TestCosine:
    def test_identical_rows(self):
        profiles = np.array([[1.0, 0.0], [2.0, 0.0]])
        sim = cosine_similarity_matrix(profiles)
        assert sim[0, 1] == pytest.approx(1.0)

    def test_orthogonal_rows(self):
        profiles = np.array([[1.0, 0.0], [0.0, 5.0]])
        assert cosine_similarity_matrix(profiles)[0, 1] == 0.0

    def test_zero_rows_give_zero(self):
        profiles = np.array([[0.0, 0.0], [1.0, 1.0]])
        sim = cosine_similarity_matrix(profiles)
        assert sim[0, 1] == 0.0

    def test_zero_diagonal(self):
        sim = cosine_similarity_matrix(np.ones((3, 2)))
        assert not sim.diagonal().any()


class TestSpatial:
    def test_counts(self, network):
        counts = user_location_counts(network)
        assert counts.shape == (3, 2)
        assert counts[0, 0] == 2.0
        assert counts[1, 0] == 1.0
        assert counts[2, 1] == 1.0

    def test_similarity(self, network):
        sim = checkin_similarity(network)
        assert sim[0, 1] == pytest.approx(1.0)  # same single venue
        assert sim[0, 2] == 0.0  # disjoint venues

    def test_no_checkins(self):
        net = HeterogeneousNetwork()
        net.add_users(2)
        net.add_location(0)
        net.add_post(0, 0, hour=3)
        assert not checkin_similarity(net).any()


class TestTemporal:
    def test_histograms(self, network):
        hist = user_hour_histograms(network)
        assert hist.shape == (3, 24)
        assert hist[0, 9] == 1.0 and hist[0, 10] == 1.0
        assert hist[2, 22] == 1.0

    def test_similarity_overlapping_hours(self, network):
        sim = temporal_similarity(network)
        assert sim[0, 1] > 0.5  # both active at hour 9
        assert sim[0, 2] == 0.0  # disjoint hours

    def test_silent_user(self):
        net = HeterogeneousNetwork()
        net.add_users(2)
        net.add_post(0, 0, hour=5)
        sim = temporal_similarity(net)
        assert sim[0, 1] == 0.0


class TestTextual:
    def test_counts(self, network):
        counts = user_word_counts(network)
        # vocabulary used: {1, 2, 9} → 3 columns
        assert counts.shape == (3, 3)
        assert counts[0, 0] == 2.0  # word 1 twice for user 0

    def test_idf_downweights_common(self, network):
        counts = user_word_counts(network)
        weights = idf_weights(counts)
        # word 1 used by two users, word 9 by one → word 9 weight higher
        assert weights[2] > weights[0]

    def test_similarity(self, network):
        sim = word_usage_similarity(network)
        assert sim[0, 1] > 0.0
        assert sim[0, 2] == 0.0

    def test_without_idf(self, network):
        sim = word_usage_similarity(network, use_idf=False)
        assert sim[0, 1] > 0.0

    def test_no_words(self):
        net = HeterogeneousNetwork()
        net.add_users(2)
        net.add_post(0, 0, hour=1)
        assert not word_usage_similarity(net).any()
