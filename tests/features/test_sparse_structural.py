"""Equivalence tests: sparse structural features match the dense ones."""

import numpy as np
import pytest
import scipy.sparse

from repro.exceptions import FeatureError
from repro.features.sparse_structural import (
    adamic_adar_sparse,
    common_neighbors_sparse,
    jaccard_sparse,
    katz_sparse,
    preferential_attachment_sparse,
    resource_allocation_sparse,
    top_k_candidates,
)
from repro.features.structural import (
    adamic_adar_matrix,
    common_neighbors_matrix,
    jaccard_matrix,
    katz_matrix,
    preferential_attachment_matrix,
    resource_allocation_matrix,
)

PAIRS = [
    (common_neighbors_sparse, common_neighbors_matrix),
    (jaccard_sparse, jaccard_matrix),
    (adamic_adar_sparse, adamic_adar_matrix),
    (resource_allocation_sparse, resource_allocation_matrix),
    (preferential_attachment_sparse, preferential_attachment_matrix),
]


@pytest.fixture(params=[0, 1, 2])
def adjacency(request, rng):
    local = np.random.default_rng(request.param)
    n = int(local.integers(5, 40))
    bits = local.random((n, n)) < 0.15
    a = np.triu(bits, 1).astype(float)
    return a + a.T


class TestEquivalence:
    @pytest.mark.parametrize("sparse_fn,dense_fn", PAIRS)
    def test_dense_input(self, sparse_fn, dense_fn, adjacency):
        assert np.allclose(sparse_fn(adjacency), dense_fn(adjacency))

    @pytest.mark.parametrize("sparse_fn,dense_fn", PAIRS)
    def test_csr_input(self, sparse_fn, dense_fn, adjacency):
        csr = scipy.sparse.csr_matrix(adjacency)
        assert np.allclose(sparse_fn(csr), dense_fn(adjacency))

    def test_katz_equivalence(self, adjacency):
        assert np.allclose(
            katz_sparse(adjacency, beta=0.1, max_length=3),
            katz_matrix(adjacency, beta=0.1, max_length=3),
        )

    def test_coo_input_accepted(self, adjacency):
        coo = scipy.sparse.coo_matrix(adjacency)
        assert np.allclose(
            common_neighbors_sparse(coo), common_neighbors_matrix(adjacency)
        )

    def test_rejects_rectangular(self):
        with pytest.raises(FeatureError):
            common_neighbors_sparse(np.zeros((2, 3)))

    def test_katz_invalid_params(self, adjacency):
        with pytest.raises(FeatureError):
            katz_sparse(adjacency, beta=1.5)
        with pytest.raises(FeatureError):
            katz_sparse(adjacency, max_length=0)


class TestTopKCandidates:
    def test_excludes_existing_links(self, adjacency):
        scores = common_neighbors_sparse(adjacency)
        top = top_k_candidates(adjacency, scores, k=10)
        for i, j, _ in top:
            assert adjacency[i, j] == 0.0
            assert i < j

    def test_ordering(self, adjacency):
        scores = common_neighbors_sparse(adjacency)
        top = top_k_candidates(adjacency, scores, k=10)
        values = [v for _, _, v in top]
        assert values == sorted(values, reverse=True)

    def test_matches_full_sort(self, adjacency):
        scores = jaccard_sparse(adjacency)
        top = top_k_candidates(adjacency, scores, k=5)
        n = adjacency.shape[0]
        all_pairs = [
            (i, j, scores[i, j])
            for i in range(n)
            for j in range(i + 1, n)
            if adjacency[i, j] == 0.0
        ]
        expected = sorted(all_pairs, key=lambda t: -t[2])[:5]
        assert [v for _, _, v in top] == pytest.approx(
            [v for _, _, v in expected]
        )

    def test_k_larger_than_candidates(self):
        adjacency = np.zeros((3, 3))
        scores = np.ones((3, 3))
        top = top_k_candidates(adjacency, scores, k=100)
        assert len(top) == 3  # only 3 candidate pairs exist

    def test_invalid_inputs(self, adjacency):
        with pytest.raises(FeatureError):
            top_k_candidates(adjacency, np.zeros((2, 2)), k=3)
        with pytest.raises(FeatureError):
            top_k_candidates(adjacency, adjacency, k=0)
