"""Tests for repro.features.intimacy."""

import numpy as np
import pytest

from repro.exceptions import FeatureError
from repro.features.intimacy import (
    ATTRIBUTE_FEATURES,
    DEFAULT_FEATURES,
    METAPATH_FEATURES,
    STRUCTURAL_FEATURES,
    IntimacyFeatureExtractor,
)
from repro.networks.social import SocialGraph


class TestConfiguration:
    def test_default_features(self):
        extractor = IntimacyFeatureExtractor()
        assert extractor.features == DEFAULT_FEATURES
        assert extractor.n_features == len(DEFAULT_FEATURES)

    def test_feature_families_disjoint(self):
        families = (
            set(STRUCTURAL_FEATURES)
            | set(ATTRIBUTE_FEATURES)
            | set(METAPATH_FEATURES)
        )
        assert len(families) == len(DEFAULT_FEATURES)

    def test_subset_selection(self):
        extractor = IntimacyFeatureExtractor(features=["jaccard", "katz"])
        assert extractor.n_features == 2

    def test_unknown_feature_rejected(self):
        with pytest.raises(FeatureError, match="unknown features"):
            IntimacyFeatureExtractor(features=["nope"])

    def test_empty_features_rejected(self):
        with pytest.raises(FeatureError, match="at least one"):
            IntimacyFeatureExtractor(features=[])


class TestExtraction:
    def test_full_extraction(self, aligned):
        tensor = IntimacyFeatureExtractor().extract(aligned.target)
        assert tensor.n_users == aligned.target.n_users
        assert tensor.feature_names == list(DEFAULT_FEATURES)

    def test_normalized_range(self, aligned):
        tensor = IntimacyFeatureExtractor().extract(aligned.target)
        assert np.abs(tensor.values).max() <= 1.0 + 1e-12

    def test_unnormalized(self, aligned):
        tensor = IntimacyFeatureExtractor(
            features=["common_neighbors"], normalize=False
        ).extract(aligned.target)
        assert tensor.values.max() > 1.0

    def test_training_graph_controls_structural(self, aligned, split):
        extractor = IntimacyFeatureExtractor(features=["common_neighbors"])
        full = extractor.extract(aligned.target)
        masked = extractor.extract(aligned.target, split.training_graph)
        assert not np.array_equal(full.values, masked.values)

    def test_attribute_features_ignore_masking(self, aligned, split):
        extractor = IntimacyFeatureExtractor(
            features=["checkin_similarity"], normalize=False
        )
        full = extractor.extract(aligned.target)
        masked = extractor.extract(aligned.target, split.training_graph)
        assert np.array_equal(full.values, masked.values)

    def test_graph_size_mismatch(self, aligned):
        wrong = SocialGraph(np.zeros((3, 3)))
        with pytest.raises(FeatureError, match="users"):
            IntimacyFeatureExtractor().extract(aligned.target, wrong)

    def test_slices_symmetric(self, aligned):
        tensor = IntimacyFeatureExtractor().extract(aligned.target)
        for k in range(tensor.n_features):
            matrix = tensor.slice(k)
            assert np.allclose(matrix, matrix.T)
            assert not matrix.diagonal().any()

    def test_features_informative(self, aligned, target_graph):
        """Link pairs should score above non-link pairs on average."""
        tensor = IntimacyFeatureExtractor(
            features=["checkin_similarity", "word_similarity"]
        ).extract(aligned.target)
        adjacency = target_graph.adjacency
        combined = tensor.values.sum(axis=0)
        off_diag = ~np.eye(adjacency.shape[0], dtype=bool)
        link_mean = combined[(adjacency == 1.0) & off_diag].mean()
        non_link_mean = combined[(adjacency == 0.0) & off_diag].mean()
        assert link_mean > non_link_mean
