"""Tests for the top-level public API surface."""

import importlib

import pytest

import repro


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_exist(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_flow(self):
        aligned = repro.generate_aligned_pair(scale=40, random_state=7)
        task = repro.TransferTask.from_aligned(aligned, random_state=7)
        model = repro.SlamPred(
            inner_iterations=5, outer_iterations=5
        ).fit(task)
        n = aligned.target.n_users
        assert model.score_matrix.shape == (n, n)

    def test_exception_hierarchy(self):
        for name in (
            "ConfigurationError",
            "NetworkError",
            "AlignmentError",
            "FeatureError",
            "OptimizationError",
            "NotFittedError",
            "EvaluationError",
            "SerializationError",
        ):
            exc = getattr(repro, name)
            assert issubclass(exc, repro.ReproError)

    @pytest.mark.parametrize(
        "module",
        [
            "repro.utils",
            "repro.networks",
            "repro.synth",
            "repro.features",
            "repro.adaptation",
            "repro.optim",
            "repro.observability",
            "repro.models",
            "repro.evaluation",
            "repro.experiments",
            "repro.serving",
        ],
    )
    def test_subpackages_importable(self, module):
        importlib.import_module(module)

    def test_public_items_documented(self):
        """Every public class/function exported at top level has a docstring."""
        for name in repro.__all__:
            if name.startswith("__"):
                continue
            obj = getattr(repro, name)
            if callable(obj):
                assert obj.__doc__, f"{name} lacks a docstring"
