"""The observability style gate must hold for the whole library tree."""

from __future__ import annotations

import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
CHECKER = os.path.join(REPO_ROOT, "tools", "check_style.py")


def test_no_wall_clock_durations_or_bare_prints():
    result = subprocess.run(
        [sys.executable, CHECKER],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert result.returncode == 0, (
        f"style gate failed:\n{result.stdout}{result.stderr}"
    )


def test_checker_catches_violations(tmp_path):
    # The gate itself must not be a silent no-op: point it at a file with
    # both violations and watch it flag each one.
    sys.path.insert(0, os.path.join(REPO_ROOT, "tools"))
    try:
        import check_style
    finally:
        sys.path.pop(0)
    bad = tmp_path / "bad.py"
    bad.write_text(
        "import time\n"
        "start = time.time()\n"
        "stamp = time.time()  # wall-clock: a timestamp\n"
        'print("hello")\n'
        "try:\n"
        "    pass\n"
        "except:\n"
        "    pass\n"
        "try:\n"
        "    pass\n"
        "except Exception:\n"
        "    pass\n"
        "import numpy as np\n"
        "iterate = np.zeros((n, n))\n"
        "oracle = np.zeros((n, n))  # dense-ok: parity oracle\n"
        "ones = np.ones((n_users, n_users))\n"
        "rectangular = np.zeros((n, k))\n"
        "typed = np.full((m, m), 0.5)\n"
    )
    violations = check_style.check_file(str(bad))
    assert len(violations) == 6
    assert any("time.time()" in v and ":2:" in v for v in violations)
    assert any("print()" in v and ":4:" in v for v in violations)
    assert any("bare except" in v and ":7:" in v for v in violations)
    dense = [v for v in violations if "dense square" in v]
    assert len(dense) == 3
    assert any(":14:" in v for v in dense)
    assert any(":16:" in v for v in dense)
    assert any(":18:" in v for v in dense)
    assert not any(":15:" in v or ":17:" in v for v in dense)
