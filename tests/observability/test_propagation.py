"""Trace context propagation: headers, payloads, thread and process pools."""

from __future__ import annotations

from repro.observability.logging import current_request_id, request_context
from repro.observability.metrics import MetricsRegistry
from repro.observability.propagation import (
    RemoteTrace,
    TraceContext,
    activate_runtime_context,
    bind_trace,
    current_trace,
    current_trace_context,
    inject_runtime_context,
    new_span_id,
    new_trace_id,
)
from repro.observability.sampling import SamplingTracer
from repro.perf.parallel import parallel_map, parallel_map_processes


class TestTraceContext:
    def test_header_round_trip(self):
        context = TraceContext(new_trace_id(), new_span_id(), True)
        parsed = TraceContext.from_header(context.to_header())
        assert parsed == context

    def test_header_round_trip_unsampled(self):
        context = TraceContext("00ff", "ab12", False)
        assert context.to_header() == "00ff-ab12-00"
        assert TraceContext.from_header("00ff-ab12-00") == context

    def test_malformed_headers_return_none(self):
        for header in (
            None,
            "",
            "only-two",
            "a-b-02",  # bad flag
            "--00",  # empty ids
            "a-b-",
        ):
            assert TraceContext.from_header(header) is None

    def test_payload_round_trip(self):
        context = TraceContext("cafe", "beef", True)
        assert TraceContext.from_payload(context.to_payload()) == context
        assert TraceContext.from_payload(None) is None
        assert TraceContext.from_payload({}) is None
        assert TraceContext.from_payload({"trace_id": "x"}) is None

    def test_child_keeps_trace_and_verdict(self):
        parent = TraceContext("cafe", "beef", True)
        child = parent.child()
        assert child.trace_id == parent.trace_id
        assert child.sampled == parent.sampled
        assert child.span_id != parent.span_id


class TestCarrierBinding:
    def test_bind_and_unbind(self):
        context = TraceContext("cafe", "beef", True)
        assert current_trace() is None
        with bind_trace(RemoteTrace(context)) as carrier:
            assert current_trace() is carrier
            assert current_trace_context() == context
            assert not carrier.is_recording
        assert current_trace_context() is None

    def test_inject_empty_ambient_returns_none(self):
        assert inject_runtime_context() is None

    def test_inject_and_activate_round_trip(self):
        context = TraceContext("cafe", "beef", True)
        with request_context("req-42"), bind_trace(RemoteTrace(context)):
            payload = inject_runtime_context()
        assert payload["request_id"] == "req-42"
        assert TraceContext.from_payload(payload["trace"]) == context
        assert current_request_id() is None
        with activate_runtime_context(payload):
            assert current_request_id() == "req-42"
            assert current_trace_context() == context
        assert current_request_id() is None
        assert current_trace_context() is None

    def test_activate_none_is_noop(self):
        with activate_runtime_context(None):
            assert current_request_id() is None


def _worker_runtime(_item):
    """Module-level (hence picklable) probe of the rebound context."""
    context = current_trace_context()
    return (
        current_request_id(),
        None if context is None else context.to_header(),
    )


class TestPoolPropagation:
    def test_thread_pool_workers_see_request_context(self):
        context = TraceContext("cafe", "beef", True)
        with request_context("req-7"), bind_trace(RemoteTrace(context)):
            results, _ = parallel_map(
                _worker_runtime, range(4), max_workers=4
            )
        assert results == [("req-7", "cafe-beef-01")] * 4

    def test_process_pool_workers_see_request_context(self):
        context = TraceContext("cafe", "beef", False)
        with request_context("req-9"), bind_trace(RemoteTrace(context)):
            results, _ = parallel_map_processes(
                _worker_runtime, range(3), max_workers=2
            )
        assert results == [("req-9", "cafe-beef-00")] * 3

    def test_sequential_paths_also_propagate(self):
        with request_context("req-1"):
            thread_results, _ = parallel_map(
                _worker_runtime, [0], max_workers=1
            )
            process_results, _ = parallel_map_processes(
                _worker_runtime, [0], max_workers=1
            )
        assert thread_results == [("req-1", None)]
        assert process_results == [("req-1", None)]

    def test_no_ambient_context_is_clean(self):
        results, _ = parallel_map_processes(
            _worker_runtime, range(2), max_workers=2
        )
        assert results == [(None, None)] * 2

    def test_active_trace_context_reaches_thread_workers(self):
        tracer = SamplingTracer(MetricsRegistry(), default_rate=1.0)
        with tracer.trace("topk") as trace:
            results, _ = parallel_map(
                _worker_runtime, [0], max_workers=1
            )
        assert results[0][1] == trace.context.to_header()
