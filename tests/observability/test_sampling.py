"""SamplingTracer: deterministic head sampling, error capture, counters."""

from __future__ import annotations

import threading

import pytest

from repro.observability.metrics import MetricsRegistry, NullRegistry
from repro.observability.propagation import (
    TraceContext,
    current_trace,
    sampling_decision,
)
from repro.observability.sampling import (
    DEFAULT_SAMPLE_RATE,
    ActiveTrace,
    SamplingTracer,
)
from repro.observability.tracer import NullTracer, Tracer


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestSamplingDecision:
    def test_deterministic_per_trace_id(self):
        for trace_id in ("aabbccdd00112233", "ffeeddcc99887766"):
            first = sampling_decision(trace_id, 0.5)
            assert all(
                sampling_decision(trace_id, 0.5) == first
                for _ in range(10)
            )

    def test_rate_one_always_samples(self):
        assert all(
            sampling_decision(f"{i:016x}", 1.0) for i in range(100)
        )

    def test_rate_zero_never_samples(self):
        assert not any(
            sampling_decision(f"{i:016x}", 0.0) for i in range(100)
        )

    def test_rate_roughly_respected(self):
        hits = sum(
            sampling_decision(f"{i:016x}", 0.1) for i in range(5000)
        )
        assert 300 < hits < 700  # 10% ± generous slack


class TestTraceLifecycle:
    def test_sampled_trace_records_span_tree(self, registry):
        tracer = SamplingTracer(registry, default_rate=1.0)
        with tracer.trace("topk") as trace:
            with tracer.span("serve.top_k"):
                with tracer.span("serve.shard[000]"):
                    pass
        assert trace.sampled
        names = [span.name for span in trace.spans()]
        assert names == [
            "request.topk",
            "serve.top_k",
            "serve.shard[000]",
        ]
        assert tracer.finished() == [trace]

    def test_unsampled_clean_trace_is_dropped(self, registry):
        tracer = SamplingTracer(registry, default_rate=0.0)
        with tracer.trace("topk"):
            with tracer.span("serve.top_k"):
                pass
        assert tracer.finished() == []

    def test_error_always_captured_even_at_rate_zero(self, registry):
        tracer = SamplingTracer(registry, default_rate=0.0)
        with pytest.raises(RuntimeError):
            with tracer.trace("topk"):
                with tracer.span("serve.top_k"):
                    raise RuntimeError("shard exploded")
        finished = tracer.finished()
        assert len(finished) == 1
        trace = finished[0]
        assert trace.error and not trace.sampled
        assert "shard exploded" in trace.error_message
        spans = list(trace.spans())
        assert any(
            s.name == "serve.top_k" and s.error for s in spans
        )

    def test_mark_error_promotes_without_exception(self, registry):
        tracer = SamplingTracer(registry, default_rate=0.0)
        with tracer.trace("topk") as trace:
            trace.mark_error("http 503")
        assert tracer.finished() == [trace]
        assert trace.error_message == "http 503"

    def test_trace_binds_and_unbinds_carrier(self, registry):
        tracer = SamplingTracer(registry, default_rate=1.0)
        assert current_trace() is None
        with tracer.trace("topk") as trace:
            assert current_trace() is trace
        assert current_trace() is None

    def test_parent_context_pins_id_and_verdict(self, registry):
        tracer = SamplingTracer(registry, default_rate=0.0)
        parent = TraceContext("cafe" * 4, "beef1234", sampled=True)
        with tracer.trace("topk", parent=parent) as trace:
            pass
        assert trace.context.trace_id == parent.trace_id
        assert trace.sampled  # upstream verdict wins over local rate 0
        assert trace.context.span_id != parent.span_id

    def test_explicit_trace_id_reproduces_decision(self, registry):
        tracer = SamplingTracer(registry, default_rate=0.37)
        trace_id = "0123456789abcdef"
        expected = sampling_decision(trace_id, 0.37)
        with tracer.trace("topk", trace_id=trace_id) as trace:
            pass
        assert trace.sampled == expected

    def test_route_rate_overrides_default(self, registry):
        tracer = SamplingTracer(
            registry, default_rate=0.0, route_rates={"topk": 1.0}
        )
        assert tracer.sample_rate_for("topk") == 1.0
        assert tracer.sample_rate_for("score") == 0.0
        with tracer.trace("topk") as trace:
            pass
        assert trace.sampled

    def test_buffer_is_bounded(self, registry):
        tracer = SamplingTracer(registry, default_rate=1.0, buffer_size=4)
        for _ in range(10):
            with tracer.trace("topk"):
                pass
        assert len(tracer.finished()) == 4

    def test_find_trace_by_id(self, registry):
        tracer = SamplingTracer(registry, default_rate=1.0)
        with tracer.trace("topk") as trace:
            pass
        assert tracer.find_trace(trace.context.trace_id) is trace
        assert tracer.find_trace("not-a-trace") is None


class TestCountersAndDrain:
    def test_counts_surface_through_counters_property(self, registry):
        tracer = SamplingTracer(registry, default_rate=1.0)
        tracer.count("serve.requests")
        tracer.count("serve.requests", 2)
        assert tracer.counters["serve.requests"] == 3
        assert isinstance(tracer.counters["serve.requests"], int)

    def test_trace_counters_drain_into_registry(self, registry):
        tracer = SamplingTracer(registry, default_rate=1.0)
        with tracer.trace("topk"):
            pass
        with pytest.raises(ValueError):
            with tracer.trace("topk"):
                raise ValueError("boom")
        tracer.drain()
        text = registry.render()
        assert "repro_trace_started_total 2" in text
        assert "repro_trace_sampled_total 2" in text
        assert "repro_trace_errors_total 1" in text

    def test_hot_counter_prebinding(self, registry):
        tracer = SamplingTracer(registry, default_rate=1.0)
        cell = tracer.hot_counter("serve.requests")
        assert cell is tracer.hot_counter("serve.requests")
        cell.inc(5)
        assert tracer.counters["serve.requests"] == 5

    def test_shared_cellbank_merges_views(self, registry):
        from repro.observability.cells import CellBank

        cells = CellBank(registry)
        tracer = SamplingTracer(registry, default_rate=1.0, cells=cells)
        assert tracer.cells is cells
        cells.counter("external.count").inc()
        assert tracer.counters["external.count"] == 1


class TestNullPathsSpawnNothing:
    def test_null_tracer_and_registry_create_no_threads(self):
        before = {t.ident for t in threading.enumerate()}
        tracer = NullTracer()
        registry = NullRegistry()
        with tracer.trace("topk") as trace:
            with tracer.span("serve.top_k"):
                tracer.count("serve.requests")
        trace.mark_error("ignored")
        assert registry.render() == ""
        after = {t.ident for t in threading.enumerate()}
        assert after == before

    def test_sampling_tracer_spawns_no_background_threads(self, registry):
        before = {t.ident for t in threading.enumerate()}
        tracer = SamplingTracer(registry, default_rate=1.0)
        with tracer.trace("topk"):
            pass
        tracer.drain()
        after = {t.ident for t in threading.enumerate()}
        assert after == before

    def test_span_outside_trace_is_shared_null(self, registry):
        tracer = SamplingTracer(registry, default_rate=1.0)
        first = tracer.span("serve.not_bridged")
        second = tracer.span("serve.not_bridged")
        assert first is second  # the shared null span, no allocation


class TestBaseTracerCompatibility:
    def test_base_tracer_trace_records_request_span(self, registry):
        tracer = Tracer(registry)
        with tracer.trace("topk") as trace:
            assert not trace.is_recording
            trace.mark_error("no-op")  # inert: must not raise
        assert [s.name for s in tracer.roots] == ["request.topk"]

    def test_base_tracer_hot_handles_feed_counters(self, registry):
        tracer = Tracer(registry)
        tracer.hot_counter("serve.requests").inc(2)
        tracer.hot_histogram("serve.lat").observe(0.5)
        assert tracer.counters["serve.requests"] == 2
