"""Unit tests for the tracer: spans, counters, metrics, null behaviour."""

import numpy as np
import pytest

from repro.observability.records import IterationRecord
from repro.observability.tracer import NullTracer, Tracer, is_tracing


class TestSpans:
    def test_nesting(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner-a"):
                pass
            with tracer.span("inner-b"):
                pass
        assert [s.name for s in tracer.iter_spans()] == [
            "outer",
            "inner-a",
            "inner-b",
        ]
        assert [c.name for c in tracer.roots[0].children] == [
            "inner-a",
            "inner-b",
        ]

    def test_durations_nonnegative_and_enclosing(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                sum(range(1000))
        outer, inner = tracer.roots[0], tracer.roots[0].children[0]
        assert inner.duration >= 0.0
        assert outer.duration >= inner.duration

    def test_siblings_at_root(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [root.name for root in tracer.roots] == ["first", "second"]

    def test_stack_unwinds_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                raise RuntimeError("boom")
        assert tracer._stack == []
        assert tracer.roots[0].duration >= 0.0

    def test_phase_totals_aggregate_by_name(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("prox"):
                pass
        totals = tracer.phase_totals()
        assert totals["prox"]["count"] == 3
        assert totals["prox"]["seconds"] >= 0.0

    def test_span_to_dict(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        payload = tracer.roots[0].to_dict()
        assert payload["name"] == "outer"
        assert payload["children"][0]["name"] == "inner"
        assert "children" not in payload["children"][0]


class TestCountersAndMetrics:
    def test_counters_accumulate(self):
        tracer = Tracer()
        tracer.count("steps")
        tracer.count("steps", 2)
        assert tracer.counters == {"steps": 3}

    def test_metric_streams(self):
        tracer = Tracer()
        tracer.metric("rank", 5)
        tracer.metric("rank", 4)
        assert tracer.metrics["rank"] == [5.0, 4.0]
        assert tracer.last_metric("rank") == 4.0
        assert tracer.last_metric("missing") is None
        assert tracer.last_metric("missing", -1) == -1

    def test_record_iteration_shares_object(self):
        tracer = Tracer()
        record = IterationRecord(
            iteration=0, variable_norm=1.0, update_norm=0.5
        )
        tracer.record_iteration(record)
        assert tracer.iterations[0] is record


class TestNullTracer:
    def test_disabled_flag(self):
        assert is_tracing(Tracer())
        assert not is_tracing(NullTracer())
        assert not is_tracing(None)

    def test_everything_is_a_noop(self):
        tracer = NullTracer()
        with tracer.span("ignored"):
            tracer.count("ignored")
            tracer.metric("ignored", 1.0)
            tracer.record_iteration(
                IterationRecord(iteration=0, variable_norm=0.0, update_norm=0.0)
            )
        assert tracer.roots == []
        assert tracer.counters == {}
        assert tracer.metrics == {}
        assert tracer.iterations == []

    def test_span_object_is_reused(self):
        tracer = NullTracer()
        assert tracer.span("a") is tracer.span("b")


class TestSolverIntegration:
    def test_forward_backward_records_phases(self):
        from repro.optim.convergence import ConvergenceCriterion, IterationHistory
        from repro.optim.forward_backward import ForwardBackwardSolver
        from repro.optim.losses import SquaredFrobeniusLoss
        from repro.optim.proximal import L1Prox, TraceNormProx

        rng = np.random.default_rng(0)
        target = rng.random((8, 8))
        solver = ForwardBackwardSolver(
            step_size=0.1,
            criterion=ConvergenceCriterion(tolerance=1e-8, max_iterations=5),
        )
        tracer = Tracer()
        history = IterationHistory()
        solver.solve(
            np.zeros((8, 8)),
            [SquaredFrobeniusLoss(target)],
            [TraceNormProx(0.1), L1Prox(0.05)],
            history=history,
            tracer=tracer,
        )
        assert tracer.counters["fb.iterations"] == 5
        record = history.records[0]
        assert record.step_size == 0.1
        assert set(record.objective_terms) == {
            "SquaredFrobeniusLoss",
            "TraceNormProx",
            "L1Prox",
        }
        assert "gradient" in record.phase_seconds
        assert "prox:TraceNormProx" in record.phase_seconds
        assert record.svd_rank is not None
        assert record.svd_threshold == pytest.approx(0.1 * 0.1)
        # objective equals the sum of its reported terms
        assert record.objective == pytest.approx(
            sum(record.objective_terms.values())
        )

    def test_untraced_solve_keeps_lean_records(self):
        from repro.optim.convergence import ConvergenceCriterion, IterationHistory
        from repro.optim.forward_backward import ForwardBackwardSolver
        from repro.optim.losses import SquaredFrobeniusLoss
        from repro.optim.proximal import L1Prox

        rng = np.random.default_rng(0)
        target = rng.random((6, 6))
        solver = ForwardBackwardSolver(
            step_size=0.1,
            criterion=ConvergenceCriterion(tolerance=1e-8, max_iterations=3),
        )
        history = IterationHistory()
        solver.solve(
            np.zeros((6, 6)),
            [SquaredFrobeniusLoss(target)],
            [L1Prox(0.05)],
            history=history,
        )
        record = history.records[0]
        assert record.objective is None
        assert record.objective_terms == {}
        assert record.phase_seconds == {}
