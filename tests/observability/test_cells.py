"""Striped metric cells: exactness, bucket index, drain, aggregator."""

from __future__ import annotations

import math
import threading
from bisect import bisect_left

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.observability.cells import (
    CellAggregator,
    CellBank,
    PowerOfTwoBucketIndex,
    StripedCounter,
    StripedHistogram,
)
from repro.observability.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    NullRegistry,
)


class TestPowerOfTwoBucketIndex:
    def test_matches_bisect_on_default_latency_buckets(self):
        index = PowerOfTwoBucketIndex(DEFAULT_LATENCY_BUCKETS)
        for value in (
            0.0,
            -1.0,
            1e-12,
            5e-4,
            1e-3,
            0.0011,
            0.24999,
            0.25,
            0.2500001,
            10.0,
            10.0001,
            1e9,
        ):
            assert index(value) == bisect_left(
                DEFAULT_LATENCY_BUCKETS, value
            ), value

    def test_exact_bounds_land_in_their_own_bucket(self):
        bounds = (0.5, 1.0, 2.0, 8.0)
        index = PowerOfTwoBucketIndex(bounds)
        for i, bound in enumerate(bounds):
            assert index(bound) == i

    def test_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            PowerOfTwoBucketIndex((1.0, 1.0, 2.0))

    def test_non_positive_bounds_fall_back_to_bisect(self):
        bounds = (-1.0, 0.0, 1.0, 2.0)
        index = PowerOfTwoBucketIndex(bounds)
        for value in (-2.0, -1.0, -0.5, 0.0, 0.5, 1.5, 3.0):
            assert index(value) == bisect_left(bounds, value)

    @given(
        st.lists(
            st.floats(
                min_value=1e-9,
                max_value=1e9,
                allow_nan=False,
                allow_infinity=False,
            ),
            min_size=1,
            max_size=12,
            unique=True,
        ),
        st.lists(
            st.floats(
                min_value=0.0,
                max_value=1e10,
                allow_nan=False,
                allow_infinity=False,
            ),
            min_size=1,
            max_size=50,
        ),
    )
    @settings(max_examples=200, deadline=None)
    def test_property_equals_bisect_left(self, bounds, values):
        bounds = sorted(bounds)
        index = PowerOfTwoBucketIndex(bounds)
        for value in values:
            assert index(value) == bisect_left(bounds, value)


class TestStripedCounter:
    def test_single_thread_total(self):
        counter = StripedCounter("demo")
        counter.inc()
        counter.inc(2.5)
        assert counter.total() == 3.5

    def test_empty_total_is_float_zero(self):
        total = StripedCounter("demo").total()
        assert total == 0.0
        assert isinstance(total, float)

    def test_hammered_across_threads_is_exact_at_quiescence(self):
        counter = StripedCounter("demo")
        n_threads, per_thread = 8, 10_000

        def hammer():
            for _ in range(per_thread):
                counter.inc()

        threads = [
            threading.Thread(target=hammer) for _ in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.total() == n_threads * per_thread


class TestStripedHistogram:
    def test_merged_state_matches_observations(self):
        hist = StripedHistogram("demo", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 100.0):
            hist.observe(value)
        counts, total, count, window = hist.merged_state()
        assert counts == [1, 1, 1]  # 100.0 overflows past the last bound
        assert count == 4
        assert total == pytest.approx(105.0)
        assert sorted(window) == [0.5, 1.5, 3.0, 100.0]

    def test_snapshot_quantiles(self):
        hist = StripedHistogram("demo")
        for value in range(1, 101):
            hist.observe(float(value))
        snap = hist.snapshot()
        assert snap["count"] == 100
        assert snap["p50"] == pytest.approx(50.0, abs=1.0)
        assert snap["p99"] == pytest.approx(99.0, abs=1.0)

    def test_threads_record_into_independent_cells(self):
        hist = StripedHistogram("demo", buckets=(10.0,))
        barrier = threading.Barrier(4)

        def record():
            barrier.wait()
            for _ in range(1000):
                hist.observe(1.0)

        threads = [threading.Thread(target=record) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        counts, total, count, _ = hist.merged_state()
        assert counts == [4000]
        assert count == 4000
        assert total == pytest.approx(4000.0)


class TestCellBank:
    def test_counter_is_created_once(self):
        bank = CellBank()
        assert bank.counter("a") is bank.counter("a")

    def test_drain_overwrites_registry_series(self):
        registry = MetricsRegistry()
        bank = CellBank(registry)
        cell = bank.counter("hot.hits", registry_name="serving.hot_hits")
        cell.inc(7)
        bank.drain()
        assert "repro_serving_hot_hits_total 7" in registry.render()

    def test_drain_is_idempotent(self):
        registry = MetricsRegistry()
        bank = CellBank(registry)
        bank.counter("hot.hits", registry_name="serving.hot_hits").inc(3)
        bank.drain()
        bank.drain()
        bank.drain()
        assert "repro_serving_hot_hits_total 3" in registry.render()

    def test_drain_histogram_state(self):
        registry = MetricsRegistry()
        bank = CellBank(registry)
        hist = bank.histogram(
            "hot.lat",
            buckets=(1.0, 5.0),
            registry_name="serving.hot_latency",
        )
        for value in (0.5, 0.7, 3.0, 10.0):
            hist.observe(value)
        bank.drain()
        snap = registry.histogram(
            "serving.hot_latency", buckets=(1.0, 5.0)
        ).snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(14.2)

    def test_drain_without_registry_is_noop(self):
        bank = CellBank(None)
        bank.counter("hot.hits", registry_name="x").inc()
        bank.drain()  # must not raise

    def test_drain_against_null_registry_is_noop(self):
        null = NullRegistry()
        bank = CellBank(null)
        bank.counter("hot.hits", registry_name="x").inc()
        bank.drain()
        assert null.render() == ""

    def test_unlinked_counter_never_reaches_registry(self):
        registry = MetricsRegistry()
        bank = CellBank(registry)
        bank.counter("internal.only").inc(5)
        bank.drain()
        assert "internal" not in registry.render()
        assert bank.counter_totals() == {"internal.only": 5.0}

    def test_sources_run_on_drain(self):
        registry = MetricsRegistry()
        bank = CellBank(registry)
        seen = []
        bank.add_source(seen.append)
        bank.drain()
        assert seen == [registry]


class TestCellAggregator:
    def test_background_drain_reaches_registry(self):
        registry = MetricsRegistry()
        bank = CellBank(registry)
        bank.counter("hot.hits", registry_name="serving.hot_hits").inc(2)
        done = threading.Event()
        original = bank.drain

        def drain_and_signal():
            original()
            done.set()

        bank.drain = drain_and_signal
        with CellAggregator(bank, interval_s=0.01):
            assert done.wait(timeout=5.0)
        assert "repro_serving_hot_hits_total 2" in registry.render()

    def test_stop_performs_final_drain(self):
        registry = MetricsRegistry()
        bank = CellBank(registry)
        aggregator = CellAggregator(bank, interval_s=60.0).start()
        bank.counter("hot.hits", registry_name="serving.hot_hits").inc(9)
        aggregator.stop()
        assert "repro_serving_hot_hits_total 9" in registry.render()
        assert not aggregator.running

    def test_rejects_non_positive_interval(self):
        with pytest.raises(ValueError, match="interval_s"):
            CellAggregator(CellBank(), interval_s=0.0)


class TestInterleavedDrainProperty:
    """Satellite 4: striped cells drained mid-flight merge exactly."""

    @given(
        st.lists(
            st.lists(
                st.floats(
                    min_value=1e-6,
                    max_value=1e4,
                    allow_nan=False,
                    allow_infinity=False,
                ),
                min_size=0,
                max_size=40,
            ),
            min_size=1,
            max_size=6,
        ),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=30, deadline=None)
    def test_any_drain_interleaving_equals_single_threaded(
        self, per_thread_values, rng
    ):
        buckets = (0.001, 0.1, 1.0, 100.0)
        registry = MetricsRegistry()
        bank = CellBank(registry)
        hist = bank.histogram(
            "hot.lat", buckets=buckets, registry_name="prop.latency"
        )
        counter = bank.counter("hot.n", registry_name="prop.count")

        def record(values):
            for value in values:
                hist.observe(value)
                counter.inc()

        threads = [
            threading.Thread(target=record, args=(values,))
            for values in per_thread_values
        ]
        for t in threads:
            t.start()
        # Interleave drains with thread completion in a seeded-random
        # order: overwrite-to-match must make every schedule converge.
        for t in rng.sample(threads, len(threads)):
            if rng.random() < 0.5:
                bank.drain()
            t.join()
            bank.drain()
        bank.drain()

        # Single-threaded reference over the same multiset of values.
        reference = MetricsRegistry()
        ref_hist = reference.histogram("prop.latency", buckets=buckets)
        all_values = [v for values in per_thread_values for v in values]
        for value in all_values:
            ref_hist.observe(value)

        drained = registry.histogram(
            "prop.latency", buckets=buckets
        ).snapshot()
        expected = ref_hist.snapshot()
        assert drained["count"] == expected["count"]
        assert drained["sum"] == pytest.approx(expected["sum"])
        total = registry.counter("prop.count").value
        assert total == len(all_values)
        # Bucket vectors are exact (integers; no float accumulation).
        counts, _, _, window = hist.merged_state()
        expected_counts = [0] * len(buckets)
        for value in all_values:
            index = bisect_left(buckets, value)
            if index < len(buckets):
                expected_counts[index] += 1
        assert counts == expected_counts
        # Quantiles are exact whenever the window kept every sample:
        # same multiset in both windows, and quantile() sorts first.
        if len(all_values) and len(window) == len(all_values):
            for q in ("p50", "p95", "p99"):
                if not math.isnan(expected[q]):
                    assert drained[q] == expected[q]
