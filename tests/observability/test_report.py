"""Unit tests for run reports: schema, persistence, summary rendering."""

import json

import numpy as np
import pytest

from repro.observability.records import IterationRecord
from repro.observability.report import (
    SCHEMA_VERSION,
    RunReport,
    build_run_report,
    default_report_path,
)
from repro.observability.tracer import Tracer


@pytest.fixture()
def traced_run():
    tracer = Tracer()
    with tracer.span("cccp"):
        with tracer.span("gradient"):
            pass
        with tracer.span("prox:TraceNormProx"):
            tracer.metric("svt.retained_rank", 7)
    tracer.count("fb.iterations", 3)
    record = IterationRecord(
        iteration=0,
        variable_norm=10.0,
        update_norm=1.0,
        objective=5.5,
        objective_terms={"loss": 5.0, "l1": 0.5},
        svd_rank=7,
        phase_seconds={"gradient": 0.001},
    )
    tracer.record_iteration(record)
    return tracer


class TestBuildAndSchema:
    def test_schema_version_stamped(self, traced_run):
        report = build_run_report(traced_run, name="unit")
        assert report.schema_version == SCHEMA_VERSION
        assert report.to_dict()["schema_version"] == SCHEMA_VERSION

    def test_collects_all_channels(self, traced_run):
        report = build_run_report(traced_run, name="unit", meta={"k": 1})
        assert report.meta == {"k": 1}
        assert report.spans[0]["name"] == "cccp"
        assert report.counters == {"fb.iterations": 3}
        assert report.metrics["svt.retained_rank"] == [7.0]
        assert report.iterations[0]["objective_terms"] == {
            "loss": 5.0,
            "l1": 0.5,
        }
        assert report.phase_totals["prox:TraceNormProx"]["count"] == 1

    def test_snapshot_is_decoupled(self, traced_run):
        report = build_run_report(traced_run, name="unit")
        traced_run.count("fb.iterations")
        traced_run.metric("svt.retained_rank", 6)
        assert report.counters == {"fb.iterations": 3}
        assert report.metrics["svt.retained_rank"] == [7.0]


class TestPersistence:
    def test_save_load_roundtrip(self, traced_run, tmp_path):
        report = build_run_report(traced_run, name="unit", meta={"seed": 17})
        path = report.save(str(tmp_path / "nested" / "report.json"))
        loaded = RunReport.load(path)
        assert loaded.to_dict() == report.to_dict()

    def test_saved_json_is_plain(self, traced_run, tmp_path):
        path = build_run_report(traced_run, name="unit").save(
            str(tmp_path / "report.json")
        )
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["name"] == "unit"
        assert isinstance(payload["iterations"][0]["variable_norm"], float)

    def test_load_rejects_unknown_schema(self, traced_run, tmp_path):
        path = str(tmp_path / "report.json")
        payload = build_run_report(traced_run, name="unit").to_dict()
        payload["schema_version"] = SCHEMA_VERSION + 1
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        with pytest.raises(ValueError, match="schema_version"):
            RunReport.load(path)

    def test_default_report_path(self):
        assert default_report_path("figure3").endswith(
            "results/run_report.figure3.json"
        )


class TestSummary:
    def test_summary_mentions_phases_and_rank(self, traced_run):
        text = build_run_report(traced_run, name="unit").summary()
        assert "unit" in text
        assert "prox:TraceNormProx" in text
        assert "retained SVD rank" in text
        assert "final objective" in text
        assert "fb.iterations: 3" in text

    def test_summary_on_empty_tracer(self):
        text = build_run_report(Tracer(), name="empty").summary()
        assert "empty" in text


class TestModelRunReport:
    def test_requires_live_tracer(self, aligned, split):
        from repro.exceptions import ConfigurationError
        from repro.models.base import TransferTask
        from repro.models.slampred import SlamPredH

        task = TransferTask(
            target=aligned.target,
            training_graph=split.training_graph,
            sources=list(aligned.sources),
            anchors=list(aligned.anchors),
            random_state=np.random.default_rng(5),
        )
        model = SlamPredH(inner_iterations=3, outer_iterations=2)
        model.fit(task)
        with pytest.raises(ConfigurationError, match="live tracer"):
            model.run_report()

    def test_requires_fit(self):
        from repro.exceptions import NotFittedError
        from repro.models.slampred import SlamPredH

        with pytest.raises(NotFittedError):
            SlamPredH(tracer=Tracer()).run_report()

    def test_full_report_from_model(self, aligned, split):
        from repro.models.base import TransferTask
        from repro.models.slampred import SlamPredH

        task = TransferTask(
            target=aligned.target,
            training_graph=split.training_graph,
            sources=list(aligned.sources),
            anchors=list(aligned.anchors),
            random_state=np.random.default_rng(5),
        )
        tracer = Tracer()
        model = SlamPredH(
            inner_iterations=3, outer_iterations=2, tracer=tracer
        )
        model.fit(task)
        report = model.run_report(meta={"fold": 0})
        assert report.meta["model"] == "SLAMPRED-H"
        assert report.meta["fold"] == 0
        assert report.meta["n_rounds"] == model.result.n_rounds
        assert len(report.iterations) == model.result.history.n_iterations
        first = report.iterations[0]
        assert "objective_terms" in first
        assert "phase_seconds" in first
        assert "svd_rank" in first
