"""Structured logging: JSON records, context ids, idempotent configure."""

from __future__ import annotations

import io
import json
import logging

import pytest

from repro.observability.logging import (
    JsonFormatter,
    configure_logging,
    current_request_id,
    current_run_id,
    get_logger,
    new_request_id,
    request_context,
    run_context,
)


@pytest.fixture()
def captured():
    """A (stream, handler) pair capturing JSON records at DEBUG."""
    stream = io.StringIO()
    handler = configure_logging(logging.DEBUG, stream=stream, force=True)
    yield stream
    logging.getLogger("repro").removeHandler(handler)


def _records(stream):
    return [
        json.loads(line)
        for line in stream.getvalue().splitlines()
        if line.strip()
    ]


class TestStructuredLogger:
    def test_emits_one_json_object_per_line(self, captured):
        log = get_logger("repro.tests")
        log.info("first", route="topk")
        log.warning("second")
        records = _records(captured)
        assert [r["message"] for r in records] == ["first", "second"]
        assert records[0]["route"] == "topk"
        assert records[0]["level"] == "INFO"
        assert records[1]["level"] == "WARNING"
        assert records[0]["logger"] == "repro.tests"

    def test_timestamp_is_iso8601_utc(self, captured):
        get_logger("repro.tests").info("tick")
        ts = _records(captured)[0]["ts"]
        assert ts.endswith("+00:00") and "T" in ts

    def test_relative_name_lands_under_repro(self, captured):
        get_logger("serving.http").debug("hello")
        assert _records(captured)[0]["logger"] == "repro.serving.http"

    def test_fields_cannot_shadow_core_keys(self, captured):
        get_logger("repro.tests").info("msg", level="X", logger="fake")
        record = _records(captured)[0]
        assert record["level"] == "INFO"
        assert record["logger"] == "repro.tests"

    def test_non_json_fields_stringified(self, captured):
        get_logger("repro.tests").info("msg", obj=object(), seq=(1, 2))
        record = _records(captured)[0]
        assert isinstance(record["obj"], str)
        assert record["seq"] == [1, 2]

    def test_exception_includes_traceback(self, captured):
        log = get_logger("repro.tests")
        try:
            raise RuntimeError("boom")
        except RuntimeError:
            log.exception("failed", step="load")
        record = _records(captured)[0]
        assert "RuntimeError: boom" in record["exception"]
        assert record["step"] == "load"

    def test_disabled_level_emits_nothing(self, captured):
        handler = logging.getLogger("repro").handlers[-1]
        handler.setLevel(logging.WARNING)
        logging.getLogger("repro").setLevel(logging.WARNING)
        log = get_logger("repro.tests")
        assert not log.isEnabledFor(logging.DEBUG)
        log.debug("invisible")
        assert _records(captured) == []


class TestContextPropagation:
    def test_request_context_binds_and_restores(self):
        assert current_request_id() is None
        with request_context("req-42") as rid:
            assert rid == "req-42"
            assert current_request_id() == "req-42"
            with request_context() as inner:
                assert current_request_id() == inner != "req-42"
            assert current_request_id() == "req-42"
        assert current_request_id() is None

    def test_run_context_independent_of_request_context(self):
        with run_context("run-1"):
            with request_context("req-1"):
                assert current_run_id() == "run-1"
                assert current_request_id() == "req-1"
            assert current_request_id() is None
            assert current_run_id() == "run-1"

    def test_ids_attached_to_records(self, captured):
        log = get_logger("repro.tests")
        with run_context("run-7"):
            with request_context("req-9"):
                log.info("inside")
        log.info("outside")
        inside, outside = _records(captured)
        assert inside["request_id"] == "req-9"
        assert inside["run_id"] == "run-7"
        assert "request_id" not in outside
        assert "run_id" not in outside

    def test_new_request_id_short_and_unique(self):
        ids = {new_request_id() for _ in range(100)}
        assert len(ids) == 100
        assert all(len(rid) == 12 for rid in ids)


class TestConfigureLogging:
    def test_idempotent_reuses_handler(self):
        stream = io.StringIO()
        first = configure_logging(logging.INFO, stream=stream, force=True)
        second = configure_logging(logging.DEBUG)
        try:
            assert first is second
            assert first.level == logging.DEBUG
        finally:
            logging.getLogger("repro").removeHandler(first)

    def test_force_replaces_handler(self):
        first = configure_logging(
            logging.INFO, stream=io.StringIO(), force=True
        )
        second = configure_logging(
            logging.INFO, stream=io.StringIO(), force=True
        )
        try:
            assert first is not second
            root = logging.getLogger("repro")
            json_handlers = [
                h for h in root.handlers
                if isinstance(h.formatter, JsonFormatter)
            ]
            assert json_handlers == [second]
        finally:
            logging.getLogger("repro").removeHandler(second)

    def test_string_level_accepted(self):
        handler = configure_logging(
            "warning", stream=io.StringIO(), force=True
        )
        try:
            assert handler.level == logging.WARNING
        finally:
            logging.getLogger("repro").removeHandler(handler)

    def test_unknown_string_level_raises(self):
        with pytest.raises(ValueError, match="unknown log level"):
            configure_logging("loud")

    def test_unconfigured_library_stays_silent(self):
        # Importing repro must never print: the hierarchy root carries a
        # NullHandler, so records are swallowed, not dumped to stderr.
        root = logging.getLogger("repro")
        assert any(
            isinstance(h, logging.NullHandler) for h in root.handlers
        )
