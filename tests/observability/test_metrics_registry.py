"""MetricsRegistry: kinds, labels, exposition format, null path, threads."""

from __future__ import annotations

import math
import threading

import pytest

from repro.observability.metrics import (
    BATCH_SIZE_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    NullRegistry,
    NULL_REGISTRY,
    prometheus_name,
)


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_starts_at_zero_and_accumulates(self, registry):
        counter = registry.counter("demo.requests")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative_increment(self, registry):
        counter = registry.counter("demo.requests")
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)
        assert counter.value == 0.0

    def test_labeled_children_are_independent(self, registry):
        family = registry.counter("demo.hits", labels=("route",))
        family.labels(route="topk").inc(3)
        family.labels(route="score").inc()
        assert family.labels(route="topk").value == 3
        assert family.labels(route="score").value == 1

    def test_wrong_label_names_raise(self, registry):
        family = registry.counter("demo.hits", labels=("route",))
        with pytest.raises(ValueError, match="takes labels"):
            family.labels(verb="GET")

    def test_unlabeled_op_on_labeled_family_raises(self, registry):
        family = registry.counter("demo.hits", labels=("route",))
        with pytest.raises(ValueError, match="declares labels"):
            family.inc()


class TestGauge:
    def test_set_inc_dec(self, registry):
        gauge = registry.gauge("demo.level")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value == 7.0


class TestHistogram:
    def test_observe_updates_count_sum_quantiles(self, registry):
        hist = registry.histogram("demo.latency_seconds")
        for ms in (1, 2, 3, 4, 100):
            hist.observe(ms / 1e3)
        snap = hist.snapshot()
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(0.110)
        assert snap["p50"] == pytest.approx(0.003)
        assert snap["p99"] == pytest.approx(0.100)

    def test_quantile_of_empty_histogram_is_nan(self, registry):
        hist = registry.histogram("demo.latency_seconds")
        assert math.isnan(hist.quantile(0.5))

    def test_quantile_out_of_range_raises(self, registry):
        hist = registry.histogram("demo.latency_seconds")
        with pytest.raises(ValueError, match="quantile"):
            hist.quantile(1.5)

    def test_timer_context_manager_observes(self, registry):
        hist = registry.histogram("demo.latency_seconds")
        with hist.time():
            pass
        assert hist.snapshot()["count"] == 1

    def test_unsorted_buckets_rejected(self, registry):
        with pytest.raises(ValueError, match="strictly increasing"):
            registry.histogram("demo.bad", buckets=(1.0, 0.5))

    def test_custom_buckets_respected(self, registry):
        hist = registry.histogram("demo.sizes", buckets=BATCH_SIZE_BUCKETS)
        hist.observe(3)
        text = registry.render()
        assert 'demo_sizes_bucket{le="2"} 0' in text
        assert 'demo_sizes_bucket{le="4"} 1' in text


class TestRegistryDeclaration:
    def test_redeclaration_returns_same_family(self, registry):
        first = registry.counter("demo.requests")
        first.inc()
        second = registry.counter("demo.requests")
        second.inc()
        assert second.value == 2

    def test_kind_conflict_raises(self, registry):
        registry.counter("demo.requests")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("demo.requests")

    def test_label_conflict_raises(self, registry):
        registry.counter("demo.requests", labels=("route",))
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("demo.requests", labels=("method",))

    def test_families_and_get(self, registry):
        registry.counter("b.two")
        registry.gauge("a.one")
        assert registry.families() == ["a.one", "b.two"]
        assert registry.get("a.one") is not None
        assert registry.get("absent") is None


class TestPrometheusRendering:
    def test_counter_gets_total_suffix_and_help_type(self, registry):
        registry.counter("demo.requests", help="requests served").inc(4)
        text = registry.render()
        assert "# HELP repro_demo_requests_total requests served" in text
        assert "# TYPE repro_demo_requests_total counter" in text
        assert "repro_demo_requests_total 4" in text

    def test_gauge_renders_plain(self, registry):
        registry.gauge("demo.uptime_seconds").set(1.5)
        assert "repro_demo_uptime_seconds 1.5" in registry.render()

    def test_histogram_renders_cumulative_buckets_inf_sum_count(
        self, registry
    ):
        hist = registry.histogram("demo.lat", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(100.0)  # beyond every finite bucket
        text = registry.render()
        assert 'repro_demo_lat_bucket{le="0.1"} 1' in text
        assert 'repro_demo_lat_bucket{le="1"} 2' in text
        assert 'repro_demo_lat_bucket{le="+Inf"} 3' in text
        assert "repro_demo_lat_sum 100.55" in text
        assert "repro_demo_lat_count 3" in text

    def test_label_values_escaped(self, registry):
        family = registry.counter("demo.odd", labels=("path",))
        family.labels(path='a"b\nc\\d').inc()
        assert r'path="a\"b\nc\\d"' in registry.render()

    def test_render_ends_with_newline_and_sorted(self, registry):
        registry.counter("z.last").inc()
        registry.counter("a.first").inc()
        text = registry.render()
        assert text.endswith("\n")
        assert text.index("repro_a_first") < text.index("repro_z_last")

    def test_empty_registry_renders_empty(self, registry):
        assert registry.render() == ""

    def test_prometheus_name_sanitizes(self):
        assert prometheus_name("serving.http.request-latency") == (
            "serving_http_request_latency"
        )
        assert prometheus_name("9lives").startswith("_")


class TestNullRegistry:
    def test_disabled_and_renders_empty(self):
        null = NullRegistry()
        assert null.enabled is False
        assert null.render() == ""

    def test_all_operations_are_noops(self):
        null = NullRegistry()
        null.counter("x").inc(5)
        null.gauge("y", labels=("a",)).labels(a="1").set(2)
        hist = null.histogram("z")
        hist.observe(1.0)
        with hist.time():
            pass
        assert null.counter("x").value == 0.0
        assert math.isnan(hist.quantile(0.5))
        assert hist.snapshot()["count"] == 0
        assert null.render() == ""

    def test_shared_singleton_child(self):
        # Zero-allocation contract: every declaration returns the one
        # shared null metric, so the disabled hot path allocates nothing.
        assert NULL_REGISTRY.counter("a") is NULL_REGISTRY.histogram("b")


class TestConcurrency:
    """Hammer the registry from many threads; no update may be lost."""

    N_THREADS = 16
    PER_THREAD = 2000

    def _hammer(self, fn):
        barrier = threading.Barrier(self.N_THREADS)

        def worker():
            barrier.wait()
            for _ in range(self.PER_THREAD):
                fn()

        threads = [
            threading.Thread(target=worker) for _ in range(self.N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    def test_counter_increments_not_lost(self, registry):
        counter = registry.counter("demo.hammered")
        self._hammer(counter.inc)
        assert counter.value == self.N_THREADS * self.PER_THREAD

    def test_labeled_counter_increments_not_lost(self, registry):
        family = registry.counter("demo.routes", labels=("route",))
        self._hammer(lambda: family.labels(route="topk").inc())
        assert family.labels(route="topk").value == (
            self.N_THREADS * self.PER_THREAD
        )

    def test_histogram_observations_not_lost(self, registry):
        hist = registry.histogram("demo.lat")
        self._hammer(lambda: hist.observe(0.001))
        snap = hist.snapshot()
        assert snap["count"] == self.N_THREADS * self.PER_THREAD
        assert snap["sum"] == pytest.approx(snap["count"] * 0.001)

    def test_concurrent_declaration_single_family(self, registry):
        def declare():
            registry.counter("demo.declared").inc()

        self._hammer(declare)
        assert registry.get("demo.declared").value == (
            self.N_THREADS * self.PER_THREAD
        )
        assert registry.families().count("demo.declared") == 1

    def test_render_while_writing_does_not_crash(self, registry):
        hist = registry.histogram("demo.lat", labels=("route",))
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                hist.labels(route="topk").observe(0.001)

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            for _ in range(50):
                text = registry.render()
                assert "# TYPE repro_demo_lat histogram" in text
        finally:
            stop.set()
            thread.join()


def test_default_latency_buckets_sorted_and_subsecond_resolution():
    assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)
    assert DEFAULT_LATENCY_BUCKETS[0] <= 0.001  # resolves cache hits
    assert DEFAULT_LATENCY_BUCKETS[-1] >= 5.0  # resolves cold solver calls


class TestExpositionEscaping:
    """Prometheus text-format escaping survives adversarial strings."""

    NASTY = [
        'plain',
        'with "quotes"',
        "newline\nin the middle",
        "backslash\\tail",
        'all \\ of "them"\ntogether',
        '\\n literal-backslash-n',
        'trailing backslash \\',
    ]

    @staticmethod
    def _unescape_label(value):
        out, i = [], 0
        while i < len(value):
            ch = value[i]
            if ch == "\\" and i + 1 < len(value):
                nxt = value[i + 1]
                if nxt == "n":
                    out.append("\n")
                    i += 2
                    continue
                if nxt in ("\\", '"'):
                    out.append(nxt)
                    i += 2
                    continue
            out.append(ch)
            i += 1
        return "".join(out)

    def test_nasty_label_values_round_trip(self, registry):
        family = registry.counter("demo.nasty", labels=("value",))
        for nasty in self.NASTY:
            family.labels(value=nasty).inc()
        text = registry.render()
        seen = []
        for line in text.splitlines():
            if not line.startswith("repro_demo_nasty_total{"):
                continue
            assert line.count("\n") == 0  # escaping kept it one line
            start = line.index('value="') + len('value="')
            end = line.rindex('"')
            seen.append(self._unescape_label(line[start:end]))
        assert sorted(seen) == sorted(self.NASTY)

    def test_help_text_escapes_newline_and_backslash(self, registry):
        registry.counter(
            "demo.helpful",
            help='first line\nsecond line with \\ and "quotes"',
        ).inc()
        text = registry.render()
        help_lines = [
            line
            for line in text.splitlines()
            if line.startswith("# HELP repro_demo_helpful")
        ]
        assert help_lines == [
            '# HELP repro_demo_helpful_total first line\\nsecond '
            'line with \\\\ and "quotes"'
        ]

    def test_escaped_render_stays_line_structured(self, registry):
        family = registry.counter(
            "demo.structured",
            labels=("tag",),
            help="multi\nline help",
        )
        family.labels(tag="a\nb").inc()
        for line in registry.render().splitlines():
            assert line.startswith(("#", "repro_"))
