"""Continuous self-profiler: label attribution, lifecycle, HTTP export."""

from __future__ import annotations

import threading
import time

import pytest

import repro.observability.profiler as profiler_mod
from repro.observability.metrics import MetricsRegistry
from repro.observability.profiler import (
    ContinuousProfiler,
    current_label,
    global_profiler,
    pop_label,
    push_label,
)
from repro.observability.tracer import Tracer


class TestLabelStacks:
    def test_push_pop_current(self):
        ident = threading.get_ident()
        assert current_label(ident) is None
        push_label("outer")
        push_label("inner")
        assert current_label(ident) == "inner"
        pop_label()
        assert current_label(ident) == "outer"
        pop_label()
        assert current_label(ident) is None

    def test_pop_on_empty_stack_is_tolerated(self):
        pop_label()
        assert current_label(threading.get_ident()) is None


class TestLifecycle:
    def test_no_thread_and_no_tracking_until_started(self):
        before = {t.ident for t in threading.enumerate()}
        profiler = ContinuousProfiler()
        assert not profiler.running
        assert not profiler_mod.TRACKING
        assert {t.ident for t in threading.enumerate()} == before

    def test_start_stop_toggles_tracking(self):
        profiler = ContinuousProfiler(interval_s=0.005)
        try:
            profiler.start()
            assert profiler.running
            assert profiler_mod.TRACKING
        finally:
            profiler.stop()
        assert not profiler.running
        assert not profiler_mod.TRACKING

    def test_nested_profilers_refcount_tracking(self):
        first = ContinuousProfiler(interval_s=1.0)
        second = ContinuousProfiler(interval_s=1.0)
        try:
            first.start()
            second.start()
            first.stop()
            assert profiler_mod.TRACKING  # second still running
        finally:
            second.stop()
            first.stop()
        assert not profiler_mod.TRACKING

    def test_rejects_non_positive_interval(self):
        with pytest.raises(ValueError, match="interval_s"):
            ContinuousProfiler(interval_s=0.0)

    def test_global_profiler_is_shared_and_unstarted(self):
        assert global_profiler() is global_profiler()
        assert not global_profiler().running


class TestAttribution:
    def test_samples_attributed_to_busy_span_label(self):
        profiler = ContinuousProfiler(interval_s=0.002)
        tracer = Tracer(MetricsRegistry())
        stop = threading.Event()

        def busy():
            with tracer.span("solver.hot_loop"):
                while not stop.is_set():
                    sum(range(500))

        worker = threading.Thread(target=busy)
        with profiler:
            worker.start()
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                snap = profiler.snapshot()
                if any(
                    e["label"] == "solver.hot_loop"
                    for e in snap["entries"]
                ):
                    break
                time.sleep(0.01)
            stop.set()
            worker.join()
        snap = profiler.snapshot()
        labels = {entry["label"] for entry in snap["entries"]}
        assert "solver.hot_loop" in labels
        assert snap["total_samples"] > 0
        top = snap["entries"][0]
        assert 0.0 < top["share"] <= 1.0

    def test_unlabeled_threads_dropped_by_default(self):
        profiler = ContinuousProfiler()
        recorded = profiler.sample_once()
        snap = profiler.snapshot()
        assert all(
            entry["label"] != "<unlabeled>" for entry in snap["entries"]
        )
        assert recorded == 0 or snap["total_samples"] == recorded

    def test_include_unlabeled_keeps_other_threads(self):
        profiler = ContinuousProfiler(include_unlabeled=True)
        stop = threading.Event()
        worker = threading.Thread(target=stop.wait)
        worker.start()
        try:
            recorded = profiler.sample_once()
            assert recorded > 0
            labels = {
                entry["label"]
                for entry in profiler.snapshot()["entries"]
            }
            assert "<unlabeled>" in labels
        finally:
            stop.set()
            worker.join()

    def test_overflow_folds_into_other_bucket(self):
        profiler = ContinuousProfiler(
            include_unlabeled=True, max_entries=1
        )
        stop = threading.Event()
        workers = [
            threading.Thread(target=stop.wait) for _ in range(3)
        ]
        for w in workers:
            w.start()
        try:
            for _ in range(3):
                profiler.sample_once()
            snap = profiler.snapshot()
            frames = {entry["frame"] for entry in snap["entries"]}
            assert len(snap["entries"]) <= 2  # 1 row + the fold bucket
            if len(snap["entries"]) == 2:
                assert "<other>" in frames
        finally:
            stop.set()
            for w in workers:
                w.join()

    def test_registry_counter_tracks_samples(self):
        registry = MetricsRegistry()
        profiler = ContinuousProfiler(
            registry=registry, include_unlabeled=True
        )
        stop = threading.Event()
        worker = threading.Thread(target=stop.wait)
        worker.start()
        try:
            recorded = profiler.sample_once()
        finally:
            stop.set()
            worker.join()
        assert registry.counter("profiler.samples").value == recorded

    def test_reset_clears_counts(self):
        profiler = ContinuousProfiler(include_unlabeled=True)
        stop = threading.Event()
        worker = threading.Thread(target=stop.wait)
        worker.start()
        try:
            profiler.sample_once()
        finally:
            stop.set()
            worker.join()
        profiler.reset()
        snap = profiler.snapshot()
        assert snap["total_samples"] == 0
        assert snap["entries"] == []

    def test_render_table_mentions_totals(self):
        profiler = ContinuousProfiler()
        table = profiler.render_table()
        assert "0 samples" in table
