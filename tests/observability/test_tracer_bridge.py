"""Tracer → MetricsRegistry bridge: solver events as scrapeable series."""

from __future__ import annotations

import numpy as np
import pytest

from repro.observability.metrics import MetricsRegistry, NullRegistry
from repro.observability.records import IterationRecord
from repro.observability.tracer import NullTracer, Tracer


@pytest.fixture()
def registry():
    return MetricsRegistry()


@pytest.fixture()
def tracer(registry):
    return Tracer(registry=registry)


class TestSpanBridge:
    def test_svt_span_lands_in_solver_svt_seconds(self, tracer, registry):
        with tracer.span("svt"):
            pass
        family = registry.get("solver.svt_seconds")
        assert family is not None
        assert family.snapshot()["count"] == 1

    def test_unmapped_span_stays_tracer_only(self, tracer, registry):
        with tracer.span("prox:TraceNormProx"):
            pass
        assert registry.get("prox:TraceNormProx") is None
        assert "prox:TraceNormProx" in tracer.phase_totals()

    def test_nested_spans_each_bridge(self, tracer, registry):
        with tracer.span("cccp_round"):
            with tracer.span("gradient"):
                pass
            with tracer.span("svt"):
                pass
        assert registry.get("solver.cccp_round_seconds").snapshot()["count"] == 1
        assert registry.get("solver.gradient_seconds").snapshot()["count"] == 1
        assert registry.get("solver.svt_seconds").snapshot()["count"] == 1


class TestCounterAndGaugeBridge:
    def test_mapped_counter_published(self, tracer, registry):
        tracer.count("cccp.rounds", 3)
        assert registry.get("solver.cccp_rounds").value == 3
        assert tracer.counters["cccp.rounds"] == 3

    def test_unmapped_counter_stays_tracer_only(self, tracer, registry):
        tracer.count("serve.topk_requests")
        assert registry.get("serve.topk_requests") is None

    def test_mapped_metric_sets_gauge_to_latest(self, tracer, registry):
        tracer.metric("svt.retained_rank", 40)
        tracer.metric("svt.retained_rank", 28)
        assert registry.get("solver.rank").value == 28
        assert tracer.metrics["svt.retained_rank"] == [40.0, 28.0]


def _record(iteration, objective):
    return IterationRecord(
        iteration=iteration,
        variable_norm=1.0,
        update_norm=0.1,
        objective=objective,
    )


class TestIterationBridge:
    def test_record_iteration_counts_and_tracks_objective(
        self, tracer, registry
    ):
        tracer.record_iteration(_record(0, 12.5))
        tracer.record_iteration(_record(1, 11.0))
        assert registry.get("solver.iterations").value == 2
        assert registry.get("solver.objective").value == 11.0

    def test_objective_none_leaves_gauge_untouched(self, tracer, registry):
        tracer.record_iteration(_record(0, None))
        assert registry.get("solver.iterations").value == 1
        assert registry.get("solver.objective") is None


class TestDisabledPaths:
    def test_tracer_without_registry_records_locally_only(self):
        tracer = Tracer()
        with tracer.span("svt"):
            pass
        tracer.count("cccp.rounds")
        assert tracer.registry is None  # nothing to publish into

    def test_null_registry_bridge_is_noop(self):
        registry = NullRegistry()
        tracer = Tracer(registry=registry)
        with tracer.span("svt"):
            pass
        tracer.count("cccp.rounds")
        tracer.metric("svt.retained_rank", 5)
        assert registry.render() == ""

    def test_null_tracer_never_bridges(self, registry):
        tracer = NullTracer()
        tracer.registry = registry
        with tracer.span("svt"):
            pass
        tracer.count("cccp.rounds")
        tracer.record_iteration(_record(0, 1.0))
        assert registry.families() == []


class TestEndToEndSolve:
    def test_fitting_publishes_solver_series(self, registry):
        # A tiny real fit: the bridge must surface SVT timings, iteration
        # counts, rank and objective without the solver knowing about
        # Prometheus at all.
        from repro.models import SlamPred, TransferTask
        from repro.synth import generate_aligned_pair

        aligned = generate_aligned_pair(scale=24, random_state=3)
        task = TransferTask.from_aligned(aligned, random_state=3)
        tracer = Tracer(registry=registry)
        SlamPred(
            inner_iterations=5, outer_iterations=2, tracer=tracer
        ).fit(task)
        text = registry.render()
        assert "repro_solver_iterations_total" in text
        assert "repro_solver_svt_seconds_bucket" in text
        assert "repro_solver_objective" in text
        assert "repro_solver_rank" in text
        assert registry.get("solver.svt_seconds").snapshot()["count"] >= 1
        assert registry.get("solver.rank").value >= 1
        assert np.isfinite(registry.get("solver.objective").value)
