"""Tests for repro.alignment.matcher."""

import numpy as np
import pytest

from repro.alignment.matcher import AnchorPredictor, match_users
from repro.exceptions import AlignmentError


class TestMatchUsers:
    def test_identity_matrix(self):
        matches = match_users(np.eye(3))
        assert {(r, c) for r, c, _ in matches} == {(0, 0), (1, 1), (2, 2)}

    def test_permutation(self):
        similarity = np.array(
            [[0.1, 0.9, 0.0], [0.8, 0.1, 0.1], [0.0, 0.2, 0.7]]
        )
        matches = match_users(similarity)
        assert {(r, c) for r, c, _ in matches} == {(0, 1), (1, 0), (2, 2)}

    def test_threshold_filters(self):
        similarity = np.array([[0.9, 0.0], [0.0, 0.05]])
        matches = match_users(similarity, min_similarity=0.1)
        assert {(r, c) for r, c, _ in matches} == {(0, 0)}

    def test_rectangular(self):
        similarity = np.array([[0.9, 0.1, 0.2]])
        matches = match_users(similarity)
        assert matches == [(0, 0, 0.9)]

    def test_one_to_one(self):
        similarity = np.array([[0.9, 0.8], [0.85, 0.1]])
        matches = match_users(similarity)
        cols = [c for _, c, _ in matches]
        assert len(set(cols)) == len(cols)

    def test_empty(self):
        assert match_users(np.zeros((0, 0))) == []

    def test_rejects_non_matrix(self):
        with pytest.raises(AlignmentError):
            match_users(np.zeros(3))


class TestAnchorPredictor:
    def test_invalid_sharpness(self):
        with pytest.raises(AlignmentError):
            AnchorPredictor(weight_sharpness=0.0)

    def test_predict_one_to_one(self, aligned):
        predictor = AnchorPredictor(min_similarity=0.05)
        predicted = predictor.predict(aligned.target, aligned.sources[0])
        targets = [t for t, _ in predicted.pairs]
        sources = [s for _, s in predicted.pairs]
        assert len(set(targets)) == len(targets)
        assert len(set(sources)) == len(sources)

    def test_predicts_well_above_chance(self, aligned):
        """Random one-to-one matching would score ~1/n ≈ 1.5% F1."""
        predictor = AnchorPredictor(min_similarity=0.05)
        predicted = predictor.predict(aligned.target, aligned.sources[0])
        metrics = predictor.evaluate(predicted, aligned.anchors[0])
        assert metrics["f1"] > 0.10

    def test_similarity_matrix_shape(self, aligned):
        predictor = AnchorPredictor()
        sim = predictor.similarity_matrix(aligned.target, aligned.sources[0])
        assert sim.shape == (
            aligned.target.n_users,
            aligned.sources[0].n_users,
        )

    def test_reciprocal_match_rate(self):
        assert AnchorPredictor._reciprocal_match_rate(np.eye(3)) == 1.0
        uninformative = np.ones((4, 4))
        assert AnchorPredictor._reciprocal_match_rate(uninformative) <= 0.5
        assert AnchorPredictor._reciprocal_match_rate(np.zeros((2, 2))) == 0.0

    def test_evaluate_perfect(self, aligned):
        predictor = AnchorPredictor()
        truth = aligned.anchors[0]
        metrics = predictor.evaluate(truth, truth)
        assert metrics == {"precision": 1.0, "recall": 1.0, "f1": 1.0}

    def test_evaluate_empty_prediction(self, aligned):
        from repro.networks.aligned import AnchorLinks

        predictor = AnchorPredictor()
        metrics = predictor.evaluate(AnchorLinks(), aligned.anchors[0])
        assert metrics["precision"] == 0.0
        assert metrics["recall"] == 0.0
        assert metrics["f1"] == 0.0
