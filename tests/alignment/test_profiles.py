"""Tests for repro.alignment.profiles."""

import numpy as np
import pytest

from repro.alignment.profiles import (
    PROFILE_PARTS,
    UserProfileBuilder,
    profile_similarity,
)
from repro.exceptions import AlignmentError
from repro.networks.heterogeneous import HeterogeneousNetwork


def _network(name, posts):
    """posts: list of (author, words, hour, location)."""
    net = HeterogeneousNetwork(name)
    net.add_users(3)
    for lid in range(4):
        net.add_location(lid)
    for pid, (author, words, hour, location) in enumerate(posts):
        net.add_post(pid, author, words, hour, location)
    return net


@pytest.fixture()
def pair():
    net_a = _network(
        "a",
        [
            (0, [1, 2], 9, 0),
            (1, [5], 20, 2),
            (2, [8, 9], 15, 3),
        ],
    )
    net_b = _network(
        "b",
        [
            (0, [1, 2], 9, 0),   # mirrors a's user 0
            (1, [8, 9], 15, 3),  # mirrors a's user 2
            (2, [5], 20, 2),     # mirrors a's user 1
        ],
    )
    return net_a, net_b


class TestBuilder:
    def test_unknown_part(self):
        with pytest.raises(AlignmentError, match="unknown profile parts"):
            UserProfileBuilder(parts=("astro",))

    def test_empty_parts(self):
        with pytest.raises(AlignmentError):
            UserProfileBuilder(parts=())

    def test_shared_column_space(self, pair):
        profiles_a, profiles_b = UserProfileBuilder().build_pair(*pair)
        assert profiles_a.shape[1] == profiles_b.shape[1]
        assert profiles_a.shape[0] == 3 and profiles_b.shape[0] == 3

    def test_blocks_cover_parts(self, pair):
        blocks = UserProfileBuilder().build_blocks(*pair)
        assert set(blocks) == set(PROFILE_PARTS)

    def test_word_only(self, pair):
        blocks = UserProfileBuilder(parts=("word",)).build_blocks(*pair)
        assert set(blocks) == {"word"}

    def test_rows_normalized(self, pair):
        for block_a, block_b in UserProfileBuilder().build_blocks(*pair).values():
            for row in list(block_a) + list(block_b):
                norm = np.linalg.norm(row)
                assert norm == pytest.approx(1.0) or norm == 0.0

    def test_idf_downweights_shared_items(self):
        # word 1 used by everyone; word 7 by a single user on each side.
        net_a = _network("a", [(0, [1, 7], 0, None), (1, [1], 0, None),
                               (2, [1], 0, None)])
        net_b = _network("b", [(0, [1, 7], 0, None), (1, [1], 0, None),
                               (2, [1], 0, None)])
        with_idf = UserProfileBuilder(parts=("word",), use_idf=True)
        without = UserProfileBuilder(parts=("word",), use_idf=False)
        sim_idf = profile_similarity(*with_idf.build_pair(net_a, net_b))
        sim_raw = profile_similarity(*without.build_pair(net_a, net_b))
        # the matched pair (0, 0) stands out more under IDF
        margin_idf = sim_idf[0, 0] - sim_idf[0, 1]
        margin_raw = sim_raw[0, 0] - sim_raw[0, 1]
        assert margin_idf > margin_raw


class TestSimilarity:
    def test_identical_profiles(self):
        profiles = np.array([[1.0, 0.0], [0.0, 1.0]])
        sim = profile_similarity(profiles, profiles)
        assert sim[0, 0] == pytest.approx(1.0)
        assert sim[0, 1] == 0.0

    def test_zero_rows(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[1.0, 0.0]])
        assert profile_similarity(a, b)[0, 0] == 0.0

    def test_dimension_mismatch(self):
        with pytest.raises(AlignmentError, match="dimensionalities"):
            profile_similarity(np.zeros((2, 3)), np.zeros((2, 4)))

    def test_mirrored_users_most_similar(self, pair):
        profiles_a, profiles_b = UserProfileBuilder().build_pair(*pair)
        sim = profile_similarity(profiles_a, profiles_b)
        # mirror mapping: 0→0, 1→2, 2→1
        assert sim[0].argmax() == 0
        assert sim[1].argmax() == 2
        assert sim[2].argmax() == 1
