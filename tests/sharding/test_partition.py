"""Shard planning: community binning, anchor replication, plan round trips."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import sparse

from repro.exceptions import ConfigurationError
from repro.sharding.partition import (
    ShardPlan,
    detect_communities,
    plan_shards,
)


def _block_graph(n=120, blocks=4, p_in=0.3, p_out=0.01, seed=7):
    """A planted-partition adjacency with contiguous equal blocks."""
    rng = np.random.default_rng(seed)
    labels = np.arange(n) // (n // blocks)
    probs = np.where(labels[:, None] == labels[None, :], p_in, p_out)
    dense = (rng.random((n, n)) < probs).astype(float)
    dense = np.maximum(dense, dense.T)
    np.fill_diagonal(dense, 0.0)
    return sparse.csr_matrix(dense), labels


class TestPlanShards:
    def test_single_shard_holds_everyone_with_no_anchors(self):
        plan = plan_shards(np.zeros(10, dtype=int), 1)
        assert plan.n_shards == 1
        assert plan.members[0].tolist() == list(range(10))
        assert plan.anchors[0].size == 0

    def test_core_assignment_partitions_users(self):
        _, labels = _block_graph()
        plan = plan_shards(labels, 4)
        cores = np.concatenate(
            [plan.members[s][~np.isin(plan.members[s], plan.anchors[s])]
             for s in range(4)]
        )
        assert sorted(cores.tolist()) == list(range(labels.size))

    def test_anchors_are_replicas_of_other_shards_cores(self):
        adjacency, labels = _block_graph()
        plan = plan_shards(labels, 4, adjacency=adjacency)
        for s in range(plan.n_shards):
            for anchor in plan.anchors[s]:
                assert plan.shard_of[anchor] != s
                # the anchor's shard list carries its core shard first
                assert plan.shards_of_user(anchor)[0] == plan.shard_of[anchor]
                assert s in plan.shards_of_user(anchor)

    def test_members_sorted_and_unique(self):
        adjacency, labels = _block_graph()
        plan = plan_shards(labels, 3, adjacency=adjacency)
        for members in plan.members:
            assert np.all(np.diff(members) > 0)

    def test_more_shards_than_communities_splits_largest(self):
        labels = np.zeros(40, dtype=int)
        plan = plan_shards(labels, 4)
        assert plan.n_shards == 4
        assert all(members.size > 0 for members in plan.members)

    def test_anchor_budget_respected(self):
        adjacency, labels = _block_graph()
        plan = plan_shards(labels, 4, adjacency=adjacency, max_anchors=3)
        assert all(anchors.size <= 3 for anchors in plan.anchors)

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ConfigurationError):
            plan_shards(np.zeros(4, dtype=int), 0)
        with pytest.raises(ConfigurationError):
            plan_shards(np.zeros(4, dtype=int), 5)


class TestShardPlanOps:
    def test_local_indices_round_trip(self):
        adjacency, labels = _block_graph()
        plan = plan_shards(labels, 4, adjacency=adjacency)
        for s in range(plan.n_shards):
            members = plan.members[s]
            local = plan.local_indices(s, members)
            assert np.array_equal(members[local], members)

    def test_local_indices_rejects_non_members(self):
        plan = plan_shards(np.array([0, 0, 1, 1]), 2)
        outsider = plan.members[1][0]
        with pytest.raises(ConfigurationError):
            plan.local_indices(0, [int(outsider)])

    def test_array_round_trip_preserves_plan(self):
        adjacency, labels = _block_graph()
        plan = plan_shards(labels, 4, adjacency=adjacency)
        clone = ShardPlan.from_arrays(plan.to_arrays())
        assert clone.n_shards == plan.n_shards
        assert np.array_equal(clone.shard_of, plan.shard_of)
        for s in range(plan.n_shards):
            assert np.array_equal(clone.members[s], plan.members[s])
            assert np.array_equal(clone.anchors[s], plan.anchors[s])


class TestDetectCommunities:
    def test_recovers_planted_blocks_up_to_relabeling(self):
        adjacency, labels = _block_graph(p_in=0.5, p_out=0.005)
        detected = detect_communities(adjacency)
        # Every planted block maps to exactly one detected label.
        for b in np.unique(labels):
            block_labels = detected[labels == b]
            assert np.unique(block_labels).size == 1

    def test_deterministic(self):
        adjacency, _ = _block_graph()
        first = detect_communities(adjacency)
        second = detect_communities(adjacency)
        assert np.array_equal(first, second)

    def test_isolated_users_keep_their_own_label(self):
        adjacency = sparse.csr_matrix((5, 5))
        detected = detect_communities(adjacency)
        assert np.unique(detected).size == 5
