"""Sharded artifact store: manifests, integrity, partial degradation."""

from __future__ import annotations

import os

import numpy as np
import pytest
from scipy import sparse

from repro.exceptions import SerializationError
from repro.reliability.faults import GLOBAL_INJECTOR
from repro.sharding.artifacts import ShardedArtifactStore
from repro.sharding.model import ShardedSlamPred


@pytest.fixture(scope="module")
def fitted():
    """A small fitted sharded model and its training graph."""
    rng = np.random.default_rng(5)
    n = 120
    labels = np.arange(n) // (n // 2)
    probs = np.where(labels[:, None] == labels[None, :], 0.3, 0.02)
    dense = (rng.random((n, n)) < probs).astype(float)
    dense = np.maximum(dense, dense.T)
    np.fill_diagonal(dense, 0.0)
    adjacency = sparse.csr_matrix(dense)
    model = ShardedSlamPred(
        n_shards=2,
        svd_rank=6,
        inner_iterations=3,
        outer_iterations=2,
        use_processes=False,
    )
    model.fit(adjacency, labels=labels)
    return model, adjacency


@pytest.fixture()
def store(fitted, tmp_path):
    model, adjacency = fitted
    store = ShardedArtifactStore(str(tmp_path / "store"))
    store.publish(model, graph=adjacency, meta={"note": "test"})
    return store


def _corrupt(path):
    with open(path, "r+b") as handle:
        handle.seek(12)
        handle.write(b"\xde\xad\xbe\xef")


class TestPublishLoad:
    def test_round_trip_preserves_estimates(self, fitted, store):
        model, _ = fitted
        loaded = store.load()
        assert loaded.version == 1
        assert not loaded.degraded
        assert sorted(loaded.estimates) == [0, 1]
        for s, original in enumerate(model.estimates):
            clone = loaded.estimates[s]
            assert np.array_equal(clone.u, original.u)
            assert np.array_equal(clone.s, original.s)
            assert np.array_equal(
                clone.residual.toarray(), original.residual.toarray()
            )
        assert np.allclose(loaded.scales, model.scales)

    def test_manifest_lists_hashed_files(self, store):
        manifest = store.manifest()
        files = manifest["files"]
        assert set(files) >= {"plan.npz", "shard-000.npz", "shard-001.npz"}
        assert all(len(entry["sha256"]) == 64 for entry in files.values())
        assert manifest["kind"] == "sharded"

    def test_versions_increment(self, fitted, store):
        model, adjacency = fitted
        assert store.publish(model, graph=adjacency) == 2
        assert store.versions() == [1, 2]
        assert store.resolve_latest() == 2

    def test_graph_round_trips(self, fitted, store):
        _, adjacency = fitted
        loaded = store.load()
        assert (loaded.adjacency != adjacency).nnz == 0


class TestIntegrity:
    def test_verify_passes_clean_store(self, store):
        store.verify()

    def test_corrupt_shard_fails_strict_load(self, store):
        _corrupt(os.path.join(store.path(1), "shard-000.npz"))
        with pytest.raises(SerializationError):
            store.load(strict=True)

    def test_corrupt_shard_degrades_lenient_load(self, store):
        _corrupt(os.path.join(store.path(1), "shard-000.npz"))
        loaded = store.load(strict=False)
        assert loaded.degraded
        assert loaded.missing_shards == [0]
        assert sorted(loaded.estimates) == [1]

    def test_corrupt_plan_is_always_fatal(self, store):
        _corrupt(os.path.join(store.path(1), "plan.npz"))
        with pytest.raises(SerializationError):
            store.load(strict=False)

    def test_all_shards_corrupt_fails_even_lenient(self, store):
        _corrupt(os.path.join(store.path(1), "shard-000.npz"))
        _corrupt(os.path.join(store.path(1), "shard-001.npz"))
        with pytest.raises(SerializationError):
            store.load(strict=False)


class TestChaosSite:
    def test_injected_shard_read_fault_degrades(self, store):
        GLOBAL_INJECTOR.arm("sharding.shard_read", times=1)
        try:
            loaded = store.load(strict=False)
        finally:
            GLOBAL_INJECTOR.reset()
        assert loaded.missing_shards == [0]
        assert sorted(loaded.estimates) == [1]
