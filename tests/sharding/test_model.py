"""ShardedSlamPred: parity, determinism, checkpoints, scoring."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import sparse

from repro.exceptions import ConfigurationError, NotFittedError
from repro.models.slampred import SlamPredH
from repro.sharding.model import ShardedSlamPred

_FIT_KWARGS = dict(
    svd_rank=8,
    inner_iterations=3,
    outer_iterations=2,
)


@pytest.fixture(scope="module")
def block_adjacency():
    """A 160-user two-block graph with planted labels."""
    rng = np.random.default_rng(11)
    n, blocks = 160, 2
    labels = np.arange(n) // (n // blocks)
    probs = np.where(labels[:, None] == labels[None, :], 0.25, 0.02)
    dense = (rng.random((n, n)) < probs).astype(float)
    dense = np.maximum(dense, dense.T)
    np.fill_diagonal(dense, 0.0)
    return sparse.csr_matrix(dense), labels


def _assert_estimates_identical(first, second):
    assert len(first) == len(second)
    for a, b in zip(first, second):
        assert np.array_equal(a.u, b.u)
        assert np.array_equal(a.s, b.s)
        assert np.array_equal(a.vt, b.vt)
        assert np.array_equal(a.residual.toarray(), b.residual.toarray())


class TestSingleShardParity:
    def test_reproduces_unsharded_trajectory(self, block_adjacency):
        """shards=1 must be the unsharded factored fit, bit for bit."""
        adjacency, labels = block_adjacency
        sharded = ShardedSlamPred(
            n_shards=1, use_processes=False, **_FIT_KWARGS
        )
        sharded.fit(adjacency, labels=labels)
        reference = SlamPredH(
            factored=True,
            svt_options={
                "seed": sharded.seed,
                "dense_fallback_cutoff": 0,
            },
            **_FIT_KWARGS,
        )
        estimate = reference.fit_adjacency(adjacency).factored_estimate
        merged = sharded.estimates[0]
        gap = np.abs(
            merged.to_dense() - estimate.to_dense()
        ).max()
        assert gap <= 1e-8
        assert sharded.scales.tolist() == [1.0]


class TestDeterminism:
    def test_identical_across_worker_scheduling(self, block_adjacency):
        """Process fan-out, thread fallback and serial runs all agree."""
        adjacency, labels = block_adjacency
        fits = []
        for use_processes, workers in (
            (True, 2),
            (False, 2),
            (False, 1),
        ):
            model = ShardedSlamPred(
                n_shards=2,
                use_processes=use_processes,
                max_workers=workers,
                **_FIT_KWARGS,
            )
            model.fit(adjacency, labels=labels)
            fits.append(model.estimates)
        _assert_estimates_identical(fits[0], fits[1])
        _assert_estimates_identical(fits[0], fits[2])

    def test_per_shard_seeds_differ(self, block_adjacency):
        from repro.sharding.partition import plan_shards

        adjacency, labels = block_adjacency
        model = ShardedSlamPred(
            n_shards=2, use_processes=False, **_FIT_KWARGS
        )
        plan = plan_shards(labels, 2, adjacency=adjacency)
        jobs = model._build_jobs(adjacency, plan)
        seeds = [job["svt_seed"] for job in jobs]
        assert seeds == [model.seed, model.seed + 1]


class TestCheckpoints:
    def test_refit_resumes_from_shard_checkpoints(
        self, block_adjacency, tmp_path
    ):
        adjacency, labels = block_adjacency
        kwargs = dict(
            n_shards=2,
            use_processes=False,
            checkpoint_dir=str(tmp_path / "ckpt"),
            **_FIT_KWARGS,
        )
        first = ShardedSlamPred(**kwargs)
        first.fit(adjacency, labels=labels)
        assert all(not s["resumed"] for s in first.shard_stats)
        second = ShardedSlamPred(**kwargs)
        second.fit(adjacency, labels=labels)
        assert all(s["resumed"] for s in second.shard_stats)
        _assert_estimates_identical(first.estimates, second.estimates)

    def test_checkpoint_ignored_when_config_changes(
        self, block_adjacency, tmp_path
    ):
        adjacency, labels = block_adjacency
        kwargs = dict(
            n_shards=2,
            use_processes=False,
            checkpoint_dir=str(tmp_path / "ckpt"),
        )
        ShardedSlamPred(**kwargs, **_FIT_KWARGS).fit(
            adjacency, labels=labels
        )
        changed = ShardedSlamPred(
            **kwargs,
            svd_rank=6,
            inner_iterations=_FIT_KWARGS["inner_iterations"],
            outer_iterations=_FIT_KWARGS["outer_iterations"],
        )
        changed.fit(adjacency, labels=labels)
        assert all(not s["resumed"] for s in changed.shard_stats)


class TestScoring:
    def test_score_pairs_zero_outside_any_shard(self, block_adjacency):
        adjacency, labels = block_adjacency
        model = ShardedSlamPred(
            n_shards=2, use_processes=False, max_anchors=1, **_FIT_KWARGS
        )
        model.fit(adjacency, labels=labels)
        # A cross-community pair neither shard fully models scores 0.
        replicated = np.concatenate(model.plan.anchors)
        left = next(
            u for u in np.flatnonzero(labels == 0) if u not in replicated
        )
        right = next(
            u for u in np.flatnonzero(labels == 1) if u not in replicated
        )
        scores = model.score_pairs(np.array([(int(left), int(right))]))
        assert scores[0] == 0.0

    def test_score_pairs_nonnegative_and_diagonal_free(
        self, block_adjacency
    ):
        adjacency, labels = block_adjacency
        model = ShardedSlamPred(
            n_shards=2, use_processes=False, **_FIT_KWARGS
        )
        model.fit(adjacency, labels=labels)
        pairs = np.array([[0, 0], [0, 1], [1, 5]])
        scores = model.score_pairs(pairs)
        assert scores[0] == 0.0  # self pair
        assert np.all(scores >= 0.0)

    def test_detects_communities_when_labels_omitted(self, block_adjacency):
        adjacency, _ = block_adjacency
        model = ShardedSlamPred(
            n_shards=2, use_processes=False, **_FIT_KWARGS
        )
        model.fit(adjacency)
        assert model.plan.n_shards == 2
        assert len(model.estimates) == 2


class TestValidation:
    def test_unfitted_access_raises(self):
        model = ShardedSlamPred(n_shards=2)
        with pytest.raises(NotFittedError):
            model.plan
        with pytest.raises(NotFittedError):
            model.estimates

    def test_rejects_label_length_mismatch(self, block_adjacency):
        adjacency, labels = block_adjacency
        model = ShardedSlamPred(
            n_shards=2, use_processes=False, **_FIT_KWARGS
        )
        with pytest.raises(ConfigurationError):
            model.fit(adjacency, labels=labels[:-1])

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ConfigurationError):
            ShardedSlamPred(n_shards=0)
