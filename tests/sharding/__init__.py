"""Community-sharding suite: partitioning, stitching, artifacts, serving."""
