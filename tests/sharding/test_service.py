"""Scatter-gather serving: merge determinism, exclusion, degradation."""

from __future__ import annotations

import os

import numpy as np
import pytest
from scipy import sparse

from repro.factored.estimate import FactoredEstimate
from repro.serving.batcher import MicroBatcher
from repro.sharding.artifacts import ShardedArtifactStore
from repro.sharding.partition import ShardPlan
from repro.sharding.service import ShardedLinkPredictionService

N_USERS = 8


class _StubModel:
    """The minimal fitted-model surface ``publish`` consumes."""

    name = "stub-sharded"

    def __init__(self, plan, estimates, scales):
        self.plan = plan
        self.estimates = estimates
        self.scales = np.asarray(scales, dtype=float)


def _plan():
    """Users 0–3 in shard 0, 4–7 in shard 1; 4 and 3 cross-replicated."""
    return ShardPlan(
        shard_of=np.array([0, 0, 0, 0, 1, 1, 1, 1]),
        anchors=[np.array([4]), np.array([3])],
    )


def _flat_estimate(n_members, value=1.0):
    """A rank-1 estimate scoring every pair exactly ``value``."""
    u = np.ones((n_members, 1))
    vt = np.ones((1, n_members))
    return FactoredEstimate(u, np.array([value]), vt)


def _publish(tmp_path, graph=None, values=(1.0, 1.0), scales=(1.0, 1.0)):
    plan = _plan()
    estimates = [
        _flat_estimate(plan.members[s].size, values[s]) for s in range(2)
    ]
    store = ShardedArtifactStore(str(tmp_path / "store"))
    store.publish(_StubModel(plan, estimates, scales), graph=graph)
    return store


class TestDeterministicMerge:
    def test_all_tied_scores_rank_by_ascending_id(self, tmp_path):
        service = ShardedLinkPredictionService(_publish(tmp_path))
        ranking = service.top_k(3, k=10)
        # user 3 sees both shards: candidates 0..7 minus itself, all tied
        # at 1.0 → ascending candidate id is the only legal order.
        assert [c for c, _ in ranking] == [0, 1, 2, 4, 5, 6, 7]
        assert all(score == pytest.approx(1.0) for _, score in ranking)

    def test_two_services_agree_exactly(self, tmp_path):
        store = _publish(tmp_path)
        first = ShardedLinkPredictionService(store)
        second = ShardedLinkPredictionService(store)
        for user in range(N_USERS):
            assert first.top_k(user, k=10) == second.top_k(user, k=10)

    def test_duplicate_candidates_keep_max_stitched_score(self, tmp_path):
        # Shard 1 scores 2.0 while shard 0 scores 1.0; boundary user 3
        # sees candidate 4 from both shards and must keep the larger.
        service = ShardedLinkPredictionService(
            _publish(tmp_path, values=(1.0, 2.0))
        )
        scores = dict(service.top_k(3, k=10))
        assert scores[4] == pytest.approx(2.0)
        assert scores[0] == pytest.approx(1.0)

    def test_batch_matches_single_queries(self, tmp_path):
        service = ShardedLinkPredictionService(_publish(tmp_path))
        singles = [service.top_k(u, k=5) for u in range(N_USERS)]
        service.cache.invalidate()
        batched = service.batch_top_k(list(range(N_USERS)), k=5)
        assert batched == singles

    def test_mixed_k_trims_per_request(self, tmp_path):
        service = ShardedLinkPredictionService(_publish(tmp_path))
        full, trimmed = service.batch_top_k_mixed([3, 3], [10, 2])
        assert trimmed == full[:2]


class TestKnownLinkExclusion:
    def test_cross_shard_links_never_appear(self, tmp_path):
        # Edge (3, 5) spans the shard boundary: user 3's core shard never
        # models user 5, so only the *global* graph can exclude it.
        graph = sparse.csr_matrix(
            ([1.0, 1.0], ([3, 5], [5, 3])), shape=(N_USERS, N_USERS)
        )
        service = ShardedLinkPredictionService(_publish(tmp_path, graph))
        candidates = [c for c, _ in service.top_k(3, k=10)]
        assert 5 not in candidates
        assert 3 not in candidates  # self always excluded
        assert service.is_known_link(3, 5)
        assert not service.is_known_link(3, 6)

    def test_self_excluded_without_graph(self, tmp_path):
        service = ShardedLinkPredictionService(_publish(tmp_path))
        for user in range(N_USERS):
            assert user not in [c for c, _ in service.top_k(user, k=10)]


class TestDegradation:
    def _corrupt_shard(self, store, shard):
        path = os.path.join(store.path(1), f"shard-{shard:03d}.npz")
        with open(path, "r+b") as handle:
            handle.seek(12)
            handle.write(b"\xde\xad\xbe\xef")

    def test_corrupt_shard_serves_remaining_users(self, tmp_path):
        store = _publish(tmp_path)
        self._corrupt_shard(store, 0)
        service = ShardedLinkPredictionService(store)
        assert service.artifact.missing_shards == [0]
        assert service.shard_health()[0] == "missing"
        # Core shard-1 users answer from the surviving shard.
        ranking = service.top_k(5, k=10)
        assert [c for c, _ in ranking] == [3, 4, 6, 7]
        # The boundary user still answers through its anchor replica.
        assert service.top_k(3, k=10)
        # Users modeled only by the dead shard degrade to empty, not error.
        assert service.top_k(0, k=10) == []
        assert service.stats()["missing_shards"] == [0]

    def test_degraded_answers_are_not_cached(self, tmp_path):
        store = _publish(tmp_path)
        self._corrupt_shard(store, 0)
        service = ShardedLinkPredictionService(store)
        service.top_k(0, k=10)
        assert service.tracer.counters.get("serve.degraded", 0) >= 1
        before = service.tracer.counters.get("serve.cache_hit", 0)
        service.top_k(0, k=10)
        assert service.tracer.counters.get("serve.cache_hit", 0) == before

    def test_ready_and_stats_survive_degradation(self, tmp_path):
        store = _publish(tmp_path)
        self._corrupt_shard(store, 1)
        service = ShardedLinkPredictionService(store)
        assert service.ready()
        stats = service.stats()
        assert stats["n_shards"] == 2
        assert stats["shard_health"]["1"] == "missing"


class TestServiceSurface:
    def test_reload_picks_up_new_version(self, tmp_path):
        store = _publish(tmp_path)
        service = ShardedLinkPredictionService(store)
        assert service.version == 1
        assert service.reload() is False  # no newer version
        plan = _plan()
        store.publish(
            _StubModel(
                plan,
                [_flat_estimate(plan.members[s].size) for s in range(2)],
                (1.0, 1.0),
            )
        )
        assert service.reload() is True
        assert service.version == 2

    def test_score_uses_stitched_scale(self, tmp_path):
        service = ShardedLinkPredictionService(
            _publish(tmp_path, values=(1.0, 1.0), scales=(1.0, 0.5))
        )
        assert service.score(5, 6) == pytest.approx(0.5)
        assert service.score(0, 1) == pytest.approx(1.0)
        assert service.score(2, 2) == 0.0

    def test_micro_batcher_coalesces_sharded_queries(self, tmp_path):
        service = ShardedLinkPredictionService(_publish(tmp_path))
        expected = service.top_k(3, k=4)
        service.cache.invalidate()
        with MicroBatcher(service, max_batch=8, max_wait_ms=1.0) as batcher:
            assert batcher.submit(3, k=4) == expected

    def test_metrics_text_renders(self, tmp_path):
        service = ShardedLinkPredictionService(_publish(tmp_path))
        service.top_k(0, k=3)
        text = service.metrics_text()
        assert "sharding_healthy_shards" in text or "sharding" in text


class TestStitchedTracing:
    """Tentpole: one sharded request → one stitched cross-shard trace."""

    def _traced_service(self, tmp_path, **tracer_kwargs):
        from repro.observability.metrics import MetricsRegistry
        from repro.observability.sampling import SamplingTracer

        registry = MetricsRegistry()
        tracer = SamplingTracer(registry, **tracer_kwargs)
        service = ShardedLinkPredictionService(
            _publish(tmp_path), tracer=tracer, registry=registry
        )
        return service, tracer

    def test_sharded_topk_produces_one_stitched_trace(self, tmp_path):
        service, tracer = self._traced_service(tmp_path, default_rate=1.0)
        with tracer.trace("topk") as trace:
            service.top_k(3, k=5)  # boundary user → both shards
        finished = tracer.finished()
        assert len(finished) == 1
        assert finished[0] is trace
        names = [span.name for span in trace.spans()]
        assert names[0] == "request.topk"
        assert "serve.top_k" in names
        shard_spans = [
            span
            for span in trace.spans()
            if span.name.startswith("serve.shard[")
        ]
        assert [span.name for span in shard_spans] == [
            "serve.shard[000]",
            "serve.shard[001]",
        ]
        assert all(span.duration >= 0.0 for span in shard_spans)
        # The shard spans are children of serve.top_k, not loose roots.
        top_k_span = next(
            span for span in trace.spans() if span.name == "serve.top_k"
        )
        descendants = list(top_k_span.iter_spans())
        assert all(span in descendants for span in shard_spans)

    def test_unsampled_request_records_no_spans(self, tmp_path):
        service, tracer = self._traced_service(tmp_path, default_rate=0.0)
        with tracer.trace("topk"):
            service.top_k(3, k=5)
        assert tracer.finished() == []

    def test_sampling_reproducible_from_trace_id(self, tmp_path):
        from repro.observability.propagation import sampling_decision

        service, tracer = self._traced_service(tmp_path, default_rate=0.4)
        for trace_id in (f"{i:016x}" for i in range(20)):
            with tracer.trace("topk", trace_id=trace_id) as trace:
                service.top_k(3, k=5)
            service.cache.invalidate()
            assert trace.sampled == sampling_decision(trace_id, 0.4)

    def test_shard_seconds_histogram_drains_to_registry(self, tmp_path):
        service, tracer = self._traced_service(tmp_path, default_rate=0.0)
        service.top_k(3, k=5)
        text = service.metrics_text()
        assert "repro_sharding_shard_seconds_count 2" in text

    def test_hot_counters_survive_drain_cycle(self, tmp_path):
        service, tracer = self._traced_service(tmp_path, default_rate=0.0)
        service.top_k(3, k=5)
        service.top_k(3, k=5)  # second hits the cache
        counters = service.stats()["counters"]
        assert counters["serve.requests"] == 2
        assert counters["serve.cache_hit"] == 1
        assert counters["serve.cache_miss"] == 1
        text = service.metrics_text()
        assert "repro_serving_cache_hits_total 1" in text
        assert "repro_serving_cache_misses_total 1" in text
