"""Anchor-based cross-shard score calibration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.factored.estimate import FactoredEstimate
from repro.sharding.partition import plan_shards
from repro.sharding.stitching import (
    boundary_disagreement,
    fit_stitch_scales,
)


def _estimate_from_dense(matrix, rank=None):
    """An exact FactoredEstimate of a small dense symmetric matrix."""
    u, s, vt = np.linalg.svd(matrix)
    rank = matrix.shape[0] if rank is None else rank
    return FactoredEstimate(u[:, :rank], s[:rank], vt[:rank])


def _two_shard_setup(scale=2.0, n=30, seed=3):
    """Two shards sharing anchors, shard 1 scored ``scale`` × shard 0.

    Both shards carry the *same* underlying score structure on their
    shared pairs, so the exact stitch multiplies shard 1 by
    ``1 / scale``.
    """
    rng = np.random.default_rng(seed)
    labels = (np.arange(n) >= n // 2).astype(int)
    adjacency = np.ones((n, n)) - np.eye(n)
    from scipy import sparse

    plan = plan_shards(
        labels, 2, adjacency=sparse.csr_matrix(adjacency),
        anchor_fraction=0.3,
    )
    truth = rng.random((n, n))
    truth = (truth + truth.T) / 2.0
    estimates = []
    for s, factor in ((0, 1.0), (1, scale)):
        members = plan.members[s]
        estimates.append(
            _estimate_from_dense(factor * truth[np.ix_(members, members)])
        )
    return plan, estimates


class TestFitStitchScales:
    def test_single_shard_is_identity(self):
        plan = plan_shards(np.zeros(8, dtype=int), 1)
        scales = fit_stitch_scales(plan, [_estimate_from_dense(np.eye(8))])
        assert scales.shape == (1,)
        assert scales[0] == pytest.approx(1.0)

    def test_recovers_known_scale_ratio(self):
        plan, estimates = _two_shard_setup(scale=2.0)
        scales = fit_stitch_scales(plan, estimates)
        assert scales[0] == pytest.approx(1.0)
        assert scales[1] == pytest.approx(0.5, rel=1e-6)

    def test_no_overlap_defaults_to_ones(self):
        plan = plan_shards(np.array([0, 0, 1, 1]), 2)  # no adjacency → no anchors
        estimates = [
            _estimate_from_dense(np.ones((2, 2))) for _ in range(2)
        ]
        scales = fit_stitch_scales(plan, estimates)
        assert np.allclose(scales, 1.0)

    def test_rejects_wrong_estimate_count(self):
        plan = plan_shards(np.array([0, 0, 1, 1]), 2)
        with pytest.raises(ValueError):
            fit_stitch_scales(plan, [_estimate_from_dense(np.ones((2, 2)))])


class TestBoundaryDisagreement:
    def test_stitched_scales_align_boundary_scores(self):
        plan, estimates = _two_shard_setup(scale=3.0)
        scales = fit_stitch_scales(plan, estimates)
        stitched = boundary_disagreement(plan, estimates, scales)
        unstitched = boundary_disagreement(plan, estimates, np.ones(2))
        assert stitched < 1e-6
        assert unstitched > 0.5  # 3× mismatch before calibration

    def test_zero_when_nothing_overlaps(self):
        plan = plan_shards(np.array([0, 0, 1, 1]), 2)
        estimates = [
            _estimate_from_dense(np.ones((2, 2))) for _ in range(2)
        ]
        assert boundary_disagreement(plan, estimates, np.ones(2)) == 0.0
