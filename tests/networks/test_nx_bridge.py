"""Tests for repro.networks.nx_bridge."""

import networkx as nx
import pytest

from repro.exceptions import NetworkError
from repro.networks.heterogeneous import HeterogeneousNetwork
from repro.networks.nx_bridge import (
    network_from_networkx,
    network_to_networkx,
    social_graph_to_networkx,
)
from repro.networks.social import SocialGraph


@pytest.fixture()
def network():
    net = HeterogeneousNetwork("bridge")
    net.add_users(3)
    net.add_location(0, 1.0, 2.0)
    net.add_post(0, 0, word_ids=[5, 6], hour=10, location_id=0)
    net.add_post(1, 1, word_ids=[5], hour=10)
    net.add_social_link(0, 1)
    net.add_social_link(1, 2)
    return net


class TestSocialGraphExport:
    def test_structure_preserved(self, network):
        graph = SocialGraph.from_network(network)
        out = social_graph_to_networkx(graph)
        assert out.number_of_nodes() == 3
        assert out.number_of_edges() == 2
        assert out.has_edge(0, 1) and out.has_edge(1, 2)

    def test_isolated_users_kept(self):
        net = HeterogeneousNetwork()
        net.add_users(4)
        out = social_graph_to_networkx(SocialGraph.from_network(net))
        assert out.number_of_nodes() == 4
        assert out.number_of_edges() == 0


class TestHeterogeneousExport:
    def test_typed_nodes(self, network):
        out = network_to_networkx(network)
        types = nx.get_node_attributes(out, "node_type")
        assert types[("user", 0)] == "user"
        assert types[("post", 0)] == "post"
        assert types[("location", 0)] == "location"
        assert types[("word", 5)] == "word"
        assert types[("timestamp", 10)] == "timestamp"

    def test_edge_families(self, network):
        out = network_to_networkx(network)
        assert out.edges[("user", 0), ("user", 1)]["edge_type"] == "social"
        assert out.edges[("user", 0), ("post", 0)]["edge_type"] == "write"
        assert out.edges[("post", 0), ("location", 0)]["edge_type"] == "locate"
        assert out.edges[("post", 0), ("word", 5)]["edge_type"] == "word"
        assert out.edges[("post", 0), ("timestamp", 10)]["edge_type"] == "time"

    def test_social_only(self, network):
        out = network_to_networkx(network, include_attributes=False)
        assert out.number_of_nodes() == 3
        assert out.number_of_edges() == 2

    def test_shared_word_node(self, network):
        out = network_to_networkx(network)
        # word 5 is used by both posts and appears once
        assert out.degree(("word", 5)) == 2

    def test_location_coordinates(self, network):
        out = network_to_networkx(network)
        assert out.nodes[("location", 0)]["latitude"] == 1.0


class TestImport:
    def test_roundtrip_social_structure(self, network):
        exported = social_graph_to_networkx(SocialGraph.from_network(network))
        imported = network_from_networkx(exported)
        assert imported.n_users == network.n_users
        assert imported.social_links == network.social_links

    def test_karate_club(self):
        graph = nx.karate_club_graph()
        network = network_from_networkx(graph, name="karate")
        assert network.n_users == graph.number_of_nodes()
        assert network.n_social_links == graph.number_of_edges()

    def test_self_loops_dropped(self):
        graph = nx.Graph()
        graph.add_edge(0, 0)
        graph.add_edge(0, 1)
        network = network_from_networkx(graph)
        assert network.n_social_links == 1

    def test_non_integer_nodes_rejected(self):
        graph = nx.Graph()
        graph.add_edge("a", "b")
        with pytest.raises(NetworkError, match="integer"):
            network_from_networkx(graph)
