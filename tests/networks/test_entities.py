"""Tests for repro.networks.entities."""

import pytest

from repro.networks.entities import (
    Location,
    NodeType,
    Post,
    Timestamp,
    User,
    Word,
)


class TestNodeTypes:
    def test_user(self):
        assert User(3).node_type is NodeType.USER

    def test_word(self):
        assert Word(5).node_type is NodeType.WORD

    def test_location(self):
        assert Location(1, 10.0, 20.0).node_type is NodeType.LOCATION

    def test_timestamp(self):
        assert Timestamp(12).node_type is NodeType.TIMESTAMP

    def test_post(self):
        assert Post(0, 1).node_type is NodeType.POST


class TestPost:
    def test_default_has_no_checkin(self):
        assert not Post(0, 1).has_checkin

    def test_checkin(self):
        assert Post(0, 1, location_id=5).has_checkin

    def test_word_ids_tuple(self):
        post = Post(0, 1, word_ids=(3, 4, 3))
        assert post.word_ids == (3, 4, 3)

    def test_frozen(self):
        post = Post(0, 1)
        with pytest.raises(AttributeError):
            post.hour = 5


class TestTimestamp:
    @pytest.mark.parametrize("hour", [0, 12, 23])
    def test_valid_hours(self, hour):
        assert Timestamp(hour).hour == hour

    @pytest.mark.parametrize("hour", [-1, 24, 30])
    def test_invalid_hours(self, hour):
        with pytest.raises(ValueError, match="hour"):
            Timestamp(hour)


class TestEquality:
    def test_users_equal_by_id(self):
        assert User(1) == User(1)
        assert User(1) != User(2)

    def test_hashable(self):
        assert len({User(1), User(1), User(2)}) == 2
