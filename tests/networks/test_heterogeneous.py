"""Tests for repro.networks.heterogeneous."""

import numpy as np
import pytest

from repro.exceptions import (
    DuplicateNodeError,
    NetworkError,
    UnknownNodeError,
)
from repro.networks.heterogeneous import HeterogeneousNetwork


@pytest.fixture()
def network():
    net = HeterogeneousNetwork("test")
    net.add_users(4)
    net.add_location(0, 1.0, 2.0)
    net.add_location(1)
    net.add_post(0, 0, word_ids=[1, 2], hour=9, location_id=0)
    net.add_post(1, 0, word_ids=[2, 3], hour=10)
    net.add_post(2, 1, word_ids=[], hour=23, location_id=1)
    net.add_social_link(0, 1)
    net.add_social_link(1, 2)
    return net


class TestNodeManagement:
    def test_add_users_counts(self, network):
        assert network.n_users == 4

    def test_add_users_consecutive_ids(self):
        net = HeterogeneousNetwork()
        net.add_user(10)
        users = net.add_users(2)
        assert [u.user_id for u in users] == [11, 12]

    def test_duplicate_user_raises(self, network):
        with pytest.raises(DuplicateNodeError):
            network.add_user(0)

    def test_duplicate_location_raises(self, network):
        with pytest.raises(DuplicateNodeError):
            network.add_location(0)

    def test_duplicate_post_raises(self, network):
        with pytest.raises(DuplicateNodeError):
            network.add_post(0, 1)

    def test_post_unknown_author(self, network):
        with pytest.raises(UnknownNodeError, match="author"):
            network.add_post(99, 42)

    def test_post_unknown_location(self, network):
        with pytest.raises(UnknownNodeError, match="location"):
            network.add_post(99, 0, location_id=77)

    def test_post_invalid_hour(self, network):
        with pytest.raises(NetworkError, match="hour"):
            network.add_post(99, 0, hour=24)

    def test_user_lookup(self, network):
        assert network.user(2).user_id == 2
        with pytest.raises(UnknownNodeError):
            network.user(42)

    def test_post_lookup(self, network):
        assert network.post(1).author_id == 0
        with pytest.raises(UnknownNodeError):
            network.post(42)

    def test_location_lookup(self, network):
        assert network.location(0).latitude == 1.0
        with pytest.raises(UnknownNodeError):
            network.location(9)


class TestSocialLinks:
    def test_undirected(self, network):
        assert network.has_social_link(1, 0)
        assert network.has_social_link(0, 1)

    def test_self_link_rejected(self, network):
        with pytest.raises(NetworkError, match="self-links"):
            network.add_social_link(2, 2)

    def test_unknown_user_rejected(self, network):
        with pytest.raises(UnknownNodeError):
            network.add_social_link(0, 42)

    def test_idempotent_add(self, network):
        network.add_social_link(0, 1)
        assert network.n_social_links == 2

    def test_remove(self, network):
        network.remove_social_link(1, 0)
        assert not network.has_social_link(0, 1)

    def test_remove_missing_raises(self, network):
        with pytest.raises(NetworkError, match="no social link"):
            network.remove_social_link(0, 3)

    def test_neighbors(self, network):
        assert network.neighbors(1) == {0, 2}
        assert network.neighbors(3) == set()

    def test_neighbors_unknown_user(self, network):
        with pytest.raises(UnknownNodeError):
            network.neighbors(42)


class TestCountsAndStats:
    def test_counts(self, network):
        assert network.n_posts == 3
        assert network.n_locations == 2
        assert network.n_words == 3  # {1, 2, 3}
        assert network.n_checkins == 2
        assert network.n_social_links == 2

    def test_stats_keys(self, network):
        stats = network.stats()
        assert stats["users"] == 4
        assert stats["locate_links"] == 2
        assert stats["write_links"] == stats["posts"]

    def test_posts_of(self, network):
        assert [p.post_id for p in network.posts_of(0)] == [0, 1]
        assert network.posts_of(3) == []

    def test_posts_of_unknown(self, network):
        with pytest.raises(UnknownNodeError):
            network.posts_of(42)

    def test_posts_ordering(self, network):
        assert [p.post_id for p in network.posts()] == [0, 1, 2]


class TestMatrixViews:
    def test_adjacency_symmetric_binary(self, network):
        a = network.adjacency_matrix()
        assert a.shape == (4, 4)
        assert np.array_equal(a, a.T)
        assert set(np.unique(a)) <= {0.0, 1.0}
        assert np.all(np.diag(a) == 0)

    def test_adjacency_entries(self, network):
        a = network.adjacency_matrix()
        assert a[0, 1] == 1.0 and a[1, 2] == 1.0 and a[0, 3] == 0.0

    def test_degree_vector(self, network):
        degrees = network.degree_vector()
        assert list(degrees) == [1.0, 2.0, 1.0, 0.0]

    def test_user_index_sorted(self):
        net = HeterogeneousNetwork()
        net.add_user(7)
        net.add_user(3)
        assert net.user_index() == {3: 0, 7: 1}

    def test_repr(self, network):
        assert "users=4" in repr(network)
