"""Tests for repro.networks.io."""

import json

import pytest

from repro.exceptions import SerializationError
from repro.networks.heterogeneous import HeterogeneousNetwork
from repro.networks.io import (
    load_aligned_npz,
    load_network_json,
    network_from_dict,
    network_to_dict,
    save_aligned_npz,
    save_network_json,
)


@pytest.fixture()
def network():
    net = HeterogeneousNetwork("roundtrip")
    net.add_users(3)
    net.add_location(0, 12.5, -3.25)
    net.add_post(0, 1, word_ids=[4, 5], hour=13, location_id=0)
    net.add_post(1, 2, word_ids=[], hour=0)
    net.add_social_link(0, 2)
    return net


class TestDictRoundTrip:
    def test_roundtrip(self, network):
        rebuilt = network_from_dict(network_to_dict(network))
        assert rebuilt.name == network.name
        assert rebuilt.stats() == network.stats()
        assert rebuilt.social_links == network.social_links

    def test_posts_preserved(self, network):
        rebuilt = network_from_dict(network_to_dict(network))
        post = rebuilt.post(0)
        assert post.word_ids == (4, 5)
        assert post.hour == 13
        assert post.location_id == 0

    def test_location_coordinates(self, network):
        rebuilt = network_from_dict(network_to_dict(network))
        loc = rebuilt.location(0)
        assert loc.latitude == 12.5 and loc.longitude == -3.25

    def test_bad_version(self, network):
        payload = network_to_dict(network)
        payload["version"] = 999
        with pytest.raises(SerializationError, match="version"):
            network_from_dict(payload)

    def test_malformed_payload(self):
        with pytest.raises(SerializationError):
            network_from_dict({"version": 1, "name": "x"})

    def test_dict_is_json_serializable(self, network):
        json.dumps(network_to_dict(network))


class TestJsonFiles:
    def test_roundtrip(self, network, tmp_path):
        path = str(tmp_path / "net.json")
        save_network_json(network, path)
        rebuilt = load_network_json(path)
        assert rebuilt.stats() == network.stats()

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(SerializationError, match="invalid JSON"):
            load_network_json(str(path))


class TestAlignedNpz:
    def test_roundtrip(self, aligned, tmp_path):
        path = str(tmp_path / "bundle.npz")
        save_aligned_npz(aligned, path)
        rebuilt = load_aligned_npz(path)
        assert rebuilt.n_sources == aligned.n_sources
        assert rebuilt.target.stats() == aligned.target.stats()
        assert rebuilt.anchors[0].pairs == aligned.anchors[0].pairs
        assert (
            rebuilt.sources[0].social_links == aligned.sources[0].social_links
        )

    def test_missing_sidecar(self, aligned, tmp_path):
        path = str(tmp_path / "bundle.npz")
        save_aligned_npz(aligned, path)
        (tmp_path / "bundle.networks.json").unlink()
        with pytest.raises(SerializationError, match="side-car"):
            load_aligned_npz(path)
