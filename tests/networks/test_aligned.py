"""Tests for repro.networks.aligned."""

import pytest

from repro.exceptions import AlignmentError
from repro.networks.aligned import AlignedNetworks, AnchorLinks
from repro.networks.heterogeneous import HeterogeneousNetwork


def _network(name, n_users):
    net = HeterogeneousNetwork(name)
    net.add_users(n_users)
    return net


class TestAnchorLinks:
    def test_basic(self):
        anchors = AnchorLinks([(0, 5), (1, 6)])
        assert len(anchors) == 2
        assert (0, 5) in anchors
        assert (0, 6) not in anchors

    def test_map_forward_backward(self):
        anchors = AnchorLinks([(0, 5)])
        assert anchors.map_forward(0) == 5
        assert anchors.map_backward(5) == 0
        assert anchors.map_forward(1) is None
        assert anchors.map_backward(0) is None

    def test_one_to_one_first(self):
        with pytest.raises(AlignmentError, match="anchored twice"):
            AnchorLinks([(0, 5), (0, 6)])

    def test_one_to_one_second(self):
        with pytest.raises(AlignmentError, match="anchored twice"):
            AnchorLinks([(0, 5), (1, 5)])

    def test_reversed(self):
        anchors = AnchorLinks([(0, 5), (1, 6)]).reversed()
        assert anchors.map_forward(5) == 0
        assert anchors.map_forward(6) == 1

    def test_empty(self):
        anchors = AnchorLinks()
        assert len(anchors) == 0
        assert anchors.pairs == frozenset()


class TestAnchorSampling:
    def test_ratio_zero(self):
        anchors = AnchorLinks([(i, i) for i in range(10)])
        assert len(anchors.sample(0.0, random_state=0)) == 0

    def test_ratio_one(self):
        anchors = AnchorLinks([(i, i) for i in range(10)])
        sampled = anchors.sample(1.0, random_state=0)
        assert sampled.pairs == anchors.pairs

    def test_ratio_half(self):
        anchors = AnchorLinks([(i, i) for i in range(10)])
        assert len(anchors.sample(0.5, random_state=0)) == 5

    def test_subset(self):
        anchors = AnchorLinks([(i, i + 100) for i in range(20)])
        sampled = anchors.sample(0.3, random_state=1)
        assert sampled.pairs <= anchors.pairs

    def test_deterministic(self):
        anchors = AnchorLinks([(i, i) for i in range(20)])
        a = anchors.sample(0.4, random_state=7).pairs
        b = anchors.sample(0.4, random_state=7).pairs
        assert a == b

    def test_invalid_ratio(self):
        with pytest.raises(Exception):
            AnchorLinks([(0, 0)]).sample(1.5)


class TestAlignedNetworks:
    def test_basic(self):
        target = _network("t", 3)
        source = _network("s", 3)
        aligned = AlignedNetworks(target, [source], [AnchorLinks([(0, 0)])])
        assert aligned.n_sources == 1
        assert aligned.networks == [target, source]

    def test_count_mismatch(self):
        with pytest.raises(AlignmentError, match="anchor sets"):
            AlignedNetworks(_network("t", 2), [_network("s", 2)], [])

    def test_unknown_target_user(self):
        with pytest.raises(AlignmentError, match="target user"):
            AlignedNetworks(
                _network("t", 2), [_network("s", 2)], [AnchorLinks([(5, 0)])]
            )

    def test_unknown_source_user(self):
        with pytest.raises(AlignmentError, match="source"):
            AlignedNetworks(
                _network("t", 2), [_network("s", 2)], [AnchorLinks([(0, 5)])]
            )

    def test_anchor_ratio(self):
        aligned = AlignedNetworks(
            _network("t", 4),
            [_network("s", 4)],
            [AnchorLinks([(0, 0), (1, 1)])],
        )
        assert aligned.anchor_ratio() == pytest.approx(0.5)

    def test_sample_anchors_returns_copy(self):
        aligned = AlignedNetworks(
            _network("t", 4),
            [_network("s", 4)],
            [AnchorLinks([(i, i) for i in range(4)])],
        )
        sampled = aligned.sample_anchors(0.5, random_state=0)
        assert len(sampled.anchors[0]) == 2
        assert len(aligned.anchors[0]) == 4
        assert sampled.target is aligned.target


class TestGeneratedAligned:
    def test_fixture_shape(self, aligned):
        assert aligned.n_sources == 1
        assert aligned.target.n_users > 10

    def test_anchor_consistency(self, aligned):
        target_users = set(aligned.target.user_ids)
        source_users = set(aligned.sources[0].user_ids)
        for t, s in aligned.anchors[0].pairs:
            assert t in target_users and s in source_users
