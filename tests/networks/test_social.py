"""Tests for repro.networks.social."""

import numpy as np
import pytest

from repro.exceptions import NetworkError, UnknownNodeError
from repro.networks.heterogeneous import HeterogeneousNetwork
from repro.networks.social import SocialGraph


@pytest.fixture()
def adjacency():
    a = np.zeros((4, 4))
    for i, j in [(0, 1), (1, 2), (0, 2)]:
        a[i, j] = a[j, i] = 1.0
    return a


@pytest.fixture()
def graph(adjacency):
    return SocialGraph(adjacency)


class TestConstruction:
    def test_basic(self, graph):
        assert graph.n_users == 4
        assert graph.n_links == 3

    def test_rejects_rectangular(self):
        with pytest.raises(NetworkError, match="square"):
            SocialGraph(np.zeros((2, 3)))

    def test_rejects_asymmetric(self):
        a = np.zeros((2, 2))
        a[0, 1] = 1.0
        with pytest.raises(NetworkError, match="symmetric"):
            SocialGraph(a)

    def test_rejects_nonzero_diagonal(self):
        a = np.eye(2)
        with pytest.raises(NetworkError, match="diagonal"):
            SocialGraph(a)

    def test_rejects_non_binary(self, adjacency):
        adjacency[0, 1] = adjacency[1, 0] = 0.5
        with pytest.raises(NetworkError, match="binary"):
            SocialGraph(adjacency)

    def test_rejects_wrong_user_ids_length(self, adjacency):
        with pytest.raises(NetworkError, match="user_ids"):
            SocialGraph(adjacency, user_ids=[1, 2])

    def test_rejects_duplicate_user_ids(self, adjacency):
        with pytest.raises(NetworkError, match="duplicates"):
            SocialGraph(adjacency, user_ids=[1, 1, 2, 3])

    def test_adjacency_read_only(self, graph):
        with pytest.raises(ValueError):
            graph.adjacency[0, 1] = 0.0

    def test_from_network(self):
        net = HeterogeneousNetwork()
        net.add_users(3)
        net.add_social_link(0, 2)
        graph = SocialGraph.from_network(net)
        assert graph.n_links == 1
        assert graph.adjacency[0, 2] == 1.0


class TestQueries:
    def test_degrees(self, graph):
        assert list(graph.degrees()) == [2.0, 2.0, 2.0, 0.0]

    def test_degree_single(self, graph):
        assert graph.degree(3) == 0

    def test_neighbors(self, graph):
        assert graph.neighbors(0) == {1, 2}
        assert graph.neighbors(3) == set()

    def test_links_canonical(self, graph):
        assert graph.links() == {(0, 1), (0, 2), (1, 2)}

    def test_non_links(self, graph):
        assert set(graph.non_links()) == {(0, 3), (1, 3), (2, 3)}

    def test_links_and_non_links_partition(self, graph):
        n = graph.n_users
        assert len(graph.links()) + len(graph.non_links()) == n * (n - 1) // 2

    def test_common_neighbors(self, graph):
        assert graph.common_neighbors(0, 1) == {2}

    def test_density(self, graph):
        assert graph.density() == pytest.approx(0.5)

    def test_density_tiny(self):
        assert SocialGraph(np.zeros((1, 1))).density() == 0.0

    def test_index_of(self, adjacency):
        graph = SocialGraph(adjacency, user_ids=[10, 20, 30, 40])
        assert graph.index_of(30) == 2
        with pytest.raises(UnknownNodeError):
            graph.index_of(99)


class TestMasking:
    def test_mask_removes(self, graph):
        masked = graph.mask_links([(0, 1)])
        assert masked.n_links == 2
        assert (0, 1) not in masked.links()

    def test_mask_does_not_mutate_original(self, graph):
        graph.mask_links([(0, 1)])
        assert graph.n_links == 3

    def test_mask_missing_raises(self, graph):
        with pytest.raises(NetworkError, match="not present"):
            graph.mask_links([(0, 3)])

    def test_mask_preserves_user_ids(self, adjacency):
        graph = SocialGraph(adjacency, user_ids=[5, 6, 7, 8])
        masked = graph.mask_links([(0, 1)])
        assert masked.user_ids == [5, 6, 7, 8]
