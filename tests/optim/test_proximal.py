"""Tests for repro.optim.proximal."""

import numpy as np
import pytest

from repro.optim.proximal import (
    BoxProjection,
    L1Prox,
    TraceNormProx,
    singular_value_threshold,
    soft_threshold,
)
from repro.utils.matrices import trace_norm


class TestSoftThreshold:
    def test_shrinks_toward_zero(self):
        m = np.array([[3.0, -2.0], [0.5, -0.3]])
        out = soft_threshold(m, 1.0)
        assert np.allclose(out, [[2.0, -1.0], [0.0, 0.0]])

    def test_zero_threshold_identity(self):
        m = np.array([[1.0, -2.0]])
        assert np.array_equal(soft_threshold(m, 0.0), m)

    def test_negative_threshold_rejected(self):
        with pytest.raises(Exception):
            soft_threshold(np.zeros((2, 2)), -1.0)

    def test_sign_preserved(self, rng):
        m = rng.normal(size=(5, 5))
        out = soft_threshold(m, 0.1)
        nonzero = out != 0
        assert np.all(np.sign(out[nonzero]) == np.sign(m[nonzero]))

    def test_is_prox_of_l1(self, rng):
        """prox minimizes ½‖x − y‖² + t‖x‖₁ — check against a grid."""
        y = rng.normal(size=(3, 3))
        t = 0.5
        out = soft_threshold(y, t)
        objective = lambda x: 0.5 * np.sum((x - y) ** 2) + t * np.abs(x).sum()
        base = objective(out)
        for _ in range(50):
            perturbed = out + rng.normal(scale=0.05, size=out.shape)
            assert objective(perturbed) >= base - 1e-12


class TestSingularValueThreshold:
    def test_diagonal(self):
        m = np.diag([5.0, 2.0, 0.5])
        out = singular_value_threshold(m, 1.0)
        assert np.allclose(np.diag(out), [4.0, 1.0, 0.0])

    def test_reduces_rank(self, rng):
        m = rng.normal(size=(6, 6))
        singular = np.linalg.svd(m, compute_uv=False)
        out = singular_value_threshold(m, singular[2])
        out_singular = np.linalg.svd(out, compute_uv=False)
        assert (out_singular > 1e-10).sum() <= 2

    def test_zero_threshold_identity(self, rng):
        m = rng.normal(size=(4, 4))
        assert np.allclose(singular_value_threshold(m, 0.0), m)

    def test_reduces_trace_norm(self, rng):
        m = rng.normal(size=(5, 5))
        out = singular_value_threshold(m, 0.5)
        assert trace_norm(out) < trace_norm(m)

    def test_rectangular(self, rng):
        m = rng.normal(size=(4, 6))
        out = singular_value_threshold(m, 0.3)
        assert out.shape == (4, 6)


class TestL1Prox:
    def test_value(self):
        prox = L1Prox(2.0)
        assert prox.value(np.array([[1.0, -1.0]])) == 4.0

    def test_apply_scales_with_step(self):
        prox = L1Prox(1.0)
        m = np.array([[2.0]])
        assert prox.apply(m, 0.5)[0, 0] == 1.5

    def test_zero_weight_is_identity(self, rng):
        prox = L1Prox(0.0)
        m = rng.normal(size=(3, 3))
        assert np.array_equal(prox.apply(m, 1.0), m)


class TestTraceNormProx:
    def test_value(self):
        prox = TraceNormProx(2.0)
        assert prox.value(np.diag([1.0, 2.0])) == pytest.approx(6.0)

    def test_apply(self):
        prox = TraceNormProx(1.0)
        out = prox.apply(np.diag([3.0, 0.5]), 1.0)
        assert np.allclose(np.diag(out), [2.0, 0.0])


class TestBoxProjection:
    def test_clips(self):
        box = BoxProjection(0.0, 1.0)
        out = box.apply(np.array([[-1.0, 0.5, 2.0]]), 0.1)
        assert np.array_equal(out, [[0.0, 0.5, 1.0]])

    def test_unbounded_above(self):
        box = BoxProjection(0.0, None)
        out = box.apply(np.array([[-1.0, 5.0]]), 1.0)
        assert np.array_equal(out, [[0.0, 5.0]])

    def test_value_is_zero(self):
        assert BoxProjection().value(np.ones((2, 2))) == 0.0

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            BoxProjection(1.0, 0.0)

    def test_idempotent(self, rng):
        box = BoxProjection(0.0, 1.0)
        m = rng.normal(size=(4, 4))
        once = box.apply(m, 1.0)
        assert np.array_equal(once, box.apply(once, 1.0))
