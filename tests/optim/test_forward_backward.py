"""Tests for repro.optim.forward_backward.

The solvers are checked against problems with known closed-form solutions:

* pure quadratic → converges to the target;
* quadratic + ℓ1 → soft-thresholded target (the lasso prox identity);
* quadratic + box → clipped target.
"""

import numpy as np
import pytest

from repro.exceptions import OptimizationError
from repro.optim.convergence import ConvergenceCriterion, IterationHistory
from repro.optim.forward_backward import (
    ForwardBackwardSolver,
    GeneralizedForwardBackward,
)
from repro.optim.losses import SquaredFrobeniusLoss
from repro.optim.proximal import BoxProjection, L1Prox, TraceNormProx

TIGHT = ConvergenceCriterion(tolerance=1e-10, max_iterations=5000)


@pytest.fixture(params=[ForwardBackwardSolver, GeneralizedForwardBackward])
def solver_cls(request):
    return request.param


class TestKnownSolutions:
    def test_pure_quadratic(self, rng):
        target = rng.random((4, 4))
        solver = ForwardBackwardSolver(step_size=0.2, criterion=TIGHT)
        out = solver.solve(np.zeros((4, 4)), [SquaredFrobeniusLoss(target)], [])
        assert np.allclose(out, target, atol=1e-6)

    def test_lasso_identity(self, solver_cls, rng):
        """argmin ‖S−A‖² + γ‖S‖₁ = soft_threshold(A, γ/2)."""
        target = rng.normal(size=(4, 4))
        gamma = 0.6
        solver = solver_cls(step_size=0.1, criterion=TIGHT)
        out = solver.solve(
            np.zeros((4, 4)),
            [SquaredFrobeniusLoss(target)],
            [L1Prox(gamma)],
        )
        expected = np.sign(target) * np.maximum(np.abs(target) - gamma / 2, 0)
        assert np.allclose(out, expected, atol=1e-5)

    def test_box_constrained_quadratic(self, solver_cls, rng):
        target = rng.normal(size=(4, 4)) * 2
        solver = solver_cls(step_size=0.1, criterion=TIGHT)
        out = solver.solve(
            np.zeros((4, 4)),
            [SquaredFrobeniusLoss(target)],
            [BoxProjection(0.0, 1.0)],
        )
        assert np.allclose(out, np.clip(target, 0, 1), atol=1e-5)

    def test_svt_identity(self, solver_cls, rng):
        """argmin ‖S−A‖² + τ‖S‖* = SVT(A, τ/2)."""
        target = rng.normal(size=(5, 5))
        tau = 1.0
        solver = solver_cls(step_size=0.05, criterion=TIGHT)
        out = solver.solve(
            np.zeros((5, 5)),
            [SquaredFrobeniusLoss(target)],
            [TraceNormProx(tau)],
        )
        u, s, vt = np.linalg.svd(target, full_matrices=False)
        expected = (u * np.maximum(s - tau / 2, 0)) @ vt
        assert np.allclose(out, expected, atol=1e-4)


class TestBehaviour:
    def test_history_recorded(self, rng):
        target = rng.random((3, 3))
        history = IterationHistory()
        solver = ForwardBackwardSolver(
            step_size=0.1,
            criterion=ConvergenceCriterion(tolerance=1e-8, max_iterations=50),
        )
        solver.solve(np.zeros((3, 3)), [SquaredFrobeniusLoss(target)], [], history)
        assert history.n_iterations > 0
        assert history.update_norms[-1] < history.update_norms[0]

    def test_objective_recording(self, rng):
        target = rng.random((3, 3))
        history = IterationHistory()
        solver = ForwardBackwardSolver(
            step_size=0.1,
            criterion=ConvergenceCriterion(tolerance=1e-8, max_iterations=30),
            record_objective=True,
        )
        solver.solve(
            np.zeros((3, 3)),
            [SquaredFrobeniusLoss(target)],
            [L1Prox(0.1)],
            history,
        )
        assert len(history.objective_values) == history.n_iterations
        assert history.objective_values[-1] <= history.objective_values[0]

    def test_max_iterations_respected(self, rng):
        target = rng.random((3, 3))
        history = IterationHistory()
        solver = ForwardBackwardSolver(
            step_size=1e-4,
            criterion=ConvergenceCriterion(tolerance=1e-12, max_iterations=7),
        )
        solver.solve(np.zeros((3, 3)), [SquaredFrobeniusLoss(target)], [], history)
        assert history.n_iterations == 7

    def test_no_terms_rejected(self):
        solver = ForwardBackwardSolver()
        with pytest.raises(OptimizationError):
            solver.solve(np.zeros((2, 2)), [], [])

    def test_gfb_requires_prox(self):
        solver = GeneralizedForwardBackward()
        with pytest.raises(OptimizationError, match="prox"):
            solver.solve(np.zeros((2, 2)), [SquaredFrobeniusLoss(np.zeros((2, 2)))], [])

    def test_solvers_agree_on_composite(self, rng):
        """Sequential and generalized FB should reach the same optimum."""
        target = rng.normal(size=(4, 4))
        terms = lambda: (
            [SquaredFrobeniusLoss(target)],
            [L1Prox(0.3), BoxProjection(0.0, None)],
        )
        a = ForwardBackwardSolver(step_size=0.02, criterion=TIGHT).solve(
            np.zeros((4, 4)), *terms()
        )
        b = GeneralizedForwardBackward(step_size=0.02, criterion=TIGHT).solve(
            np.zeros((4, 4)), *terms()
        )
        assert np.allclose(a, b, atol=1e-3)

    def test_initial_not_mutated(self, rng):
        initial = np.zeros((3, 3))
        ForwardBackwardSolver(step_size=0.1).solve(
            initial, [SquaredFrobeniusLoss(rng.random((3, 3)))], []
        )
        assert not initial.any()
