"""Failure-injection tests for the optimization stack.

Production solvers must fail loudly and informatively, not return garbage:
divergent step sizes, NaN inputs and absurd configurations all raise
:class:`~repro.exceptions.OptimizationError` with actionable messages.
"""

import numpy as np
import pytest

from repro.exceptions import OptimizationError
from repro.optim.cccp import CCCPSolver
from repro.optim.convergence import ConvergenceCriterion
from repro.optim.forward_backward import (
    ForwardBackwardSolver,
    GeneralizedForwardBackward,
)
from repro.optim.losses import SquaredFrobeniusLoss
from repro.optim.proximal import BoxProjection, L1Prox


class _ExplodingLoss:
    """A smooth term whose gradient amplifies the iterate (L >> 2/θ)."""

    def __init__(self, factor: float = 1e6):
        self.factor = factor

    def value(self, matrix):
        return self.factor * float(np.sum(matrix**2))

    def gradient(self, matrix):
        return 2 * self.factor * matrix


class TestDivergenceGuard:
    def test_forward_backward_detects_divergence(self, rng):
        solver = ForwardBackwardSolver(
            step_size=1.0,
            criterion=ConvergenceCriterion(tolerance=1e-12, max_iterations=500),
        )
        with pytest.raises(OptimizationError, match="diverged"):
            solver.solve(rng.random((4, 4)) + 1.0, [_ExplodingLoss()], [])

    def test_gfb_detects_divergence(self, rng):
        solver = GeneralizedForwardBackward(
            step_size=1.0,
            criterion=ConvergenceCriterion(tolerance=1e-12, max_iterations=500),
        )
        with pytest.raises(OptimizationError, match="diverged"):
            solver.solve(
                rng.random((4, 4)) + 1.0,
                [_ExplodingLoss()],
                [L1Prox(0.0)],
            )

    def test_message_names_step_size(self, rng):
        solver = ForwardBackwardSolver(step_size=1.0)
        with pytest.raises(OptimizationError, match="step_size"):
            solver.solve(np.ones((3, 3)), [_ExplodingLoss()], [])

    def test_nan_input_detected(self):
        target = np.zeros((3, 3))
        start = np.zeros((3, 3))
        start[0, 0] = np.nan
        solver = ForwardBackwardSolver(step_size=0.1)
        with pytest.raises(OptimizationError, match="diverged"):
            solver.solve(start, [SquaredFrobeniusLoss(target)], [])

    def test_stable_problem_unaffected(self, rng):
        """The guard must not fire on well-conditioned problems."""
        target = rng.random((4, 4))
        solver = ForwardBackwardSolver(step_size=0.2)
        out = solver.solve(np.zeros((4, 4)), [SquaredFrobeniusLoss(target)], [])
        assert np.isfinite(out).all()


class TestCCCPFailures:
    def test_divergent_inner_solver_propagates(self, rng):
        solver = CCCPSolver(
            loss=_ExplodingLoss(),
            prox_terms=[BoxProjection(-1e20, None)],
            inner_solver=ForwardBackwardSolver(step_size=1.0),
        )
        with pytest.raises(OptimizationError, match="diverged"):
            solver.solve(rng.random((3, 3)) + 1.0)
