"""Tests for the truncated (scalable) singular value thresholding path."""

import warnings

import numpy as np
import pytest

from repro.exceptions import TruncatedSVTWarning
from repro.observability.tracer import Tracer
from repro.optim.proximal import (
    TraceNormProx,
    singular_value_threshold,
    truncated_singular_value_threshold,
)


@pytest.fixture()
def low_rank_plus_noise(rng):
    """A 40×40 matrix with 3 dominant directions plus small noise."""
    u = rng.normal(size=(40, 3))
    base = u @ u.T * 5.0
    return base + rng.normal(scale=0.05, size=(40, 40))


class TestTruncatedSvt:
    def test_matches_exact_when_threshold_prunes(self, low_rank_plus_noise):
        """With the tail below the threshold, truncated == exact SVT."""
        singular = np.linalg.svd(low_rank_plus_noise, compute_uv=False)
        threshold = float(singular[3] + 1.0)  # keeps only the top 3
        exact = singular_value_threshold(low_rank_plus_noise, threshold)
        truncated = truncated_singular_value_threshold(
            low_rank_plus_noise, threshold, rank=5
        )
        assert np.allclose(exact, truncated, atol=1e-6)

    def test_falls_back_to_dense_for_large_rank(self, rng):
        matrix = rng.normal(size=(6, 6))
        exact = singular_value_threshold(matrix, 0.2)
        out = truncated_singular_value_threshold(matrix, 0.2, rank=10)
        assert np.allclose(exact, out)

    def test_invalid_rank(self, rng):
        with pytest.raises(ValueError, match="rank"):
            truncated_singular_value_threshold(rng.normal(size=(4, 4)), 0.1, 0)

    def test_output_rank_bounded(self, low_rank_plus_noise):
        out = truncated_singular_value_threshold(
            low_rank_plus_noise, 0.5, rank=4
        )
        singular = np.linalg.svd(out, compute_uv=False)
        assert (singular > 1e-8).sum() <= 4


class TestLossyTruncationWarning:
    def test_warns_when_tail_exceeds_threshold(self, rng):
        """A rank budget too small for the spectrum must be flagged."""
        u = rng.normal(size=(30, 6))
        matrix = u @ u.T * 5.0  # six comparable directions
        tracer = Tracer()
        with pytest.warns(TruncatedSVTWarning):
            truncated_singular_value_threshold(
                matrix, 0.01, rank=2, tracer=tracer
            )
        assert tracer.counters["svt.lossy_truncations"] == 1
        assert tracer.metrics["svt.tail_excess"][0] > 0.0

    def test_silent_when_tail_below_threshold(self, low_rank_plus_noise):
        singular = np.linalg.svd(low_rank_plus_noise, compute_uv=False)
        threshold = float(singular[3] + 1.0)
        tracer = Tracer()
        with warnings.catch_warnings():
            warnings.simplefilter("error", TruncatedSVTWarning)
            truncated_singular_value_threshold(
                low_rank_plus_noise, threshold, rank=5, tracer=tracer
            )
        assert "svt.lossy_truncations" not in tracer.counters


class TestTraceNormProxMaxRank:
    def test_max_rank_path(self, low_rank_plus_noise):
        singular = np.linalg.svd(low_rank_plus_noise, compute_uv=False)
        threshold = float(singular[3] + 1.0)
        exact = TraceNormProx(threshold).apply(low_rank_plus_noise, 1.0)
        truncated = TraceNormProx(threshold, max_rank=5).apply(
            low_rank_plus_noise, 1.0
        )
        assert np.allclose(exact, truncated, atol=1e-6)

    def test_invalid_max_rank(self):
        with pytest.raises(ValueError):
            TraceNormProx(1.0, max_rank=0)

    def test_repr_mentions_rank(self):
        assert "max_rank=7" in repr(TraceNormProx(1.0, max_rank=7))


class TestSlamPredSvdRank:
    def test_model_accepts_svd_rank(self, task, split):
        from repro.evaluation.metrics import auc_score
        from repro.models.slampred import SlamPredT

        model = SlamPredT(svd_rank=20).fit(task)
        auc = auc_score(model.score_pairs(split.test_pairs), split.test_labels)
        assert auc > 0.55

    def test_invalid_svd_rank(self):
        from repro.exceptions import ConfigurationError
        from repro.models.slampred import SlamPred

        with pytest.raises(ConfigurationError):
            SlamPred(svd_rank=0)
