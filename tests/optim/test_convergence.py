"""Tests for repro.optim.convergence."""

import numpy as np
import pytest

from repro.optim.convergence import ConvergenceCriterion, IterationHistory


class TestCriterion:
    def test_satisfied(self):
        criterion = ConvergenceCriterion(tolerance=0.1)
        a = np.zeros((2, 2))
        b = np.full((2, 2), 0.01)
        assert criterion.satisfied(a, b)

    def test_not_satisfied(self):
        criterion = ConvergenceCriterion(tolerance=0.01)
        a = np.zeros((2, 2))
        b = np.full((2, 2), 0.1)
        assert not criterion.satisfied(a, b)

    def test_invalid_tolerance(self):
        with pytest.raises(Exception):
            ConvergenceCriterion(tolerance=0.0)

    def test_invalid_max_iterations(self):
        with pytest.raises(Exception):
            ConvergenceCriterion(max_iterations=0)

    def test_frozen(self):
        criterion = ConvergenceCriterion()
        with pytest.raises(Exception):
            criterion.tolerance = 1.0


class TestHistory:
    def test_record(self):
        history = IterationHistory()
        history.record(np.ones((2, 2)), np.zeros((2, 2)))
        assert history.variable_norms == [4.0]
        assert history.update_norms == [4.0]
        assert history.objective_values == []

    def test_record_with_objective(self):
        history = IterationHistory()
        history.record(np.ones((2, 2)), np.ones((2, 2)), objective=3.5)
        assert history.objective_values == [3.5]
        assert history.update_norms == [0.0]

    def test_n_iterations(self):
        history = IterationHistory()
        for _ in range(3):
            history.record(np.zeros((1, 1)), np.zeros((1, 1)))
        assert history.n_iterations == 3

    def test_extend(self):
        a = IterationHistory([1.0], [0.1], [5.0])
        b = IterationHistory([2.0], [0.2], [])
        a.extend(b)
        assert a.variable_norms == [1.0, 2.0]
        assert a.update_norms == [0.1, 0.2]
        assert a.objective_values == [5.0]
