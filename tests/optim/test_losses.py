"""Tests for repro.optim.losses."""

import numpy as np
import pytest

from repro.exceptions import OptimizationError
from repro.optim.losses import (
    LinearizedIntimacyTerm,
    MaskedSquaredLoss,
    SquaredFrobeniusLoss,
    empirical_link_loss,
    intimacy_score,
)


class TestSquaredFrobenius:
    def test_value_at_target_is_zero(self, rng):
        target = rng.random((4, 4))
        assert SquaredFrobeniusLoss(target).value(target) == 0.0

    def test_value(self):
        loss = SquaredFrobeniusLoss(np.zeros((2, 2)))
        assert loss.value(np.ones((2, 2))) == 4.0

    def test_gradient(self):
        loss = SquaredFrobeniusLoss(np.zeros((2, 2)))
        grad = loss.gradient(np.ones((2, 2)))
        assert np.array_equal(grad, 2 * np.ones((2, 2)))

    def test_gradient_matches_finite_difference(self, rng):
        target = rng.random((3, 3))
        loss = SquaredFrobeniusLoss(target)
        point = rng.random((3, 3))
        grad = loss.gradient(point)
        eps = 1e-6
        bump = np.zeros_like(point)
        bump[1, 2] = eps
        numeric = (loss.value(point + bump) - loss.value(point - bump)) / (2 * eps)
        assert grad[1, 2] == pytest.approx(numeric, rel=1e-4)

    def test_rejects_rectangular(self):
        with pytest.raises(OptimizationError):
            SquaredFrobeniusLoss(np.zeros((2, 3)))

    def test_lipschitz(self):
        assert SquaredFrobeniusLoss(np.zeros((2, 2))).lipschitz == 2.0


class TestMaskedLoss:
    def test_only_observed_count(self):
        target = np.zeros((2, 2))
        mask = np.array([[1.0, 0.0], [0.0, 0.0]])
        loss = MaskedSquaredLoss(target, mask)
        assert loss.value(np.ones((2, 2))) == 1.0

    def test_gradient_zero_off_mask(self):
        target = np.zeros((2, 2))
        mask = np.array([[1.0, 0.0], [0.0, 1.0]])
        grad = MaskedSquaredLoss(target, mask).gradient(np.ones((2, 2)))
        assert grad[0, 1] == 0.0 and grad[0, 0] == 2.0

    def test_rejects_non_binary_mask(self):
        with pytest.raises(OptimizationError, match="binary"):
            MaskedSquaredLoss(np.zeros((2, 2)), 0.5 * np.ones((2, 2)))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(OptimizationError):
            MaskedSquaredLoss(np.zeros((2, 2)), np.ones((3, 3)))


class TestLinearizedIntimacy:
    def test_value(self):
        term = LinearizedIntimacyTerm(np.ones((2, 2)))
        assert term.value(np.full((2, 2), 2.0)) == -8.0

    def test_gradient_constant(self, rng):
        g = rng.random((3, 3))
        term = LinearizedIntimacyTerm(g)
        assert np.array_equal(term.gradient(rng.random((3, 3))), -g)

    def test_rejects_rectangular(self):
        with pytest.raises(OptimizationError):
            LinearizedIntimacyTerm(np.zeros((2, 3)))


class TestEmpiricalLoss:
    def test_all_correct(self):
        predictor = np.array([[0.0, 0.9], [0.9, 0.0]])
        adjacency = np.array([[0.0, 1.0], [1.0, 0.0]])
        assert empirical_link_loss(predictor, adjacency, [(0, 1)]) == 0.0

    def test_all_wrong(self):
        predictor = np.zeros((2, 2))
        adjacency = np.array([[0.0, 1.0], [1.0, 0.0]])
        assert empirical_link_loss(predictor, adjacency, [(0, 1)]) == 1.0

    def test_empty_links(self):
        assert empirical_link_loss(np.zeros((2, 2)), np.zeros((2, 2)), []) == 0.0

    def test_fraction(self):
        predictor = np.array(
            [[0.0, 0.9, 0.0], [0.9, 0.0, 0.0], [0.0, 0.0, 0.0]]
        )
        adjacency = np.ones((3, 3)) - np.eye(3)
        loss = empirical_link_loss(predictor, adjacency, [(0, 1), (0, 2), (1, 2)])
        assert loss == pytest.approx(2.0 / 3.0)


class TestIntimacyScore:
    def test_value(self):
        predictor = np.array([[0.0, 1.0], [1.0, 0.0]])
        features = np.ones((2, 2, 2))
        assert intimacy_score(predictor, features) == 4.0

    def test_absolute_values(self):
        predictor = np.array([[0.0, -1.0], [-1.0, 0.0]])
        features = np.ones((1, 2, 2))
        assert intimacy_score(predictor, features) == 2.0

    def test_rejects_wrong_rank(self):
        with pytest.raises(OptimizationError):
            intimacy_score(np.zeros((2, 2)), np.zeros((2, 2)))
