"""Tests for repro.optim.cccp."""

import numpy as np
import pytest

from repro.exceptions import OptimizationError
from repro.optim.cccp import CCCPSolver
from repro.optim.convergence import ConvergenceCriterion
from repro.optim.forward_backward import ForwardBackwardSolver
from repro.optim.losses import SquaredFrobeniusLoss
from repro.optim.proximal import BoxProjection, L1Prox, TraceNormProx


def _solver(target, gradient=None, gamma=0.1, tau=0.1, inner=20, outer=30):
    return CCCPSolver(
        loss=SquaredFrobeniusLoss(target),
        prox_terms=[TraceNormProx(tau), L1Prox(gamma), BoxProjection(0.0, None)],
        intimacy_gradient=gradient,
        inner_solver=ForwardBackwardSolver(
            step_size=0.05,
            criterion=ConvergenceCriterion(tolerance=1e-7, max_iterations=inner),
        ),
        outer_criterion=ConvergenceCriterion(
            tolerance=1e-6, max_iterations=outer
        ),
    )


@pytest.fixture()
def adjacency(rng):
    a = (rng.random((8, 8)) < 0.3).astype(float)
    a = np.triu(a, 1)
    a = a + a.T
    return a


class TestSolve:
    def test_converges(self, adjacency):
        result = _solver(adjacency).solve(adjacency)
        assert result.converged
        assert result.history.update_norms[-1] < 1e-5

    def test_solution_nonnegative(self, adjacency):
        result = _solver(adjacency).solve(adjacency)
        assert result.solution.min() >= 0.0

    def test_update_norms_decay(self, adjacency):
        result = _solver(adjacency).solve(adjacency)
        norms = result.history.update_norms
        assert norms[-1] < norms[0]

    def test_round_norms_recorded(self, adjacency):
        result = _solver(adjacency).solve(adjacency)
        assert len(result.round_norms) == result.n_rounds

    def test_intimacy_gradient_lifts_entries(self, adjacency):
        """Pairs with high intimacy should end with higher scores."""
        gradient = np.zeros_like(adjacency)
        i, j = 0, 7
        adjacency[i, j] = adjacency[j, i] = 0.0
        gradient[i, j] = gradient[j, i] = 1.0
        plain = _solver(adjacency).solve(adjacency).solution
        pulled = _solver(adjacency, gradient).solve(adjacency).solution
        assert pulled[i, j] > plain[i, j]

    def test_gradient_shape_mismatch(self, adjacency):
        solver = _solver(adjacency, np.zeros((3, 3)))
        with pytest.raises(OptimizationError, match="shape"):
            solver.solve(adjacency)

    def test_rejects_rectangular_initial(self, adjacency):
        with pytest.raises(OptimizationError, match="square"):
            _solver(adjacency).solve(np.zeros((2, 3)))

    def test_outer_budget_respected(self, adjacency):
        solver = _solver(adjacency, inner=2, outer=3)
        solver.outer_criterion = ConvergenceCriterion(
            tolerance=1e-15, max_iterations=3
        )
        result = solver.solve(adjacency)
        assert result.n_rounds == 3
        assert not result.converged

    def test_sparsity_regularizer_sparsifies(self, adjacency):
        light = CCCPSolver(
            loss=SquaredFrobeniusLoss(adjacency),
            prox_terms=[L1Prox(0.01), BoxProjection(0.0, None)],
            inner_solver=ForwardBackwardSolver(step_size=0.05),
        ).solve(adjacency)
        heavy = CCCPSolver(
            loss=SquaredFrobeniusLoss(adjacency),
            prox_terms=[L1Prox(1.5), BoxProjection(0.0, None)],
            inner_solver=ForwardBackwardSolver(step_size=0.05),
        ).solve(adjacency)
        assert np.abs(heavy.solution).sum() < np.abs(light.solution).sum()

    def test_trace_regularizer_reduces_rank(self, adjacency):
        from repro.utils.matrices import effective_rank

        light = CCCPSolver(
            loss=SquaredFrobeniusLoss(adjacency),
            prox_terms=[TraceNormProx(0.01)],
            inner_solver=ForwardBackwardSolver(step_size=0.05),
        ).solve(adjacency)
        heavy = CCCPSolver(
            loss=SquaredFrobeniusLoss(adjacency),
            prox_terms=[TraceNormProx(3.0)],
            inner_solver=ForwardBackwardSolver(step_size=0.05),
        ).solve(adjacency)
        assert effective_rank(heavy.solution, tol=1e-6) <= effective_rank(
            light.solution, tol=1e-6
        )

    def test_deterministic(self, adjacency):
        a = _solver(adjacency).solve(adjacency).solution
        b = _solver(adjacency).solve(adjacency).solution
        assert np.array_equal(a, b)


class TestObjectiveMonotonicity:
    def test_objective_decreases_across_rounds(self, adjacency):
        """CCCP theory (Sriperumbudur & Lanckriet): the objective u − v is
        non-increasing along the iterate sequence."""
        gradient = np.abs(adjacency @ adjacency)
        peak = gradient.max()
        if peak > 0:
            gradient = gradient / peak
        loss = SquaredFrobeniusLoss(adjacency)
        prox = [TraceNormProx(0.5), L1Prox(0.05), BoxProjection(0.0, None)]
        solver = CCCPSolver(
            loss=loss,
            prox_terms=prox,
            intimacy_gradient=gradient,
            inner_solver=ForwardBackwardSolver(
                step_size=0.05,
                criterion=ConvergenceCriterion(tolerance=1e-9, max_iterations=40),
            ),
            outer_criterion=ConvergenceCriterion(
                tolerance=1e-7, max_iterations=20
            ),
        )

        def objective(matrix):
            value = loss.value(matrix)
            value += sum(term.value(matrix) for term in prox)
            value -= float((gradient * matrix).sum())  # v(S) = <S, G>
            return value

        # Re-run manually to capture per-round iterates.
        current = adjacency.copy()
        values = [objective(current)]
        from repro.optim.losses import LinearizedIntimacyTerm

        smooth = [loss, LinearizedIntimacyTerm(gradient)]
        for _ in range(8):
            current = solver.inner_solver.solve(current, smooth, prox)
            values.append(objective(current))
        for before, after in zip(values, values[1:]):
            assert after <= before + 1e-6
