"""Golden regression: the Figure 3 convergence run must match the archive.

``results/run.figure3.json`` is the archived objective trajectory of the
seed implementation.  Replaying the experiment and asserting the series
match (within floating-point tolerance) pins the solver numerics, so
telemetry instrumentation or solver refactors cannot silently change what
the optimizer computes.  If a change is *intended* to alter numerics,
regenerate the archive with ``python -m repro.experiments figure3 --json
results/run.figure3.json`` and call the change out in review.
"""

import json
import os

import numpy as np
import pytest

from repro.experiments.figure3 import run_figure3
from repro.observability.tracer import Tracer

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "..", "..", "results", "run.figure3.json"
)


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN_PATH, "r", encoding="utf-8") as handle:
        return json.load(handle)


@pytest.fixture(scope="module")
def replay():
    """One traced replay shared by every assertion in the module."""
    tracer = Tracer()
    result = run_figure3(tracer=tracer)
    return result, tracer


class TestGoldenFigure3:
    def test_iteration_counts_match(self, golden, replay):
        result, _ = replay
        assert result["n_iterations"] == golden["n_iterations"]
        assert result["n_rounds"] == golden["n_rounds"]
        assert result["converged"] == golden["converged"]

    def test_variable_norm_trajectory_matches(self, golden, replay):
        result, _ = replay
        assert np.allclose(
            result["variable_norms"],
            golden["variable_norms"],
            rtol=1e-4,
            atol=1e-6,
        )

    def test_update_norm_trajectory_matches(self, golden, replay):
        result, _ = replay
        assert np.allclose(
            result["update_norms"],
            golden["update_norms"],
            rtol=1e-4,
            atol=1e-6,
        )

    def test_telemetry_covers_every_iteration(self, golden, replay):
        """The tracer sees exactly the iterations the history records."""
        result, tracer = replay
        assert len(tracer.iterations) == golden["n_iterations"]
        assert tracer.counters["cccp.rounds"] == golden["n_rounds"]
        # The records are the history's own objects, not copies.
        assert all(
            record.objective_terms for record in tracer.iterations
        ), "traced records should carry the objective breakdown"
