"""Tests for the experiment reproductions (small-scale runs)."""

import pytest

from repro.experiments.figure3 import run_figure3
from repro.experiments.figure4 import run_figure4
from repro.experiments.figure5 import run_figure5
from repro.experiments.registry import EXPERIMENTS, get_experiment
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.exceptions import ConfigurationError


class TestRegistry:
    def test_all_experiments_present(self):
        assert set(EXPERIMENTS) == {
            "table1",
            "table2",
            "figure3",
            "figure4",
            "figure5",
            "streaming-staleness",
        }

    def test_lookup(self):
        assert callable(get_experiment("table1"))

    def test_unknown(self):
        with pytest.raises(ConfigurationError, match="unknown experiment"):
            get_experiment("table99")


class TestTable1:
    def test_stats_structure(self):
        result = run_table1(scale=50, random_state=0)
        assert len(result["stats"]) == 2
        for stats in result["stats"].values():
            assert stats["users"] > 0
            assert stats["posts"] > 0
        assert result["anchors"] > 0
        assert "Table I" in result["text"]

    def test_twitter_like_posts_more(self):
        result = run_table1(scale=80, random_state=0)
        stats = result["stats"]
        assert (
            stats["twitter-like"]["posts"] > stats["foursquare-like"]["posts"]
        )


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table2(
            scale=50, ratios=(0.0, 1.0), n_folds=2, precision_k=10,
            random_state=5,
        )

    def test_all_methods_present(self, result):
        assert len(result["sweep"].methods) == 12

    def test_tables_rendered(self, result):
        assert "SLAMPRED" in result["auc_text"]
        assert "Precision@10" in result["precision_text"]

    def test_transfer_methods_improve(self, result):
        sweep = result["sweep"]
        series = sweep.series("SLAMPRED", "auc")
        assert series[-1] >= series[0] - 0.02

    def test_flat_methods_constant(self, result):
        sweep = result["sweep"]
        for method in ("SLAMPRED-T", "JC", "CN", "PA"):
            series = sweep.series(method, "auc")
            assert series[0] == series[-1]


class TestFigure3:
    def test_convergence_series(self):
        result = run_figure3(scale=50, random_state=0)
        assert result["n_iterations"] > 0
        assert len(result["variable_norms"]) == result["n_iterations"]
        # Figure 3's observation: updates decay toward zero.
        assert result["update_norms"][-1] < result["update_norms"][0]
        assert "Figure 3" in result["text"]


class TestAlphaFigures:
    def test_figure4_curves(self):
        result = run_figure4(
            fixed_alpha_t=(1.0,), alphas=(0.0, 1.0), scale=50, n_folds=2,
            precision_k=10, random_state=0,
        )
        assert (1.0, "auc") in result["curves"]
        assert len(result["curves"][(1.0, "auc")]) == 2

    def test_figure5_curves(self):
        result = run_figure5(
            fixed_alpha_s=(0.0,), alphas=(0.0, 1.0), scale=50, n_folds=2,
            precision_k=10, random_state=0,
        )
        assert (0.0, "auc") in result["curves"]
        assert "alpha_t" in result["text"]

    def test_invalid_sweep_parameter(self):
        from repro.experiments._alpha_sweep import run_alpha_sweep

        with pytest.raises(ValueError, match="sweep_parameter"):
            run_alpha_sweep("alpha_x", fixed_values=(0.0,))


class TestCli:
    def test_main_runs_table1(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["table1", "--scale", "40", "--seed", "1"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_parser_rejects_unknown(self):
        from repro.experiments.__main__ import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["tableX"])


class TestCliAll:
    def test_all_runs_everything(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["all", "--scale", "40", "--folds", "2", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "Table II" in out
        assert "Figure 3" in out
        assert "alpha_s" in out and "alpha_t" in out
