"""Tests for repro.experiments.serialize and the --json CLI flag."""

import json

import numpy as np
import pytest

from repro.evaluation.anchor_sweep import AnchorSweepResult
from repro.evaluation.harness import EvaluationResult
from repro.experiments.serialize import (
    dump_result,
    evaluation_to_dict,
    sweep_to_dict,
    to_jsonable,
)


@pytest.fixture()
def sweep():
    result = AnchorSweepResult(ratios=[0.0, 1.0])
    cell = EvaluationResult("M", {"auc": [0.5, 0.7]})
    result.table["M"] = {0.0: cell, 1.0: cell}
    return result


class TestConverters:
    def test_evaluation_to_dict(self):
        result = EvaluationResult("X", {"auc": [0.4, 0.6]})
        payload = evaluation_to_dict(result)
        assert payload["model"] == "X"
        assert payload["metrics"]["auc"]["mean"] == pytest.approx(0.5)
        assert payload["metrics"]["auc"]["values"] == [0.4, 0.6]

    def test_sweep_to_dict(self, sweep):
        payload = sweep_to_dict(sweep)
        assert payload["ratios"] == [0.0, 1.0]
        assert "0.0" in payload["methods"]["M"]

    def test_numpy_conversion(self):
        payload = to_jsonable(
            {"array": np.arange(3), "scalar": np.float64(1.5), "i": np.int32(2)}
        )
        assert payload == {"array": [0, 1, 2], "scalar": 1.5, "i": 2}

    def test_tuple_keys_flattened(self):
        payload = to_jsonable({(1.0, "auc"): [0.5]})
        assert payload == {"1.0/auc": [0.5]}

    def test_unknown_objects_stringified(self):
        class Odd:
            def __repr__(self):
                return "<odd>"

        assert to_jsonable({"x": Odd()}) == {"x": "<odd>"}

    def test_everything_json_dumps(self, sweep):
        json.dumps(to_jsonable({"sweep": sweep, "nested": [(1, 2), None]}))


class TestDumpResult:
    def test_roundtrip(self, sweep, tmp_path):
        path = str(tmp_path / "out.json")
        dump_result({"sweep": sweep, "note": "hello"}, path)
        with open(path) as handle:
            loaded = json.load(handle)
        assert loaded["note"] == "hello"
        assert loaded["sweep"]["ratios"] == [0.0, 1.0]


class TestCliJson:
    def test_single_experiment_json(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        path = str(tmp_path / "t1.json")
        assert main(
            ["table1", "--scale", "40", "--seed", "1", "--json", path]
        ) == 0
        with open(path) as handle:
            loaded = json.load(handle)
        assert loaded["anchors"] > 0
        assert "written" in capsys.readouterr().out

    def test_all_writes_per_experiment(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        base = str(tmp_path / "run")
        assert main(
            [
                "all", "--scale", "40", "--folds", "2", "--seed", "1",
                "--json", base,
            ]
        ) == 0
        for name in ("table1", "table2", "figure3", "figure4", "figure5"):
            with open(f"{base}.{name}.json") as handle:
                json.load(handle)
