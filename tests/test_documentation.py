"""Documentation coverage: every public item carries a docstring.

Walks every module under :mod:`repro` and asserts that public modules,
classes, functions and methods are documented — the library's deliverable
includes doc comments on every public item.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if "__main__" in info.name:
            continue
        yield importlib.import_module(info.name)


MODULES = list(_iter_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_documented(module):
    assert module.__doc__, f"{module.__name__} lacks a module docstring"


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_members_documented(module):
    undocumented = []
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(member) or inspect.isfunction(member)):
            continue
        if getattr(member, "__module__", None) != module.__name__:
            continue  # re-export; checked at its home module
        if not member.__doc__:
            undocumented.append(name)
        if inspect.isclass(member):
            for attr_name, attr in vars(member).items():
                if attr_name.startswith("_"):
                    continue
                if inspect.isfunction(attr) and not attr.__doc__:
                    undocumented.append(f"{name}.{attr_name}")
    assert not undocumented, (
        f"{module.__name__} has undocumented public members: {undocumented}"
    )
