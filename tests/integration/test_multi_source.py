"""Integration tests for the K > 1 multiple-aligned-networks setting."""

import numpy as np
import pytest

from repro.evaluation.metrics import auc_score
from repro.evaluation.splits import k_fold_link_splits
from repro.models.base import TransferTask
from repro.models.scan import ScanPredictor
from repro.models.slampred import SlamPred
from repro.networks.social import SocialGraph
from repro.synth.config import AttributeConfig, NetworkConfig, WorldConfig
from repro.synth.generator import AlignedNetworkGenerator


@pytest.fixture(scope="module")
def two_source_world():
    config = WorldConfig(
        n_persons=60,
        n_communities=3,
        n_locations=12,
        vocabulary_size=60,
        link_correlation=0.7,
        target=NetworkConfig(name="t", participation=0.9, p_in=0.3, p_out=0.015),
        sources=[
            NetworkConfig(name="s1", participation=0.85, p_in=0.2, p_out=0.01),
            NetworkConfig(
                name="s2",
                participation=0.85,
                p_in=0.22,
                p_out=0.012,
                attributes=AttributeConfig(
                    posts_per_user=5.0, checkin_probability=0.9
                ),
            ),
        ],
    )
    return AlignedNetworkGenerator(config).generate(random_state=55)


@pytest.fixture(scope="module")
def two_source_split(two_source_world):
    graph = SocialGraph.from_network(two_source_world.target)
    return k_fold_link_splits(graph, n_folds=3, random_state=55)[0]


def _task(aligned, split, sources=None, anchors=None):
    return TransferTask(
        target=aligned.target,
        training_graph=split.training_graph,
        sources=list(aligned.sources if sources is None else sources),
        anchors=list(aligned.anchors if anchors is None else anchors),
        random_state=np.random.default_rng(55),
    )


class TestTwoSources:
    def test_world_shape(self, two_source_world):
        assert two_source_world.n_sources == 2
        assert all(len(a) > 0 for a in two_source_world.anchors)

    def test_slampred_fits_with_two_sources(
        self, two_source_world, two_source_split
    ):
        model = SlamPred().fit(_task(two_source_world, two_source_split))
        auc = auc_score(
            model.score_pairs(two_source_split.test_pairs),
            two_source_split.test_labels,
        )
        assert auc > 0.6

    def test_per_source_alphas_accepted(
        self, two_source_world, two_source_split
    ):
        model = SlamPred(alpha_sources=[1.0, 0.3]).fit(
            _task(two_source_world, two_source_split)
        )
        assert model.score_matrix.shape[0] == two_source_world.target.n_users

    def test_zero_alpha_approximates_single_source(
        self, two_source_world, two_source_split
    ):
        """α = 0 on source 2 ≈ dropping source 2 (the readout ignores it).

        Exact equality cannot hold — the shared latent space is still
        fitted over three networks and the random streams differ — but the
        zero-weighted source must not change ranking quality materially.
        """
        both = SlamPred(alpha_sources=[1.0, 0.0]).fit(
            _task(two_source_world, two_source_split)
        )
        single = SlamPred().fit(
            _task(
                two_source_world,
                two_source_split,
                sources=two_source_world.sources[:1],
                anchors=two_source_world.anchors[:1],
            )
        )
        auc_both = auc_score(
            both.score_pairs(two_source_split.test_pairs),
            two_source_split.test_labels,
        )
        auc_single = auc_score(
            single.score_pairs(two_source_split.test_pairs),
            two_source_split.test_labels,
        )
        assert abs(auc_both - auc_single) < 0.06

    def test_scan_handles_two_sources(
        self, two_source_world, two_source_split
    ):
        model = ScanPredictor().fit(_task(two_source_world, two_source_split))
        scores = model.score_pairs(two_source_split.test_pairs)
        assert np.isfinite(scores).all()
