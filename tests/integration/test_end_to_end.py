"""Integration tests: the full pipeline from generation to evaluation."""

import numpy as np
import pytest

from repro.evaluation.anchor_sweep import MethodSpec, run_anchor_sweep
from repro.evaluation.harness import cross_validate
from repro.evaluation.metrics import auc_score
from repro.evaluation.splits import k_fold_link_splits
from repro.models.base import TransferTask
from repro.models.pu import PLPredictor
from repro.models.scan import ScanPredictor
from repro.models.slampred import SlamPred, SlamPredH, SlamPredT
from repro.models.unsupervised import CommonNeighbors
from repro.networks.io import load_aligned_npz, save_aligned_npz
from repro.networks.social import SocialGraph
from repro.synth.generator import generate_aligned_pair


class TestFullPipeline:
    def test_generate_fit_evaluate(self):
        """The README quickstart, asserted end to end."""
        aligned = generate_aligned_pair(scale=50, random_state=21)
        graph = SocialGraph.from_network(aligned.target)
        splits = k_fold_link_splits(graph, n_folds=3, random_state=21)
        result = cross_validate(
            SlamPred, aligned, splits, random_state=21, precision_k=10
        )
        assert result.mean("auc") > 0.6
        assert 0.0 <= result.mean("precision@10") <= 1.0

    def test_every_model_family_end_to_end(self):
        aligned = generate_aligned_pair(scale=50, random_state=22)
        graph = SocialGraph.from_network(aligned.target)
        split = k_fold_link_splits(graph, n_folds=3, random_state=22)[0]
        task = TransferTask(
            aligned.target,
            split.training_graph,
            list(aligned.sources),
            list(aligned.anchors),
            np.random.default_rng(22),
        )
        for model in (
            SlamPred(),
            SlamPredT(),
            SlamPredH(),
            ScanPredictor(),
            PLPredictor(),
            CommonNeighbors(),
        ):
            scores = model.fit(task).score_pairs(split.test_pairs)
            auc = auc_score(scores, split.test_labels)
            assert auc > 0.45, f"{model.name}: {auc}"

    def test_serialization_roundtrip_preserves_evaluation(self, tmp_path):
        aligned = generate_aligned_pair(scale=40, random_state=23)
        path = str(tmp_path / "bundle.npz")
        save_aligned_npz(aligned, path)
        reloaded = load_aligned_npz(path)
        graph_a = SocialGraph.from_network(aligned.target)
        graph_b = SocialGraph.from_network(reloaded.target)
        assert np.array_equal(graph_a.adjacency, graph_b.adjacency)
        splits = k_fold_link_splits(graph_b, n_folds=2, random_state=23)
        result = cross_validate(
            CommonNeighbors, reloaded, splits, random_state=23
        )
        assert result.mean("auc") > 0.5

    def test_mini_anchor_sweep(self):
        aligned = generate_aligned_pair(scale=50, random_state=24)
        sweep = run_anchor_sweep(
            aligned,
            methods=[
                MethodSpec("SLAMPRED", SlamPred, True),
                MethodSpec("SLAMPRED-T", SlamPredT, False),
            ],
            ratios=(0.0, 1.0),
            n_folds=2,
            precision_k=10,
            random_state=24,
        )
        full = sweep.cell("SLAMPRED", 1.0).mean("auc")
        target_only = sweep.cell("SLAMPRED-T", 1.0).mean("auc")
        # The paper's core claim: transfer with adaptation helps.
        assert full > target_only - 0.05

    def test_reproducibility_across_runs(self):
        def run():
            aligned = generate_aligned_pair(scale=40, random_state=25)
            graph = SocialGraph.from_network(aligned.target)
            splits = k_fold_link_splits(graph, n_folds=2, random_state=25)
            result = cross_validate(
                SlamPredT, aligned, splits, random_state=25
            )
            return result.metrics["auc"]

        assert run() == run()
