"""Tests for repro.synth.attributes."""

import numpy as np
import pytest

from repro.networks.heterogeneous import HeterogeneousNetwork
from repro.synth.attributes import (
    AttributeGenerator,
    CommunityProfile,
    build_profiles,
)
from repro.synth.config import AttributeConfig


class TestBuildProfiles:
    def test_one_per_community(self):
        profiles = build_profiles(4, 20, 100, random_state=0)
        assert [p.community for p in profiles] == [0, 1, 2, 3]

    def test_preferences_in_range(self):
        profiles = build_profiles(3, 10, 50, random_state=0)
        for profile in profiles:
            assert all(0 <= l < 10 for l in profile.preferred_locations)
            assert all(0 <= w < 50 for w in profile.preferred_words)
            assert all(0 <= h < 24 for h in profile.preferred_hours)

    def test_hours_contiguous_window(self):
        profiles = build_profiles(1, 5, 20, random_state=0)
        hours = profiles[0].preferred_hours
        assert len(hours) == 6
        start = hours[0]
        assert hours == tuple((start + k) % 24 for k in range(6))

    def test_deterministic(self):
        a = build_profiles(3, 10, 50, random_state=9)
        b = build_profiles(3, 10, 50, random_state=9)
        assert a == b


class TestAttributeGenerator:
    def _populate(self, config=None, n_users=10, seed=0):
        config = config or AttributeConfig(posts_per_user=5.0)
        profiles = build_profiles(2, 12, 60, random_state=seed)
        network = HeterogeneousNetwork("attr-test")
        network.add_users(n_users)
        communities = [i % 2 for i in range(n_users)]
        generator = AttributeGenerator(profiles, 12, 60, config)
        generator.populate(network, communities, random_state=seed)
        return network

    def test_locations_registered(self):
        network = self._populate()
        assert network.n_locations == 12

    def test_posts_generated(self):
        network = self._populate()
        assert network.n_posts > 0
        for post in network.posts():
            assert 0 <= post.hour < 24
            assert all(0 <= w < 60 for w in post.word_ids)

    def test_checkin_probability_one(self):
        config = AttributeConfig(posts_per_user=5.0, checkin_probability=1.0)
        network = self._populate(config)
        assert network.n_checkins == network.n_posts

    def test_checkin_probability_zero(self):
        config = AttributeConfig(posts_per_user=5.0, checkin_probability=0.0)
        network = self._populate(config)
        assert network.n_checkins == 0

    def test_zero_posts(self):
        config = AttributeConfig(posts_per_user=0.0)
        network = self._populate(config)
        assert network.n_posts == 0

    def test_community_label_mismatch(self):
        profiles = build_profiles(2, 5, 20, random_state=0)
        network = HeterogeneousNetwork()
        network.add_users(3)
        generator = AttributeGenerator(profiles, 5, 20, AttributeConfig())
        with pytest.raises(ValueError, match="community labels"):
            generator.populate(network, [0, 1], random_state=0)

    def test_homophily_same_community_similar(self):
        """Same-community users should share more attribute mass."""
        config = AttributeConfig(
            posts_per_user=30.0,
            checkin_probability=1.0,
            community_location_affinity=0.95,
            platform_bias=0.0,
        )
        network = self._populate(config, n_users=20, seed=3)
        from repro.features.spatial import checkin_similarity

        similarity = checkin_similarity(network)
        communities = np.array([i % 2 for i in range(20)])
        same = communities[:, None] == communities[None, :]
        np.fill_diagonal(same, False)
        assert similarity[same].mean() > similarity[~same].mean()

    def test_platform_bias_concentrates_attributes(self):
        low = self._populate(
            AttributeConfig(posts_per_user=20.0, platform_bias=0.0), seed=4
        )
        high = self._populate(
            AttributeConfig(posts_per_user=20.0, platform_bias=1.0), seed=4
        )
        def hour_entropy(net):
            hours = np.bincount(
                [p.hour for p in net.posts()], minlength=24
            ).astype(float)
            p = hours / hours.sum()
            p = p[p > 0]
            return float(-(p * np.log(p)).sum())
        assert hour_entropy(high) < hour_entropy(low)
