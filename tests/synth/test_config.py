"""Tests for repro.synth.config."""

import pytest

from repro.exceptions import ConfigurationError
from repro.synth.config import AttributeConfig, NetworkConfig, WorldConfig


class TestAttributeConfig:
    def test_defaults_valid(self):
        AttributeConfig().validate()

    def test_negative_posts(self):
        with pytest.raises(ConfigurationError):
            AttributeConfig(posts_per_user=-1.0).validate()

    def test_bad_checkin_probability(self):
        with pytest.raises(ConfigurationError):
            AttributeConfig(checkin_probability=1.5).validate()

    def test_bad_platform_bias(self):
        with pytest.raises(ConfigurationError):
            AttributeConfig(platform_bias=-0.1).validate()

    def test_words_must_be_int(self):
        with pytest.raises(ConfigurationError):
            AttributeConfig(words_per_post=2.5).validate()


class TestNetworkConfig:
    def test_defaults_valid(self):
        NetworkConfig().validate()

    def test_p_in_must_exceed_p_out(self):
        with pytest.raises(ConfigurationError, match="p_in"):
            NetworkConfig(p_in=0.01, p_out=0.02).validate()

    def test_equal_probabilities_rejected(self):
        with pytest.raises(ConfigurationError):
            NetworkConfig(p_in=0.1, p_out=0.1).validate()

    def test_bad_participation(self):
        with pytest.raises(ConfigurationError):
            NetworkConfig(participation=2.0).validate()

    def test_nested_attribute_validation(self):
        config = NetworkConfig(
            attributes=AttributeConfig(checkin_probability=-1.0)
        )
        with pytest.raises(ConfigurationError):
            config.validate()


class TestWorldConfig:
    def test_defaults_valid(self):
        WorldConfig().validate()

    def test_too_many_communities(self):
        with pytest.raises(ConfigurationError, match="n_communities"):
            WorldConfig(n_persons=3, n_communities=10).validate()

    def test_no_sources_rejected(self):
        with pytest.raises(ConfigurationError, match="source"):
            WorldConfig(sources=[]).validate()

    def test_duplicate_names_rejected(self):
        config = WorldConfig(
            target=NetworkConfig(name="same"),
            sources=[NetworkConfig(name="same")],
        )
        with pytest.raises(ConfigurationError, match="unique"):
            config.validate()

    def test_bad_link_correlation(self):
        with pytest.raises(ConfigurationError, match="link_correlation"):
            WorldConfig(link_correlation=1.5).validate()

    def test_tiny_persons_rejected(self):
        with pytest.raises(ConfigurationError):
            WorldConfig(n_persons=1).validate()


class TestFoursquareTwitterLike:
    def test_valid(self):
        config = WorldConfig.foursquare_twitter_like(scale=100)
        assert config.n_persons == 100
        assert len(config.sources) == 1

    def test_asymmetry(self):
        config = WorldConfig.foursquare_twitter_like(scale=100)
        target_attr = config.target.attributes
        source_attr = config.sources[0].attributes
        # Twitter-like: more posts, fewer check-ins.
        assert target_attr.posts_per_user > source_attr.posts_per_user
        assert source_attr.checkin_probability == 1.0
        assert target_attr.checkin_probability < 0.5

    def test_target_denser(self):
        config = WorldConfig.foursquare_twitter_like(scale=100)
        assert config.target.p_in > config.sources[0].p_in

    def test_minimum_scale(self):
        with pytest.raises(ConfigurationError):
            WorldConfig.foursquare_twitter_like(scale=5)

    def test_has_link_correlation(self):
        config = WorldConfig.foursquare_twitter_like(scale=100)
        assert config.link_correlation > 0
