"""Tests for repro.synth.generator."""

import numpy as np
import pytest

from repro.networks.io import network_to_dict
from repro.networks.social import SocialGraph
from repro.synth.config import NetworkConfig, WorldConfig
from repro.synth.generator import AlignedNetworkGenerator, generate_aligned_pair


class TestGenerate:
    def test_network_count(self, aligned):
        assert aligned.n_sources == 1

    def test_user_ids_dense(self, aligned):
        for network in aligned.networks:
            assert network.user_ids == list(range(network.n_users))

    def test_anchor_one_to_one(self, aligned):
        anchors = aligned.anchors[0]
        targets = [t for t, _ in anchors.pairs]
        sources = [s for _, s in anchors.pairs]
        assert len(set(targets)) == len(targets)
        assert len(set(sources)) == len(sources)

    def test_high_participation_gives_high_anchor_ratio(self, aligned):
        # Both networks observe ~95% of persons, so ~90% of target users
        # should be anchored.
        assert aligned.anchor_ratio() > 0.75

    def test_attributes_populated(self, aligned):
        for network in aligned.networks:
            assert network.n_posts > 0
            assert network.n_locations > 0

    def test_deterministic(self, world_config):
        a = AlignedNetworkGenerator(world_config).generate(random_state=99)
        b = AlignedNetworkGenerator(world_config).generate(random_state=99)
        assert network_to_dict(a.target) == network_to_dict(b.target)
        assert a.anchors[0].pairs == b.anchors[0].pairs

    def test_different_seeds_differ(self, world_config):
        a = AlignedNetworkGenerator(world_config).generate(random_state=1)
        b = AlignedNetworkGenerator(world_config).generate(random_state=2)
        assert network_to_dict(a.target) != network_to_dict(b.target)

    def test_invalid_config_rejected(self):
        config = WorldConfig(n_persons=3, n_communities=10)
        with pytest.raises(Exception):
            AlignedNetworkGenerator(config)


class TestCommunityStructure:
    def test_labels_exposed(self, world_config):
        out = AlignedNetworkGenerator(world_config).generate_with_communities(
            random_state=5
        )
        aligned = out["aligned"]
        labels = out["communities"]
        assert set(labels) == {n.name for n in aligned.networks}
        for network in aligned.networks:
            assert len(labels[network.name]) == network.n_users

    def test_links_follow_communities(self, world_config):
        out = AlignedNetworkGenerator(world_config).generate_with_communities(
            random_state=5
        )
        aligned = out["aligned"]
        labels = np.array(out["communities"][aligned.target.name])
        adjacency = aligned.target.adjacency_matrix()
        same = labels[:, None] == labels[None, :]
        np.fill_diagonal(same, False)
        in_density = adjacency[same].mean()
        out_density = adjacency[~same].mean()
        assert in_density > 3 * out_density


class TestCrossNetworkCorrelation:
    def test_anchored_links_overlap(self, aligned):
        """Links between anchored persons should co-occur across networks."""
        target_adj = SocialGraph.from_network(aligned.target).adjacency
        source_adj = SocialGraph.from_network(aligned.sources[0]).adjacency
        anchors = aligned.anchors[0]
        pairs = sorted(anchors.pairs)
        both, target_only = 0, 0
        for idx_a in range(len(pairs)):
            for idx_b in range(idx_a + 1, len(pairs)):
                t_i, s_i = pairs[idx_a]
                t_j, s_j = pairs[idx_b]
                if target_adj[t_i, t_j] == 1.0:
                    if source_adj[s_i, s_j] == 1.0:
                        both += 1
                    else:
                        target_only += 1
        # With link_correlation = 0.7, a target link should appear in the
        # source far more often than the source's base density (~2%).
        assert both / (both + target_only) > 0.3


class TestConvenience:
    def test_generate_aligned_pair(self):
        aligned = generate_aligned_pair(scale=40, random_state=0)
        assert aligned.target.name == "twitter-like"
        assert aligned.sources[0].name == "foursquare-like"

    def test_scale_controls_size(self):
        small = generate_aligned_pair(scale=30, random_state=0)
        large = generate_aligned_pair(scale=90, random_state=0)
        assert large.target.n_users > small.target.n_users
