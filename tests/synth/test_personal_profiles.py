"""Tests for the personal-signature attribute machinery."""

import numpy as np
import pytest

from repro.networks.heterogeneous import HeterogeneousNetwork
from repro.synth.attributes import (
    AttributeGenerator,
    build_personal_profiles,
    build_profiles,
)
from repro.synth.config import AttributeConfig


class TestBuildPersonalProfiles:
    def test_one_per_person(self):
        profiles = build_personal_profiles(10, 20, 50, random_state=0)
        assert [p.person for p in profiles] == list(range(10))

    def test_pools_in_range(self):
        profiles = build_personal_profiles(5, 8, 30, random_state=0)
        for profile in profiles:
            assert all(0 <= l < 8 for l in profile.favorite_locations)
            assert all(0 <= w < 30 for w in profile.favorite_words)
            assert all(0 <= h < 24 for h in profile.favorite_hours)

    def test_pools_small(self):
        profiles = build_personal_profiles(5, 20, 100, random_state=0)
        for profile in profiles:
            assert len(profile.favorite_locations) <= 2
            assert len(profile.favorite_words) <= 4
            assert len(profile.favorite_hours) == 2

    def test_deterministic(self):
        a = build_personal_profiles(6, 10, 40, random_state=3)
        b = build_personal_profiles(6, 10, 40, random_state=3)
        assert a == b

    def test_signatures_differ_between_persons(self):
        profiles = build_personal_profiles(20, 40, 200, random_state=0)
        signatures = {p.favorite_words for p in profiles}
        assert len(signatures) > 15


class TestPersonalAffinityGeneration:
    def _populate(self, personal_affinity, profiles_personal=None, seed=0):
        community_profiles = build_profiles(2, 12, 60, random_state=seed)
        config = AttributeConfig(
            posts_per_user=20.0, personal_affinity=personal_affinity
        )
        network = HeterogeneousNetwork()
        network.add_users(6)
        generator = AttributeGenerator(community_profiles, 12, 60, config)
        generator.populate(
            network,
            [i % 2 for i in range(6)],
            random_state=seed,
            personal_profiles=profiles_personal,
        )
        return network

    def test_requires_profiles_when_enabled(self):
        with pytest.raises(ValueError, match="personal_profiles"):
            self._populate(0.5)

    def test_profile_count_checked(self):
        personal = build_personal_profiles(3, 12, 60, random_state=0)
        with pytest.raises(ValueError, match="personal profiles"):
            self._populate(0.5, personal)

    def test_zero_affinity_without_profiles_ok(self):
        network = self._populate(0.0)
        assert network.n_posts > 0

    def test_personal_words_concentrate(self):
        personal = build_personal_profiles(6, 12, 60, random_state=1)
        network = self._populate(1.0, personal, seed=1)
        # with affinity 1.0 every word comes from the 4-word favorite pool
        for user_id in network.user_ids:
            used = {w for post in network.posts_of(user_id) for w in post.word_ids}
            assert used <= set(personal[user_id].favorite_words)


class TestCrossNetworkSignature:
    def test_same_person_more_similar_across_networks(self, aligned):
        """Anchored accounts share word usage more than random cross pairs."""
        from repro.features.textual import user_word_counts

        counts_t = user_word_counts(aligned.target)
        counts_s = user_word_counts(aligned.sources[0])
        # common vocabulary width
        width = min(counts_t.shape[1], counts_s.shape[1])

        def unit(matrix):
            matrix = matrix[:, :width]
            norms = np.linalg.norm(matrix, axis=1, keepdims=True)
            return matrix / np.where(norms > 0, norms, 1.0)

        unit_t, unit_s = unit(counts_t), unit(counts_s)
        anchored = sorted(aligned.anchors[0].pairs)
        matched = np.mean([
            float(unit_t[t] @ unit_s[s]) for t, s in anchored
        ])
        rng = np.random.default_rng(0)
        shuffled = np.mean([
            float(unit_t[t] @ unit_s[rng.integers(0, unit_s.shape[0])])
            for t, _ in anchored
        ])
        assert matched > shuffled
