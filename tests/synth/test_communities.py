"""Tests for repro.synth.communities."""

import numpy as np
import pytest

from repro.synth.communities import (
    assign_communities,
    community_overlap_matrix,
    correlated_partition_links,
    planted_partition_links,
    shared_link_matrix,
)


class TestAssignCommunities:
    def test_balanced(self):
        labels = assign_communities(100, 4, random_state=0)
        counts = np.bincount(labels, minlength=4)
        assert counts.min() == 25 and counts.max() == 25

    def test_uneven_sizes(self):
        labels = assign_communities(10, 3, random_state=0)
        counts = np.bincount(labels, minlength=3)
        assert counts.sum() == 10
        assert counts.max() - counts.min() <= 1

    def test_no_empty_communities(self):
        labels = assign_communities(6, 6, random_state=0)
        assert set(labels) == set(range(6))

    def test_deterministic(self):
        a = assign_communities(50, 5, random_state=3)
        b = assign_communities(50, 5, random_state=3)
        assert np.array_equal(a, b)

    def test_zero_persons(self):
        assert assign_communities(0, 3, random_state=0).size == 0


class TestPlantedPartition:
    def test_in_community_density(self):
        labels = np.zeros(60, dtype=int)
        links = planted_partition_links(labels, 0.5, 0.0, random_state=0)
        possible = 60 * 59 / 2
        assert 0.4 < len(links) / possible < 0.6

    def test_no_cross_links_at_zero(self):
        labels = np.array([0] * 30 + [1] * 30)
        links = planted_partition_links(labels, 0.5, 0.0, random_state=0)
        assert all(labels[i] == labels[j] for i, j in links)

    def test_all_links_at_one(self):
        labels = np.arange(10)
        links = planted_partition_links(labels, 1.0, 1.0, random_state=0)
        assert len(links) == 45

    def test_pairs_canonical(self):
        labels = np.zeros(10, dtype=int)
        links = planted_partition_links(labels, 0.8, 0.0, random_state=0)
        assert all(i < j for i, j in links)

    def test_deterministic(self):
        labels = assign_communities(40, 4, random_state=0)
        a = planted_partition_links(labels, 0.3, 0.02, random_state=5)
        b = planted_partition_links(labels, 0.3, 0.02, random_state=5)
        assert a == b


class TestSharedLinkMatrix:
    def test_symmetric_boolean(self):
        labels = assign_communities(40, 4, random_state=0)
        shared = shared_link_matrix(labels, 0.3, 0.01, random_state=0)
        assert shared.dtype == bool
        assert np.array_equal(shared, shared.T)
        assert not shared.diagonal().any()

    def test_zero_probability(self):
        labels = np.zeros(20, dtype=int)
        shared = shared_link_matrix(labels, 0.0, 0.0, random_state=0)
        assert not shared.any()

    def test_in_community_more_likely(self):
        labels = np.array([0] * 40 + [1] * 40)
        shared = shared_link_matrix(labels, 0.5, 0.01, random_state=0)
        same = labels[:, None] == labels[None, :]
        np.fill_diagonal(same, False)
        in_rate = shared[same].mean()
        out_rate = shared[~same].mean()
        assert in_rate > out_rate


class TestCorrelatedPartition:
    def test_marginal_density_preserved(self):
        labels = np.zeros(80, dtype=int)
        shared = shared_link_matrix(labels, 0.2, 0.0, random_state=0)
        links = correlated_partition_links(
            labels, 0.4, 0.0, shared, 0.2, 0.0, random_state=1
        )
        possible = 80 * 79 / 2
        assert 0.3 < len(links) / possible < 0.5

    def test_shared_events_always_included(self):
        labels = np.zeros(20, dtype=int)
        shared = shared_link_matrix(labels, 0.5, 0.0, random_state=0)
        links = set(
            correlated_partition_links(
                labels, 0.5, 0.0, shared, 0.5, 0.0, random_state=1
            )
        )
        rows, cols = np.nonzero(np.triu(shared, k=1))
        for i, j in zip(rows, cols):
            assert (i, j) in links

    def test_shared_exceeding_marginal_rejected(self):
        labels = np.zeros(5, dtype=int)
        shared = np.zeros((5, 5), dtype=bool)
        with pytest.raises(ValueError, match="shared"):
            correlated_partition_links(
                labels, 0.1, 0.0, shared, 0.2, 0.0, random_state=0
            )

    def test_networks_correlate(self):
        labels = np.zeros(60, dtype=int)
        shared = shared_link_matrix(labels, 0.3, 0.0, random_state=0)
        links_a = set(
            correlated_partition_links(
                labels, 0.4, 0.0, shared, 0.3, 0.0, random_state=1
            )
        )
        links_b = set(
            correlated_partition_links(
                labels, 0.4, 0.0, shared, 0.3, 0.0, random_state=2
            )
        )
        # Independent draws with p=0.4 would overlap ~40% of links;
        # sharing pushes the overlap well above that.
        overlap = len(links_a & links_b) / min(len(links_a), len(links_b))
        assert overlap > 0.6


class TestOverlapMatrix:
    def test_shape_and_diagonal(self):
        overlap = community_overlap_matrix([0, 0, 1])
        assert overlap.shape == (3, 3)
        assert not overlap.diagonal().any()

    def test_entries(self):
        overlap = community_overlap_matrix([0, 0, 1])
        assert overlap[0, 1] == 1.0 and overlap[0, 2] == 0.0
