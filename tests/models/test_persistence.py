"""Tests for repro.models.persistence."""

import json

import numpy as np
import pytest

from repro.exceptions import NotFittedError, SerializationError
from repro.models.base import TransferTask
from repro.models.persistence import (
    FrozenPredictor,
    content_digest,
    load_predictor,
    save_predictor,
)
from repro.models.slampred import SlamPredT
from repro.models.unsupervised import CommonNeighbors


class TestRoundTrip:
    def test_scores_preserved(self, task, split, tmp_path):
        model = CommonNeighbors().fit(task)
        path = str(tmp_path / "cn.npz")
        save_predictor(model, path)
        loaded = load_predictor(path)
        assert np.array_equal(loaded.score_matrix, model.score_matrix)
        assert np.array_equal(
            loaded.score_pairs(split.test_pairs),
            model.score_pairs(split.test_pairs),
        )

    def test_metadata_preserved(self, task, tmp_path):
        model = SlamPredT(gamma=0.07, tau=2.0).fit(task)
        path = str(tmp_path / "slampred.npz")
        save_predictor(model, path)
        loaded = load_predictor(path)
        assert loaded.name == "SLAMPRED-T"
        assert loaded.metadata["gamma"] == 0.07
        assert loaded.metadata["tau"] == 2.0
        assert loaded.metadata["class"] == "SlamPredT"

    def test_unfitted_save_raises(self, tmp_path):
        with pytest.raises(NotFittedError):
            save_predictor(CommonNeighbors(), str(tmp_path / "x.npz"))

    def test_load_garbage_raises(self, tmp_path):
        path = tmp_path / "bad.npz"
        path.write_bytes(b"not an npz")
        with pytest.raises(SerializationError):
            load_predictor(str(path))

    def test_hyper_parameter_fidelity(self, task, tmp_path):
        model = SlamPredT(
            gamma=0.11, tau=1.5, mu=0.8, step_size=0.04, latent_dimension=4
        ).fit(task)
        path = str(tmp_path / "m.npz")
        save_predictor(model, path)
        metadata = load_predictor(path).metadata
        assert metadata["gamma"] == 0.11
        assert metadata["tau"] == 1.5
        assert metadata["mu"] == 0.8
        assert metadata["step_size"] == 0.04
        assert metadata["latent_dimension"] == 4
        assert metadata["alpha_sources"] == model.alpha_sources


class TestIntegrity:
    @pytest.fixture()
    def saved(self, tmp_path):
        frozen = FrozenPredictor(np.arange(16.0).reshape(4, 4), {"name": "x"})
        path = str(tmp_path / "frozen.npz")
        save_predictor(frozen, path)
        return path

    def test_digest_embedded(self, saved):
        with np.load(saved) as data:
            assert int(data["version"][0]) == 2
            digest = bytes(data["digest"]).decode("ascii")
        assert len(digest) == 64

    def test_unsupported_format_version(self, saved, tmp_path):
        with np.load(saved) as data:
            arrays = dict(data)
        arrays["version"] = np.array([99])
        path = str(tmp_path / "future.npz")
        np.savez_compressed(path, **arrays)
        with pytest.raises(SerializationError, match="format version 99"):
            load_predictor(path)

    def test_tampered_matrix_rejected(self, saved, tmp_path):
        with np.load(saved) as data:
            arrays = dict(data)
        arrays["score_matrix"] = arrays["score_matrix"] + 1.0
        path = str(tmp_path / "tampered.npz")
        np.savez_compressed(path, **arrays)
        with pytest.raises(SerializationError, match="integrity"):
            load_predictor(path)

    def test_tampered_metadata_rejected(self, saved, tmp_path):
        with np.load(saved) as data:
            arrays = dict(data)
        blob = json.loads(bytes(arrays["metadata"]).decode("utf-8"))
        blob["name"] = "evil"
        arrays["metadata"] = np.frombuffer(
            json.dumps(blob).encode("utf-8"), dtype=np.uint8
        )
        path = str(tmp_path / "renamed.npz")
        np.savez_compressed(path, **arrays)
        with pytest.raises(SerializationError, match="integrity"):
            load_predictor(path)

    def test_truncated_file_raises_serialization_error(self, saved):
        blob = open(saved, "rb").read()
        open(saved, "wb").write(blob[: len(blob) // 3])
        with pytest.raises(SerializationError, match="cannot load"):
            load_predictor(saved)

    def test_missing_digest_field_rejected(self, saved, tmp_path):
        with np.load(saved) as data:
            arrays = dict(data)
        del arrays["digest"]
        path = str(tmp_path / "stripped.npz")
        np.savez_compressed(path, **arrays)
        with pytest.raises(SerializationError, match="cannot load"):
            load_predictor(path)

    def test_legacy_v1_archive_still_loads(self, tmp_path):
        matrix = np.eye(3)
        metadata_json = json.dumps({"name": "legacy"})
        path = str(tmp_path / "v1.npz")
        np.savez_compressed(
            path,
            version=np.array([1]),
            score_matrix=matrix,
            metadata=np.frombuffer(
                metadata_json.encode("utf-8"), dtype=np.uint8
            ),
        )
        loaded = load_predictor(path)
        assert loaded.name == "legacy"
        assert np.array_equal(loaded.score_matrix, matrix)

    def test_content_digest_is_deterministic(self):
        matrix = np.ones((2, 2))
        assert content_digest(matrix, "{}") == content_digest(matrix, "{}")
        assert content_digest(matrix, "{}") != content_digest(matrix + 1, "{}")
        assert content_digest(matrix, "{}") != content_digest(matrix, '{"a":1}')


class TestFrozenPredictor:
    def test_refit_rejected(self, task):
        frozen = FrozenPredictor(np.zeros((3, 3)))
        with pytest.raises(SerializationError, match="refitted"):
            frozen.fit(task)

    def test_rejects_rectangular(self):
        with pytest.raises(SerializationError):
            FrozenPredictor(np.zeros((2, 3)))

    def test_is_fitted_on_construction(self):
        frozen = FrozenPredictor(np.eye(3))
        assert frozen.is_fitted
        assert frozen.score_pairs([(0, 1)])[0] == 0.0
