"""Tests for repro.models.persistence."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError, SerializationError
from repro.models.base import TransferTask
from repro.models.persistence import (
    FrozenPredictor,
    load_predictor,
    save_predictor,
)
from repro.models.slampred import SlamPredT
from repro.models.unsupervised import CommonNeighbors


class TestRoundTrip:
    def test_scores_preserved(self, task, split, tmp_path):
        model = CommonNeighbors().fit(task)
        path = str(tmp_path / "cn.npz")
        save_predictor(model, path)
        loaded = load_predictor(path)
        assert np.array_equal(loaded.score_matrix, model.score_matrix)
        assert np.array_equal(
            loaded.score_pairs(split.test_pairs),
            model.score_pairs(split.test_pairs),
        )

    def test_metadata_preserved(self, task, tmp_path):
        model = SlamPredT(gamma=0.07, tau=2.0).fit(task)
        path = str(tmp_path / "slampred.npz")
        save_predictor(model, path)
        loaded = load_predictor(path)
        assert loaded.name == "SLAMPRED-T"
        assert loaded.metadata["gamma"] == 0.07
        assert loaded.metadata["tau"] == 2.0
        assert loaded.metadata["class"] == "SlamPredT"

    def test_unfitted_save_raises(self, tmp_path):
        with pytest.raises(NotFittedError):
            save_predictor(CommonNeighbors(), str(tmp_path / "x.npz"))

    def test_load_garbage_raises(self, tmp_path):
        path = tmp_path / "bad.npz"
        path.write_bytes(b"not an npz")
        with pytest.raises(SerializationError):
            load_predictor(str(path))


class TestFrozenPredictor:
    def test_refit_rejected(self, task):
        frozen = FrozenPredictor(np.zeros((3, 3)))
        with pytest.raises(SerializationError, match="refitted"):
            frozen.fit(task)

    def test_rejects_rectangular(self):
        with pytest.raises(SerializationError):
            FrozenPredictor(np.zeros((2, 3)))

    def test_is_fitted_on_construction(self):
        frozen = FrozenPredictor(np.eye(3))
        assert frozen.is_fitted
        assert frozen.score_pairs([(0, 1)])[0] == 0.0
