"""Tests for repro.models.classifiers."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError, OptimizationError
from repro.models.classifiers import LogisticRegression


@pytest.fixture()
def separable(rng):
    """Linearly separable 2-D data."""
    n = 100
    features = rng.normal(size=(n, 2))
    labels = (features[:, 0] + features[:, 1] > 0).astype(float)
    return features, labels


class TestFit:
    def test_separable_accuracy(self, separable):
        features, labels = separable
        model = LogisticRegression(l2=0.01).fit(features, labels)
        accuracy = (model.predict(features) == labels).mean()
        assert accuracy > 0.95

    def test_probabilities_in_range(self, separable):
        features, labels = separable
        model = LogisticRegression().fit(features, labels)
        probs = model.predict_proba(features)
        assert probs.min() >= 0.0 and probs.max() <= 1.0

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            LogisticRegression().predict_proba(np.zeros((1, 2)))

    def test_rejects_non_binary_labels(self):
        with pytest.raises(OptimizationError, match="binary"):
            LogisticRegression().fit(np.zeros((2, 2)), np.array([0.0, 2.0]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(OptimizationError):
            LogisticRegression().fit(np.zeros((3, 2)), np.zeros(2))

    def test_rejects_1d_features(self):
        with pytest.raises(OptimizationError, match="2-D"):
            LogisticRegression().fit(np.zeros(3), np.zeros(3))

    def test_rejects_empty(self):
        with pytest.raises(OptimizationError, match="zero"):
            LogisticRegression().fit(np.zeros((0, 2)), np.zeros(0))

    def test_single_class_constant(self):
        model = LogisticRegression().fit(np.random.rand(10, 2), np.ones(10))
        probs = model.predict_proba(np.random.rand(5, 2))
        assert np.allclose(probs, probs[0])
        assert probs[0] > 0.9

    def test_regularization_shrinks_weights(self, separable):
        features, labels = separable
        weak = LogisticRegression(l2=0.01).fit(features, labels)
        strong = LogisticRegression(l2=100.0).fit(features, labels)
        assert np.linalg.norm(strong.weights) < np.linalg.norm(weak.weights)

    def test_constant_feature_handled(self, rng):
        features = np.hstack([rng.normal(size=(50, 1)), np.ones((50, 1))])
        labels = (features[:, 0] > 0).astype(float)
        model = LogisticRegression().fit(features, labels)
        assert np.isfinite(model.predict_proba(features)).all()


class TestDecisionFunction:
    def test_monotone_with_proba(self, separable):
        features, labels = separable
        model = LogisticRegression().fit(features, labels)
        logits = model.decision_function(features)
        probs = model.predict_proba(features)
        order_logits = np.argsort(logits)
        order_probs = np.argsort(probs)
        assert np.array_equal(order_logits, order_probs)

    def test_extreme_logits_stable(self, separable):
        features, labels = separable
        model = LogisticRegression(standardize=False).fit(
            features * 1000, labels
        )
        probs = model.predict_proba(features * 1000)
        assert np.isfinite(probs).all()

    def test_threshold(self, separable):
        features, labels = separable
        model = LogisticRegression().fit(features, labels)
        strict = model.predict(features, threshold=0.9).sum()
        lax = model.predict(features, threshold=0.1).sum()
        assert strict <= lax


class TestStandardization:
    def test_standardize_improves_conditioning(self, rng):
        features = np.hstack(
            [rng.normal(size=(80, 1)) * 1e6, rng.normal(size=(80, 1))]
        )
        labels = (features[:, 1] > 0).astype(float)
        model = LogisticRegression(standardize=True).fit(features, labels)
        accuracy = (model.predict(features) == labels).mean()
        assert accuracy > 0.9

    def test_no_standardize_option(self, separable):
        features, labels = separable
        model = LogisticRegression(standardize=False).fit(features, labels)
        assert (model.predict(features) == labels).mean() > 0.9
