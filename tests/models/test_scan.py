"""Tests for repro.models.scan."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, NotFittedError
from repro.features.intimacy import IntimacyFeatureExtractor
from repro.models.scan import ScanPredictor


class TestConfiguration:
    def test_default_name(self):
        assert ScanPredictor().name == "SCAN"

    def test_variant_names(self):
        assert ScanPredictor.target_only().name == "SCAN-T"
        assert ScanPredictor.source_only().name == "SCAN-S"

    def test_custom_name(self):
        assert ScanPredictor(display_name="X").name == "X"

    def test_rejects_no_blocks(self):
        with pytest.raises(ConfigurationError):
            ScanPredictor(use_target=False, use_sources=False)

    def test_rejects_bad_negative_ratio(self):
        with pytest.raises(Exception):
            ScanPredictor(negative_ratio=0.0)


class TestFitting:
    def test_fit_and_score(self, task, split):
        model = ScanPredictor().fit(task)
        scores = model.score_pairs(split.test_pairs)
        assert scores.shape == (len(split.test_pairs),)
        assert 0.0 <= scores.min() and scores.max() <= 1.0

    def test_unfitted_raises(self, split):
        with pytest.raises(NotFittedError):
            ScanPredictor().score_pairs(split.test_pairs)

    def test_beats_random(self, task, split):
        from repro.evaluation.metrics import auc_score

        model = ScanPredictor().fit(task)
        auc = auc_score(model.score_pairs(split.test_pairs), split.test_labels)
        assert auc > 0.6

    def test_target_only_ignores_sources(self, aligned, split):
        """SCAN-T must give identical scores whatever the anchors are."""
        from repro.models.base import TransferTask

        rng_a = np.random.default_rng(0)
        rng_b = np.random.default_rng(0)
        full = TransferTask(
            aligned.target, split.training_graph,
            list(aligned.sources), list(aligned.anchors), rng_a,
        )
        none = TransferTask(
            aligned.target, split.training_graph,
            list(aligned.sources),
            [aligned.anchors[0].sample(0.0)], rng_b,
        )
        a = ScanPredictor.target_only().fit(full).score_pairs(split.test_pairs)
        b = ScanPredictor.target_only().fit(none).score_pairs(split.test_pairs)
        assert np.allclose(a, b)

    def test_source_only_flat_without_anchors(self, aligned, split):
        """SCAN-S with zero anchors sees all-zero features → constant scores."""
        from repro.models.base import TransferTask

        task = TransferTask(
            aligned.target,
            split.training_graph,
            list(aligned.sources),
            [aligned.anchors[0].sample(0.0)],
            np.random.default_rng(0),
        )
        scores = ScanPredictor.source_only().fit(task).score_pairs(
            split.test_pairs
        )
        assert np.allclose(scores, scores[0])

    def test_custom_extractor(self, task, split):
        extractor = IntimacyFeatureExtractor(features=["common_neighbors"])
        model = ScanPredictor(extractor=extractor).fit(task)
        assert model.score_pairs(split.test_pairs).shape[0] == len(
            split.test_pairs
        )
