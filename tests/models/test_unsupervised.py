"""Tests for repro.models.unsupervised."""

import numpy as np
import pytest

from repro.models.base import TransferTask
from repro.models.unsupervised import (
    AdamicAdar,
    CommonNeighbors,
    JaccardCoefficient,
    KatzIndex,
    PreferentialAttachment,
    ResourceAllocation,
)

ALL_PREDICTORS = [
    CommonNeighbors,
    JaccardCoefficient,
    PreferentialAttachment,
    AdamicAdar,
    ResourceAllocation,
    KatzIndex,
]


@pytest.fixture()
def fitted_task(aligned, split):
    return TransferTask(aligned.target, split.training_graph)


class TestAllPredictors:
    @pytest.mark.parametrize("cls", ALL_PREDICTORS)
    def test_fit_and_score(self, cls, fitted_task, split):
        model = cls().fit(fitted_task)
        scores = model.score_pairs(split.test_pairs)
        assert scores.shape == (len(split.test_pairs),)
        assert np.isfinite(scores).all()

    @pytest.mark.parametrize("cls", ALL_PREDICTORS)
    def test_scores_non_negative(self, cls, fitted_task, split):
        model = cls().fit(fitted_task)
        assert model.score_pairs(split.test_pairs).min() >= 0.0

    @pytest.mark.parametrize(
        "cls,name",
        [
            (CommonNeighbors, "CN"),
            (JaccardCoefficient, "JC"),
            (PreferentialAttachment, "PA"),
            (AdamicAdar, "AA"),
            (ResourceAllocation, "RA"),
            (KatzIndex, "Katz"),
        ],
    )
    def test_display_names(self, cls, name):
        assert cls().name == name


class TestBehaviour:
    def test_cn_matches_structure(self, fitted_task):
        model = CommonNeighbors().fit(fitted_task)
        adjacency = fitted_task.training_graph.adjacency
        expected = adjacency @ adjacency
        np.fill_diagonal(expected, 0.0)
        assert np.allclose(model.score_matrix, expected)

    def test_neighborhood_predictors_beat_random(
        self, fitted_task, split
    ):
        """CN/JC should rank held-out links above sampled non-links."""
        from repro.evaluation.metrics import auc_score

        for cls in (CommonNeighbors, JaccardCoefficient, AdamicAdar):
            model = cls().fit(fitted_task)
            auc = auc_score(model.score_pairs(split.test_pairs), split.test_labels)
            assert auc > 0.55, f"{model.name} scored {auc}"

    def test_katz_parameters(self, fitted_task):
        short = KatzIndex(beta=0.1, max_length=1).fit(fitted_task)
        long = KatzIndex(beta=0.1, max_length=4).fit(fitted_task)
        assert long.score_matrix.sum() > short.score_matrix.sum()

    def test_uses_training_view_not_full_graph(self, aligned, split):
        """Masked links must not contribute to the scores."""
        task = TransferTask(aligned.target, split.training_graph)
        model = CommonNeighbors().fit(task)
        masked_pair = split.test_links[0]
        adjacency = split.training_graph.adjacency
        assert adjacency[masked_pair] == 0.0
        expected = adjacency @ adjacency
        assert model.score_matrix[masked_pair] == expected[masked_pair]
