"""Determinism guarantees of ``SlamPred.fit``.

Two runs from the same seed must be bit-identical, and attaching a tracer
(live or null) must not perturb a single bit of the solution — telemetry
observes the solver, it never participates in it.
"""

import numpy as np
import pytest

from repro.models.base import TransferTask
from repro.models.slampred import SlamPred
from repro.observability.tracer import NullTracer, Tracer


@pytest.fixture(scope="module")
def fit_inputs(aligned, split):
    """Frozen ingredients for building identical tasks on demand."""

    def make_task():
        return TransferTask(
            target=aligned.target,
            training_graph=split.training_graph,
            sources=list(aligned.sources),
            anchors=list(aligned.anchors),
            random_state=np.random.default_rng(99),
        )

    return make_task


def _fit(make_task, tracer=None, svd_rank=None):
    model = SlamPred(
        inner_iterations=6,
        outer_iterations=4,
        svd_rank=svd_rank,
        tracer=tracer,
    )
    model.fit(make_task())
    return model


class TestSeedDeterminism:
    def test_same_seed_bit_identical(self, fit_inputs):
        first = _fit(fit_inputs)
        second = _fit(fit_inputs)
        assert np.array_equal(first.score_matrix, second.score_matrix)
        assert np.array_equal(
            first.result.solution, second.result.solution
        )

    def test_same_seed_identical_telemetry(self, fit_inputs):
        first = _fit(fit_inputs, tracer=Tracer())
        second = _fit(fit_inputs, tracer=Tracer())
        assert len(first.tracer.iterations) == len(second.tracer.iterations)
        assert first.tracer.counters == second.tracer.counters
        assert np.array_equal(first.score_matrix, second.score_matrix)

    def test_truncated_svd_path_deterministic(self, fit_inputs):
        """The Lanczos SVT starts from a fixed vector, so it replays too."""
        first = _fit(fit_inputs, svd_rank=25)
        second = _fit(fit_inputs, svd_rank=25)
        assert np.array_equal(first.score_matrix, second.score_matrix)


class TestTracerTransparency:
    def test_live_tracer_does_not_change_solution(self, fit_inputs):
        untraced = _fit(fit_inputs)
        traced = _fit(fit_inputs, tracer=Tracer())
        assert np.array_equal(untraced.score_matrix, traced.score_matrix)

    def test_null_tracer_does_not_change_solution(self, fit_inputs):
        untraced = _fit(fit_inputs)
        nulled = _fit(fit_inputs, tracer=NullTracer())
        assert np.array_equal(untraced.score_matrix, nulled.score_matrix)

    def test_tracer_and_history_share_iteration_records(self, fit_inputs):
        traced = _fit(fit_inputs, tracer=Tracer())
        history = traced.result.history
        assert len(traced.tracer.iterations) == history.n_iterations
        assert all(
            mine is theirs
            for mine, theirs in zip(traced.tracer.iterations, history.records)
        )
