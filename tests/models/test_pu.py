"""Tests for repro.models.pu."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.models.pu import PLPredictor


class TestConfiguration:
    def test_default_name(self):
        assert PLPredictor().name == "PL"

    def test_variant_names(self):
        assert PLPredictor.target_only().name == "PL-T"
        assert PLPredictor.source_only().name == "PL-S"

    def test_rejects_no_blocks(self):
        with pytest.raises(ConfigurationError):
            PLPredictor(use_target=False, use_sources=False)

    def test_rejects_bad_spy_fraction(self):
        with pytest.raises(Exception):
            PLPredictor(spy_fraction=0.0)
        with pytest.raises(Exception):
            PLPredictor(spy_fraction=1.0)

    def test_rejects_bad_percentile(self):
        with pytest.raises(Exception):
            PLPredictor(spy_percentile=101.0)

    def test_default_extractor_is_metapath_based(self):
        extractor = PLPredictor().extractor
        assert set(extractor.features) == {
            "common_neighbors",
            "metapath_UPWPU",
            "metapath_UPTPU",
            "metapath_UPLPU",
        }


class TestFitting:
    def test_fit_and_score(self, task, split):
        model = PLPredictor().fit(task)
        scores = model.score_pairs(split.test_pairs)
        assert scores.shape == (len(split.test_pairs),)
        assert np.isfinite(scores).all()

    def test_beats_random(self, task, split):
        from repro.evaluation.metrics import auc_score

        model = PLPredictor().fit(task)
        auc = auc_score(model.score_pairs(split.test_pairs), split.test_labels)
        assert auc > 0.55

    def test_deterministic_given_rng(self, aligned, split):
        from repro.models.base import TransferTask

        def run():
            task = TransferTask(
                aligned.target,
                split.training_graph,
                list(aligned.sources),
                list(aligned.anchors),
                np.random.default_rng(11),
            )
            return PLPredictor().fit(task).score_pairs(split.test_pairs)

        assert np.allclose(run(), run())

    def test_spy_parameters_affect_model(self, aligned, split):
        from repro.models.base import TransferTask

        def run(percentile):
            task = TransferTask(
                aligned.target,
                split.training_graph,
                list(aligned.sources),
                list(aligned.anchors),
                np.random.default_rng(11),
            )
            model = PLPredictor(spy_percentile=percentile).fit(task)
            return model.score_pairs(split.test_pairs)

        # Different reliable-negative thresholds give different classifiers.
        assert not np.allclose(run(1.0), run(99.0))

    def test_target_only_variant_runs(self, task, split):
        scores = PLPredictor.target_only().fit(task).score_pairs(
            split.test_pairs
        )
        assert scores.shape[0] == len(split.test_pairs)
