"""Tests for repro.models.slampred."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, NotFittedError
from repro.evaluation.metrics import auc_score
from repro.models.base import TransferTask
from repro.models.slampred import SlamPred, SlamPredH, SlamPredT


@pytest.fixture(scope="module")
def fitted_models(aligned, split):
    """Fit the three variants once (module scope — fitting is the slow part)."""
    models = {}
    for cls in (SlamPred, SlamPredT, SlamPredH):
        task = TransferTask(
            aligned.target,
            split.training_graph,
            list(aligned.sources),
            list(aligned.anchors),
            np.random.default_rng(77),
        )
        models[cls.__name__] = cls().fit(task)
    return models


class TestConfiguration:
    def test_names(self):
        assert SlamPred().name == "SLAMPRED"
        assert SlamPredT().name == "SLAMPRED-T"
        assert SlamPredH().name == "SLAMPRED-H"

    def test_variant_flags(self):
        assert SlamPredT().use_attributes and not SlamPredT().use_sources
        assert not SlamPredH().use_attributes

    def test_sources_require_attributes(self):
        with pytest.raises(ConfigurationError):
            SlamPred(use_attributes=False, use_sources=True)

    def test_per_source_alphas(self):
        model = SlamPred(alpha_sources=[0.3, 0.7])
        assert model.alpha_sources == [0.3, 0.7]

    def test_alpha_count_mismatch_surfaces_at_fit(self, task):
        model = SlamPred(alpha_sources=[0.3, 0.7])
        with pytest.raises(ConfigurationError, match="alphas"):
            model.fit(task)

    def test_invalid_weights(self):
        with pytest.raises(ConfigurationError):
            SlamPred(gamma=-1.0)
        with pytest.raises(ConfigurationError):
            SlamPred(alpha_target=-0.5)

    def test_unfitted_result_raises(self):
        with pytest.raises(NotFittedError):
            SlamPred().result


class TestFitting:
    def test_score_matrix_properties(self, fitted_models, aligned):
        n = aligned.target.n_users
        for model in fitted_models.values():
            matrix = model.score_matrix
            assert matrix.shape == (n, n)
            assert matrix.min() >= 0.0
            assert matrix.max() <= 1.0
            assert not matrix.diagonal().any()

    def test_history_available(self, fitted_models):
        result = fitted_models["SlamPred"].result
        assert result.history.n_iterations > 0
        assert len(result.round_norms) == result.n_rounds

    def test_adapter_fitted_only_with_sources(self, fitted_models):
        assert fitted_models["SlamPred"].adapter is not None
        assert fitted_models["SlamPredT"].adapter is None
        assert fitted_models["SlamPredH"].adapter is None

    def test_all_beat_random(self, fitted_models, split):
        for name, model in fitted_models.items():
            auc = auc_score(
                model.score_pairs(split.test_pairs), split.test_labels
            )
            assert auc > 0.52, f"{name} scored {auc}"

    def test_paper_ordering(self, fitted_models, split):
        """Table II: SLAMPRED ≥ SLAMPRED-T > SLAMPRED-H (full anchors)."""
        aucs = {
            name: auc_score(
                model.score_pairs(split.test_pairs), split.test_labels
            )
            for name, model in fitted_models.items()
        }
        assert aucs["SlamPred"] >= aucs["SlamPredT"] - 0.03
        assert aucs["SlamPredT"] > aucs["SlamPredH"]

    def test_zero_anchor_ratio_equals_target_only(self, aligned, split):
        """With no anchors, SLAMPRED degenerates to SLAMPRED-T exactly."""

        def run(cls, anchors):
            task = TransferTask(
                aligned.target,
                split.training_graph,
                list(aligned.sources),
                anchors,
                np.random.default_rng(3),
            )
            return cls().fit(task).score_pairs(split.test_pairs)

        empty = [aligned.anchors[0].sample(0.0)]
        full_model = run(SlamPred, empty)
        t_model = run(SlamPredT, list(aligned.anchors))
        assert np.allclose(full_model, t_model)

    def test_anchor_ratio_monotonicity(self, aligned, split):
        """More anchors should not substantially hurt (Table II trend)."""

        def auc_at(ratio):
            sampled = aligned.sample_anchors(ratio, random_state=5)
            task = TransferTask(
                aligned.target,
                split.training_graph,
                list(sampled.sources),
                list(sampled.anchors),
                np.random.default_rng(3),
            )
            model = SlamPred().fit(task)
            return auc_score(
                model.score_pairs(split.test_pairs), split.test_labels
            )

        low, high = auc_at(0.0), auc_at(1.0)
        assert high > low - 0.02

    def test_deterministic(self, aligned, split):
        def run():
            task = TransferTask(
                aligned.target,
                split.training_graph,
                list(aligned.sources),
                list(aligned.anchors),
                np.random.default_rng(13),
            )
            return SlamPred().fit(task).score_pairs(split.test_pairs)

        assert np.allclose(run(), run())

    def test_training_links_score_high(self, fitted_models, split):
        model = fitted_models["SlamPred"]
        train_links = sorted(split.training_graph.links())[:50]
        train_scores = model.score_pairs(train_links)
        non_link_scores = model.score_pairs(split.test_non_links)
        assert train_scores.mean() > non_link_scores.mean()
