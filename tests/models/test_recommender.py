"""Tests for repro.models.recommender."""

import numpy as np
import pytest

from repro.exceptions import EvaluationError, UnknownNodeError
from repro.models.base import TransferTask
from repro.models.recommender import LinkRecommender
from repro.models.unsupervised import CommonNeighbors
from repro.networks.social import SocialGraph
from repro.utils.matrices import pairs_to_matrix


@pytest.fixture(scope="module")
def recommender(aligned, split):
    task = TransferTask(aligned.target, split.training_graph)
    model = CommonNeighbors().fit(task)
    return LinkRecommender(model, split.training_graph)


class TestConstruction:
    def test_size_mismatch_rejected(self, aligned, split):
        task = TransferTask(aligned.target, split.training_graph)
        model = CommonNeighbors().fit(task)
        with pytest.raises(EvaluationError, match="users"):
            LinkRecommender(model, SocialGraph(np.zeros((3, 3))))

    def test_unfitted_model_rejected(self, split):
        from repro.exceptions import NotFittedError

        with pytest.raises(NotFittedError):
            LinkRecommender(CommonNeighbors(), split.training_graph)


class TestRecommend:
    def test_never_recommends_existing_links(self, recommender):
        graph = recommender.graph
        for user in range(0, graph.n_users, 7):
            neighbors = graph.neighbors(user)
            for candidate, _ in recommender.recommend(user, k=10):
                assert candidate not in neighbors
                assert candidate != user

    def test_ordering(self, recommender):
        out = recommender.recommend(0, k=10)
        scores = [s for _, s in out]
        assert scores == sorted(scores, reverse=True)

    def test_k_bounds(self, recommender):
        assert len(recommender.recommend(0, k=3)) <= 3

    def test_unknown_user(self, recommender):
        with pytest.raises(UnknownNodeError):
            recommender.recommend(10_000)

    def test_invalid_k(self, recommender):
        with pytest.raises(Exception):
            recommender.recommend(0, k=0)

    def test_fully_connected_user_gets_nothing(self):
        # star center connected to everyone
        n = 4
        adjacency = pairs_to_matrix([(0, 1), (0, 2), (0, 3)], n)
        graph = SocialGraph(adjacency)

        class _Stub:
            score_matrix = np.ones((n, n))

        recommender = LinkRecommender(_Stub(), graph)
        assert recommender.recommend(0, k=5) == []

    def test_recommend_all_covers_users(self, recommender):
        out = recommender.recommend_all(k=2)
        assert set(out) == set(range(recommender.graph.n_users))

    def test_recommend_above_threshold(self, recommender):
        out = recommender.recommend_above(0, threshold=0.0)
        assert all(score > 0.0 for _, score in out)


class TestHitRate:
    def test_hidden_links_recovered(self, recommender, split):
        rate = recommender.hit_rate(split.test_links, k=20)
        assert 0.0 <= rate <= 1.0
        # CN on this substrate recovers a meaningful share of hidden links.
        assert rate > 0.2

    def test_empty_held_out_rejected(self, recommender):
        with pytest.raises(EvaluationError):
            recommender.hit_rate([])

    def test_perfect_when_links_ranked_first(self):
        n = 4
        adjacency = np.zeros((n, n))
        graph = SocialGraph(adjacency)

        class _Stub:
            score_matrix = pairs_to_matrix([(0, 1)], n, values=[5.0])

        recommender = LinkRecommender(_Stub(), graph)
        assert recommender.hit_rate([(0, 1)], k=1) == 1.0
