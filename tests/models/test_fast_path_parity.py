"""Fast-path guarantees at the model level.

Three contracts ride on ``SlamPred(exact=...)``:

* ``exact=True`` is the seed solver, bit for bit — no SVT engine, no
  fused smooth term (the golden figure-3 regression pins its numerics);
* the default fast path matches the exact path to 1e-6 in the score
  matrix on the **figure-3 configuration** (``svd_rank=None``), where
  the warm engine is an exact operator;
* the fast path is deterministic: same task, same seeds, same bits.

The parity fits run at a scale whose adjacency is *larger* than the
engine's ``dense_cutoff`` so the randomized warm-start machinery is
genuinely exercised rather than short-circuited to the dense path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation.splits import k_fold_link_splits
from repro.models.base import TransferTask
from repro.models.slampred import SlamPredT
from repro.networks.social import SocialGraph
from repro.synth.generator import generate_aligned_pair

SCALE = 140  # n_users > WarmStartSVT.dense_cutoff (96)
INNER = 6
OUTER = 4


@pytest.fixture(scope="module")
def problem():
    aligned = generate_aligned_pair(scale=SCALE, random_state=7)
    graph = SocialGraph.from_network(aligned.target)
    split = k_fold_link_splits(graph, n_folds=5, random_state=7)[0]
    return aligned, split


def _fit(problem, svd_rank, exact):
    aligned, split = problem
    task = TransferTask(
        target=aligned.target,
        training_graph=split.training_graph,
        random_state=np.random.default_rng(3),
    )
    model = SlamPredT(
        svd_rank=svd_rank,
        inner_iterations=INNER,
        outer_iterations=OUTER,
        exact=exact,
    )
    model.fit(task)
    return model


class TestFigure3Parity:
    def test_fast_path_matches_exact_to_1e6(self, problem):
        """The ISSUE's acceptance bound, on the figure-3 configuration."""
        exact = _fit(problem, None, exact=True)
        fast = _fit(problem, None, exact=False)
        max_abs_diff = float(
            np.abs(exact.score_matrix - fast.score_matrix).max()
        )
        assert np.isfinite(max_abs_diff)
        assert max_abs_diff <= 1e-6

    def test_exact_path_has_no_engine(self, problem):
        exact = _fit(problem, None, exact=True)
        assert exact._svt_engine is None

    def test_fast_path_engine_is_used(self, problem):
        fast = _fit(problem, None, exact=False)
        assert fast._svt_engine is not None
        assert fast._svt_engine.stats["applies"] > 0


class TestDeterminism:
    def test_fast_path_is_bitwise_reproducible(self, problem):
        first = _fit(problem, 20, exact=False)
        second = _fit(problem, 20, exact=False)
        assert np.array_equal(first.score_matrix, second.score_matrix)

    def test_exact_path_is_bitwise_reproducible(self, problem):
        first = _fit(problem, None, exact=True)
        second = _fit(problem, None, exact=True)
        assert np.array_equal(first.score_matrix, second.score_matrix)
