"""Tests for repro.models.base."""

import numpy as np
import pytest

from repro.exceptions import AlignmentError, NotFittedError
from repro.models.base import LinkPredictor, MatrixPredictor, TransferTask
from repro.networks.social import SocialGraph


class _Dummy(LinkPredictor):
    def _fit(self, task):
        self.seen_task = task

    def _score_pairs(self, pairs):
        return np.arange(len(pairs), dtype=float)


class TestTransferTask:
    def test_from_aligned(self, aligned):
        task = TransferTask.from_aligned(aligned)
        assert task.n_sources == 1
        assert task.training_graph.n_users == aligned.target.n_users

    def test_explicit_training_graph(self, aligned, split):
        task = TransferTask.from_aligned(aligned, split.training_graph)
        assert task.training_graph is split.training_graph

    def test_source_anchor_count_mismatch(self, aligned, target_graph):
        with pytest.raises(AlignmentError):
            TransferTask(aligned.target, target_graph, aligned.sources, [])

    def test_graph_size_mismatch(self, aligned):
        wrong = SocialGraph(np.zeros((2, 2)))
        with pytest.raises(AlignmentError, match="users"):
            TransferTask(aligned.target, wrong)

    def test_no_sources_allowed(self, aligned, target_graph):
        task = TransferTask(aligned.target, target_graph)
        assert task.n_sources == 0


class TestLinkPredictor:
    def test_unfitted_scoring_raises(self):
        with pytest.raises(NotFittedError):
            _Dummy().score_pairs([(0, 1)])

    def test_fit_returns_self(self, aligned, target_graph):
        task = TransferTask(aligned.target, target_graph)
        model = _Dummy()
        assert model.fit(task) is model
        assert model.is_fitted

    def test_score_empty(self, aligned, target_graph):
        task = TransferTask(aligned.target, target_graph)
        model = _Dummy().fit(task)
        assert model.score_pairs([]).shape == (0,)

    def test_name_defaults_to_class(self):
        assert _Dummy().name == "_Dummy"


class TestMatrixPredictor:
    def test_unfitted_matrix_raises(self):
        class _M(MatrixPredictor):
            def _fit(self, task):
                pass

        with pytest.raises(NotFittedError):
            _M().score_matrix

    def test_score_pairs_reads_matrix(self, aligned, target_graph):
        class _M(MatrixPredictor):
            def _fit(self, task):
                n = task.training_graph.n_users
                self._score_matrix = np.arange(n * n, dtype=float).reshape(n, n)

        task = TransferTask(aligned.target, target_graph)
        model = _M().fit(task)
        n = target_graph.n_users
        scores = model.score_pairs([(0, 1), (1, 0)])
        assert scores[0] == 1.0
        assert scores[1] == float(n)
