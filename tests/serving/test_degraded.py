"""Degraded-tier transitions and the common-neighbor scorer."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.models.persistence import FrozenPredictor
from repro.serving.artifacts import ArtifactStore
from repro.serving.degraded import CommonNeighborScorer
from repro.serving.service import LinkPredictionService


@pytest.fixture()
def adjacency():
    # 0-1, 0-2, 1-2 triangle plus 2-3 pendant: 0 and 3 share neighbor 2.
    return np.array(
        [[0, 1, 1, 0], [1, 0, 1, 0], [1, 1, 0, 1], [0, 0, 1, 0]],
        dtype=float,
    )


@pytest.fixture()
def service(tmp_path, adjacency):
    store = ArtifactStore(str(tmp_path))
    scores = np.random.default_rng(3).random((4, 4))
    store.publish(FrozenPredictor(scores), graph=adjacency)
    return LinkPredictionService(store, enable_degraded_tier=True)


class TestCommonNeighborScorer:
    def test_counts_shared_neighbors(self, adjacency):
        scorer = CommonNeighborScorer(adjacency)
        assert scorer.score(0, 3) == 1.0  # via node 2
        assert scorer.score(0, 1) == 1.0  # via node 2
        assert scorer.score(1, 3) == 1.0

    def test_top_k_masks_known_links_and_self(self, adjacency):
        scorer = CommonNeighborScorer(adjacency)
        ranking = scorer.top_k(0, k=4)
        assert [v for v, _ in ranking] == [3]

    def test_rejects_non_square(self):
        with pytest.raises(ConfigurationError):
            CommonNeighborScorer(np.zeros((2, 3)))

    def test_accepts_sparse_input(self, adjacency):
        from scipy import sparse

        scorer = CommonNeighborScorer(sparse.csr_matrix(adjacency))
        assert scorer.score(0, 3) == 1.0


class TestTransitions:
    def test_disabled_by_default(self, tmp_path, adjacency):
        store = ArtifactStore(str(tmp_path / "plain"))
        store.publish(FrozenPredictor(np.eye(4)), graph=adjacency)
        plain = LinkPredictionService(store)
        assert not plain.degraded_active
        assert not plain.engage_degraded("nope")

    def test_explicit_engage_disengage(self, service):
        model_answer = service.top_k(0, k=1)
        assert service.engage_degraded("test")
        assert service.degraded_active
        assert service.top_k(0, k=1) == [(3, 1.0)]
        assert service.score(0, 3) == 1.0
        service.disengage_degraded()
        assert not service.degraded_active
        assert service.top_k(0, k=1) == model_answer

    def test_open_reload_breaker_forces_entry(self, service):
        for _ in range(3):
            service.reload_breaker.record_failure()
        assert service.reload_breaker.state == "open"
        assert service.degraded_active
        assert service.top_k(0, k=1) == [(3, 1.0)]

    def test_batch_path_degrades_too(self, service):
        service.engage_degraded("test")
        answers = service.batch_top_k([0, 1], k=2)
        assert answers[0] == [(3, 1.0)]

    def test_degraded_answers_never_cached(self, service):
        model_answer = service.top_k(0, k=1)
        service.engage_degraded("test")
        degraded_answer = service.top_k(0, k=1)
        service.disengage_degraded()
        assert service.top_k(0, k=1) == model_answer != degraded_answer

    def test_gauge_and_stats_track_state(self, service):
        assert service.stats()["degraded"] is False
        service.engage_degraded("why-not")
        stats = service.stats()
        assert stats["degraded"] is True
        assert stats["degraded_reason"] == "why-not"
        assert "serving_degraded_mode 1" in service.metrics_text()
        service.disengage_degraded()
        assert "serving_degraded_mode 0" in service.metrics_text()

    def test_degraded_requests_counted(self, service):
        service.engage_degraded("test")
        service.top_k(0, k=1)
        service.score(0, 3)
        assert "serving_degraded_requests_total 2" in service.metrics_text()
