"""Tests for the versioned ArtifactStore: layout, integrity, errors."""

import json
import os

import numpy as np
import pytest

from repro.exceptions import NotFittedError, SerializationError
from repro.models.persistence import FrozenPredictor
from repro.models.unsupervised import CommonNeighbors
from repro.serving.artifacts import (
    MANIFEST_SCHEMA_VERSION,
    ArtifactStore,
    file_sha256,
)


class TestPublish:
    def test_versions_increment(self, store, predictor):
        assert store.versions() == [1]
        assert store.publish(predictor) == 2
        assert store.publish(predictor) == 3
        assert store.resolve_latest() == 3

    def test_directory_per_version_layout(self, store):
        version_dir = store.path(1)
        assert os.path.isdir(version_dir)
        assert os.path.isfile(os.path.join(version_dir, "manifest.json"))
        assert os.path.isfile(os.path.join(version_dir, "model.npz"))
        assert os.path.isfile(os.path.join(version_dir, "graph.npz"))

    def test_no_staging_leftovers(self, store):
        assert not [
            entry
            for entry in os.listdir(store.root)
            if entry.startswith(".staging-")
        ]

    def test_manifest_contents(self, store):
        manifest = store.manifest(1)
        assert manifest["schema_version"] == MANIFEST_SCHEMA_VERSION
        assert manifest["version"] == 1
        assert manifest["name"] == "toy-model"
        assert manifest["n_users"] == 24
        assert manifest["meta"] == {"origin": "test"}
        assert set(manifest["files"]) == {"model.npz", "graph.npz"}
        for entry in manifest["files"].values():
            assert len(entry["sha256"]) == 64
            assert entry["bytes"] > 0

    def test_checksums_match_files(self, store):
        manifest = store.manifest(1)
        for filename, entry in manifest["files"].items():
            path = os.path.join(store.path(1), filename)
            assert file_sha256(path) == entry["sha256"]

    def test_unfitted_model_rejected_without_disk_state(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "empty"))
        with pytest.raises(NotFittedError):
            store.publish(CommonNeighbors())
        assert store.versions() == []

    def test_mismatched_graph_rejected(self, tmp_path, predictor):
        store = ArtifactStore(str(tmp_path / "s"))
        with pytest.raises(SerializationError, match="does not match"):
            store.publish(predictor, graph=np.zeros((3, 3)))


class TestLoad:
    def test_round_trip(self, store, predictor, adjacency):
        artifact = store.load()
        assert artifact.version == 1
        assert artifact.n_users == 24
        assert np.array_equal(
            artifact.predictor.score_matrix, predictor.score_matrix
        )
        assert np.array_equal(artifact.adjacency, adjacency)
        assert artifact.predictor.metadata["gamma"] == 0.05

    def test_load_without_graph(self, tmp_path, predictor):
        store = ArtifactStore(str(tmp_path / "nograph"))
        store.publish(predictor)
        assert store.load().adjacency is None

    def test_load_pinned_version(self, store, predictor):
        store.publish(FrozenPredictor(np.eye(24), {"name": "second"}))
        assert store.load(1).manifest["name"] == "toy-model"
        assert store.load(2).manifest["name"] == "second"
        assert store.load().version == 2

    def test_empty_store_raises(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "void"))
        with pytest.raises(SerializationError, match="no published versions"):
            store.resolve_latest()
        with pytest.raises(SerializationError):
            store.load()

    def test_missing_version_raises(self, store):
        with pytest.raises(SerializationError, match="not found"):
            store.manifest(42)


class TestIntegrity:
    def test_tampered_model_rejected(self, store):
        path = os.path.join(store.path(1), "model.npz")
        blob = bytearray(open(path, "rb").read())
        blob[len(blob) // 2] ^= 0xFF
        open(path, "wb").write(bytes(blob))
        with pytest.raises(SerializationError, match="integrity"):
            store.load()

    def test_truncated_graph_rejected(self, store):
        path = os.path.join(store.path(1), "graph.npz")
        blob = open(path, "rb").read()
        open(path, "wb").write(blob[: len(blob) // 2])
        with pytest.raises(SerializationError, match="integrity"):
            store.load()

    def test_missing_file_rejected(self, store):
        os.remove(os.path.join(store.path(1), "graph.npz"))
        with pytest.raises(SerializationError, match="missing"):
            store.load()

    def test_corrupt_manifest_rejected(self, store):
        manifest_path = os.path.join(store.path(1), "manifest.json")
        open(manifest_path, "w").write("{not json")
        with pytest.raises(SerializationError, match="manifest"):
            store.load()

    def test_unknown_schema_version_rejected(self, store):
        manifest_path = os.path.join(store.path(1), "manifest.json")
        manifest = json.load(open(manifest_path))
        manifest["schema_version"] = 999
        json.dump(manifest, open(manifest_path, "w"))
        with pytest.raises(SerializationError, match="schema version"):
            store.manifest(1)

    def test_verify_passes_on_clean_store(self, store):
        assert store.verify(1)["version"] == 1
