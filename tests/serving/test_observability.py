"""Serving observability: /metrics exposition, request ids, thread-safety."""

from __future__ import annotations

import io
import json
import logging
import re
import threading
import urllib.error
import urllib.request

import pytest

from repro.observability.logging import configure_logging
from repro.observability.metrics import MetricsRegistry, NullRegistry
from repro.observability.tracer import NullTracer
from repro.serving.batcher import MicroBatcher
from repro.serving.service import LinkPredictionService

# The `endpoint` fixture comes from tests/serving/conftest.py and is
# parametrized over the legacy and asyncio front ends.


def _get_raw(url, headers=None):
    request = urllib.request.Request(url, headers=headers or {})
    with urllib.request.urlopen(request, timeout=10) as response:
        return response, response.read().decode("utf-8")


_SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$"
)


def _parse_prometheus(text):
    """Validate text-format structure; return {sample name: float value}."""
    samples = {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            continue
        assert _SAMPLE_LINE.match(line), f"malformed sample line: {line!r}"
        name_part, value = line.rsplit(" ", 1)
        samples[name_part] = float(value) if value != "+Inf" else float("inf")
    return samples


class TestMetricsEndpoint:
    def test_scrape_is_valid_prometheus_with_core_series(self, endpoint):
        _get_raw(f"{endpoint}/v1/topk?user=1&k=3")
        _get_raw(f"{endpoint}/v1/topk?user=1&k=3")  # warm: cache hit
        response, text = _get_raw(f"{endpoint}/metrics")
        assert response.headers["Content-Type"].startswith(
            "text/plain; version=0.0.4"
        )
        samples = _parse_prometheus(text)
        route = '{route="topk",method="GET",status="200"}'
        assert samples[
            f"repro_serving_http_request_seconds_count{route}"
        ] >= 2
        assert samples["repro_serving_cache_hits_total"] >= 1
        assert samples["repro_serving_cache_misses_total"] >= 1
        assert samples["repro_serving_artifact_version"] == 1
        assert samples["repro_serving_uptime_seconds"] >= 0
        # The scrape itself is instrumented too (visible next scrape).
        _, second = _get_raw(f"{endpoint}/metrics")
        metrics_route = '{route="metrics",method="GET",status="200"}'
        assert _parse_prometheus(second)[
            f"repro_serving_http_request_seconds_count{metrics_route}"
        ] >= 1

    def test_solver_series_exposed_when_fit_shares_registry(self, store):
        # One registry can aggregate both halves: a solve bridged through
        # the tracer and the serving traffic, on one /metrics page.
        from repro.observability.tracer import Tracer

        registry = MetricsRegistry()
        tracer = Tracer(registry=registry)
        with tracer.span("svt"):
            pass
        service = LinkPredictionService(store, registry=registry)
        service.top_k(0, 3)
        text = service.metrics_text()
        assert "repro_solver_svt_seconds_count" in text
        assert "repro_serving_cache_misses_total" in text

    def test_404_and_errors_counted(self, endpoint):
        try:
            _get_raw(f"{endpoint}/nope")
        except urllib.error.HTTPError as exc:
            assert exc.code == 404
        try:
            _get_raw(f"{endpoint}/v1/topk?user=9999")
        except urllib.error.HTTPError as exc:
            assert exc.code == 400
        _, text = _get_raw(f"{endpoint}/metrics")
        samples = _parse_prometheus(text)
        assert samples["repro_serving_http_not_found_total"] >= 1
        assert samples[
            'repro_serving_http_errors_total{route="topk"}'
        ] >= 1
        assert samples[
            'repro_serving_http_request_seconds_count'
            '{route="other",method="GET",status="404"}'
        ] >= 1


class TestRequestIds:
    def test_response_echoes_client_request_id(self, endpoint):
        response, _ = _get_raw(
            f"{endpoint}/healthz", headers={"X-Request-Id": "cli-abc123"}
        )
        assert response.headers["X-Request-Id"] == "cli-abc123"

    def test_server_generates_request_id_when_absent(self, endpoint):
        response, _ = _get_raw(f"{endpoint}/healthz")
        generated = response.headers["X-Request-Id"]
        assert generated and len(generated) == 12

    def test_request_id_flows_into_access_log(self, endpoint):
        stream = io.StringIO()
        handler = configure_logging(logging.DEBUG, stream=stream, force=True)
        try:
            _get_raw(
                f"{endpoint}/v1/topk?user=1&k=2",
                headers={"X-Request-Id": "trace-me-0001"},
            )
        finally:
            logging.getLogger("repro").removeHandler(handler)
        records = [
            json.loads(line)
            for line in stream.getvalue().splitlines()
            if line.strip()
        ]
        access = [r for r in records if r["logger"] == "repro.serving.http"]
        assert access, f"no access-log records in {records}"
        assert access[-1]["request_id"] == "trace-me-0001"
        assert access[-1]["path"].startswith("/v1/topk")
        assert access[-1]["status"] == 200
        assert access[-1]["method"] == "GET"

    def test_request_id_propagates_into_batcher(self, service):
        from repro.observability.logging import request_context

        with MicroBatcher(service, max_wait_ms=1.0) as batcher:
            with request_context("req-batch-7"):
                batcher.submit(1, 3)
        # The batch executed on the worker thread, away from the request
        # context; the id must have been captured at submit time.
        assert service.tracer.counters["batcher.requests"] == 1


class TestReloadMetrics:
    def test_noop_and_success_reloads_counted(self, service, store):
        from repro.models.persistence import FrozenPredictor
        import numpy as np

        service.reload()  # same version: no-op
        scores = np.zeros((service.n_users, service.n_users))
        store.publish(FrozenPredictor(scores, {"name": "v2"}))
        service.reload()  # picks up version 2
        text = service.metrics_text()
        samples = _parse_prometheus(text)
        assert samples["repro_serving_reload_noop_total"] == 1
        assert samples["repro_serving_reload_success_total"] == 1
        assert samples["repro_serving_artifact_version"] == 2


class TestServingConcurrency:
    """Hammer one service from many threads; counters must not lose."""

    def test_parallel_topk_counts_every_request(self, store):
        service = LinkPredictionService(store, cache_size=4)
        n_threads, per_thread = 12, 200
        barrier = threading.Barrier(n_threads)
        errors = []

        def worker(seed):
            barrier.wait()
            try:
                for i in range(per_thread):
                    service.top_k((seed + i) % service.n_users, 3)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(t,))
            for t in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        total = n_threads * per_thread
        stats = service.stats()["cache"]
        assert stats["hits"] + stats["misses"] == total
        samples = _parse_prometheus(service.metrics_text())
        registry_total = (
            samples["repro_serving_cache_hits_total"]
            + samples["repro_serving_cache_misses_total"]
        )
        assert registry_total == total


class TestDisabledTelemetry:
    def test_null_tracer_and_registry_serve_correctly(self, store):
        service = LinkPredictionService(
            store, tracer=NullTracer(), registry=NullRegistry()
        )
        ranked = service.top_k(0, 3)
        assert len(ranked) == 3
        assert service.metrics_text() == ""
        assert service.stats()["cache"]["hits"] + (
            service.stats()["cache"]["misses"]
        ) >= 1  # internal stats still work without a registry
