"""Tests for the micro-batcher: correctness under concurrency, coalescing."""

import threading

import pytest

from repro.exceptions import ConfigurationError, UnknownNodeError
from repro.serving.batcher import MicroBatcher


class TestLifecycle:
    def test_context_manager_starts_and_stops(self, service):
        with MicroBatcher(service) as batcher:
            assert batcher.running
        assert not batcher.running

    def test_submit_before_start_rejected(self, service):
        batcher = MicroBatcher(service)
        with pytest.raises(ConfigurationError, match="not running"):
            batcher.submit(0)

    def test_start_idempotent(self, service):
        batcher = MicroBatcher(service).start()
        try:
            worker = batcher._worker
            batcher.start()
            assert batcher._worker is worker
        finally:
            batcher.stop()

    def test_invalid_parameters(self, service):
        with pytest.raises(ConfigurationError):
            MicroBatcher(service, max_batch=0)
        with pytest.raises(ConfigurationError):
            MicroBatcher(service, max_wait_ms=-1)


class TestCorrectness:
    def test_single_submit_matches_direct(self, service):
        expected = service.top_k(5, k=4)
        with MicroBatcher(service, max_wait_ms=1.0) as batcher:
            assert batcher.submit(5, k=4) == expected

    def test_concurrent_submits_match_direct(self, service):
        users = list(range(service.n_users)) * 3
        expected = {user: service.top_k(user, k=5) for user in set(users)}
        results = {}
        errors = []

        def query(slot, user):
            try:
                results[slot] = (user, batcher.submit(user, k=5))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        with MicroBatcher(service, max_batch=16, max_wait_ms=5.0) as batcher:
            threads = [
                threading.Thread(target=query, args=(slot, user))
                for slot, user in enumerate(users)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not errors
        assert len(results) == len(users)
        for user, ranking in results.values():
            assert ranking == expected[user]

    def test_mixed_k_answered_separately(self, service):
        with MicroBatcher(service, max_wait_ms=5.0) as batcher:
            small = batcher.submit(1, k=2)
            large = batcher.submit(1, k=8)
        assert len(small) == 2
        assert len(large) == 8
        assert small == large[:2]

    def test_errors_propagate_to_caller(self, service):
        with MicroBatcher(service, max_wait_ms=1.0) as batcher:
            with pytest.raises(UnknownNodeError):
                batcher.submit(10_000, k=3)
            # The worker survives a poisoned batch.
            assert batcher.submit(0, k=3) == service.top_k(0, k=3)


class TestCoalescing:
    def test_batches_counted_on_tracer(self, service):
        with MicroBatcher(service, max_wait_ms=1.0) as batcher:
            batcher.submit(0, k=3)
        counters = service.tracer.counters
        assert counters["batcher.batches"] >= 1
        assert counters["batcher.requests"] >= 1
        assert service.tracer.metrics["batcher.batch_size"]

    def test_concurrent_load_coalesces(self, service):
        n_requests = 40
        with MicroBatcher(service, max_batch=64, max_wait_ms=20.0) as batcher:
            threads = [
                threading.Thread(
                    target=batcher.submit, args=(i % service.n_users, 4)
                )
                for i in range(n_requests)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        counters = service.tracer.counters
        assert counters["batcher.requests"] == n_requests
        # With a 20ms window, far fewer batches than requests.
        assert counters["batcher.batches"] < n_requests

    def test_mixed_k_batch_is_one_scoring_pass(self, service):
        """Distinct k values in one batch must not split the pass per k."""
        ks = (2, 4, 6, 8)
        expected = {
            (user, k): service.top_k(user, k)
            for user, k in zip(range(4), ks)
        }
        service.cache.invalidate()
        before = service.tracer.counters.get("batcher.batches", 0)
        results = {}
        with MicroBatcher(service, max_batch=8, max_wait_ms=50.0) as batcher:
            threads = [
                threading.Thread(
                    target=lambda u=user, kk=k: results.__setitem__(
                        (u, kk), batcher.submit(u, kk)
                    )
                )
                for user, k in zip(range(4), ks)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert results == expected
        # All four mixed-k requests coalesced into a single batch.
        assert service.tracer.counters["batcher.batches"] == before + 1


class TestTraceGrafting:
    """The worker grafts a batcher.batch span back onto request traces."""

    def test_sampled_trace_gains_batch_span(self, service):
        from repro.observability.sampling import SamplingTracer

        tracer = SamplingTracer(
            service.registry, default_rate=1.0, cells=service.cells
        )
        service.tracer = tracer
        with MicroBatcher(service, max_wait_ms=0.0) as batcher:
            with tracer.trace("topk") as trace:
                batcher.submit(user=0, k=3)
        batch_spans = [
            span for span in trace.spans() if span.name == "batcher.batch"
        ]
        assert len(batch_spans) == 1
        assert batch_spans[0].attrs["batch_size"] >= 1
        assert batch_spans[0].duration > 0.0

    def test_batch_failure_promotes_error_trace(self, service):
        from repro.observability.sampling import SamplingTracer

        tracer = SamplingTracer(
            service.registry, default_rate=0.0, cells=service.cells
        )
        service.tracer = tracer
        with MicroBatcher(service, max_wait_ms=0.0) as batcher:
            with pytest.raises(UnknownNodeError):
                with tracer.trace("topk"):
                    batcher.submit(user=10_000, k=3)
        finished = tracer.finished()
        assert len(finished) == 1
        assert finished[0].error
        assert any(
            span.name == "batcher.batch" and span.error
            for span in finished[0].spans()
        )

    def test_unsampled_clean_submit_grafts_nothing(self, service):
        from repro.observability.sampling import SamplingTracer

        tracer = SamplingTracer(
            service.registry, default_rate=0.0, cells=service.cells
        )
        service.tracer = tracer
        with MicroBatcher(service, max_wait_ms=0.0) as batcher:
            with tracer.trace("topk"):
                batcher.submit(user=0, k=3)
        assert tracer.finished() == []
