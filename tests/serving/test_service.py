"""Tests for LinkPredictionService: ranking, caching, hot-swap reload."""

import os

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, UnknownNodeError
from repro.models.persistence import FrozenPredictor
from repro.serving.artifacts import ArtifactStore
from repro.serving.service import LinkPredictionService


class TestTopK:
    def test_excludes_self_and_known_links(self, service, adjacency):
        for user in range(service.n_users):
            for candidate, _ in service.top_k(user, k=10):
                assert candidate != user
                assert adjacency[user, candidate] == 0

    def test_sorted_descending_and_deduplicated(self, service):
        ranking = service.top_k(3, k=8)
        scores = [score for _, score in ranking]
        assert scores == sorted(scores, reverse=True)
        users = [candidate for candidate, _ in ranking]
        assert len(users) == len(set(users))

    def test_matches_exhaustive_ranking(self, service, score_matrix, adjacency):
        user = 5
        masked = score_matrix[user].copy()
        masked[user] = -np.inf
        masked[adjacency[user] > 0] = -np.inf
        expected = np.argsort(-masked, kind="stable")[:4]
        got = [candidate for candidate, _ in service.top_k(user, k=4)]
        assert got == [int(j) for j in expected]

    def test_fully_connected_user_gets_empty_list(self, tmp_path):
        adjacency = 1.0 - np.eye(4)
        store = ArtifactStore(str(tmp_path / "full"))
        store.publish(FrozenPredictor(np.ones((4, 4))), graph=adjacency)
        service = LinkPredictionService(store)
        assert service.top_k(0, k=5) == []

    def test_k_larger_than_population(self, service):
        ranking = service.top_k(0, k=1000)
        assert 0 < len(ranking) < service.n_users

    def test_bad_inputs(self, service):
        with pytest.raises(UnknownNodeError):
            service.top_k(999)
        with pytest.raises(UnknownNodeError):
            service.score(0, -1)
        with pytest.raises(ConfigurationError):
            service.top_k(0, k=0)


class TestScore:
    def test_raw_matrix_entry(self, service, score_matrix):
        assert service.score(1, 2) == pytest.approx(score_matrix[1, 2])

    def test_known_link_flag(self, service, adjacency):
        links = np.argwhere(adjacency > 0)
        u, v = (int(links[0][0]), int(links[0][1])) if len(links) else (0, 1)
        if len(links):
            assert service.is_known_link(u, v)
        assert not service.is_known_link(0, 0)


class TestCaching:
    def test_repeat_queries_hit_cache(self, service):
        first = service.top_k(2, k=5)
        second = service.top_k(2, k=5)
        assert first == second
        stats = service.stats()
        assert stats["cache"]["hits"] == 1
        assert service.tracer.counters["serve.cache_hit"] == 1
        assert service.tracer.counters["serve.cache_miss"] == 1

    def test_distinct_k_cached_separately(self, service):
        service.top_k(2, k=5)
        service.top_k(2, k=6)
        assert service.stats()["cache"]["misses"] == 2

    def test_batch_fills_cache_for_singles(self, service):
        service.batch_top_k([1, 2, 3], k=5)
        service.top_k(2, k=5)
        assert service.tracer.counters["serve.cache_hit"] == 1


class TestBatchTopK:
    def test_agrees_with_single_queries(self, service):
        batched = service.batch_top_k([0, 4, 9], k=6)
        fresh = LinkPredictionService(service.store, cache_size=16)
        singles = [fresh.top_k(user, k=6) for user in (0, 4, 9)]
        assert batched == singles

    def test_duplicate_users_share_answer(self, service):
        a, b = service.batch_top_k([7, 7], k=3)
        assert a == b

    def test_counts_per_query(self, service):
        service.batch_top_k([0, 1, 2], k=4)
        assert service.tracer.counters["serve.topk_requests"] == 3


class TestReload:
    def test_noop_when_current(self, service):
        assert service.reload() is False
        assert service.tracer.counters["serve.reload_noop"] == 1

    def test_hot_swap_to_new_version(self, service, store):
        old = service.top_k(0, k=3)
        n = service.n_users
        store.publish(FrozenPredictor(np.arange(n * n, dtype=float).reshape(n, n)))
        assert service.reload() is True
        assert service.version == 2
        assert service.top_k(0, k=3) != old
        assert service.stats()["cache"]["invalidations"] == 1

    def test_falls_back_when_new_version_corrupt(self, service, store):
        baseline = service.top_k(0, k=3)
        n = service.n_users
        version = store.publish(FrozenPredictor(np.eye(n)))
        model_path = os.path.join(store.path(version), "model.npz")
        open(model_path, "wb").write(b"corrupted")
        assert service.reload() is False
        assert service.version == 1
        assert service.top_k(0, k=3) == baseline
        stats = service.stats()
        assert service.tracer.counters["serve.reload_failed"] == 1
        assert "integrity" in stats["last_reload_error"]

    def test_recovers_after_good_publish(self, service, store, predictor):
        n = service.n_users
        bad = store.publish(FrozenPredictor(np.eye(n)))
        open(os.path.join(store.path(bad), "model.npz"), "wb").write(b"x")
        service.reload()
        store.publish(predictor)
        assert service.reload() is True
        assert service.version == 3
        assert service.stats()["last_reload_error"] is None


class TestStats:
    def test_shape(self, service):
        service.top_k(0, k=2)
        stats = service.stats()
        assert stats["version"] == 1
        assert stats["model"] == "toy-model"
        assert stats["n_users"] == 24
        assert stats["uptime_seconds"] >= 0
        assert stats["counters"]["serve.requests"] == 1
        assert set(stats["cache"]) >= {"hits", "misses", "evictions", "size"}

    def test_accepts_store_path_string(self, store):
        service = LinkPredictionService(store.root)
        assert service.version == 1
