"""Shared serving fixtures: a tiny deterministic artifact store.

Serving is exercised against hand-built :class:`FrozenPredictor` artifacts
(no model fitting), so these tests are fast and independent of the
training stack — exactly the deployment boundary the subsystem promises.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.models.persistence import FrozenPredictor
from repro.serving.aio import make_async_server
from repro.serving.artifacts import ArtifactStore
from repro.serving.http import make_server
from repro.serving.service import LinkPredictionService

N_USERS = 24


@pytest.fixture()
def score_matrix(rng):
    """A symmetric dense score matrix with distinct entries."""
    scores = rng.normal(size=(N_USERS, N_USERS))
    return (scores + scores.T) / 2.0


@pytest.fixture()
def adjacency(rng):
    """A sparse symmetric zero-diagonal binary adjacency."""
    upper = np.triu((rng.random((N_USERS, N_USERS)) < 0.15).astype(float), 1)
    return upper + upper.T


@pytest.fixture()
def predictor(score_matrix):
    """A frozen predictor over the synthetic scores."""
    return FrozenPredictor(score_matrix, {"name": "toy-model", "gamma": 0.05})


@pytest.fixture()
def store(tmp_path, predictor, adjacency):
    """A store with one published version (model + graph)."""
    store = ArtifactStore(str(tmp_path / "store"))
    store.publish(predictor, graph=adjacency, meta={"origin": "test"})
    return store


@pytest.fixture()
def service(store):
    """A service over the one-version store."""
    return LinkPredictionService(store, cache_size=16)


@pytest.fixture(params=["legacy", "aio"])
def endpoint(request, service):
    """A live server on a free port; yields its base URL.

    Parametrized over both front ends — the threaded parity oracle and
    the asyncio default — so every endpoint/propagation/degradation test
    written against this fixture pins the two servers to identical
    behaviour for free.
    """
    if request.param == "legacy":
        server = make_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield f"http://127.0.0.1:{server.server_address[1]}"
        server.shutdown()
        server.server_close()
    else:
        server = make_async_server(service, port=0).start()
        yield f"http://127.0.0.1:{server.server_address[1]}"
        server.shutdown()
        server.server_close()
