"""Asyncio front end: keep-alive framing, pipelining, shed/deadline, drain.

The shared endpoint contract is already pinned by the parametrized
``endpoint`` fixture (every test in ``test_http.py`` /
``test_observability.py`` runs against both front ends); this module
covers what only the asyncio server does — raw-socket HTTP/1.1
semantics the high-level ``urllib`` client cannot express, and the
graceful-drain lifecycle.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro.serving.aio import make_async_server
from repro.serving.batcher import MicroBatcher


@pytest.fixture()
def aio_server(service):
    """A started asyncio server; yields the server object."""
    server = make_async_server(service, port=0).start()
    yield server
    server.shutdown()
    server.server_close()


def _connect(server):
    """One raw TCP connection to the server."""
    host, port = server.server_address
    sock = socket.create_connection((host, port), timeout=10)
    return sock


def _read_one_response(reader):
    """Parse one framed response off a file-like reader.

    Returns ``(status, headers, body_bytes)`` — relies on the server
    sending a correct ``Content-Length``, which is exactly what the
    framing tests assert.
    """
    status_line = reader.readline().decode("latin-1")
    assert status_line.startswith("HTTP/1.1 "), status_line
    status = int(status_line.split()[1])
    headers = {}
    while True:
        line = reader.readline().decode("latin-1").strip()
        if not line:
            break
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers["content-length"])
    body = reader.read(length)
    assert len(body) == length
    return status, headers, body


class TestKeepAliveFraming:
    def test_pipelined_requests_get_distinct_ids_and_framing(
        self, aio_server
    ):
        # Three requests written back-to-back before reading anything:
        # the server must answer all three, in order, each correctly
        # framed and each with its own generated request id.
        sock = _connect(aio_server)
        try:
            batch = b"".join(
                f"GET /v1/topk?user={user}&k=3 HTTP/1.1\r\n"
                f"Host: x\r\n\r\n".encode()
                for user in (1, 2, 3)
            )
            sock.sendall(batch)
            reader = sock.makefile("rb")
            ids, users = [], []
            for _ in range(3):
                status, headers, body = _read_one_response(reader)
                assert status == 200
                assert headers["connection"] == "keep-alive"
                payload = json.loads(body)
                ids.append(headers["x-request-id"])
                users.append(payload["user"])
                assert payload["request_id"] == headers["x-request-id"]
            assert users == [1, 2, 3]
            assert len(set(ids)) == 3
        finally:
            sock.close()

    def test_sequential_requests_reuse_one_connection(self, aio_server):
        sock = _connect(aio_server)
        try:
            reader = sock.makefile("rb")
            for user in range(4):
                sock.sendall(
                    f"GET /v1/score?u={user}&v={user + 1} HTTP/1.1\r\n"
                    f"Host: x\r\n\r\n".encode()
                )
                status, _, body = _read_one_response(reader)
                assert status == 200
                assert json.loads(body)["u"] == user
        finally:
            sock.close()

    def test_connection_close_honoured(self, aio_server):
        sock = _connect(aio_server)
        try:
            sock.sendall(
                b"GET /healthz HTTP/1.1\r\nHost: x\r\n"
                b"Connection: close\r\n\r\n"
            )
            reader = sock.makefile("rb")
            status, headers, _ = _read_one_response(reader)
            assert status == 200
            assert headers["connection"] == "close"
            assert reader.read() == b""  # server closed after the answer
        finally:
            sock.close()

    def test_http10_defaults_to_close(self, aio_server):
        sock = _connect(aio_server)
        try:
            sock.sendall(b"GET /healthz HTTP/1.0\r\nHost: x\r\n\r\n")
            reader = sock.makefile("rb")
            status, headers, _ = _read_one_response(reader)
            assert status == 200
            assert headers["connection"] == "close"
            assert reader.read() == b""
        finally:
            sock.close()

    def test_error_bodies_are_framed_json(self, aio_server):
        sock = _connect(aio_server)
        try:
            reader = sock.makefile("rb")
            for target, expected in (
                ("/nope", 404),
                ("/v1/topk?user=abc", 400),
                ("/v1/topk?user=9999", 400),
            ):
                sock.sendall(
                    f"GET {target} HTTP/1.1\r\nHost: x\r\n\r\n".encode()
                )
                status, headers, body = _read_one_response(reader)
                assert status == expected
                assert headers["content-type"] == "application/json"
                payload = json.loads(body)
                assert payload["status"] == expected
                assert payload["error"] and payload["request_id"]
        finally:
            sock.close()


class TestMalformedRequests:
    def test_malformed_request_line_400_does_not_poison_connection(
        self, aio_server
    ):
        # A garbage request line answers 400, and the *same* connection
        # then serves a well-formed request normally.
        sock = _connect(aio_server)
        try:
            reader = sock.makefile("rb")
            sock.sendall(b"THIS IS NOT HTTP\r\n\r\n")
            status, headers, body = _read_one_response(reader)
            assert status == 400
            assert "malformed request line" in json.loads(body)["error"]
            sock.sendall(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            status, _, body = _read_one_response(reader)
            assert status == 200
            assert json.loads(body)["status"] == "ok"
        finally:
            sock.close()

    def test_malformed_request_line_with_body_stays_aligned(
        self, aio_server
    ):
        # The 400 consumes the declared body, so the next pipelined
        # request still parses from a clean boundary.
        sock = _connect(aio_server)
        try:
            reader = sock.makefile("rb")
            sock.sendall(
                b"BROKEN\r\nContent-Length: 5\r\n\r\nhello"
                b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"
            )
            status, _, _ = _read_one_response(reader)
            assert status == 400
            status, _, body = _read_one_response(reader)
            assert status == 200
            assert json.loads(body)["status"] == "ok"
        finally:
            sock.close()

    def test_bad_content_length_closes_connection(self, aio_server):
        # Unknown framing: the 400 must be the connection's last answer.
        sock = _connect(aio_server)
        try:
            reader = sock.makefile("rb")
            sock.sendall(
                b"POST /v1/topk HTTP/1.1\r\nHost: x\r\n"
                b"Content-Length: banana\r\n\r\n"
            )
            status, headers, body = _read_one_response(reader)
            assert status == 400
            assert headers["connection"] == "close"
            assert "Content-Length" in json.loads(body)["error"]
            assert reader.read() == b""
        finally:
            sock.close()

    def test_transfer_encoding_rejected(self, aio_server):
        sock = _connect(aio_server)
        try:
            reader = sock.makefile("rb")
            sock.sendall(
                b"POST /v1/topk HTTP/1.1\r\nHost: x\r\n"
                b"Transfer-Encoding: chunked\r\n\r\n"
            )
            status, headers, _ = _read_one_response(reader)
            assert status == 400
            assert headers["connection"] == "close"
        finally:
            sock.close()


class TestSheddingAndDeadline:
    def test_max_inflight_sheds_with_503(self, service, monkeypatch):
        # One slow worker occupies the single in-flight slot; a second
        # request must be shed on the event loop with the uniform body.
        release = threading.Event()
        original = service.top_k

        def slow_top_k(user, k):
            release.wait(5.0)
            return original(user, k)

        monkeypatch.setattr(service, "top_k", slow_top_k)
        server = make_async_server(service, port=0, max_inflight=1).start()
        try:
            slow = _connect(server)
            slow.sendall(
                b"GET /v1/topk?user=0&k=3 HTTP/1.1\r\nHost: x\r\n\r\n"
            )
            deadline = time.perf_counter() + 5.0
            shed_payload = None
            while time.perf_counter() < deadline:
                probe = _connect(server)
                probe.sendall(
                    b"GET /v1/topk?user=1&k=3 HTTP/1.1\r\nHost: x\r\n\r\n"
                )
                status, _, body = _read_one_response(probe.makefile("rb"))
                probe.close()
                if status == 503:
                    shed_payload = json.loads(body)
                    break
            release.set()
            assert shed_payload is not None, "no request was shed"
            assert "overloaded" in shed_payload["error"]
            status, _, _ = _read_one_response(slow.makefile("rb"))
            assert status == 200
            slow.close()
            metrics = service.metrics_text()
            assert "repro_reliability_shed_requests_total" in metrics
        finally:
            release.set()
            server.shutdown()
            server.server_close()

    def test_deadline_overrun_answers_503(self, service, monkeypatch):
        # The remaining budget becomes the batcher wait bound; a scoring
        # pass slower than the deadline times the waiter out into a 503
        # with the deadline message — same contract as the legacy server.
        monkeypatch.setattr(
            service,
            "batch_top_k_mixed",
            lambda users, ks: time.sleep(0.5) or [[] for _ in users],
        )
        with MicroBatcher(service, max_wait_ms=1.0) as batcher:
            server = make_async_server(
                service, port=0, batcher=batcher, request_deadline_s=0.05
            ).start()
            try:
                sock = _connect(server)
                sock.sendall(
                    b"GET /v1/topk?user=0&k=3 HTTP/1.1\r\nHost: x\r\n\r\n"
                )
                status, _, body = _read_one_response(sock.makefile("rb"))
                sock.close()
                assert status == 503
                assert "timed out" in json.loads(body)["error"]
            finally:
                server.shutdown()
                server.server_close()

    def test_batcher_routes_single_user_gets(self, service):
        with MicroBatcher(service, max_wait_ms=1.0) as batcher:
            server = make_async_server(
                service, port=0, batcher=batcher
            ).start()
            try:
                sock = _connect(server)
                sock.sendall(
                    b"GET /v1/topk?user=4&k=3 HTTP/1.1\r\nHost: x\r\n\r\n"
                )
                status, _, body = _read_one_response(sock.makefile("rb"))
                sock.close()
                assert status == 200
                assert len(json.loads(body)["candidates"]) == 3
                assert service.tracer.counters["batcher.requests"] >= 1
            finally:
                server.shutdown()
                server.server_close()


class TestGracefulDrain:
    def test_shutdown_finishes_inflight_then_stops_accepting(
        self, service, monkeypatch
    ):
        entered = threading.Event()
        original = service.top_k

        def slow_top_k(user, k):
            entered.set()
            time.sleep(0.3)
            return original(user, k)

        monkeypatch.setattr(service, "top_k", slow_top_k)
        server = make_async_server(service, port=0).start()
        sock = _connect(server)
        sock.sendall(
            b"GET /v1/topk?user=0&k=3 HTTP/1.1\r\nHost: x\r\n\r\n"
        )
        assert entered.wait(5.0)
        server.shutdown(wait=True)
        # The in-flight request completed during the drain window…
        status, _, body = _read_one_response(sock.makefile("rb"))
        assert status == 200
        assert len(json.loads(body)["candidates"]) == 3
        sock.close()
        # …and the listener is gone afterwards.
        host, port = server.server_address
        with pytest.raises(OSError):
            socket.create_connection((host, port), timeout=0.5)
        server.server_close()

    def test_shutdown_closes_idle_keepalive_connections(self, aio_server):
        sock = _connect(aio_server)
        reader = sock.makefile("rb")
        sock.sendall(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        status, _, _ = _read_one_response(reader)
        assert status == 200
        aio_server.shutdown(wait=True)
        assert reader.read() == b""  # idle connection was closed
        sock.close()

    def test_shutdown_flushes_batcher(self, service):
        batcher = MicroBatcher(service, max_wait_ms=1.0).start()
        server = make_async_server(service, port=0, batcher=batcher).start()
        try:
            sock = _connect(server)
            sock.sendall(
                b"GET /v1/topk?user=2&k=3 HTTP/1.1\r\nHost: x\r\n\r\n"
            )
            status, _, _ = _read_one_response(sock.makefile("rb"))
            sock.close()
            assert status == 200
            server.shutdown(wait=True)
            assert batcher.flush(timeout=1.0)  # nothing left queued
        finally:
            server.server_close()
            batcher.stop()

    def test_shutdown_is_idempotent(self, service):
        server = make_async_server(service, port=0).start()
        server.shutdown(wait=True)
        server.shutdown(wait=True)  # second call is a no-op
        server.server_close()
        server.server_close()


class TestObservabilityExtras:
    def test_loop_lag_and_executor_series_registered(self, aio_server, service):
        sock = _connect(aio_server)
        sock.sendall(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
        status, _, body = _read_one_response(sock.makefile("rb"))
        sock.close()
        assert status == 200
        text = body.decode()
        assert "repro_serving_loop_lag_seconds" in text
        assert "repro_serving_executor_queue_depth" in text
        assert "repro_serving_executor_wait_seconds" in text

    def test_executor_hop_span_attached_to_sampled_trace(self, service):
        from repro.observability.sampling import SamplingTracer

        service.tracer = SamplingTracer(
            service.registry, default_rate=1.0, cells=service.cells
        )
        server = make_async_server(service, port=0).start()
        try:
            sock = _connect(server)
            sock.sendall(
                b"GET /v1/topk?user=0&k=3 HTTP/1.1\r\nHost: x\r\n\r\n"
            )
            status, _, _ = _read_one_response(sock.makefile("rb"))
            sock.close()
            assert status == 200
            finished = service.tracer.finished()
            assert finished
            names = [span.name for span in finished[-1].spans()]
            assert "serving.executor_hop" in names
        finally:
            server.shutdown()
            server.server_close()
