"""Zero-copy artifact loading: npy layout, mmap reloads, chunked digests.

The ``npy`` store layout writes one uncompressed ``.npy`` file per
factor array so :func:`numpy.load` can memory-map them on read; a
hot-swap ``reload()`` then *maps* pages instead of copying O(nk)
floats.  These tests pin the three legs of that contract:

* parity — an npy-layout artifact answers byte-identical scores to the
  same predictor published through the default npz layout;
* integrity — the per-array content digest still catches a tampered
  factor even when the manifest checksums were rewritten to match;
* zero-copy — tracemalloc proves a reload of an n=5000 factored
  artifact allocates less than 5% of the factor bytes (the residual
  graph-side conversions are all that remains).
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest
from scipy import sparse

from repro.exceptions import ArtifactCorruptError
from repro.factored.estimate import FactoredEstimate
from repro.models.persistence import (
    FrozenFactoredPredictor,
    load_factored_layout,
    save_factored_layout,
)
from repro.serving.artifacts import ArtifactStore
from repro.serving.service import LinkPredictionService


def _factored_predictor(n=48, k=6, seed=0):
    """A small deterministic factored predictor."""
    rng = np.random.default_rng(seed)
    u = rng.normal(size=(n, k))
    s = np.abs(rng.normal(size=k)) + 0.5
    vt = rng.normal(size=(k, n))
    estimate = FactoredEstimate(u, s, vt, sparse.csr_matrix((n, n)))
    return FrozenFactoredPredictor(
        estimate, {"name": "mmap-test", "gamma": 0.1}
    )


def _adjacency(n, nnz_target, seed=1):
    """A sparse symmetric boolean adjacency with roughly nnz_target links."""
    rng = np.random.default_rng(seed)
    density = nnz_target / (2 * n * n)  # symmetrization doubles the count
    upper = sparse.random(n, n, density=density, format="csr", random_state=rng)
    return ((upper + upper.T) > 0).astype(float).tocsr()


def _is_memmap_view(array):
    """Whether the array's view chain bottoms out in a ``np.memmap``."""
    base = array
    while isinstance(base, np.ndarray):
        if isinstance(base, np.memmap):
            return True
        base = base.base
    return False


class TestNpyLayoutParity:
    def test_npy_and_npz_layouts_score_identically(self, tmp_path):
        predictor = _factored_predictor()
        adjacency = _adjacency(48, 100)
        npz_store = ArtifactStore(str(tmp_path / "npz"), layout="npz")
        npy_store = ArtifactStore(str(tmp_path / "npy"), layout="npy")
        npz_store.publish(predictor, graph=adjacency)
        npy_store.publish(predictor, graph=adjacency)
        a = LinkPredictionService(npz_store, cache_size=4)
        b = LinkPredictionService(npy_store, cache_size=4)
        for user in range(0, 48, 7):
            assert a.top_k(user, 5) == b.top_k(user, 5)

    def test_npy_manifest_declares_layout_and_verifies(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"), layout="npy")
        store.publish(_factored_predictor())
        manifest = store.verify()
        assert manifest["layout"] == "npy"
        assert "model.json" in manifest["files"]
        assert any(name.endswith(".npy") for name in manifest["files"])

    def test_npz_layout_remains_the_default(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        store.publish(_factored_predictor())
        assert "model.npz" in store.verify()["files"]

    def test_unknown_layout_rejected(self, tmp_path):
        from repro.exceptions import SerializationError

        with pytest.raises(SerializationError, match="layout"):
            ArtifactStore(str(tmp_path / "store"), layout="tar")


class TestNpyIntegrity:
    def test_tampered_factor_caught_behind_rewritten_checksums(
        self, tmp_path
    ):
        # Flip bytes in one .npy AND rewrite the manifest sha256 to
        # match: the outer checksums pass, so only the inner content
        # digest in model.json can catch it — and it must.
        import json
        import os

        from repro.serving.artifacts import file_sha256

        store = ArtifactStore(str(tmp_path / "store"), layout="npy")
        version = store.publish(_factored_predictor())
        directory = store.path(version)
        target = os.path.join(directory, "factor_u.npy")
        data = bytearray(open(target, "rb").read())
        data[-8:] = bytes(8)  # zero one trailing float
        with open(target, "wb") as handle:
            handle.write(data)
        manifest_path = os.path.join(directory, "manifest.json")
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        manifest["files"]["factor_u.npy"]["sha256"] = file_sha256(target)
        with open(manifest_path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle)
        with pytest.raises(ArtifactCorruptError, match="integrity"):
            store.load(version)

    def test_missing_array_file_rejected(self, tmp_path):
        import os

        store = ArtifactStore(str(tmp_path / "store"), layout="npy")
        version = store.publish(_factored_predictor())
        os.unlink(os.path.join(store.path(version), "factor_s.npy"))
        with pytest.raises(ArtifactCorruptError):
            store.load(version)


class TestZeroCopyReload:
    def test_mmap_load_views_are_not_copies(self, tmp_path):
        save_factored_layout(_factored_predictor(), str(tmp_path))
        loaded = load_factored_layout(str(tmp_path), mmap_mode="r")
        estimate = loaded.estimate
        for array in (estimate.u, estimate.s, estimate.vt):
            # FactoredEstimate re-wraps with np.asarray/ravel, which
            # demotes the memmap subclass to a plain ndarray *view*
            # (possibly a chain of views) — the pages at the bottom are
            # still the file's, not a heap copy.
            assert not array.flags["OWNDATA"]
            assert _is_memmap_view(array)

    def test_mmap_opt_out_yields_writable_arrays(self, tmp_path):
        save_factored_layout(_factored_predictor(), str(tmp_path))
        loaded = load_factored_layout(str(tmp_path), mmap_mode=None)
        estimate = loaded.estimate
        assert not _is_memmap_view(estimate.u)
        estimate.u[0, 0] = 42.0  # writable: no mmap page protection

    def test_reload_allocates_under_five_percent_of_factor_bytes(
        self, tmp_path
    ):
        # The headline zero-copy promise at serving scale: reload() of
        # an n=5000 factored artifact maps the factors instead of
        # copying them.  tracemalloc tracks Python heap allocations —
        # mmap page-ins are not allocations — so a <5% peak proves no
        # code path materialized the factor arrays.
        n, k = 5000, 64
        rng = np.random.default_rng(3)
        u = rng.normal(size=(n, k))
        s = np.abs(rng.normal(size=k)) + 0.5
        vt = rng.normal(size=(k, n))
        factor_bytes = u.nbytes + s.nbytes + vt.nbytes
        predictor = FrozenFactoredPredictor(
            FactoredEstimate(u, s, vt, sparse.csr_matrix((n, n))),
            {"name": "mmap-large"},
        )
        adjacency = _adjacency(n, 5000, seed=4)
        store = ArtifactStore(str(tmp_path / "store"), layout="npy")
        store.publish(predictor, graph=adjacency)
        service = LinkPredictionService(store, cache_size=4)
        store.publish(predictor, graph=adjacency)  # v2 for the reload
        tracemalloc.start()
        try:
            assert service.reload() is True
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert peak < 0.05 * factor_bytes, (
            f"reload() allocated {peak} bytes — "
            f"{100 * peak / factor_bytes:.1f}% of the {factor_bytes} "
            "factor bytes; the mmap path is copying"
        )
        # The reloaded service still answers.
        assert len(service.top_k(0, 5)) == 5
