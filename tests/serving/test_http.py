"""Tests for the HTTP endpoint: routes, shapes, errors, batched GETs."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.serving.batcher import MicroBatcher
from repro.serving.http import make_server

# The `endpoint` fixture (tests/serving/conftest.py) is parametrized over
# the legacy threaded server and the asyncio front end, so every test in
# this module runs against both.


def _get(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return json.load(response)


def _post(url, payload):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return json.load(response)


def _error(url, payload=None):
    try:
        if payload is None:
            urllib.request.urlopen(url, timeout=10)
        else:
            _post(url, payload)
    except urllib.error.HTTPError as exc:
        return exc.code, json.load(exc)
    raise AssertionError("expected an HTTP error")


class TestRoutes:
    def test_healthz(self, endpoint, service):
        payload = _get(f"{endpoint}/healthz")
        assert payload == {
            "status": "ok",
            "version": 1,
            "model": "toy-model",
            "n_users": service.n_users,
        }

    def test_topk_shape(self, endpoint, service, adjacency):
        payload = _get(f"{endpoint}/v1/topk?user=3&k=5")
        assert payload["user"] == 3
        assert payload["k"] == 5
        assert payload["version"] == 1
        candidates = payload["candidates"]
        assert len(candidates) == 5
        users = [c["user"] for c in candidates]
        assert len(set(users)) == 5
        assert 3 not in users
        for c in candidates:
            assert adjacency[3, c["user"]] == 0
        scores = [c["score"] for c in candidates]
        assert scores == sorted(scores, reverse=True)

    def test_topk_default_k(self, endpoint):
        assert _get(f"{endpoint}/v1/topk?user=0")["k"] == 10

    def test_score(self, endpoint, service):
        payload = _get(f"{endpoint}/v1/score?u=1&v=2")
        assert payload["score"] == pytest.approx(service.score(1, 2))
        assert payload["known_link"] == service.is_known_link(1, 2)

    def test_stats_reflects_traffic(self, endpoint):
        _get(f"{endpoint}/v1/topk?user=1&k=3")
        _get(f"{endpoint}/v1/topk?user=1&k=3")
        stats = _get(f"{endpoint}/v1/stats")
        assert stats["cache"]["hits"] >= 1
        assert stats["counters"]["http.requests"] >= 2
        assert stats["counters"]["serve.topk_requests"] >= 2

    def test_post_single(self, endpoint, service):
        payload = _post(f"{endpoint}/v1/topk", {"user": 2, "k": 4})
        assert [c["user"] for c in payload["candidates"]] == [
            u for u, _ in service.top_k(2, k=4)
        ]

    def test_post_batch(self, endpoint):
        payload = _post(f"{endpoint}/v1/topk", {"users": [0, 1, 2], "k": 3})
        assert len(payload["results"]) == 3
        for result, user in zip(payload["results"], [0, 1, 2]):
            assert result["user"] == user
            assert len(result["candidates"]) == 3


class TestErrors:
    def test_unknown_route_404(self, endpoint):
        code, payload = _error(f"{endpoint}/v2/nope")
        assert code == 404
        assert "no such endpoint" in payload["error"]

    def test_missing_user_400(self, endpoint):
        code, payload = _error(f"{endpoint}/v1/topk")
        assert code == 400
        assert "user" in payload["error"]

    def test_out_of_range_user_400(self, endpoint):
        code, payload = _error(f"{endpoint}/v1/topk?user=9999")
        assert code == 400
        assert "out of range" in payload["error"]

    def test_non_integer_param_400(self, endpoint):
        code, _ = _error(f"{endpoint}/v1/topk?user=abc")
        assert code == 400

    def test_bad_json_body_400(self, endpoint):
        request = urllib.request.Request(
            f"{endpoint}/v1/topk", data=b"{not json"
        )
        try:
            urllib.request.urlopen(request, timeout=10)
        except urllib.error.HTTPError as exc:
            assert exc.code == 400
        else:  # pragma: no cover - failure path
            raise AssertionError("expected 400")

    def test_post_without_user_400(self, endpoint):
        code, payload = _error(f"{endpoint}/v1/topk", {"k": 3})
        assert code == 400
        assert "user" in payload["error"]


class TestBatchedServer:
    def test_get_routed_through_batcher(self, service):
        with MicroBatcher(service, max_wait_ms=1.0) as batcher:
            server = make_server(service, port=0, batcher=batcher)
            thread = threading.Thread(target=server.serve_forever, daemon=True)
            thread.start()
            try:
                base = f"http://127.0.0.1:{server.server_address[1]}"
                payload = _get(f"{base}/v1/topk?user=4&k=3")
                assert len(payload["candidates"]) == 3
                assert service.tracer.counters["batcher.requests"] >= 1
            finally:
                server.shutdown()
                server.server_close()


class TestErrorBodyContract:
    """Every 4xx/5xx answer is valid JSON: {error, status, request_id}."""

    def test_every_error_response_is_structured_json(self, endpoint):
        failing = [
            f"{endpoint}/definitely-not-a-route",        # 404
            f"{endpoint}/v1/topk",                       # 400: missing user
            f"{endpoint}/v1/topk?user=abc",              # 400: bad type
            f"{endpoint}/v1/topk?user=9999",             # 400: out of range
            f"{endpoint}/v1/score?u=1",                  # 400: missing v
        ]
        for url in failing:
            try:
                urllib.request.urlopen(url, timeout=10)
            except urllib.error.HTTPError as exc:
                body = exc.read().decode("utf-8")
                payload = json.loads(body)  # not JSON -> this test fails
                assert payload["status"] == exc.code
                assert payload["error"]
                assert payload["request_id"]
                assert exc.headers["Content-Type"] == "application/json"
            else:  # pragma: no cover - failure path
                raise AssertionError(f"expected an HTTP error for {url}")

    def test_error_echoes_caller_request_id(self, endpoint):
        request = urllib.request.Request(
            f"{endpoint}/v1/topk",  # missing user -> 400
            headers={"X-Request-Id": "caller-chosen-id"},
        )
        try:
            urllib.request.urlopen(request, timeout=10)
        except urllib.error.HTTPError as exc:
            assert json.load(exc)["request_id"] == "caller-chosen-id"
        else:  # pragma: no cover - failure path
            raise AssertionError("expected 400")


class TestReadiness:
    def test_readyz_ready(self, endpoint):
        payload = _get(f"{endpoint}/readyz")
        assert payload["status"] == "ready"
        assert payload["reload_breaker"] == "closed"

    def test_readyz_503_when_breaker_open(self, service):
        server = make_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            base = f"http://127.0.0.1:{server.server_address[1]}"
            for _ in range(10):  # force the reload breaker open
                service.reload_breaker.record_failure()
            code, payload = _error(f"{base}/readyz")
            assert code == 503
            assert payload["reload_breaker"] == "open"
            # Liveness is unaffected: the process is up, just not ready.
            assert _get(f"{base}/healthz")["status"] == "ok"
        finally:
            server.shutdown()
            server.server_close()


class TestTraceEdge:
    """Trace minting, header echo/parse, request-id payloads, profiler."""

    def test_topk_payload_carries_request_id(self, endpoint):
        request = urllib.request.Request(
            f"{endpoint}/v1/topk?user=0&k=3",
            headers={"X-Request-Id": "rid-topk-1"},
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            payload = json.load(response)
        assert payload["request_id"] == "rid-topk-1"

    def test_response_echoes_trace_context_header(self, endpoint):
        with urllib.request.urlopen(
            f"{endpoint}/v1/topk?user=0&k=3", timeout=10
        ) as response:
            header = response.headers.get("X-Trace-Context")
        assert header is not None
        parts = header.rsplit("-", 2)
        assert len(parts) == 3 and parts[2] in ("00", "01")

    def test_incoming_trace_header_pins_trace_id(self, service):
        from repro.observability.sampling import SamplingTracer

        service.tracer = SamplingTracer(
            service.registry, default_rate=0.0, cells=service.cells
        )
        server = make_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            base = f"http://127.0.0.1:{server.server_address[1]}"
            request = urllib.request.Request(
                f"{base}/v1/topk?user=0&k=3",
                headers={"X-Trace-Context": "feedface00c0ffee-12345678-01"},
            )
            with urllib.request.urlopen(request, timeout=10) as response:
                echoed = response.headers["X-Trace-Context"]
            assert echoed.startswith("feedface00c0ffee-")
            # Upstream said sampled=01, so the trace commits regardless
            # of the local rate-0 default.
            trace = service.tracer.find_trace("feedface00c0ffee")
            assert trace is not None and trace.sampled
        finally:
            server.shutdown()
            server.server_close()

    def test_server_error_commits_error_trace(self, service, monkeypatch):
        from repro.observability.sampling import SamplingTracer

        service.tracer = SamplingTracer(
            service.registry, default_rate=0.0, cells=service.cells
        )
        monkeypatch.setattr(
            service,
            "top_k",
            lambda *a, **k: (_ for _ in ()).throw(RuntimeError("boom")),
        )
        server = make_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            base = f"http://127.0.0.1:{server.server_address[1]}"
            code, _ = _error(f"{base}/v1/topk?user=0&k=3")
            assert code == 500
            finished = service.tracer.finished()
            assert len(finished) == 1
            assert finished[0].error and not finished[0].sampled
        finally:
            server.shutdown()
            server.server_close()

    def test_debug_profile_route(self, endpoint):
        from repro.observability.profiler import global_profiler

        payload = _get(f"{endpoint}/debug/profile?top=5")
        assert payload["running"] == global_profiler().running
        assert "entries" in payload and "total_samples" in payload

    def test_debug_profile_reports_samples_when_running(self, endpoint):
        from repro.observability.profiler import global_profiler

        profiler = global_profiler()
        profiler.reset()
        profiler.start()
        try:
            deadline = time.monotonic() + 5.0
            payload = _get(f"{endpoint}/debug/profile")
            while (
                payload["total_samples"] == 0
                and time.monotonic() < deadline
            ):
                _get(f"{endpoint}/v1/topk?user=0&k=3")
                payload = _get(f"{endpoint}/debug/profile")
            assert payload["running"]
        finally:
            profiler.stop()
            profiler.reset()
