"""Tests for the serving CLI and the experiments --publish bridge."""

import numpy as np
import pytest

from repro.models.persistence import FrozenPredictor, save_predictor
from repro.serving.__main__ import build_parser, main
from repro.serving.artifacts import ArtifactStore
from repro.serving.service import LinkPredictionService


class TestParser:
    def test_subcommands_registered(self):
        parser = build_parser()
        for argv in (
            ["publish", "--store", "s"],
            ["inspect", "--store", "s", "--version", "2", "--json"],
            ["serve", "--store", "s", "--port", "0", "--no-batcher"],
        ):
            args = parser.parse_args(argv)
            assert args.command == argv[0]

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestRouteRateParsing:
    """Path-style keys must normalize to the tracer's route labels."""

    def test_paths_normalize_to_route_labels(self):
        from repro.serving.__main__ import _parse_route_rates

        rates = _parse_route_rates(
            ["/v1/topk=0.5", "/v1/score=0.0", "topk=0.25"]
        )
        # The tracer samples by label, so the path key must land on the
        # label; the later bare-label entry wins over the path form.
        assert rates == {"topk": 0.25, "score": 0.0}

    def test_unknown_path_aborts_instead_of_never_matching(self):
        from repro.serving.__main__ import _parse_route_rates

        with pytest.raises(SystemExit, match="unknown route"):
            _parse_route_rates(["/v1/nope=0.5"])

    def test_malformed_pairs_abort(self):
        from repro.serving.__main__ import _parse_route_rates

        with pytest.raises(SystemExit, match="ROUTE=RATE"):
            _parse_route_rates(["topk"])
        with pytest.raises(SystemExit, match="number"):
            _parse_route_rates(["topk=fast"])


class TestPublishCommand:
    def test_publish_from_npz(self, tmp_path, predictor, capsys):
        npz = str(tmp_path / "model.npz")
        save_predictor(predictor, npz)
        store_dir = str(tmp_path / "store")
        assert main(["publish", "--store", store_dir, "--npz", npz]) == 0
        out = capsys.readouterr().out
        assert "published" in out and "v0001" in out
        store = ArtifactStore(store_dir)
        artifact = store.load()
        assert np.array_equal(
            artifact.predictor.score_matrix, predictor.score_matrix
        )
        assert artifact.manifest["meta"]["source"] == "npz"

    def test_publish_synthetic_fit_and_serve_round_trip(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        code = main(
            [
                "publish",
                "--store", store_dir,
                "--scale", "40",
                "--seed", "3",
                "--model", "slampred-h",
                "--inner-iterations", "3",
                "--outer-iterations", "2",
            ]
        )
        assert code == 0
        artifact = ArtifactStore(store_dir).load()
        assert artifact.adjacency is not None
        assert artifact.manifest["meta"]["variant"] == "slampred-h"
        service = LinkPredictionService(store_dir)
        ranking = service.top_k(0, k=5)
        assert ranking
        for candidate, _ in ranking:
            assert artifact.adjacency[0, candidate] == 0


class TestInspectCommand:
    def test_inspect_prints_manifest(self, store, capsys):
        assert main(["inspect", "--store", store.root]) == 0
        out = capsys.readouterr().out
        assert "integrity ok" in out
        assert "toy-model" in out
        assert "model.npz" in out
        assert "sha256" in out

    def test_inspect_json(self, store, capsys):
        import json

        assert main(["inspect", "--store", store.root, "--json"]) == 0
        manifest = json.loads(capsys.readouterr().out)
        assert manifest["version"] == 1


class TestExperimentsPublishFlag:
    def test_flag_registered_with_default_store(self):
        from repro.experiments.__main__ import build_parser as experiments_parser
        from repro.experiments.publishing import DEFAULT_STORE_DIR

        args = experiments_parser().parse_args(["table1", "--publish"])
        assert args.publish == DEFAULT_STORE_DIR
        args = experiments_parser().parse_args(["table1", "--publish", "d"])
        assert args.publish == "d"
        args = experiments_parser().parse_args(["table1"])
        assert args.publish is None

    def test_publish_reference_fit(self, tmp_path):
        from repro.experiments.publishing import publish_reference_fit

        version, store = publish_reference_fit(
            str(tmp_path / "store"),
            scale=40,
            random_state=5,
            experiment="table1",
            inner_iterations=3,
            outer_iterations=2,
        )
        assert version == 1
        artifact = store.load()
        assert artifact.manifest["meta"]["experiment"] == "table1"
        assert artifact.manifest["meta"]["scale"] == 40
        assert artifact.adjacency is not None
        assert artifact.n_users == artifact.adjacency.shape[0]
