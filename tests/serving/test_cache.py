"""Tests for the LRU ranking cache: ordering, counters, invalidation."""

import threading

import pytest

from repro.exceptions import ConfigurationError
from repro.serving.cache import RankingCache


class TestLru:
    def test_hit_returns_value(self):
        cache = RankingCache(capacity=4)
        cache.put("a", [1])
        assert cache.get("a") == [1]

    def test_miss_returns_default(self):
        cache = RankingCache(capacity=4)
        assert cache.get("nope") is None
        assert cache.get("nope", default=[]) == []

    def test_least_recently_used_evicted(self):
        cache = RankingCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a; b becomes LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_overwrite_does_not_grow(self):
        cache = RankingCache(capacity=2)
        cache.put("a", 1)
        cache.put("a", 2)
        assert len(cache) == 1
        assert cache.get("a") == 2

    def test_empty_value_is_cacheable(self):
        cache = RankingCache(capacity=2)
        cache.put("empty", [])
        assert cache.get("empty", default="MISS") == []

    def test_capacity_validated(self):
        with pytest.raises(ConfigurationError):
            RankingCache(capacity=0)


class TestCounters:
    def test_hits_misses_evictions(self):
        cache = RankingCache(capacity=1)
        cache.get("x")
        cache.put("x", 1)
        cache.get("x")
        cache.put("y", 2)  # evicts x
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["evictions"] == 1
        assert stats["size"] == 1
        assert stats["hit_rate"] == 0.5

    def test_invalidate_clears_and_counts(self):
        cache = RankingCache(capacity=4)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.invalidate() == 2
        assert len(cache) == 0
        assert cache.get("a") is None
        assert cache.stats()["invalidations"] == 1


class TestThreadSafety:
    def test_concurrent_put_get(self):
        cache = RankingCache(capacity=64)
        errors = []

        def worker(seed):
            try:
                for i in range(300):
                    cache.put((seed, i % 80), i)
                    cache.get((seed, (i * 7) % 80))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 64
