"""The streaming pipeline: ticks, recovery, warm starts, degraded entry."""

import numpy as np
import pytest

from repro.observability.metrics import MetricsRegistry
from repro.reliability.breaker import CircuitBreaker
from repro.reliability.checkpoints import CheckpointManager
from repro.serving.artifacts import ArtifactStore
from repro.serving.service import LinkPredictionService
from repro.streaming import StreamingPipeline, WarmRefitter, link_add, link_remove
from repro.streaming.refit import WarmRefitter as Refitter


def _quick_refitter(**kwargs):
    return WarmRefitter(inner_iterations=6, outer_iterations=2, **kwargs)


class TestTick:
    def test_ingest_refit_publish_reload(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        pipeline = StreamingPipeline(
            str(tmp_path / "stream"),
            n_users=8,
            store=store,
            refitter=_quick_refitter(),
        )
        for u, v in [(0, 1), (1, 2), (2, 3)]:
            pipeline.submit(link_add(u, v))
        summary = pipeline.tick()
        assert summary["applied"] == 3
        assert summary["published_version"] == 1
        service = LinkPredictionService(store)
        pipeline.service = service
        pipeline.submit(link_add(4, 5))
        pipeline.tick()
        assert service.version == 2
        stats = pipeline.stats()
        assert stats["acked_seq"] == stats["applied_seq"] == stats["published_seq"]

    def test_staleness_zero_when_caught_up(self, tmp_path):
        pipeline = StreamingPipeline(
            str(tmp_path), n_users=6, refitter=_quick_refitter()
        )
        pipeline.submit(link_add(0, 1))
        assert pipeline.update_staleness() > 0.0
        pipeline.tick()
        assert pipeline.update_staleness() == 0.0

    def test_snapshot_compacts_wal(self, tmp_path):
        pipeline = StreamingPipeline(
            str(tmp_path),
            n_users=6,
            refitter=_quick_refitter(),
            segment_max_bytes=256,
        )
        for i in range(20):
            pipeline.submit(link_add(i % 5, 5))
        pipeline.apply_pending()
        pipeline.snapshot()
        assert pipeline.wal.first_seq > 1
        # Replay after compaction still reconstructs from the snapshot.
        pipeline.close()
        recovered = StreamingPipeline(str(tmp_path), n_users=6)
        assert recovered.state.digest() == pipeline.state.digest()


class TestRecovery:
    def test_recovery_is_digest_identical(self, tmp_path):
        home = str(tmp_path / "stream")
        pipeline = StreamingPipeline(home, n_users=10, refitter=_quick_refitter())
        deltas = [link_add(0, 1), link_add(1, 2), link_remove(0, 1), link_add(3, 4, 2.0)]
        for delta in deltas:
            pipeline.submit(delta)
        pipeline.apply_pending()
        expected = pipeline.state.digest()
        pipeline.close()  # no snapshot: recovery must replay the WAL
        recovered = StreamingPipeline(home, n_users=10)
        assert recovered.state.digest() == expected

    def test_corrupt_snapshot_falls_back_to_full_replay(self, tmp_path):
        home = str(tmp_path / "stream")
        pipeline = StreamingPipeline(home, n_users=6, snapshot_every=1,
                                     refitter=_quick_refitter())
        pipeline.submit(link_add(0, 1))
        pipeline.apply_pending()
        pipeline.snapshot()
        expected = pipeline.state.digest()
        pipeline.close()
        raw = open(pipeline.state_path, "rb").read()
        with open(pipeline.state_path, "wb") as handle:
            handle.write(raw[: len(raw) // 3])  # torn snapshot
        recovered = StreamingPipeline(home, n_users=6)
        assert recovered.state.digest() == expected


class TestWarmStart:
    def test_dense_refit_warm_starts_from_checkpoint(self, tmp_path):
        manager = CheckpointManager(str(tmp_path / "ckpt"))
        refitter = _quick_refitter(checkpoint_manager=manager)
        pipeline = StreamingPipeline(
            str(tmp_path / "stream"), n_users=8, refitter=refitter
        )
        pipeline.submit(link_add(0, 1))
        pipeline.tick()
        assert refitter.last_warm_source == "cold"
        assert manager.latest() is not None
        pipeline.submit(link_add(1, 2))
        pipeline.tick()
        assert refitter.last_warm_source == "checkpoint"

    def test_factored_refit_warm_starts_from_estimate(self, tmp_path):
        refitter = _quick_refitter(factored=True)
        pipeline = StreamingPipeline(
            str(tmp_path / "stream"), n_users=8, refitter=refitter
        )
        pipeline.submit(link_add(0, 1))
        pipeline.tick()
        assert refitter.last_warm_source == "cold"
        pipeline.submit(link_add(1, 2))
        pipeline.tick()
        assert refitter.last_warm_source == "estimate"

    def test_svt_engine_retained_across_refits(self, tmp_path):
        refitter = _quick_refitter()
        pipeline = StreamingPipeline(
            str(tmp_path / "stream"), n_users=8, refitter=refitter
        )
        pipeline.submit(link_add(0, 1))
        pipeline.tick()
        engine = refitter._svt_engine
        pipeline.submit(link_add(1, 2))
        pipeline.tick()
        assert refitter._svt_engine is engine


class _FailingRefitter(Refitter):
    """A refitter that always blows up (breaker fodder)."""

    def refit(self, adjacency, intimacy=None, tracer=None):
        raise RuntimeError("synthetic refit failure")


class TestDegradedEntry:
    def test_refit_breaker_opens_and_engages_degraded(self, tmp_path):
        store = ArtifactStore(str(tmp_path / "store"))
        seed = StreamingPipeline(
            str(tmp_path / "seed"), n_users=8, store=store,
            refitter=_quick_refitter(),
        )
        for u, v in [(0, 1), (1, 2), (0, 2), (2, 3)]:
            seed.submit(link_add(u, v))
        seed.tick()
        service = LinkPredictionService(store, enable_degraded_tier=True)
        clock = {"t": 0.0}
        pipeline = StreamingPipeline(
            str(tmp_path / "stream"),
            n_users=8,
            store=store,
            service=service,
            refitter=_FailingRefitter(),
            refit_breaker=CircuitBreaker("test.refit", failure_threshold=2,
                                         recovery_timeout=1.0,
                                         clock=lambda: clock["t"]),
        )
        pipeline.submit(link_add(4, 5))
        assert pipeline.tick()["published_version"] is None
        assert not service.degraded_active  # breaker still closed
        pipeline.tick()
        assert pipeline.refit_breaker.state == "open"
        assert service.degraded_active
        # Degraded answers flow from the common-neighbor tier.
        assert service.top_k(0, k=2)
        # Past the recovery timeout a healthy refit closes the breaker
        # and disengages the tier.
        pipeline.refitter = _quick_refitter()
        clock["t"] += 10.0
        pipeline.tick()
        assert not service.degraded_active

    def test_metrics_exported(self, tmp_path):
        registry = MetricsRegistry()
        pipeline = StreamingPipeline(
            str(tmp_path), n_users=6, registry=registry,
            refitter=_quick_refitter(),
        )
        pipeline.submit(link_add(0, 1))
        pipeline.tick()
        text = registry.render()
        assert "streaming_applied_seq 1" in text
        assert "streaming_staleness_seconds 0" in text
        assert "streaming_stage_seconds" in text
