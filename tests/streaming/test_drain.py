"""Graceful drain: closing mid-``tick`` never tears a publish.

The serving front ends drain on SIGTERM; the streaming side's
counterpart is :meth:`StreamingPipeline.close`, which (by default) takes
the tick lock before releasing the WAL — so an in-flight
apply→snapshot→refit→publish either completes its atomic
version-directory rename or never starts, and a half-written staging
directory can never be what shutdown leaves behind.
"""

import glob
import os
import threading
import time

from repro.serving.artifacts import ArtifactStore
from repro.streaming import StreamingPipeline, WarmRefitter, link_add


class _SlowRefitter(WarmRefitter):
    """A refitter that parks mid-refit until told to proceed.

    ``entered`` lets the test know the tick is inside its critical
    section; ``release`` holds it there while ``close()`` is racing.
    """

    def __init__(self, entered, release, **kwargs):
        super().__init__(**kwargs)
        self.entered = entered
        self.release = release

    def refit(self, adjacency, intimacy=None, tracer=None):
        """Signal entry, then block until released."""
        self.entered.set()
        assert self.release.wait(10.0)
        return super().refit(adjacency, intimacy=intimacy, tracer=tracer)


class TestDrainMidTick:
    def test_close_waits_for_inflight_tick_and_publish_completes(
        self, tmp_path
    ):
        entered = threading.Event()
        release = threading.Event()
        store = ArtifactStore(str(tmp_path / "store"))
        pipeline = StreamingPipeline(
            str(tmp_path / "stream"),
            n_users=8,
            store=store,
            refitter=_SlowRefitter(
                entered, release, inner_iterations=6, outer_iterations=2
            ),
        )
        pipeline.submit(link_add(0, 1))
        pipeline.submit(link_add(1, 2))

        summaries = []
        ticker = threading.Thread(
            target=lambda: summaries.append(pipeline.tick()), daemon=True
        )
        ticker.start()
        assert entered.wait(10.0)  # the tick is mid-refit

        closed = threading.Event()

        def close_pipeline():
            pipeline.close()
            closed.set()

        closer = threading.Thread(target=close_pipeline, daemon=True)
        closer.start()
        # close() must block while the tick holds the lock…
        assert not closed.wait(0.3)
        release.set()
        # …and complete once the tick (including its publish) finishes.
        assert closed.wait(10.0)
        ticker.join(10.0)
        closer.join(10.0)

        # The racing tick finished its publish — no torn version.
        assert summaries and summaries[0]["published_version"] == 1
        assert store.versions() == [1]
        store.verify(1)  # checksums intact
        # No staging leftovers from an abandoned publish.
        leftovers = glob.glob(
            os.path.join(str(tmp_path / "store"), ".staging-*")
        )
        assert leftovers == []

    def test_close_without_drain_does_not_block(self, tmp_path):
        entered = threading.Event()
        release = threading.Event()
        pipeline = StreamingPipeline(
            str(tmp_path / "stream"),
            n_users=6,
            refitter=_SlowRefitter(
                entered, release, inner_iterations=6, outer_iterations=2
            ),
        )
        pipeline.submit(link_add(0, 1))
        ticker = threading.Thread(target=pipeline.tick, daemon=True)
        ticker.start()
        assert entered.wait(10.0)
        started = time.perf_counter()
        pipeline.close(drain=False)  # must not wait for the tick
        assert time.perf_counter() - started < 1.0
        release.set()
        ticker.join(10.0)

    def test_concurrent_ticks_serialize(self, tmp_path):
        pipeline = StreamingPipeline(
            str(tmp_path / "stream"),
            n_users=6,
            refitter=WarmRefitter(inner_iterations=6, outer_iterations=2),
        )
        pipeline.submit(link_add(0, 1))
        errors = []

        def run_tick():
            try:
                pipeline.tick()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=run_tick) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30.0)
        assert not errors
        assert pipeline.ticks == 4  # all ran, one at a time
        pipeline.close()
