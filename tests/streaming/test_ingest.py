"""Backpressure, shedding and ack semantics of the ingest API."""

import threading

import pytest

from repro.exceptions import BackpressureError
from repro.observability.metrics import MetricsRegistry
from repro.streaming.deltas import link_add
from repro.streaming.ingest import StreamIngestor
from repro.streaming.wal import WriteAheadLog


class TestSubmit:
    def test_submit_returns_monotone_acks(self, tmp_path):
        ingestor = StreamIngestor(WriteAheadLog(str(tmp_path)))
        seqs = [ingestor.submit(link_add(0, i)) for i in range(1, 5)]
        assert seqs == [1, 2, 3, 4]

    def test_full_queue_sheds_with_backpressure_error(self, tmp_path):
        applied = 0
        ingestor = StreamIngestor(
            WriteAheadLog(str(tmp_path)),
            applied_seq_fn=lambda: applied,
            max_pending=2,
        )
        ingestor.submit(link_add(0, 1))
        ingestor.submit(link_add(0, 2))
        with pytest.raises(BackpressureError):
            ingestor.submit(link_add(0, 3), timeout=0.05)
        assert ingestor.stats()["shed"] == 1
        # Nothing was written for the shed delta: the WAL holds 2 records.
        assert ingestor.wal.last_seq == 2

    def test_blocked_submit_resumes_after_drain(self, tmp_path):
        state = {"applied": 0}
        ingestor = StreamIngestor(
            WriteAheadLog(str(tmp_path)),
            applied_seq_fn=lambda: state["applied"],
            max_pending=1,
        )
        ingestor.submit(link_add(0, 1))
        result = {}

        def blocked_submit():
            result["seq"] = ingestor.submit(link_add(0, 2), timeout=5.0)

        thread = threading.Thread(target=blocked_submit)
        thread.start()
        state["applied"] = 1  # consumer catches up…
        ingestor.notify_applied()  # …and wakes the submitter
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert result["seq"] == 2

    def test_metrics_published(self, tmp_path):
        registry = MetricsRegistry()
        ingestor = StreamIngestor(WriteAheadLog(str(tmp_path)), registry=registry)
        ingestor.submit(link_add(0, 1))
        text = registry.render()
        assert "streaming_acked_seq 1" in text
