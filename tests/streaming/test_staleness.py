"""The staleness-vs-AUC cadence sweep over temporal slices."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.streaming.deltas import StreamState
from repro.streaming.evaluation import (
    evaluate_cadence,
    snapshot_deltas,
    staleness_auc_sweep,
)
from repro.streaming.refit import WarmRefitter
from repro.temporal.snapshots import evolve_snapshots


def _tiny_refitter():
    return WarmRefitter(inner_iterations=5, outer_iterations=2)


class TestSnapshotDeltas:
    def test_diff_reconstructs_snapshot(self):
        sequence = evolve_snapshots(n_nodes=20, n_steps=3, random_state=1)
        n = sequence.n_nodes
        state = StreamState(n)
        seq = 0
        previous = np.zeros((n, n))
        for snapshot in sequence.snapshots:
            for delta in snapshot_deltas(previous, snapshot):
                seq += 1
                state.apply(seq, delta)
            previous = snapshot
        np.testing.assert_array_equal(
            state.to_csr().toarray(), sequence.snapshots[-1]
        )

    def test_empty_diff(self):
        adjacency = np.zeros((4, 4))
        assert snapshot_deltas(adjacency, adjacency) == []


class TestEvaluateCadence:
    def test_returns_aucs_and_staleness(self):
        sequence = evolve_snapshots(n_nodes=24, n_steps=4, random_state=2)
        row = evaluate_cadence(
            sequence, cadence=2, refitter=_tiny_refitter(), n_negatives=40,
            random_state=2,
        )
        assert 0.0 <= row["mean_auc"] <= 1.0
        assert row["mean_staleness_steps"] >= 0.0
        assert row["refits"] >= 1

    def test_rejects_bad_cadence(self):
        sequence = evolve_snapshots(n_nodes=10, n_steps=3, random_state=0)
        with pytest.raises(ConfigurationError):
            evaluate_cadence(sequence, cadence=0)

    def test_higher_cadence_refits_less(self):
        sequence = evolve_snapshots(n_nodes=24, n_steps=6, random_state=3)
        fast = evaluate_cadence(
            sequence, 1, refitter=_tiny_refitter(), n_negatives=20, random_state=3
        )
        slow = evaluate_cadence(
            sequence, 4, refitter=_tiny_refitter(), n_negatives=20, random_state=3
        )
        assert fast["refits"] > slow["refits"]
        assert slow["mean_staleness_steps"] > fast["mean_staleness_steps"]


class TestSweep:
    def test_sweep_has_one_row_per_cadence(self):
        sweep = staleness_auc_sweep(
            n_nodes=20,
            n_steps=3,
            cadences=(1, 2),
            n_negatives=20,
            random_state=4,
            refitter_factory=_tiny_refitter,
        )
        assert [row["cadence"] for row in sweep["rows"]] == [1, 2]

    def test_experiment_runner_renders_text(self):
        from repro.experiments.streaming_staleness import run_streaming_staleness

        result = run_streaming_staleness(
            scale=20, n_steps=3, cadences=(1,), n_negatives=20, random_state=5
        )
        assert "refit cadence" in result["text"]
        assert result["rows"]
