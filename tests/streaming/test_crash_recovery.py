"""kill -9 mid-ingest: no acknowledged delta may ever be lost.

The child process submits a deterministic, seed-derived delta stream
through the real pipeline, printing ``ACK <seq>`` (flushed) after every
durable acknowledgement.  The parent SIGKILLs it at a seeded-random
acknowledgement count — so the kill lands at arbitrary byte positions in
the WAL, including mid-record — then recovers in-process and checks the
two halves of the guarantee:

* **no loss** — every sequence number whose ack the parent observed is
  at or below the recovered ``applied_seq``;
* **bit-exactness** — the recovered state digest equals an uninterrupted
  in-memory apply of the same delta prefix.

One variant also runs refit→publish ticks in the child, so the kill can
land between ack and publish (the exact window named in the guarantee).
"""

import os
import signal
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.streaming import StreamingPipeline, StreamState

N_USERS = 12
N_DELTAS = 60

# Shared by parent (exec) and child (subprocess): the delta stream is a
# pure function of the seed, so both sides can derive the same prefix.
_GENERATOR = textwrap.dedent(
    """
    import numpy as np
    from repro.streaming.deltas import attribute_set, link_add, link_remove

    def make_deltas(seed, count, n_users):
        rng = np.random.default_rng(seed)
        deltas = []
        for _ in range(count):
            u = int(rng.integers(0, n_users - 1))
            v = int(rng.integers(u + 1, n_users))
            op = rng.random()
            if op < 0.6:
                deltas.append(link_add(u, v, float(rng.integers(1, 5))))
            elif op < 0.8:
                deltas.append(link_remove(u, v))
            else:
                deltas.append(attribute_set(u, v, float(rng.random())))
        return deltas
    """
)

_CHILD = _GENERATOR + textwrap.dedent(
    """
    import sys
    from repro.streaming import StreamingPipeline
    from repro.streaming.refit import WarmRefitter

    def main():
        home, seed, n_users, count, tick_every = sys.argv[1:6]
        seed, n_users, count = int(seed), int(n_users), int(count)
        tick_every = int(tick_every)
        store = None
        if tick_every:
            from repro.serving.artifacts import ArtifactStore
            store = ArtifactStore(home + "-store")
        pipeline = StreamingPipeline(
            home, n_users=n_users, store=store,
            refitter=WarmRefitter(inner_iterations=4, outer_iterations=2),
            snapshot_every=2,
        )
        for index, delta in enumerate(make_deltas(seed, count, n_users)):
            seq = pipeline.submit(delta)
            print("ACK %d" % seq, flush=True)
            if tick_every and (index + 1) % tick_every == 0:
                pipeline.tick()
                print("PUBLISHED %d" % pipeline.publishes, flush=True)
        pipeline.tick()
        print("DONE", flush=True)

    main()
    """
)


def _make_deltas(seed, count, n_users):
    """Run the shared generator in-process (identical to the child's)."""
    namespace = {}
    exec(_GENERATOR, namespace)
    return namespace["make_deltas"](seed, count, n_users)


def _run_and_kill(tmp_path, seed, kill_after_acks, tick_every=0):
    """Spawn the child, SIGKILL it after N observed acks; return acks seen."""
    home = str(tmp_path / f"stream-{seed}")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [os.path.abspath("src"), env.get("PYTHONPATH", "")])
    )
    child = subprocess.Popen(
        [sys.executable, "-c", _CHILD, home, str(seed), str(N_USERS),
         str(N_DELTAS), str(tick_every)],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        env=env,
        text=True,
    )
    acked = []
    try:
        for line in child.stdout:
            if line.startswith("ACK "):
                acked.append(int(line.split()[1]))
                if len(acked) >= kill_after_acks:
                    os.kill(child.pid, signal.SIGKILL)
                    break
            elif line.startswith("DONE"):
                break
    finally:
        child.stdout.close()
        child.wait(timeout=30)
    assert acked, "child died before acknowledging anything"
    return home, acked


def _oracle_digest(seed, applied_seq):
    """Uninterrupted apply of the first ``applied_seq`` deltas."""
    state = StreamState(N_USERS)
    for offset, delta in enumerate(_make_deltas(seed, N_DELTAS, N_USERS)):
        seq = offset + 1
        if seq > applied_seq:
            break
        state.apply(seq, delta)
    return state.digest()


@pytest.mark.parametrize("seed", [11, 23, 47])
def test_sigkill_mid_ingest_loses_nothing(tmp_path, seed):
    rng = np.random.default_rng(seed)
    kill_after = int(rng.integers(3, N_DELTAS - 5))
    home, acked = _run_and_kill(tmp_path, seed, kill_after)
    recovered = StreamingPipeline(home, n_users=N_USERS)
    # Every observed ack survived the kill…
    assert recovered.state.applied_seq >= max(acked)
    # …and recovery replayed to the bit-identical state.
    assert recovered.state.digest() == _oracle_digest(
        seed, recovered.state.applied_seq
    )


def test_sigkill_between_ack_and_publish_loses_nothing(tmp_path):
    seed = 7
    rng = np.random.default_rng(seed)
    # Kill while refit/publish ticks are interleaved with ingestion, so
    # the signal can land inside the ack→publish window.
    kill_after = int(rng.integers(12, 30))
    home, acked = _run_and_kill(tmp_path, seed, kill_after, tick_every=8)
    recovered = StreamingPipeline(home, n_users=N_USERS)
    assert recovered.state.applied_seq >= max(acked)
    assert recovered.state.digest() == _oracle_digest(
        seed, recovered.state.applied_seq
    )


def test_recovery_is_idempotent_across_repeated_crashes(tmp_path):
    """Recover → append more → recover again: digests stay consistent."""
    seed = 91
    home, acked = _run_and_kill(tmp_path, seed, kill_after_acks=10)
    first = StreamingPipeline(home, n_users=N_USERS)
    first_seq = first.state.applied_seq
    first.close()
    again = StreamingPipeline(home, n_users=N_USERS)
    assert again.state.applied_seq == first_seq
    assert again.state.digest() == _oracle_digest(seed, first_seq)
