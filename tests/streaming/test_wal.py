"""WAL framing, recovery, rotation, compaction and fault sites."""

import os

import pytest

from repro.exceptions import ConfigurationError, WalCorruptError
from repro.observability.metrics import MetricsRegistry
from repro.reliability.faults import GLOBAL_INJECTOR, InjectedFaultError
from repro.streaming.wal import WriteAheadLog, _FRAME_OVERHEAD


@pytest.fixture(autouse=True)
def _clean_injector():
    GLOBAL_INJECTOR.reset()
    yield
    GLOBAL_INJECTOR.reset()


def _segments(directory):
    return sorted(f for f in os.listdir(directory) if f.endswith(".seg"))


class TestAppendReplay:
    def test_roundtrip(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        assert wal.append(b"one") == 1
        assert wal.append(b"two") == 2
        assert list(wal.replay()) == [(1, b"one"), (2, b"two")]
        assert list(wal.replay(after_seq=1)) == [(2, b"two")]

    def test_reopen_resumes_sequence(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append(b"a")
        wal.close()
        reopened = WriteAheadLog(str(tmp_path))
        assert reopened.last_seq == 1
        assert reopened.append(b"b") == 2

    def test_oversized_payload_rejected(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        with pytest.raises(ConfigurationError):
            wal.append(b"x" * (1 << 25))

    def test_empty_wal(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        assert wal.last_seq == 0
        assert list(wal.replay()) == []


class TestRecovery:
    def test_torn_tail_is_truncated(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append(b"keep me")
        wal.close()
        (segment,) = _segments(str(tmp_path))
        with open(tmp_path / segment, "ab") as handle:
            handle.write(b"WAL1\x07garbage-half-record")
        recovered = WriteAheadLog(str(tmp_path))
        assert recovered.torn_tail_truncations == 1
        assert list(recovered.replay()) == [(1, b"keep me")]
        assert recovered.append(b"next") == 2

    def test_flipped_bit_in_tail_record_truncates(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append(b"first")
        wal.append(b"second")
        wal.close()
        (segment,) = _segments(str(tmp_path))
        path = tmp_path / segment
        raw = bytearray(path.read_bytes())
        raw[-5] ^= 0xFF  # corrupt the digest of the last record
        path.write_bytes(raw)
        recovered = WriteAheadLog(str(tmp_path))
        assert list(recovered.replay()) == [(1, b"first")]

    def test_corruption_before_newest_segment_raises(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path), segment_max_bytes=_FRAME_OVERHEAD + 4)
        for i in range(4):  # one record per segment at this size
            wal.append(b"%04d" % i)
        wal.close()
        segments = _segments(str(tmp_path))
        assert len(segments) > 2
        first = tmp_path / segments[0]
        raw = bytearray(first.read_bytes())
        raw[-1] ^= 0xFF
        first.write_bytes(raw)
        with pytest.raises(WalCorruptError):
            WriteAheadLog(str(tmp_path))


class TestRotationCompaction:
    def test_rotates_at_segment_cap(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path), segment_max_bytes=_FRAME_OVERHEAD + 4)
        for i in range(5):
            wal.append(b"%04d" % i)
        assert len(_segments(str(tmp_path))) == 5
        assert [seq for seq, _ in wal.replay()] == [1, 2, 3, 4, 5]

    def test_truncate_through_removes_covered_segments(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path), segment_max_bytes=_FRAME_OVERHEAD + 4)
        for i in range(5):
            wal.append(b"%04d" % i)
        removed = wal.truncate_through(3)
        assert removed == 3
        assert [seq for seq, _ in wal.replay()] == [4, 5]
        # Newest segment always survives, even when fully covered.
        assert wal.truncate_through(5) == 1
        assert wal.last_seq == 5
        reopened_after = WriteAheadLog(str(tmp_path))
        assert reopened_after.last_seq == 5

    def test_replay_after_compaction_starts_midstream(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path), segment_max_bytes=_FRAME_OVERHEAD + 4)
        for i in range(4):
            wal.append(b"%04d" % i)
        wal.truncate_through(2)
        assert wal.first_seq == 3
        assert [seq for seq, _ in wal.replay()] == [3, 4]


class TestFaultSites:
    def test_fsync_fault_rolls_back_and_never_acks(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append(b"durable")
        GLOBAL_INJECTOR.arm("streaming.wal.fsync", times=1)
        with pytest.raises(OSError):
            wal.append(b"lost-but-never-acked")
        assert wal.last_seq == 1
        assert list(wal.replay()) == [(1, b"durable")]
        # Retry after the fault succeeds and reuses the sequence number.
        assert wal.append(b"retried") == 2

    def test_torn_write_fault_leaves_then_repairs_tail(self, tmp_path):
        registry = MetricsRegistry()
        wal = WriteAheadLog(str(tmp_path), registry=registry)
        wal.append(b"durable")
        GLOBAL_INJECTOR.arm("streaming.wal.torn_write", times=1)
        with pytest.raises(InjectedFaultError):
            wal.append(b"torn")
        # Real torn bytes are on disk until the next append repairs them.
        (segment,) = _segments(str(tmp_path))
        clean = wal._clean_end
        assert os.path.getsize(tmp_path / segment) > clean
        assert wal.append(b"after") == 2
        assert wal.torn_tail_truncations == 1
        assert list(wal.replay()) == [(1, b"durable"), (2, b"after")]

    def test_torn_write_fault_survives_reopen(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path))
        wal.append(b"durable")
        GLOBAL_INJECTOR.arm("streaming.wal.torn_write", times=1)
        with pytest.raises(InjectedFaultError):
            wal.append(b"torn")
        wal.close()
        recovered = WriteAheadLog(str(tmp_path))
        assert recovered.torn_tail_truncations == 1
        assert list(recovered.replay()) == [(1, b"durable")]
