"""Delta encoding, StreamState folding, digests and snapshots."""

import numpy as np
import pytest

from repro.exceptions import ArtifactCorruptError, ConfigurationError
from repro.streaming.deltas import (
    Delta,
    StreamState,
    attribute_set,
    link_add,
    link_remove,
)


class TestDelta:
    def test_encode_decode_roundtrip(self):
        for delta in (link_add(0, 5, 2.5), link_remove(3, 1), attribute_set(2, 7, -1.0)):
            assert Delta.decode(delta.encode()) == delta

    def test_encoding_is_canonical(self):
        assert link_add(1, 2).encode() == link_add(1, 2, 1.0).encode()

    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            Delta("link.frobnicate", 0, 1)

    def test_rejects_self_loop_links(self):
        with pytest.raises(ConfigurationError):
            link_add(4, 4)

    def test_attr_set_allows_equal_indices(self):
        attribute_set(4, 4, 1.0)  # v is an attribute index, not a user

    def test_rejects_negative_indices(self):
        with pytest.raises(ConfigurationError):
            link_add(-1, 2)

    def test_decode_garbage_raises(self):
        with pytest.raises(ArtifactCorruptError):
            Delta.decode(b"\xff\x00 not json")
        with pytest.raises(ArtifactCorruptError):
            Delta.decode(b'{"kind": "link.add"}')


class TestStreamState:
    def test_apply_skips_stale_sequence_numbers(self):
        state = StreamState(4)
        assert state.apply(1, link_add(0, 1))
        assert not state.apply(1, link_add(2, 3))  # replayed dup: skipped
        assert state.n_links == 1
        assert state.applied_seq == 1

    def test_link_semantics_are_set_like(self):
        state = StreamState(4)
        state.apply(1, link_add(0, 1, 1.0))
        state.apply(2, link_add(1, 0, 3.0))  # overwrite, symmetric key
        assert state.link_weight(0, 1) == 3.0
        state.apply(3, link_remove(0, 1))
        assert state.link_weight(0, 1) == 0.0
        state.apply(4, link_remove(0, 1))  # removing absent pair: no-op
        assert state.n_links == 0

    def test_out_of_range_user_rejected(self):
        state = StreamState(3)
        with pytest.raises(ConfigurationError):
            state.apply(1, link_add(0, 7))

    def test_to_csr_symmetric(self):
        state = StreamState(5)
        state.apply_many([(1, link_add(0, 1)), (2, link_add(3, 2, 2.0))])
        adjacency = state.to_csr()
        dense = adjacency.toarray()
        assert dense[0, 1] == dense[1, 0] == 1.0
        assert dense[2, 3] == dense[3, 2] == 2.0
        assert np.count_nonzero(dense) == 4

    def test_attribute_matrix(self):
        state = StreamState(3)
        state.apply(1, attribute_set(1, 2, 0.5))
        attrs = state.attribute_matrix()
        assert attrs.shape == (3, 3)
        assert attrs[1, 2] == 0.5

    def test_digest_tracks_content_and_seq(self):
        a, b = StreamState(4), StreamState(4)
        a.apply(1, link_add(0, 1))
        b.apply(1, link_add(0, 1))
        assert a.digest() == b.digest()
        b.apply(2, link_add(2, 3))
        assert a.digest() != b.digest()

    def test_save_load_roundtrip(self, tmp_path):
        state = StreamState(6)
        state.apply_many(
            [(1, link_add(0, 1)), (2, attribute_set(3, 0, 2.0)), (3, link_remove(0, 1))]
        )
        path = str(tmp_path / "state.npz")
        state.save(path)
        loaded = StreamState.load(path)
        assert loaded.digest() == state.digest()
        assert loaded.applied_seq == 3

    def test_load_rejects_corrupt_snapshot(self, tmp_path):
        state = StreamState(4)
        state.apply(1, link_add(0, 1))
        path = str(tmp_path / "state.npz")
        state.save(path)
        raw = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(raw[: len(raw) // 2])  # torn snapshot write
        with pytest.raises(ArtifactCorruptError):
            StreamState.load(path)
