"""Tests for repro.temporal.snapshots."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.temporal.snapshots import SnapshotSequence, evolve_snapshots


@pytest.fixture(scope="module")
def sequence():
    return evolve_snapshots(
        n_nodes=60, n_steps=6, n_communities=3, persistence=0.85,
        random_state=5,
    )


class TestEvolveSnapshots:
    def test_shapes(self, sequence):
        assert sequence.n_steps == 6
        assert sequence.n_nodes == 60
        for snapshot in sequence.snapshots:
            assert snapshot.shape == (60, 60)

    def test_snapshots_valid_adjacency(self, sequence):
        for snapshot in sequence.snapshots:
            assert np.array_equal(snapshot, snapshot.T)
            assert not snapshot.diagonal().any()
            assert set(np.unique(snapshot)) <= {0.0, 1.0}

    def test_stationary_density(self, sequence):
        """The per-step density should stay near the planted level."""
        densities = [s.sum() / 2 for s in sequence.snapshots]
        assert max(densities) < 2 * min(densities)

    def test_persistence(self, sequence):
        """Most links survive step to step at persistence 0.85."""
        first, second = sequence.snapshots[0], sequence.snapshots[1]
        survived = ((first > 0) & (second > 0)).sum()
        existing = (first > 0).sum()
        assert survived / existing > 0.7

    def test_churn_exists(self, sequence):
        """New links genuinely appear."""
        assert len(sequence.new_links(1)) > 0

    def test_new_links_are_new(self, sequence):
        for step in range(1, sequence.n_steps):
            previous = sequence.snapshots[step - 1]
            current = sequence.snapshots[step]
            for i, j in sequence.new_links(step):
                assert previous[i, j] == 0.0
                assert current[i, j] == 1.0

    def test_new_links_bad_step(self, sequence):
        with pytest.raises(ConfigurationError):
            sequence.new_links(0)
        with pytest.raises(ConfigurationError):
            sequence.new_links(sequence.n_steps)

    def test_new_links_follow_communities(self, sequence):
        labels = sequence.communities
        fresh = [pair for step in range(1, 6) for pair in sequence.new_links(step)]
        same = sum(1 for i, j in fresh if labels[i] == labels[j])
        assert same / len(fresh) > 0.5

    def test_deterministic(self):
        a = evolve_snapshots(n_nodes=30, n_steps=3, random_state=9)
        b = evolve_snapshots(n_nodes=30, n_steps=3, random_state=9)
        for snap_a, snap_b in zip(a.snapshots, b.snapshots):
            assert np.array_equal(snap_a, snap_b)

    def test_saturated_probability_rejected(self):
        with pytest.raises(ConfigurationError, match="stationarity"):
            evolve_snapshots(n_nodes=10, p_in=1.0, p_out=0.1)

    def test_single_step(self):
        sequence = evolve_snapshots(n_nodes=20, n_steps=1, random_state=0)
        assert sequence.n_steps == 1
