"""Tests for repro.temporal.autoregressive."""

import numpy as np
import pytest

from repro.evaluation.metrics import auc_score
from repro.exceptions import ConfigurationError, NotFittedError
from repro.temporal.autoregressive import AutoregressiveLinkPredictor
from repro.temporal.snapshots import evolve_snapshots


@pytest.fixture(scope="module")
def sequence():
    return evolve_snapshots(
        n_nodes=60, n_steps=6, n_communities=3, persistence=0.85,
        random_state=13,
    )


class TestHistoryFeatures:
    def test_weights_sum_to_one(self, sequence):
        model = AutoregressiveLinkPredictor(window=3, decay=0.5)
        features = model.history_features(sequence.snapshots[:4])
        assert features.max() <= 1.0 + 1e-9
        assert features.min() >= 0.0

    def test_recent_snapshot_dominates(self):
        old = np.zeros((3, 3))
        recent = np.ones((3, 3)) - np.eye(3)
        model = AutoregressiveLinkPredictor(window=2, decay=0.25)
        features = model.history_features([old, recent])
        # recent weight 1/(1+0.25) = 0.8
        assert features[0, 1] == pytest.approx(0.8)

    def test_window_truncates(self):
        snapshots = [np.full((2, 2), fill) - np.diag([fill] * 2)
                     for fill in (1.0, 0.0, 0.0)]
        model = AutoregressiveLinkPredictor(window=2, decay=0.9)
        features = model.history_features(snapshots)
        assert features[0, 1] == 0.0  # first snapshot outside the window

    def test_empty_history_rejected(self):
        with pytest.raises(ConfigurationError):
            AutoregressiveLinkPredictor().history_features([])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            AutoregressiveLinkPredictor().history_features(
                [np.zeros((2, 2)), np.zeros((3, 3))]
            )


class TestPrediction:
    def test_unfitted_raises(self):
        model = AutoregressiveLinkPredictor()
        with pytest.raises(NotFittedError):
            model.scores
        with pytest.raises(NotFittedError):
            model.predict_new_links()

    def test_predicts_next_snapshot(self, sequence):
        history = sequence.snapshots[:-1]
        future = sequence.snapshots[-1]
        model = AutoregressiveLinkPredictor().fit(history)
        rows, cols = np.triu_indices(sequence.n_nodes, k=1)
        scores = model.scores[rows, cols]
        labels = future[rows, cols]
        assert auc_score(scores, labels) > 0.8

    def test_predicts_new_links_above_chance(self, sequence):
        """Ranking among pairs absent at T: new links vs never-links."""
        history = sequence.snapshots[:-1]
        future = sequence.snapshots[-1]
        last = history[-1]
        model = AutoregressiveLinkPredictor().fit(history)
        rows, cols = np.triu_indices(sequence.n_nodes, k=1)
        absent = last[rows, cols] == 0
        scores = model.scores[rows, cols][absent]
        labels = future[rows, cols][absent]
        assert labels.sum() > 0
        assert auc_score(scores, labels) > 0.6

    def test_predict_new_links_excludes_existing(self, sequence):
        history = sequence.snapshots[:-1]
        model = AutoregressiveLinkPredictor().fit(history)
        last = history[-1]
        for i, j, score in model.predict_new_links(top_k=15):
            assert last[i, j] == 0.0
            assert score >= 0.0

    def test_top_k_ordering(self, sequence):
        model = AutoregressiveLinkPredictor().fit(sequence.snapshots[:-1])
        predictions = model.predict_new_links(top_k=10)
        scores = [s for _, _, s in predictions]
        assert scores == sorted(scores, reverse=True)

    def test_score_pairs(self, sequence):
        model = AutoregressiveLinkPredictor().fit(sequence.snapshots[:-1])
        out = model.score_pairs([(0, 1), (2, 3)])
        assert out.shape == (2,)
        assert model.score_pairs([]).shape == (0,)

    def test_deterministic(self, sequence):
        a = AutoregressiveLinkPredictor().fit(sequence.snapshots[:-1]).scores
        b = AutoregressiveLinkPredictor().fit(sequence.snapshots[:-1]).scores
        assert np.array_equal(a, b)
