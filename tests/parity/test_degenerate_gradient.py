"""Regression: the linkless-graph intimacy fallback must stay sparse.

The calibrated intimacy gradient has nothing to fit on when the training
graph holds no links; the old fallback allocated a dense n×n array of
zeros — O(n²) memory for a value both solver paths treat as "no
transfer".  It now returns an empty CSR matrix, the CCCP solver maps a
sparse all-zero gradient to ``None`` (numerically identical), and both
the dense and factored fits run unchanged.
"""

import numpy as np
import pytest
from scipy import sparse

from repro.models.base import TransferTask
from repro.models.slampred import SlamPredT
from repro.networks.social import SocialGraph
from repro.optim.cccp import _as_dense_gradient


class TestSparseFallback:
    def test_joint_latent_intimacy_returns_empty_csr(self):
        n = 12
        model = SlamPredT(inner_iterations=2, outer_iterations=1)
        graph = SocialGraph(np.zeros((n, n)))
        blocks = [np.zeros((2, n, n))]
        gradient = model._joint_latent_intimacy(
            blocks, [1.0], [], graph, np.random.default_rng(0)
        )
        assert sparse.issparse(gradient)
        assert gradient.shape == (n, n)
        assert gradient.nnz == 0

    def test_cccp_maps_sparse_zero_gradient_to_none(self):
        assert _as_dense_gradient(sparse.csr_matrix((5, 5))) is None

    def test_cccp_densifies_sparse_nonzero_gradient(self):
        matrix = sparse.csr_matrix(
            (np.array([2.0]), (np.array([1],), np.array([3]))), shape=(5, 5)
        )
        dense = _as_dense_gradient(matrix)
        assert isinstance(dense, np.ndarray)
        assert dense.dtype == float
        assert dense[1, 3] == 2.0
        assert dense.sum() == 2.0

    def test_cccp_passes_none_and_dense_through(self):
        assert _as_dense_gradient(None) is None
        dense = np.ones((3, 3))
        np.testing.assert_array_equal(_as_dense_gradient(dense), dense)


class TestLinklessFits:
    @pytest.fixture(scope="class")
    def linkless_task(self, aligned):
        """The shared world with an entirely linkless training graph."""
        n = aligned.target.n_users
        return TransferTask(
            target=aligned.target,
            training_graph=SocialGraph(np.zeros((n, n))),
            random_state=np.random.default_rng(3),
        )

    def test_dense_fit_survives_linkless_graph(self, linkless_task):
        model = SlamPredT(inner_iterations=2, outer_iterations=1).fit(
            linkless_task
        )
        n = linkless_task.target.n_users
        assert model.score_matrix.shape == (n, n)
        assert np.all(np.isfinite(model.score_matrix))

    def test_factored_fit_survives_linkless_graph(self, linkless_task):
        model = SlamPredT(
            factored=True, inner_iterations=2, outer_iterations=1
        ).fit(linkless_task)
        assert model.n_users == linkless_task.target.n_users
        scores = model.score_pairs([(0, 1), (2, 3)])
        assert np.all(np.isfinite(scores))
