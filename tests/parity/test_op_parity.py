"""Property tests: solver ops on factors match the dense operators ≤1e-8.

Covers the inner-loop algebra end to end: the smooth objective (value,
gradient, forward step) against :class:`FusedSmoothObjective`, the
trace-norm/ℓ1/box proximal maps against their dense ``apply``, and the
workspace's support-restricted reads.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import sparse

from repro.factored import FactoredEstimate
from repro.optim.losses import FactoredSmoothObjective, FusedSmoothObjective
from repro.optim.proximal import BoxProjection, L1Prox, TraceNormProx
from repro.perf.warm_svt import WarmStartSVT
from repro.perf.workspace import FactoredWorkspace

TOL = 1e-8


def _close(actual, expected, tol=TOL):
    actual = np.asarray(actual, dtype=float)
    expected = np.asarray(expected, dtype=float)
    scale = 1.0 + (np.max(np.abs(expected)) if expected.size else 0.0)
    assert actual.shape == expected.shape
    if actual.size:
        assert np.max(np.abs(actual - expected)) <= tol * scale


def _estimate(rng, n, rank, density=0.2):
    return FactoredEstimate(
        rng.standard_normal((n, rank)),
        rng.uniform(0.25, 2.0, rank),
        rng.standard_normal((rank, n)),
        sparse.random(n, n, density=density, format="csr", random_state=rng),
    )


@st.composite
def problems(draw, max_n=14):
    """An adjacency, an iterate and (maybe) a factored intimacy gradient."""
    n = draw(st.integers(4, max_n))
    seed = draw(st.integers(0, 2**31 - 1))
    with_intimacy = draw(st.booleans())
    rng = np.random.default_rng(seed)
    upper = sparse.random(n, n, density=0.3, format="csr", random_state=rng)
    adjacency = ((upper + upper.T) > 0).astype(float).tocsr()
    adjacency.setdiag(0.0)
    adjacency.eliminate_zeros()
    iterate = _estimate(rng, n, min(3, n - 1))
    intimacy = _estimate(rng, n, 2, density=0.1) if with_intimacy else None
    return adjacency, iterate, intimacy


def _dense_objective(adjacency, intimacy):
    gradient = None if intimacy is None else intimacy.to_dense()
    return FusedSmoothObjective(
        np.asarray(adjacency.todense()), gradient_matrix=gradient
    )


class TestSmoothObjective:
    @settings(max_examples=40)
    @given(problems())
    def test_value_matches_fused(self, problem):
        adjacency, iterate, intimacy = problem
        factored = FactoredSmoothObjective(adjacency, intimacy=intimacy)
        fused = _dense_objective(adjacency, intimacy)
        expected = fused.value(iterate.to_dense())
        assert abs(factored.value(iterate) - expected) <= TOL * (
            1 + abs(expected)
        )

    @settings(max_examples=40)
    @given(problems())
    def test_gradient_matches_fused(self, problem):
        adjacency, iterate, intimacy = problem
        factored = FactoredSmoothObjective(adjacency, intimacy=intimacy)
        fused = _dense_objective(adjacency, intimacy)
        _close(
            factored.gradient(iterate).to_dense(),
            fused.gradient(iterate.to_dense()),
        )

    @settings(max_examples=40)
    @given(problems(), st.sampled_from([1e-3, 0.05, 0.3]))
    def test_gradient_step_matches_dense_forward_step(self, problem, step):
        adjacency, iterate, intimacy = problem
        factored = FactoredSmoothObjective(adjacency, intimacy=intimacy)
        fused = _dense_objective(adjacency, intimacy)
        dense = iterate.to_dense()
        _close(
            factored.gradient_step(iterate, step).to_dense(),
            dense - step * fused.gradient(dense),
        )

    @settings(max_examples=20)
    @given(problems())
    def test_lipschitz_matches(self, problem):
        adjacency, _, intimacy = problem
        factored = FactoredSmoothObjective(adjacency, intimacy=intimacy)
        assert factored.lipschitz == _dense_objective(adjacency, intimacy).lipschitz


class TestProximalMaps:
    @settings(max_examples=40)
    @given(problems(), st.sampled_from([0.01, 0.05, 0.2]))
    def test_trace_norm_oracle_matches_dense_svt(self, problem, step):
        _, iterate, _ = problem
        prox = TraceNormProx(1.0)
        _close(
            prox.apply_factored(iterate, step).to_dense(),
            prox.apply(iterate.to_dense(), step),
        )

    def test_trace_norm_engine_matches_dense_svt(self):
        rng = np.random.default_rng(7)
        iterate = _estimate(rng, 20, 3)
        engine = WarmStartSVT()
        engined = TraceNormProx(1.0, engine=engine)
        exact = TraceNormProx(1.0)
        # The warm engine verifies its residuals, so its factored output
        # tracks the exact prox to the engine's tolerance (looser than
        # the 1e-8 oracle bound, still far inside solver tolerances).
        _close(
            engined.apply_factored(iterate, 0.05).to_dense(),
            exact.apply(iterate.to_dense(), 0.05),
            tol=1e-6,
        )

    @settings(max_examples=40)
    @given(problems(), st.sampled_from([0.01, 0.1]))
    def test_l1_values_match_dense_soft_threshold(self, problem, step):
        adjacency, iterate, _ = problem
        prox = L1Prox(0.5)
        pattern = (abs(adjacency) + abs(iterate.residual)).tocsr()
        rows = np.repeat(
            np.arange(pattern.shape[0]), np.diff(pattern.indptr)
        )
        dense = iterate.to_dense()
        _close(
            prox.apply_values(dense[rows, pattern.indices], step),
            prox.apply(dense, step)[rows, pattern.indices],
        )

    @settings(max_examples=40)
    @given(problems())
    def test_box_values_match_dense_projection(self, problem):
        _, iterate, _ = problem
        prox = BoxProjection(0.0, None)
        dense = iterate.to_dense()
        rows = np.repeat(np.arange(dense.shape[0]), dense.shape[1])
        cols = np.tile(np.arange(dense.shape[1]), dense.shape[0])
        _close(
            prox.apply_values(dense[rows, cols], 0.05),
            prox.apply(dense, 0.05)[rows, cols],
        )


class TestFactoredWorkspace:
    @settings(max_examples=40)
    @given(problems())
    def test_lowrank_entries_match_dense(self, problem):
        adjacency, iterate, _ = problem
        workspace = FactoredWorkspace(abs(adjacency))
        lowrank = (iterate.u * iterate.s) @ iterate.vt
        _close(
            workspace.lowrank_entries(iterate),
            lowrank[workspace.rows, workspace.indices],
        )

    @settings(max_examples=40)
    @given(problems())
    def test_residual_from_reconstructs_pattern(self, problem):
        adjacency, _, _ = problem
        workspace = FactoredWorkspace(abs(adjacency))
        values = np.arange(workspace.nnz, dtype=float) + 1.0
        rebuilt = workspace.residual_from(values.copy())
        dense = np.zeros(adjacency.shape)
        dense[workspace.rows, workspace.indices] = values
        _close(np.asarray(rebuilt.todense()), dense)

    @settings(max_examples=20)
    @given(problems())
    def test_ensure_reuses_matching_pattern(self, problem):
        adjacency, _, _ = problem
        pattern = abs(adjacency)
        first = FactoredWorkspace.ensure(None, pattern)
        second = FactoredWorkspace.ensure(first, pattern)
        assert second is first
