"""Factored-vs-dense parity harness (DESIGN.md §13).

Every operation the factored O(nk) path performs — objective values,
gradients, forward steps, proximal maps, pair scores, top-k rankings,
persistence round trips — is checked against its dense counterpart on
``to_dense()`` materializations at small n, where the dense path is the
oracle.  A separate, environment-gated module asserts the O(nk) memory
claim itself at a scale the dense path cannot reach.
"""
