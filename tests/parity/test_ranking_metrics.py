"""Tests for the NDCG@k / MAP@k ranking metrics (satellite of §13).

Hand-checked values on untied rankings, tie invariance under
permutation, the all-negative and k-clamping edge cases, and validation
errors — matching the tie-expectation semantics of the existing
``precision_at_k``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation import map_at_k, ndcg_at_k
from repro.evaluation.metrics import average_precision
from repro.exceptions import EvaluationError


class TestHandChecked:
    def test_ndcg_untied(self):
        scores = np.array([0.9, 0.8, 0.7, 0.6])
        labels = np.array([1, 0, 1, 0])
        # DCG = 1/log2(2) + 1/log2(4) = 1.5; IDCG = 1 + 1/log2(3)
        expected = 1.5 / (1.0 + 1.0 / np.log2(3.0))
        assert ndcg_at_k(scores, labels, k=4) == pytest.approx(expected)

    def test_ndcg_perfect_ranking_is_one(self):
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        labels = np.array([1, 1, 0, 0])
        assert ndcg_at_k(scores, labels, k=4) == pytest.approx(1.0)

    def test_map_untied(self):
        scores = np.array([0.9, 0.8, 0.7, 0.6])
        labels = np.array([1, 0, 1, 0])
        # P(1) = 1, P(3) = 2/3, two positives → (1 + 2/3) / 2
        assert map_at_k(scores, labels, k=4) == pytest.approx(
            (1.0 + 2.0 / 3.0) / 2.0
        )

    def test_map_at_k_equals_average_precision_when_untied(self):
        rng = np.random.default_rng(17)
        scores = rng.permutation(np.linspace(0.0, 1.0, 30))  # all distinct
        labels = (rng.random(30) < 0.4).astype(float)
        labels[0] = 1.0  # ensure at least one positive
        assert map_at_k(scores, labels, k=30) == pytest.approx(
            average_precision(scores, labels)
        )

    def test_truncation_drops_tail_positives(self):
        scores = np.array([0.9, 0.8, 0.7, 0.6])
        labels = np.array([0, 0, 1, 1])
        # Top-2 holds no positives at all.
        assert map_at_k(scores, labels, k=2) == 0.0
        assert ndcg_at_k(scores, labels, k=2) == 0.0


class TestTies:
    @settings(max_examples=30)
    @given(st.integers(0, 2**31 - 1))
    def test_tie_groups_are_order_invariant(self, seed):
        rng = np.random.default_rng(seed)
        scores = rng.choice([0.1, 0.5, 0.9], size=20)  # heavy ties
        labels = (rng.random(20) < 0.5).astype(float)
        permutation = rng.permutation(20)
        for metric in (ndcg_at_k, map_at_k):
            assert metric(scores, labels, k=7) == pytest.approx(
                metric(scores[permutation], labels[permutation], k=7)
            )

    def test_all_tied_equals_base_rate_expectation(self):
        scores = np.zeros(10)
        labels = np.array([1, 1, 1, 0, 0, 0, 0, 0, 0, 0])
        # Every position's expected relevance is the base rate 0.3, so
        # MAP's per-rank precision is 0.3 everywhere.
        assert map_at_k(scores, labels, k=3) == pytest.approx(
            0.3 * 0.3 * 3 / 3
        )
        assert ndcg_at_k(scores, labels, k=3) == pytest.approx(0.3)


class TestEdgeCases:
    def test_all_negative_scores_zero(self):
        scores = np.linspace(1, 0, 6)
        labels = np.zeros(6)
        assert ndcg_at_k(scores, labels, k=3) == 0.0
        assert map_at_k(scores, labels, k=3) == 0.0

    def test_k_beyond_size_is_clamped(self):
        scores = np.array([0.9, 0.8, 0.7, 0.6])
        labels = np.array([1, 0, 1, 0])
        assert ndcg_at_k(scores, labels, k=400) == ndcg_at_k(
            scores, labels, k=4
        )
        assert map_at_k(scores, labels, k=400) == map_at_k(
            scores, labels, k=4
        )

    @pytest.mark.parametrize("k", [0, -3])
    def test_non_positive_k_rejected(self, k):
        scores = np.array([0.5, 0.4])
        labels = np.array([1.0, 0.0])
        for metric in (ndcg_at_k, map_at_k):
            with pytest.raises(EvaluationError, match="positive"):
                metric(scores, labels, k=k)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(EvaluationError, match="same length"):
            ndcg_at_k(np.ones(3), np.ones(4), k=2)

    def test_non_binary_labels_rejected(self):
        with pytest.raises(EvaluationError, match="binary"):
            map_at_k(np.ones(3), np.array([0.0, 0.5, 1.0]), k=2)

    @settings(max_examples=30)
    @given(st.integers(0, 2**31 - 1))
    def test_bounded_in_unit_interval(self, seed):
        rng = np.random.default_rng(seed)
        scores = rng.random(15)
        labels = (rng.random(15) < 0.5).astype(float)
        for metric in (ndcg_at_k, map_at_k):
            value = metric(scores, labels, k=5)
            assert 0.0 <= value <= 1.0 + 1e-12
