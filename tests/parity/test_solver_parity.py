"""Solver-level parity: the factored O(nk) solve against the dense oracle.

Individual ops are exact (see test_op_parity); the assembled trajectories
differ only through the documented off-support relaxation (DESIGN.md §13):
the entry-wise proxes act on the fixed support Ω, off-support mass stays
with the low-rank block.  On Ω the iterates agree tightly, and the
predictive quality (held-out AUC) agrees to well under the CI gate (1e-3).
Pair scores from the factored predictor are checked exactly against its
own dense materialization — the per-op "scores" parity.
"""

import numpy as np
import pytest
from scipy import sparse

from repro.evaluation.metrics import auc_score
from repro.exceptions import ConfigurationError
from repro.factored import FactoredSolver
from repro.models.slampred import SlamPredH, SlamPredT
from repro.optim.cccp import CCCPSolver
from repro.optim.convergence import ConvergenceCriterion
from repro.optim.forward_backward import (
    FactoredForwardBackwardSolver,
    ForwardBackwardSolver,
)
from repro.optim.losses import SquaredFrobeniusLoss
from repro.optim.proximal import BoxProjection, L1Prox, TraceNormProx


def _random_adjacency(n, degree, seed):
    """A symmetric binary graph with roughly ``degree`` links per user."""
    rng = np.random.default_rng(seed)
    upper = sparse.random(
        n, n, density=degree / n, format="csr", random_state=rng
    )
    adjacency = ((upper + upper.T) > 0).astype(float).tocsr()
    adjacency.setdiag(0.0)
    adjacency.eliminate_zeros()
    return adjacency


def _solver_pair(adjacency, step=1e-3, inner=10, outer=3):
    """Matched factored/dense solver configs (no intimacy, exact SVT)."""
    criterion = lambda: ConvergenceCriterion(  # noqa: E731 - tiny factory
        tolerance=1e-9, max_iterations=inner
    )
    outer_criterion = lambda: ConvergenceCriterion(  # noqa: E731
        tolerance=1e-9, max_iterations=outer
    )
    proxes = lambda: [  # noqa: E731
        TraceNormProx(1.0),
        L1Prox(0.05),
        BoxProjection(0.0, None),
    ]
    factored = FactoredSolver(
        adjacency,
        proxes(),
        inner_solver=FactoredForwardBackwardSolver(
            step_size=step, criterion=criterion()
        ),
        outer_criterion=outer_criterion(),
    )
    dense = CCCPSolver(
        loss=SquaredFrobeniusLoss(np.asarray(adjacency.todense())),
        prox_terms=proxes(),
        inner_solver=ForwardBackwardSolver(step_size=step, criterion=criterion()),
        outer_criterion=outer_criterion(),
        fuse_smooth=True,
    )
    return factored, dense


class TestTrajectoryParity:
    def test_iterates_agree_on_support(self):
        adjacency = _random_adjacency(16, degree=4, seed=11)
        factored, dense = _solver_pair(adjacency)
        factored_solution = factored.solve().estimate.to_dense()
        dense_solution = dense.solve(
            np.asarray(adjacency.todense())
        ).solution
        mask = np.asarray(abs(adjacency).todense()) > 0
        on_support = np.max(
            np.abs(factored_solution[mask] - dense_solution[mask])
        )
        assert on_support < 1e-3
        # Off support the relaxation shows (the gap scales with the step
        # size), but stays solver-tolerance sized — the factored solution
        # is the dense one up to prox slack.
        assert (
            np.max(np.abs(factored_solution - dense_solution)) < 5e-2
        )

    def test_result_diagnostics_track_dense(self):
        adjacency = _random_adjacency(16, degree=4, seed=13)
        factored, dense = _solver_pair(adjacency)
        result = factored.solve()
        dense_result = dense.solve(np.asarray(adjacency.todense()))
        assert result.n_rounds == dense_result.n_rounds
        assert len(result.round_norms) == result.n_rounds
        assert all(np.isfinite(result.round_norms))
        # The recorded round norm is ‖S‖_F of the factored iterate — it
        # must match the dense solution's to on-support parity precision.
        dense_norm = float(np.linalg.norm(dense_result.solution))
        assert abs(result.round_norms[-1] - dense_norm) < 1e-2 * (
            1.0 + dense_norm
        )


class TestModelParity:
    @pytest.fixture(scope="class")
    def fitted_pair(self, aligned, split):
        """SLAMPRED-T fitted both ways on the shared small fold."""
        from repro.models.base import TransferTask

        config = dict(
            inner_iterations=8,
            outer_iterations=4,
            tolerance=1e-4,
            step_size=1e-3,
        )
        models = []
        for factored in (True, False):
            task = TransferTask(
                target=aligned.target,
                training_graph=split.training_graph,
                sources=list(aligned.sources),
                anchors=list(aligned.anchors),
                random_state=np.random.default_rng(1234),
            )
            models.append(
                SlamPredT(factored=factored, **config).fit(task)
            )
        return models[0], models[1]

    def test_auc_drift_within_gate(self, fitted_pair, split):
        factored, dense = fitted_pair
        factored_auc = auc_score(
            factored.score_pairs(split.test_pairs), split.test_labels
        )
        dense_auc = auc_score(
            dense.score_pairs(split.test_pairs), split.test_labels
        )
        # The CI benchmark gates drift at 1e-3 on the figure-3 scale; at
        # this tiny fold the AUC quantum (one pair-rank flip) is
        # 1/(n_pos·n_neg) ≈ 1.4e-3, so allow a few quanta here.
        n_pos = float(np.sum(split.test_labels))
        quantum = 1.0 / (n_pos * (split.test_labels.size - n_pos))
        assert abs(factored_auc - dense_auc) <= max(1e-3, 3 * quantum)

    def test_score_pairs_match_dense_oracle_exactly(self, fitted_pair):
        """Per-op scores parity: entries vs the same model's dense form."""
        factored, _ = fitted_pair
        oracle = factored.score_matrix  # materialized parity oracle
        n = factored.n_users
        rng = np.random.default_rng(3)
        pairs = [
            (int(u), int(v))
            for u, v in zip(
                rng.integers(0, n, 200), rng.integers(0, n, 200)
            )
        ]
        scores = factored.score_pairs(pairs)
        expected = np.array([oracle[u, v] for u, v in pairs])
        assert np.max(np.abs(scores - expected)) <= 1e-8

    def test_top_k_ordering_matches_dense_oracle(self, fitted_pair):
        """Per-op top-k parity: ranking rows of factors vs the oracle."""
        factored, _ = fitted_pair
        oracle = factored.score_matrix
        estimate = factored.factored_estimate
        for user in (0, 3, 11):
            row = np.maximum(estimate.rows([user])[0], 0.0)
            row[user] = 0.0
            top_factored = np.argsort(-row, kind="stable")[:10]
            top_oracle = np.argsort(-oracle[user], kind="stable")[:10]
            assert list(top_factored) == list(top_oracle)

    def test_factored_scores_are_positive_rescale_of_dense(
        self, fitted_pair
    ):
        """Unnormalized factored scores vs peak-normalized dense scores:
        the rankings over the G-supported (positive) entries agree."""
        factored, dense = fitted_pair
        f_scores = factored.score_matrix.ravel()
        d_scores = dense.score_matrix.ravel()
        top = np.argsort(-d_scores, kind="stable")[:50]
        f_top = set(np.argsort(-f_scores, kind="stable")[:50])
        overlap = len(f_top.intersection(top)) / 50.0
        assert overlap >= 0.9


class TestFitAdjacency:
    def test_structural_fit_from_sparse(self):
        adjacency = _random_adjacency(120, degree=5, seed=21)
        model = SlamPredH(
            factored=True,
            svd_rank=8,
            inner_iterations=6,
            outer_iterations=2,
            tolerance=1e-4,
        ).fit_adjacency(adjacency)
        assert model.n_users == 120
        estimate = model.factored_estimate
        assert estimate.n_users == 120
        scores = model.score_pairs([(0, 1), (5, 5), (10, 40)])
        assert np.all(np.isfinite(scores))
        assert np.all(scores >= 0.0)
        assert scores[1] == 0.0  # diagonal is never a candidate

    def test_requires_factored(self):
        with pytest.raises(ConfigurationError, match="factored=True"):
            SlamPredH().fit_adjacency(_random_adjacency(10, 3, 1))

    def test_requires_structural_variant(self):
        with pytest.raises(ConfigurationError, match="structural-only"):
            SlamPredT(factored=True).fit_adjacency(
                _random_adjacency(10, 3, 1)
            )

    def test_exact_and_factored_are_mutually_exclusive(self):
        with pytest.raises(ConfigurationError, match="mutually exclusive"):
            SlamPredH(exact=True, factored=True)

    def test_checkpointing_is_dense_only(self, task, tmp_path):
        with pytest.raises(ConfigurationError, match="dense-path"):
            SlamPredH(
                factored=True, inner_iterations=2, outer_iterations=1
            ).fit(task, checkpoint_dir=str(tmp_path))
