"""Property tests: every FactoredEstimate op agrees with its dense form.

The factored representation ``U diag(σ) Vᵀ + R`` is only trustworthy if
each primitive — products, row/entry reads, norms, deltas — matches the
dense matrix it stands for to well under the harness tolerance (1e-8)
across random shapes, ranks and sparsity patterns.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import sparse

from repro.factored import FactoredEstimate

TOL = 1e-8


def _close(actual, expected):
    actual = np.asarray(actual, dtype=float)
    expected = np.asarray(expected, dtype=float)
    scale = 1.0 + (np.max(np.abs(expected)) if expected.size else 0.0)
    assert actual.shape == expected.shape
    if actual.size:
        assert np.max(np.abs(actual - expected)) <= TOL * scale


@st.composite
def factored_estimates(draw, max_n=16, max_rank=4):
    """A random estimate spanning rank 0..4 and sparsity 0..40%."""
    n = draw(st.integers(3, max_n))
    rank = draw(st.integers(0, min(max_rank, n - 1)))
    density = draw(st.sampled_from([0.0, 0.1, 0.3]))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    u = rng.standard_normal((n, rank))
    s = rng.uniform(0.25, 2.0, rank)
    vt = rng.standard_normal((rank, n))
    residual = sparse.random(
        n, n, density=density, format="csr", random_state=rng
    )
    return FactoredEstimate(u, s, vt, residual)


class TestProducts:
    @settings(max_examples=40)
    @given(factored_estimates(), st.integers(0, 2**31 - 1))
    def test_to_dense_definition(self, estimate, seed):
        dense = (estimate.u * estimate.s) @ estimate.vt + np.asarray(
            estimate.residual.todense()
        )
        _close(estimate.to_dense(), dense)

    @settings(max_examples=40)
    @given(factored_estimates(), st.integers(0, 2**31 - 1))
    def test_matmat_matches_dense(self, estimate, seed):
        rng = np.random.default_rng(seed)
        block = rng.standard_normal((estimate.n_users, 3))
        _close(estimate.matmat(block), estimate.to_dense() @ block)

    @settings(max_examples=40)
    @given(factored_estimates(), st.integers(0, 2**31 - 1))
    def test_rmatmat_matches_dense(self, estimate, seed):
        rng = np.random.default_rng(seed)
        block = rng.standard_normal((estimate.n_users, 3))
        _close(estimate.rmatmat(block), estimate.to_dense().T @ block)


class TestReads:
    @settings(max_examples=40)
    @given(factored_estimates(), st.integers(0, 2**31 - 1))
    def test_rows_match_dense(self, estimate, seed):
        rng = np.random.default_rng(seed)
        rows = rng.integers(0, estimate.n_users, size=4)
        _close(estimate.rows(rows), estimate.to_dense()[rows])

    @settings(max_examples=40)
    @given(factored_estimates(), st.integers(0, 2**31 - 1))
    def test_entries_match_dense(self, estimate, seed):
        rng = np.random.default_rng(seed)
        rows = rng.integers(0, estimate.n_users, size=6)
        cols = rng.integers(0, estimate.n_users, size=6)
        _close(estimate.entries(rows, cols), estimate.to_dense()[rows, cols])

    @settings(max_examples=40)
    @given(factored_estimates(), st.integers(0, 2**31 - 1))
    def test_lowrank_entries_ignore_residual(self, estimate, seed):
        rng = np.random.default_rng(seed)
        rows = rng.integers(0, estimate.n_users, size=6)
        cols = rng.integers(0, estimate.n_users, size=6)
        lowrank = (estimate.u * estimate.s) @ estimate.vt
        _close(estimate.lowrank_entries(rows, cols), lowrank[rows, cols])


class TestAlgebra:
    @settings(max_examples=40)
    @given(factored_estimates(), st.floats(-2.0, 2.0))
    def test_scaled(self, estimate, alpha):
        _close(estimate.scaled(alpha).to_dense(), alpha * estimate.to_dense())

    @settings(max_examples=40)
    @given(factored_estimates(), st.integers(0, 2**31 - 1))
    def test_with_residual_swaps_sparse_block(self, estimate, seed):
        rng = np.random.default_rng(seed)
        n = estimate.n_users
        replacement = sparse.random(
            n, n, density=0.2, format="csr", random_state=rng
        )
        swapped = estimate.with_residual(replacement)
        lowrank = (estimate.u * estimate.s) @ estimate.vt
        _close(
            swapped.to_dense(),
            lowrank + np.asarray(replacement.todense()),
        )

    @settings(max_examples=40)
    @given(factored_estimates())
    def test_frobenius_sq(self, estimate):
        expected = float(np.sum(estimate.to_dense() ** 2))
        assert abs(estimate.frobenius_sq() - expected) <= TOL * (1 + expected)

    @settings(max_examples=40)
    @given(factored_estimates())
    def test_lowrank_frobenius_sq(self, estimate):
        lowrank = (estimate.u * estimate.s) @ estimate.vt
        expected = float(np.sum(lowrank**2))
        assert (
            abs(estimate.lowrank_frobenius_sq() - expected)
            <= TOL * (1 + expected)
        )

    @settings(max_examples=25)
    @given(factored_estimates(), st.integers(0, 2**31 - 1))
    def test_delta_frobenius(self, estimate, seed):
        rng = np.random.default_rng(seed)
        n, rank = estimate.n_users, 2
        other = FactoredEstimate(
            rng.standard_normal((n, rank)),
            rng.uniform(0.25, 2.0, rank),
            rng.standard_normal((rank, n)),
            sparse.random(n, n, density=0.2, format="csr", random_state=rng),
        )
        expected = float(
            np.linalg.norm(estimate.to_dense() - other.to_dense())
        )
        assert abs(estimate.delta_frobenius(other) - expected) <= TOL * (
            1 + expected
        )

    @settings(max_examples=25)
    @given(factored_estimates(), st.integers(0, 2**31 - 1))
    def test_lowrank_inner_sparse(self, estimate, seed):
        rng = np.random.default_rng(seed)
        n = estimate.n_users
        matrix = sparse.random(
            n, n, density=0.3, format="csr", random_state=rng
        )
        lowrank = (estimate.u * estimate.s) @ estimate.vt
        expected = float(np.sum(lowrank * np.asarray(matrix.todense())))
        assert abs(estimate.lowrank_inner_sparse(matrix) - expected) <= TOL * (
            1 + abs(expected)
        )


class TestConstructors:
    def test_zeros(self):
        estimate = FactoredEstimate.zeros(5)
        assert estimate.rank == 0
        assert estimate.residual_nnz == 0
        _close(estimate.to_dense(), np.zeros((5, 5)))

    def test_from_sparse(self):
        rng = np.random.default_rng(0)
        matrix = sparse.random(6, 6, density=0.3, format="csr", random_state=rng)
        estimate = FactoredEstimate.from_sparse(matrix)
        assert estimate.rank == 0
        _close(estimate.to_dense(), np.asarray(matrix.todense()))

    def test_from_lowrank(self):
        rng = np.random.default_rng(1)
        u = rng.standard_normal((6, 2))
        s = np.array([2.0, 1.0])
        vt = rng.standard_normal((2, 6))
        estimate = FactoredEstimate.from_lowrank(u, s, vt)
        assert estimate.residual_nnz == 0
        _close(estimate.to_dense(), (u * s) @ vt)

    def test_compress_full_rank_is_exact(self):
        rng = np.random.default_rng(2)
        matrix = rng.standard_normal((8, 8))
        estimate = FactoredEstimate.compress(matrix, rank=8)
        _close(estimate.to_dense(), matrix)

    def test_compress_residual_captures_spikes(self):
        rng = np.random.default_rng(3)
        u = rng.standard_normal((10, 2))
        vt = rng.standard_normal((2, 10))
        matrix = (u * np.array([3.0, 2.0])) @ vt
        matrix[4, 7] += 50.0  # a sparse spike rank-2 SVD cannot absorb
        estimate = FactoredEstimate.compress(matrix, rank=9, residual_nnz=4)
        _close(estimate.to_dense(), matrix)

    def test_shape_validation(self):
        rng = np.random.default_rng(4)
        with pytest.raises(ValueError):
            FactoredEstimate(
                rng.standard_normal((5, 2)),
                np.ones(3),  # σ length disagrees with U's columns
                rng.standard_normal((2, 5)),
                sparse.csr_matrix((5, 5)),
            )
        with pytest.raises(ValueError):
            FactoredEstimate(
                rng.standard_normal((5, 2)),
                np.ones(2),
                rng.standard_normal((2, 5)),
                sparse.csr_matrix((4, 4)),  # residual shape disagrees
            )


class TestMemoryModel:
    def test_memory_bytes_tracks_factors_not_n_squared(self):
        n, rank = 400, 5
        rng = np.random.default_rng(5)
        estimate = FactoredEstimate(
            rng.standard_normal((n, rank)),
            rng.uniform(0.5, 1.0, rank),
            rng.standard_normal((rank, n)),
            sparse.random(n, n, density=0.01, format="csr", random_state=rng),
        )
        dense_bytes = n * n * 8
        assert estimate.memory_bytes() < 0.25 * dense_bytes
