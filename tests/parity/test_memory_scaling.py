"""The O(nk) memory claim, measured: no dense n×n allocation while fitting.

Gated behind ``REPRO_PARITY_MEM=1`` because the probe fits at n = 5000 —
a size where the dense iterate alone would cost 200 MB (and the dense
solver several such temporaries).  The assertion is the tentpole's
acceptance bar: peak traced allocation under 25% of one dense n×n array.
"""

import os
import tracemalloc

import numpy as np
import pytest
from scipy import sparse

from repro.models.slampred import SlamPredH

pytestmark = pytest.mark.skipif(
    os.environ.get("REPRO_PARITY_MEM") != "1",
    reason="large-n memory probe; enable with REPRO_PARITY_MEM=1",
)

N_USERS = 5000
DEGREE = 6


def _synthetic_adjacency(n, degree, seed):
    rng = np.random.default_rng(seed)
    upper = sparse.random(
        n, n, density=degree / n, format="csr", random_state=rng
    )
    adjacency = ((upper + upper.T) > 0).astype(float).tocsr()
    adjacency.setdiag(0.0)
    adjacency.eliminate_zeros()
    return adjacency


class TestFactoredMemoryScaling:
    def test_peak_allocation_is_subquadratic(self):
        adjacency = _synthetic_adjacency(N_USERS, DEGREE, seed=7)
        model = SlamPredH(
            factored=True,
            svd_rank=8,
            inner_iterations=3,
            outer_iterations=2,
            tolerance=1e-4,
        )
        tracemalloc.start()
        try:
            model.fit_adjacency(adjacency)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        dense_matrix_bytes = N_USERS * N_USERS * 8
        assert peak < 0.25 * dense_matrix_bytes, (
            f"factored fit peaked at {peak / 1e6:.1f} MB — more than 25% "
            f"of one dense n×n array ({dense_matrix_bytes / 1e6:.0f} MB); "
            "something materialized the iterate"
        )
        assert model.n_users == N_USERS
        scores = model.score_pairs([(0, 1), (10, 999)])
        assert np.all(np.isfinite(scores))

    def test_peak_allocation_scales_linearly_in_n(self):
        """Two-scale probe: doubling n must not quadruple the peak."""
        peaks = []
        for n in (1500, 3000):
            adjacency = _synthetic_adjacency(n, DEGREE, seed=11)
            model = SlamPredH(
                factored=True,
                svd_rank=8,
                inner_iterations=3,
                outer_iterations=2,
                tolerance=1e-4,
            )
            tracemalloc.start()
            try:
                model.fit_adjacency(adjacency)
                peaks.append(tracemalloc.get_traced_memory()[1])
            finally:
                tracemalloc.stop()
        ratio = peaks[1] / peaks[0]
        assert ratio < 3.0, (
            f"peak grew {ratio:.1f}× for 2× users "
            f"({peaks[0] / 1e6:.1f} → {peaks[1] / 1e6:.1f} MB) — "
            "super-linear in n·k"
        )
