"""Factored artifacts end to end: persistence, integrity, serving parity.

A factored publish stores O(nk) factor arrays instead of the n×n matrix.
These tests pin three contracts: (1) a publish → reload round trip is
score-identical; (2) the sha256 digest over the factor arrays rejects a
corrupted archive with :class:`ArtifactCorruptError`; (3) a service
backed by the factored artifact answers ``top_k`` / ``batch_top_k`` /
``score`` identically to one backed by the dense materialization of the
same estimate.
"""

import json
import os

import numpy as np
import pytest
from scipy import sparse

from repro.exceptions import ArtifactCorruptError, SerializationError
from repro.models.persistence import (
    FrozenFactoredPredictor,
    FrozenPredictor,
    load_predictor,
    save_predictor,
)
from repro.models.slampred import SlamPredH
from repro.serving.artifacts import ArtifactStore, file_sha256
from repro.serving.service import LinkPredictionService

N = 48


@pytest.fixture(scope="module")
def adjacency():
    """A small symmetric graph for the factored structural fit."""
    rng = np.random.default_rng(77)
    upper = sparse.random(N, N, density=0.1, format="csr", random_state=rng)
    matrix = ((upper + upper.T) > 0).astype(float).tocsr()
    matrix.setdiag(0.0)
    matrix.eliminate_zeros()
    return matrix


@pytest.fixture(scope="module")
def factored_model(adjacency):
    """A factored SLAMPRED-H fitted on the shared graph."""
    return SlamPredH(
        factored=True,
        svd_rank=10,
        inner_iterations=6,
        outer_iterations=3,
        tolerance=1e-4,
    ).fit_adjacency(adjacency)


@pytest.fixture(scope="module")
def dense_twin(factored_model):
    """A dense predictor over the factored model's materialized scores."""
    return FrozenPredictor(
        factored_model.score_matrix, metadata={"name": "dense-twin"}
    )


class TestPersistenceRoundTrip:
    def test_reload_is_score_identical(self, factored_model, tmp_path):
        path = str(tmp_path / "model.npz")
        save_predictor(factored_model, path)
        loaded = load_predictor(path)
        assert isinstance(loaded, FrozenFactoredPredictor)
        assert loaded.factored
        assert loaded.n_users == N
        np.testing.assert_array_equal(
            loaded.score_matrix, factored_model.score_matrix
        )
        pairs = [(0, 1), (3, 40), (7, 7), (20, 11)]
        np.testing.assert_array_equal(
            loaded.score_pairs(pairs), factored_model.score_pairs(pairs)
        )

    def test_metadata_survives(self, factored_model, tmp_path):
        path = str(tmp_path / "model.npz")
        save_predictor(factored_model, path)
        loaded = load_predictor(path)
        assert loaded.metadata["name"] == "SLAMPRED-H"
        assert loaded.metadata["factored"] is True
        assert loaded.metadata["gamma"] == factored_model.gamma

    def test_archive_stores_factors_not_matrix(
        self, factored_model, tmp_path
    ):
        path = str(tmp_path / "model.npz")
        save_predictor(factored_model, path)
        with np.load(path) as data:
            assert "score_matrix" not in data.files
            assert "factor_u" in data.files
            assert "residual_data" in data.files


class TestIntegrity:
    def _corrupted(self, factored_model, tmp_path, key):
        path = str(tmp_path / "model.npz")
        save_predictor(factored_model, path)
        with np.load(path) as data:
            arrays = {name: np.array(data[name]) for name in data.files}
        flat = arrays[key].ravel()
        flat[flat.size // 2] += 1.0  # one flipped value, digest kept as-is
        np.savez_compressed(path, **arrays)
        return path

    @pytest.mark.parametrize("key", ["factor_u", "factor_s", "residual_data"])
    def test_corrupt_factor_rejected(self, factored_model, tmp_path, key):
        path = self._corrupted(factored_model, tmp_path, key)
        with pytest.raises(ArtifactCorruptError, match="integrity"):
            load_predictor(path)

    def test_inconsistent_factors_rejected(self, factored_model, tmp_path):
        """Shape-breaking tampering fails cleanly even with a fixed digest."""
        path = str(tmp_path / "model.npz")
        save_predictor(factored_model, path)
        with np.load(path) as data:
            arrays = {name: np.array(data[name]) for name in data.files}
        arrays["residual_indptr"] = arrays["residual_indptr"][:-3]
        np.savez_compressed(path, **arrays)
        with pytest.raises(SerializationError):
            load_predictor(path)

    def test_truncated_file_rejected(self, factored_model, tmp_path):
        path = str(tmp_path / "model.npz")
        save_predictor(factored_model, path)
        with open(path, "r+b") as handle:
            handle.truncate(os.path.getsize(path) // 2)
        with pytest.raises(SerializationError):
            load_predictor(path)


class TestArtifactStore:
    @pytest.fixture(scope="class")
    def store(self, factored_model, adjacency, tmp_path_factory):
        root = str(tmp_path_factory.mktemp("factored-store"))
        store = ArtifactStore(root)
        store.publish(factored_model, graph=adjacency, meta={"origin": "test"})
        return store

    def test_manifest_kind_and_users(self, store):
        manifest = store.manifest(1)
        assert manifest["kind"] == "factored"
        assert manifest["n_users"] == N

    def test_file_checksums_hold(self, store):
        manifest = store.manifest(1)
        for filename, entry in manifest["files"].items():
            path = os.path.join(store.path(1), filename)
            assert file_sha256(path) == entry["sha256"]

    def test_load_round_trip(self, store, factored_model, adjacency):
        artifact = store.load()
        assert isinstance(artifact.predictor, FrozenFactoredPredictor)
        assert artifact.n_users == N
        assert sparse.issparse(artifact.adjacency)
        assert (
            abs(artifact.adjacency - adjacency)
        ).nnz == 0
        np.testing.assert_array_equal(
            artifact.predictor.score_matrix, factored_model.score_matrix
        )

    def test_corrupt_factor_rejected_behind_valid_checksums(
        self, factored_model, adjacency, tmp_path
    ):
        """Defense in depth: tampering that also rewrites the manifest's
        file hash still trips the inner factored content digest."""
        store = ArtifactStore(str(tmp_path / "store"))
        store.publish(factored_model, graph=adjacency)
        model_path = os.path.join(store.path(1), "model.npz")
        with np.load(model_path) as data:
            arrays = {name: np.array(data[name]) for name in data.files}
        arrays["factor_vt"].ravel()[0] += 0.5
        np.savez_compressed(model_path, **arrays)
        manifest_path = os.path.join(store.path(1), "manifest.json")
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        manifest["files"]["model.npz"]["sha256"] = file_sha256(model_path)
        manifest["files"]["model.npz"]["bytes"] = os.path.getsize(model_path)
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(ArtifactCorruptError):
            store.load()


class TestServingParity:
    @pytest.fixture(scope="class")
    def services(self, factored_model, dense_twin, adjacency, tmp_path_factory):
        """A factored-backed and a dense-backed service over equal scores."""
        factored_store = ArtifactStore(
            str(tmp_path_factory.mktemp("serve-factored"))
        )
        factored_store.publish(factored_model, graph=adjacency)
        dense_store = ArtifactStore(str(tmp_path_factory.mktemp("serve-dense")))
        dense_store.publish(
            dense_twin, graph=np.asarray(adjacency.todense())
        )
        return (
            LinkPredictionService(factored_store),
            LinkPredictionService(dense_store),
        )

    @staticmethod
    def _assert_rankings_match(left, right):
        """Same candidates in the same order; scores to 1e-9.

        The factored service scores a row through one ``u_i Vᵀ`` matvec
        while the dense twin was materialized through ``to_dense()`` —
        different summation orders, so the floats agree only to ulps.
        """
        assert [v for v, _ in left] == [v for v, _ in right]
        for (_, a), (_, b) in zip(left, right):
            assert a == pytest.approx(b, rel=1e-9, abs=1e-12)

    def test_top_k_identical(self, services):
        factored, dense = services
        for user in (0, 7, 23, N - 1):
            self._assert_rankings_match(
                factored.top_k(user, k=10), dense.top_k(user, k=10)
            )

    def test_batch_top_k_identical(self, services):
        factored, dense = services
        users = [1, 5, 9, 30]
        left = factored.batch_top_k(users, k=5)
        right = dense.batch_top_k(users, k=5)
        assert len(left) == len(right) == len(users)
        for left_ranking, right_ranking in zip(left, right):
            self._assert_rankings_match(left_ranking, right_ranking)

    def test_score_identical(self, services):
        factored, dense = services
        rng = np.random.default_rng(5)
        for u, v in zip(rng.integers(0, N, 50), rng.integers(0, N, 50)):
            assert factored.score(int(u), int(v)) == pytest.approx(
                dense.score(int(u), int(v)), abs=1e-12
            )

    def test_known_links_excluded(self, services, adjacency):
        factored, _ = services
        links = adjacency.tocoo()
        user = int(links.row[0])
        neighbors = set(
            adjacency.indices[
                adjacency.indptr[user] : adjacency.indptr[user + 1]
            ]
        )
        ranked = {v for v, _ in factored.top_k(user, k=N)}
        assert not ranked.intersection(neighbors)
        assert user not in ranked

    def test_is_known_link_parity(self, services):
        factored, dense = services
        rng = np.random.default_rng(9)
        for u, v in zip(rng.integers(0, N, 40), rng.integers(0, N, 40)):
            assert factored.is_known_link(int(u), int(v)) == (
                dense.is_known_link(int(u), int(v))
            )
