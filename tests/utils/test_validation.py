"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.utils.validation import (
    check_in_range,
    check_integer,
    check_matrix_shape,
    check_non_negative,
    check_positive,
    check_probability,
)


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0, 1])
    def test_accepts(self, value):
        assert check_probability(value, "p") == float(value)

    @pytest.mark.parametrize("value", [-0.1, 1.1, 100])
    def test_rejects_out_of_range(self, value):
        with pytest.raises(ConfigurationError, match="p must be in"):
            check_probability(value, "p")

    def test_rejects_bool(self):
        with pytest.raises(ConfigurationError):
            check_probability(True, "p")

    def test_rejects_string(self):
        with pytest.raises(ConfigurationError):
            check_probability("0.5", "p")


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(0.001, "x") == 0.001

    @pytest.mark.parametrize("value", [0, 0.0, -1.0])
    def test_rejects_non_positive(self, value):
        with pytest.raises(ConfigurationError, match="x must be > 0"):
            check_positive(value, "x")


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative(0.0, "x") == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            check_non_negative(-1e-9, "x")


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range(0.0, "x", 0.0, 1.0) == 0.0
        assert check_in_range(1.0, "x", 0.0, 1.0) == 1.0

    def test_exclusive_bounds(self):
        with pytest.raises(ConfigurationError):
            check_in_range(0.0, "x", 0.0, 1.0, inclusive=False)
        assert check_in_range(0.5, "x", 0.0, 1.0, inclusive=False) == 0.5

    def test_error_names_parameter(self):
        with pytest.raises(ConfigurationError, match="my_param"):
            check_in_range(5.0, "my_param", 0.0, 1.0)


class TestCheckInteger:
    def test_accepts_int(self):
        assert check_integer(3, "n") == 3

    def test_accepts_numpy_int(self):
        assert check_integer(np.int32(4), "n") == 4

    def test_rejects_float(self):
        with pytest.raises(ConfigurationError):
            check_integer(3.0, "n")

    def test_rejects_bool(self):
        with pytest.raises(ConfigurationError):
            check_integer(True, "n")

    def test_minimum(self):
        with pytest.raises(ConfigurationError, match=">= 2"):
            check_integer(1, "n", minimum=2)


class TestCheckMatrixShape:
    def test_accepts(self):
        m = check_matrix_shape(np.zeros((2, 3)), (2, 3), "m")
        assert m.shape == (2, 3)

    def test_rejects_wrong_shape(self):
        with pytest.raises(ConfigurationError, match="m must have shape"):
            check_matrix_shape(np.zeros((3, 2)), (2, 3), "m")

    def test_rejects_vector(self):
        with pytest.raises(ConfigurationError):
            check_matrix_shape(np.zeros(6), (2, 3), "m")

    def test_converts_lists(self):
        m = check_matrix_shape([[1, 2], [3, 4]], (2, 2), "m")
        assert isinstance(m, np.ndarray)
