"""Tests for repro.utils.matrices."""

import numpy as np
import pytest

from repro.utils.matrices import (
    clip_unit_interval,
    density,
    effective_rank,
    frobenius_distance,
    is_square,
    is_symmetric,
    l1_norm,
    matrix_to_pairs,
    pairs_to_matrix,
    symmetrize,
    trace_norm,
    upper_triangle_pairs,
    zero_diagonal,
)


class TestShapePredicates:
    def test_is_square_true(self):
        assert is_square(np.zeros((3, 3)))

    def test_is_square_false_rect(self):
        assert not is_square(np.zeros((3, 4)))

    def test_is_square_false_vector(self):
        assert not is_square(np.zeros(3))

    def test_is_symmetric_true(self):
        m = np.array([[1.0, 2.0], [2.0, 3.0]])
        assert is_symmetric(m)

    def test_is_symmetric_false(self):
        m = np.array([[1.0, 2.0], [0.0, 3.0]])
        assert not is_symmetric(m)

    def test_is_symmetric_tolerance(self):
        m = np.array([[1.0, 2.0], [2.0 + 1e-12, 3.0]])
        assert is_symmetric(m)


class TestTransforms:
    def test_symmetrize(self):
        m = np.array([[0.0, 2.0], [0.0, 0.0]])
        out = symmetrize(m)
        assert np.allclose(out, [[0.0, 1.0], [1.0, 0.0]])

    def test_symmetrize_rejects_rect(self):
        with pytest.raises(ValueError, match="square"):
            symmetrize(np.zeros((2, 3)))

    def test_zero_diagonal(self):
        m = np.ones((3, 3))
        out = zero_diagonal(m)
        assert np.all(np.diag(out) == 0)
        assert out[0, 1] == 1.0

    def test_zero_diagonal_copies(self):
        m = np.ones((2, 2))
        zero_diagonal(m)
        assert m[0, 0] == 1.0

    def test_clip_unit_interval(self):
        m = np.array([[-1.0, 0.5], [2.0, 1.0]])
        out = clip_unit_interval(m)
        assert out.min() == 0.0 and out.max() == 1.0
        assert out[0, 1] == 0.5


class TestNorms:
    def test_frobenius_distance(self):
        a = np.eye(2)
        b = np.zeros((2, 2))
        assert frobenius_distance(a, b) == pytest.approx(np.sqrt(2))

    def test_l1_norm(self):
        assert l1_norm(np.array([[1.0, -2.0], [3.0, -4.0]])) == 10.0

    def test_trace_norm_diagonal(self):
        assert trace_norm(np.diag([3.0, 4.0])) == pytest.approx(7.0)

    def test_trace_norm_equals_sum_of_singular_values(self, rng):
        m = rng.normal(size=(5, 5))
        expected = np.linalg.svd(m, compute_uv=False).sum()
        assert trace_norm(m) == pytest.approx(expected)


class TestRankAndDensity:
    def test_effective_rank_full(self):
        assert effective_rank(np.eye(4)) == 4

    def test_effective_rank_deficient(self):
        m = np.outer([1.0, 2.0, 3.0], [1.0, 1.0, 1.0])
        assert effective_rank(m) == 1

    def test_density_zero(self):
        assert density(np.zeros((3, 3))) == 0.0

    def test_density_partial(self):
        m = np.zeros((2, 2))
        m[0, 1] = 1.0
        assert density(m) == pytest.approx(0.25)

    def test_density_empty_matrix(self):
        assert density(np.zeros((0, 0))) == 0.0


class TestPairHelpers:
    def test_upper_triangle_pairs_count(self):
        assert len(upper_triangle_pairs(5)) == 10

    def test_upper_triangle_pairs_order(self):
        assert upper_triangle_pairs(3) == [(0, 1), (0, 2), (1, 2)]

    def test_upper_triangle_pairs_empty(self):
        assert upper_triangle_pairs(0) == []
        assert upper_triangle_pairs(1) == []

    def test_upper_triangle_negative_raises(self):
        with pytest.raises(ValueError):
            upper_triangle_pairs(-1)

    def test_pairs_to_matrix_symmetric(self):
        m = pairs_to_matrix([(0, 2)], 3)
        assert m[0, 2] == 1.0 and m[2, 0] == 1.0
        assert m.sum() == 2.0

    def test_pairs_to_matrix_values(self):
        m = pairs_to_matrix([(0, 1), (1, 2)], 3, values=[0.5, 2.0])
        assert m[1, 0] == 0.5 and m[2, 1] == 2.0

    def test_pairs_to_matrix_value_length_mismatch(self):
        with pytest.raises(ValueError, match="values"):
            pairs_to_matrix([(0, 1)], 2, values=[1.0, 2.0])

    def test_pairs_to_matrix_out_of_range(self):
        with pytest.raises(IndexError):
            pairs_to_matrix([(0, 5)], 3)

    def test_matrix_to_pairs_roundtrip(self):
        m = pairs_to_matrix([(0, 1), (2, 3)], 4, values=[0.7, 0.9])
        pairs = matrix_to_pairs(m)
        assert pairs == [(0, 1, 0.7), (2, 3, 0.9)]

    def test_matrix_to_pairs_threshold(self):
        m = pairs_to_matrix([(0, 1), (1, 2)], 3, values=[0.05, 0.9])
        assert matrix_to_pairs(m, atol=0.1) == [(1, 2, 0.9)]

    def test_matrix_to_pairs_rejects_rect(self):
        with pytest.raises(ValueError):
            matrix_to_pairs(np.zeros((2, 3)))


class TestRankTolerance:
    def test_zero_matrix(self):
        from repro.utils.matrices import rank_tolerance

        assert rank_tolerance(np.zeros((3, 3))) == 0.0

    def test_scales_with_magnitude(self):
        from repro.utils.matrices import rank_tolerance

        small = rank_tolerance(np.eye(3))
        large = rank_tolerance(1000 * np.eye(3))
        assert large > small

    def test_used_as_default_in_effective_rank(self, rng):
        from repro.utils.matrices import effective_rank

        # a numerically rank-2 matrix with float noise at machine epsilon
        u = rng.normal(size=(6, 2))
        matrix = u @ u.T
        assert effective_rank(matrix) == 2
