"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).integers(0, 1_000_000, size=10)
        b = ensure_rng(42).integers(0, 1_000_000, size=10)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).integers(0, 1_000_000, size=10)
        b = ensure_rng(2).integers(0, 1_000_000, size=10)
        assert not np.array_equal(a, b)

    def test_generator_passes_through(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_numpy_integer_accepted(self):
        seed = np.int64(7)
        a = ensure_rng(seed).integers(0, 100, size=5)
        b = ensure_rng(7).integers(0, 100, size=5)
        assert np.array_equal(a, b)

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError, match="random_state"):
            ensure_rng("not-a-seed")

    def test_float_rejected(self):
        with pytest.raises(TypeError):
            ensure_rng(3.5)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError, match="non-negative"):
            spawn_rngs(0, -1)

    def test_deterministic(self):
        first = [g.integers(0, 10**9) for g in spawn_rngs(3, 4)]
        second = [g.integers(0, 10**9) for g in spawn_rngs(3, 4)]
        assert first == second

    def test_streams_are_independent(self):
        streams = spawn_rngs(3, 4)
        draws = [g.integers(0, 10**12) for g in streams]
        assert len(set(draws)) == len(draws)

    def test_prefix_stability(self):
        # Spawning more streams must not change the earlier ones.
        short = [g.integers(0, 10**9) for g in spawn_rngs(9, 2)]
        long = [g.integers(0, 10**9) for g in spawn_rngs(9, 5)]
        assert short == long[:2]
