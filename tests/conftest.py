"""Shared fixtures: a small deterministic aligned world and derived views.

Session-scoped so the synthetic generation cost is paid once; tests must not
mutate the shared objects (HeterogeneousNetwork is mutable — tests that need
to mutate build their own).
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings

# Hypothesis profiles: "ci" is derandomized so CI failures reproduce
# exactly (select with HYPOTHESIS_PROFILE=ci); "dev" keeps the default
# randomized exploration locally.  Deadlines are off in both — SVD-heavy
# properties are wall-clock noisy on shared runners.
settings.register_profile("ci", max_examples=50, derandomize=True, deadline=None)
settings.register_profile("dev", max_examples=25, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))

from repro.evaluation.splits import k_fold_link_splits
from repro.models.base import TransferTask
from repro.networks.social import SocialGraph
from repro.synth.config import WorldConfig
from repro.synth.generator import AlignedNetworkGenerator


SCALE = 70
SEED = 1234


@pytest.fixture(scope="session")
def world_config():
    """The Foursquare/Twitter-like config at test scale."""
    return WorldConfig.foursquare_twitter_like(scale=SCALE)


@pytest.fixture(scope="session")
def aligned(world_config):
    """A small deterministic aligned pair."""
    return AlignedNetworkGenerator(world_config).generate(random_state=SEED)


@pytest.fixture(scope="session")
def target_graph(aligned):
    """Full social structure of the target."""
    return SocialGraph.from_network(aligned.target)


@pytest.fixture(scope="session")
def source_graph(aligned):
    """Full social structure of the single source."""
    return SocialGraph.from_network(aligned.sources[0])


@pytest.fixture(scope="session")
def splits(target_graph):
    """Three folds over the target's links."""
    return k_fold_link_splits(target_graph, n_folds=3, random_state=SEED)


@pytest.fixture(scope="session")
def split(splits):
    """The first fold."""
    return splits[0]


@pytest.fixture()
def task(aligned, split):
    """A TransferTask over the first fold (function-scoped: fresh rng)."""
    return TransferTask(
        target=aligned.target,
        training_graph=split.training_graph,
        sources=list(aligned.sources),
        anchors=list(aligned.anchors),
        random_state=np.random.default_rng(SEED),
    )


@pytest.fixture()
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(SEED)
