#!/usr/bin/env python
"""CI gate: the hot-tier telemetry overhead must stay under its budget.

Reads the repo-root ``BENCH_serving.json`` trajectory file, finds the
most recent ``telemetry_overhead`` snapshot (written by
``benchmarks/test_serving_latency.py::test_telemetry_overhead``), and
fails the build when its ``overhead_pct`` — the cold top-k median gap
between a fully instrumented service and the NullTracer/NullRegistry
path — exceeds the budget (default 5%).

Run from the repo root, after the benchmarks step has refreshed the
trajectory file::

    python tools/check_telemetry_gate.py [--budget-pct 5.0]
"""

from __future__ import annotations

import argparse
import json
import sys

DEFAULT_BUDGET_PCT = 5.0
TRAJECTORY_FILE = "BENCH_serving.json"
SECTION = "telemetry_overhead"


def latest_overhead(path: str) -> dict:
    """The stats dict of the newest ``telemetry_overhead`` snapshot."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    snapshots = [
        snap
        for snap in data.get("snapshots", [])
        if snap.get("section") == SECTION
    ]
    if not snapshots:
        raise SystemExit(
            f"gate error: no '{SECTION}' snapshot in {path}; "
            "run the serving benchmarks first"
        )
    return snapshots[-1]


def main(argv=None) -> int:
    """Check the latest overhead snapshot against the budget."""
    parser = argparse.ArgumentParser(
        description="Fail when telemetry overhead exceeds its budget."
    )
    parser.add_argument(
        "--budget-pct",
        type=float,
        default=DEFAULT_BUDGET_PCT,
        help="maximum tolerated overhead_pct (default: %(default)s)",
    )
    parser.add_argument(
        "--file",
        default=TRAJECTORY_FILE,
        help="trajectory file to read (default: %(default)s)",
    )
    args = parser.parse_args(argv)
    snapshot = latest_overhead(args.file)
    stats = snapshot.get("stats", {})
    overhead = stats.get("overhead_pct")
    if overhead is None:
        raise SystemExit(
            f"gate error: snapshot has no overhead_pct: {stats}"
        )
    print(
        f"telemetry overhead: {overhead:+.2f}% "
        f"(disabled {stats.get('disabled_median_ms', float('nan')):.3f}ms, "
        f"instrumented "
        f"{stats.get('instrumented_median_ms', float('nan')):.3f}ms, "
        f"recorded {snapshot.get('recorded_at', '?')})"
    )
    if overhead > args.budget_pct:
        print(
            f"FAIL: overhead {overhead:+.2f}% exceeds the "
            f"{args.budget_pct:.1f}% budget — the hot tier has regressed"
        )
        return 1
    print(f"OK: within the {args.budget_pct:.1f}% budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
