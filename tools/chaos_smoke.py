#!/usr/bin/env python
"""CI chaos smoke: serve under injected faults, prove graceful degradation.

End-to-end over a throwaway artifact store with the ``REPRO_CHAOS``
fault-injection flag armed:

1. publish a tiny synthetic predictor and boot a real
   :class:`~repro.serving.http.LinkPredictionServer` on a free port;
2. hammer ``/v1/topk`` and fail unless **every** response — success or
   injected failure — is valid JSON with the status/request-id error
   contract (an unhandled traceback or non-JSON 500 fails the run);
3. publish a corrupt second version and fail unless reloads reject it
   and queries keep answering from the stale-but-valid artifact;
4. drive reloads until the reload circuit breaker trips, then check
   ``/readyz`` reports not-ready while ``/healthz`` stays live;
5. scrape ``/metrics`` and fail unless the reliability series
   (retries, breaker state, shed/degraded counters) are exposed;
6. **streaming leg** — run a full ingest→WAL→warm-refit→publish→hot-swap
   cycle with the ``streaming.wal.*`` sites armed: every acknowledged
   delta must survive a simulated crash (digest-identical recovery), at
   least one version must publish, forcing the reload breaker open must
   switch answers to the degraded common-neighbor tier, and the HTTP
   surface must never 5xx outside injected sites.

Run from the repo root::

    REPRO_CHAOS=1 REPRO_CHAOS_SEED=1234 PYTHONPATH=src python tools/chaos_smoke.py
"""

from __future__ import annotations

import json
import sys
import tempfile
import threading
import urllib.error
import urllib.request

import numpy as np

from repro.models.persistence import FrozenPredictor
from repro.observability.metrics import MetricsRegistry
from repro.observability.sampling import SamplingTracer
from repro.reliability.faults import GLOBAL_INJECTOR, configure_from_env
from repro.serving.artifacts import ArtifactStore
from repro.serving.http import make_server
from repro.serving.service import LinkPredictionService

N_USERS = 32
N_REQUESTS = 80

REQUIRED_RELIABILITY_SERIES = (
    "repro_reliability_breaker_state",
    "repro_reliability_retries_total",
    "repro_serving_reload_failure_total",
)


def _get(base, path):
    """GET returning (status, parsed JSON); non-JSON error bodies abort."""
    try:
        with urllib.request.urlopen(f"{base}{path}", timeout=10) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as exc:
        body = exc.read().decode("utf-8")
        try:
            payload = json.loads(body)
        except ValueError:
            raise SystemExit(
                f"{path}: HTTP {exc.code} body is not JSON: {body[:200]!r}"
            )
        if payload.get("status") != exc.code or not payload.get("request_id"):
            raise SystemExit(
                f"{path}: error body violates the contract: {payload!r}"
            )
        return exc.code, payload


def main() -> int:
    armed = configure_from_env()
    if not armed:
        raise SystemExit(
            "chaos smoke needs REPRO_CHAOS=1 (no fault sites are armed)"
        )
    print(f"chaos smoke: faults armed at {', '.join(sorted(armed))}")

    rng = np.random.default_rng(7)
    scores = rng.normal(size=(N_USERS, N_USERS))
    with tempfile.TemporaryDirectory() as tmp:
        store = ArtifactStore(tmp)
        # The injector is process-global, so this very load already runs
        # under chaos — the service's load retry policy absorbs it.
        store.publish(
            FrozenPredictor((scores + scores.T) / 2, {"name": "chaos-smoke"})
        )
        # Head sampling at rate 0: the only way a trace can commit is the
        # always-capture-on-error promotion, which step 2 asserts below.
        registry = MetricsRegistry()
        tracer = SamplingTracer(registry, default_rate=0.0)
        service = LinkPredictionService(
            store, tracer=tracer, registry=registry
        )
        server = make_server(service, port=0, request_deadline_s=10.0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            statuses = []
            for i in range(N_REQUESTS):
                status, payload = _get(base, f"/v1/topk?user={i % N_USERS}&k=5")
                statuses.append(status)
                if status == 200 and len(payload["candidates"]) != 5:
                    raise SystemExit(f"bad 200 payload: {payload!r}")
            oks = sum(1 for s in statuses if s == 200)
            errors = len(statuses) - oks
            if oks == 0:
                raise SystemExit("chaos took the service fully down")
            print(
                f"chaos smoke: {oks}/{len(statuses)} served, "
                f"{errors} clean JSON failures"
            )

            # Sampling is 0: every committed trace must be an errored
            # one, and every 5xx answered above must have committed one
            # — the always-capture-on-error promise under live faults.
            server_errors = sum(1 for s in statuses if s >= 500)
            committed = tracer.finished()
            not_errored = [t for t in committed if not t.error]
            if not_errored:
                raise SystemExit(
                    f"rate-0 tracer committed {len(not_errored)} "
                    "clean traces"
                )
            if len(committed) != server_errors:
                raise SystemExit(
                    f"{server_errors} 5xx answers but "
                    f"{len(committed)} error traces committed"
                )
            if any(not list(t.spans()) for t in committed):
                raise SystemExit("error trace committed without spans")
            print(
                f"chaos smoke: all {server_errors} 5xx answers captured "
                "as error traces (sampling rate 0)"
            )

            # A corrupt publish must never replace the serving artifact.
            import os

            version = store.publish(
                FrozenPredictor((scores + scores.T) / 2, {"name": "bad"})
            )
            with open(
                os.path.join(store.path(version), "model.npz"), "wb"
            ) as handle:
                handle.write(b"corrupted beyond repair")
            served_version = service.version
            for _ in range(8):  # enough failures to trip the reload breaker
                service.reload()
            if service.version != served_version:
                raise SystemExit("service swapped to a corrupt artifact")
            status, _ = _get(base, f"/v1/topk?user=1&k=5")
            if status not in (200, 500):
                raise SystemExit(f"stale serve answered {status}")
            print(
                f"chaos smoke: corrupt v{version} rejected, "
                f"still serving v{served_version} "
                f"(breaker {service.reload_breaker.state})"
            )

            status, payload = _get(base, "/readyz")
            if status not in (200, 503):
                raise SystemExit(f"/readyz answered {status}")
            health_status, health = _get(base, "/healthz")
            if health_status != 200 or health.get("status") != "ok":
                raise SystemExit(f"/healthz degraded: {health!r}")

            with urllib.request.urlopen(f"{base}/metrics", timeout=10) as r:
                text = r.read().decode("utf-8")
        finally:
            GLOBAL_INJECTOR.reset()
            server.shutdown()
            server.server_close()

    missing = [s for s in REQUIRED_RELIABILITY_SERIES if s not in text]
    if missing:
        raise SystemExit(f"missing reliability series on /metrics: {missing}")
    print("chaos smoke: ok — degradation clean, reliability series exposed")
    _aio_leg()
    _streaming_leg()
    return 0


def _aio_leg() -> None:
    """The same fault-injection contract against the asyncio front end.

    Identical promises, different transport: every response under armed
    faults is valid JSON honouring the error contract, and — with head
    sampling at rate 0 — every injected 5xx commits exactly one errored
    trace with spans, even though the request crossed the event-loop →
    executor hop.
    """
    from repro.serving.aio import make_async_server

    armed = configure_from_env()  # the main leg's finally disarmed them
    rng = np.random.default_rng(11)
    scores = rng.normal(size=(N_USERS, N_USERS))
    with tempfile.TemporaryDirectory() as tmp:
        store = ArtifactStore(tmp)
        store.publish(
            FrozenPredictor((scores + scores.T) / 2, {"name": "chaos-aio"})
        )
        registry = MetricsRegistry()
        tracer = SamplingTracer(registry, default_rate=0.0)
        service = LinkPredictionService(
            store, tracer=tracer, registry=registry
        )
        server = make_async_server(service, port=0, request_deadline_s=10.0)
        server.start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            statuses = []
            for i in range(N_REQUESTS):
                status, payload = _get(
                    base, f"/v1/topk?user={i % N_USERS}&k=5"
                )
                statuses.append(status)
                if status == 200 and len(payload["candidates"]) != 5:
                    raise SystemExit(f"aio: bad 200 payload: {payload!r}")
            oks = sum(1 for s in statuses if s == 200)
            if oks == 0:
                raise SystemExit("aio: chaos took the service fully down")
            server_errors = sum(1 for s in statuses if s >= 500)
            committed = tracer.finished()
            not_errored = [t for t in committed if not t.error]
            if not_errored:
                raise SystemExit(
                    f"aio: rate-0 tracer committed {len(not_errored)} "
                    "clean traces"
                )
            if len(committed) != server_errors:
                raise SystemExit(
                    f"aio: {server_errors} 5xx answers but "
                    f"{len(committed)} error traces committed"
                )
            if any(not list(t.spans()) for t in committed):
                raise SystemExit(
                    "aio: error trace committed without spans"
                )
        finally:
            GLOBAL_INJECTOR.reset()
            server.shutdown()
            server.server_close()
    print(
        f"chaos smoke: asyncio leg ok — {oks}/{len(statuses)} served, "
        f"all {server_errors} 5xx captured as error traces "
        f"(armed: {', '.join(sorted(armed))})"
    )


def _streaming_leg() -> None:
    """Ingest → WAL → warm-refit → publish → hot-swap under armed faults."""
    from repro.exceptions import ReproError
    from repro.reliability.breaker import CircuitBreaker
    from repro.streaming import StreamState, StreamingPipeline, link_add
    from repro.streaming.refit import WarmRefitter

    armed = configure_from_env()  # the main leg's finally disarmed them
    n_users = 16
    n_deltas = 120
    rng = np.random.default_rng(4321)
    with tempfile.TemporaryDirectory() as tmp:
        import os

        store = ArtifactStore(os.path.join(tmp, "store"))
        pipeline = StreamingPipeline(
            os.path.join(tmp, "stream"),
            n_users=n_users,
            store=store,
            refitter=WarmRefitter(inner_iterations=5, outer_iterations=2),
            snapshot_every=3,
        )
        oracle = StreamState(n_users)
        injected_failures = 0
        for index in range(n_deltas):
            u = int(rng.integers(0, n_users - 1))
            v = int(rng.integers(u + 1, n_users))
            delta = link_add(u, v, float(rng.integers(1, 4)))
            for _ in range(6):  # at-least-once producer retries
                try:
                    seq = pipeline.submit(delta)
                except (ReproError, OSError):
                    injected_failures += 1
                    continue
                oracle.apply(seq, delta)
                break
            else:
                raise SystemExit(
                    "submit failed 6 straight times at 10% fault rate"
                )
            if (index + 1) % 40 == 0:
                pipeline.tick()
        pipeline.tick()
        if pipeline.publishes < 1:
            raise SystemExit(
                "streaming leg never published a version under chaos "
                f"(last error: {pipeline.last_refit_error})"
            )
        # Crash: abandon the in-memory pipeline, recover from disk, and
        # demand the digest of an uninterrupted apply of every ack.
        pipeline.close()
        recovered = StreamingPipeline(os.path.join(tmp, "stream"), n_users=n_users)
        if recovered.state.digest() != oracle.digest():
            raise SystemExit(
                "recovered stream state diverged from the acked oracle: "
                f"{recovered.stats()}"
            )
        recovered.close()
        print(
            f"chaos smoke: streaming leg acked {oracle.applied_seq} deltas "
            f"({injected_failures} injected WAL faults retried), "
            f"{pipeline.publishes} publishes, recovery digest-identical"
        )

        # Degraded tier: trip the reload breaker past its threshold and
        # demand the common-neighbor tier answers (and exits afterwards).
        GLOBAL_INJECTOR.reset()
        registry = MetricsRegistry()
        clock = {"t": 0.0}  # injectable so recovery needs no real sleep
        service = LinkPredictionService(
            store,
            registry=registry,
            enable_degraded_tier=True,
            reload_breaker=CircuitBreaker(
                "reload", failure_threshold=3, recovery_timeout=1.0,
                registry=registry, clock=lambda: clock["t"],
            ),
        )
        server = make_server(service, port=0, request_deadline_s=10.0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            GLOBAL_INJECTOR.arm("serving.reload", probability=1.0)
            for _ in range(4):
                service.reload()
            if not service.degraded_active:
                raise SystemExit(
                    "reload breaker open but degraded tier not engaged"
                )
            status, payload = _get(base, "/v1/topk?user=0&k=3")
            if status != 200:
                raise SystemExit(
                    f"degraded tier answered {status}, wanted 200"
                )
            if "serving_degraded_mode 1" not in service.metrics_text():
                raise SystemExit("serving.degraded_mode gauge not raised")
            GLOBAL_INJECTOR.reset()
            clock["t"] += 10.0  # past recovery_timeout: next probe admitted
            service.reload()  # recovery probe passes; breaker closes
            if service.degraded_active:
                raise SystemExit("degraded tier failed to exit after recovery")
            status, _ = _get(base, "/v1/topk?user=0&k=3")
            if status != 200:
                raise SystemExit(f"post-recovery query answered {status}")
        finally:
            GLOBAL_INJECTOR.reset()
            server.shutdown()
            server.server_close()
        print(
            "chaos smoke: streaming leg ok — degraded tier engaged past "
            "breaker threshold, exited after recovery, no 5xx outside "
            f"injected sites (armed: {', '.join(sorted(armed))})"
        )


if __name__ == "__main__":
    sys.exit(main())
