#!/usr/bin/env python
"""Solver hot-path smoke bench: exact vs fast fit at compact scale.

Two legs, matching the two guarantees the hot path makes:

* **Speedup** (``--scale``, ``--svd-rank``): fits the same rank-capped
  transfer task twice — ``exact=True`` (the seed solver: cold-start
  Lanczos SVT, sequential smooth terms, allocating inner loop) and the
  default hot path (warm-started rank-capped SVT, fused smooth
  objective, workspace-backed loop) — under identical convergence
  criteria.  Both paths compute the same best-effort rank-capped
  operator, so the gate here is predictive quality (AUC must agree to
  ``--auc-gap``), not bitwise parity.
* **Parity** (``--parity-scale``): fits with ``svd_rank=None`` — the
  figure-3 configuration's numerics, where the engine is exact — and
  gates the two score matrices to ``--parity`` (default 1e-6) max
  absolute difference.
* **Factored** (``--factored-n``): fits the factored O(nk) estimate on a
  synthetic sparse graph at a scale the dense path cannot reach (default
  n = 5000, where one dense iterate alone is 200 MB), scores a held-out
  link sample, and gates three claims: peak traced allocation under 25%
  of the dense cost extrapolated quadratically from this run's exact
  fit; a two-scale probe showing the peak grows sub-quadratically in n;
  and factored-vs-exact AUC drift at ``--parity-scale`` within
  ``--factored-drift`` (default 1e-3).

Also measures tracemalloc peaks (the allocation-free claim as a number)
and appends everything as snapshots to ``BENCH_solver.json``.  With
``--check`` the fast-path wall-clock is compared against the newest
committed ``bench_fast`` snapshot at the same scale and the run **fails
(exit 1) on a >2x regression** — the CI smoke gate.

Run from the repo root::

    PYTHONPATH=src python tools/solver_bench.py            # record
    PYTHONPATH=src python tools/solver_bench.py --check    # CI gate
"""

from __future__ import annotations

import argparse
import sys
import time
import tracemalloc
import warnings

import numpy as np
from scipy import sparse

sys.path.insert(0, "benchmarks")

from trajectory import BENCH_SOLVER_PATH, load_trajectory, record_snapshot  # noqa: E402

from repro.evaluation.metrics import auc_score  # noqa: E402
from repro.evaluation.splits import k_fold_link_splits  # noqa: E402
from repro.exceptions import TruncatedSVTWarning  # noqa: E402
from repro.models.base import TransferTask  # noqa: E402
from repro.models.slampred import SlamPredH, SlamPredT  # noqa: E402
from repro.networks.social import SocialGraph  # noqa: E402
from repro.synth.generator import generate_aligned_pair  # noqa: E402

REGRESSION_FACTOR = 2.0
# The tentpole's acceptance bar: the factored fit's peak allocation must
# stay under this fraction of the dense solver's quadratic extrapolation.
FACTORED_ALLOC_FRACTION = 0.25
# Doubling n must not quadruple the peak; linear in n·k would be 2x.
FACTORED_RATIO_LIMIT = 3.0


def _problem(scale):
    aligned = generate_aligned_pair(scale=scale, random_state=1)
    graph = SocialGraph.from_network(aligned.target)
    split = k_fold_link_splits(graph, n_folds=5, random_state=1)[0]
    return aligned, split


def _fit(aligned, split, svd_rank, inner, outer, exact, factored=False):
    task = TransferTask(
        target=aligned.target,
        training_graph=split.training_graph,
        random_state=np.random.default_rng(1),
    )
    model = SlamPredT(
        svd_rank=svd_rank,
        inner_iterations=inner,
        outer_iterations=outer,
        exact=exact,
        factored=factored,
    )
    tracemalloc.start()
    start = time.perf_counter()
    with warnings.catch_warnings():
        # Both paths warn on every lossy rank-capped application, by
        # design; a bench run would otherwise drown in them.
        warnings.simplefilter("ignore", TruncatedSVTWarning)
        model.fit(task)
    seconds = time.perf_counter() - start
    _, peak_bytes = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return model, seconds, peak_bytes


def _auc(model, split):
    return float(
        auc_score(model.score_pairs(split.test_pairs), split.test_labels)
    )


def _synthetic_adjacency(n, degree, seed, n_blocks=8):
    """A sparse stochastic block model with expected degree ``degree``.

    Built block by block (never a dense n×n mask) so generation itself
    stays O(nk).  Most links live inside one of ``n_blocks`` communities,
    which a rank-``n_blocks`` estimate can recover — held-out links are
    genuinely predictable, unlike in an Erdős–Rényi graph where any AUC
    is chance.
    """
    rng = np.random.default_rng(seed)
    block = -(-n // n_blocks)
    p_in = degree * 0.8 / block
    rows, cols = [], []
    for start in range(0, n, block):
        size = min(block, n - start)
        mask = np.triu(rng.random((size, size)) < p_in, k=1)
        r, c = np.nonzero(mask)
        rows.append(r + start)
        cols.append(c + start)
    n_cross = int(n * degree * 0.2 / 2)
    rows.append(rng.integers(0, n, n_cross))
    cols.append(rng.integers(0, n, n_cross))
    row = np.concatenate(rows)
    col = np.concatenate(cols)
    adjacency = sparse.coo_matrix(
        (np.ones(row.size), (row, col)), shape=(n, n)
    )
    adjacency = ((adjacency + adjacency.T) > 0).astype(float).tocsr()
    adjacency.setdiag(0.0)
    adjacency.eliminate_zeros()
    return adjacency


def _holdout_links(adjacency, fraction, seed):
    """Remove ``fraction`` of links; return (training, pairs, labels).

    Held-out positives are balanced against uniformly sampled non-links
    so the AUC below is a standard balanced link-prediction score.
    """
    rng = np.random.default_rng(seed)
    upper = sparse.triu(adjacency, k=1).tocoo()
    n_links = upper.nnz
    held = np.zeros(n_links, dtype=bool)
    held[
        rng.choice(n_links, size=max(1, int(fraction * n_links)), replace=False)
    ] = True
    training = sparse.coo_matrix(
        (upper.data[~held], (upper.row[~held], upper.col[~held])),
        shape=adjacency.shape,
    )
    training = (training + training.T).tocsr()
    positives = list(zip(upper.row[held].tolist(), upper.col[held].tolist()))
    linked = set(zip(upper.row.tolist(), upper.col.tolist()))
    n = adjacency.shape[0]
    negatives = []
    while len(negatives) < len(positives):
        u, v = sorted(rng.integers(0, n, size=2).tolist())
        if u != v and (u, v) not in linked:
            negatives.append((u, v))
    labels = np.concatenate(
        [np.ones(len(positives)), np.zeros(len(negatives))]
    )
    return training, positives + negatives, labels


def _fit_factored(adjacency, rank, inner, outer):
    """Factored structural fit under tracemalloc; (model, seconds, peak)."""
    model = SlamPredH(
        factored=True,
        svd_rank=rank,
        inner_iterations=inner,
        outer_iterations=outer,
        tolerance=1e-4,
    )
    tracemalloc.start()
    start = time.perf_counter()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", TruncatedSVTWarning)
        model.fit_adjacency(adjacency)
    seconds = time.perf_counter() - start
    _, peak_bytes = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return model, seconds, peak_bytes


def _baseline_seconds(path, scale):
    """Newest committed fast-path wall-clock at this scale, or None."""
    for snap in reversed(load_trajectory(path)["snapshots"]):
        if (
            snap.get("section") == "bench_fast"
            and snap.get("context", {}).get("scale") == scale
        ):
            return float(snap["stats"]["seconds"])
    return None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=int, default=300)
    parser.add_argument("--svd-rank", type=int, default=40, dest="svd_rank")
    parser.add_argument("--inner", type=int, default=8)
    parser.add_argument("--outer", type=int, default=6)
    parser.add_argument("--auc-gap", type=float, default=0.05, dest="auc_gap")
    parser.add_argument(
        "--parity-scale", type=int, default=140, dest="parity_scale"
    )
    parser.add_argument("--parity", type=float, default=1e-6)
    parser.add_argument(
        "--factored-n", type=int, default=5000, dest="factored_n"
    )
    parser.add_argument(
        "--factored-degree", type=int, default=6, dest="factored_degree"
    )
    parser.add_argument(
        "--factored-rank", type=int, default=8, dest="factored_rank"
    )
    parser.add_argument(
        "--factored-drift", type=float, default=1e-3, dest="factored_drift"
    )
    parser.add_argument("--path", default=BENCH_SOLVER_PATH)
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against the committed baseline instead of recording; "
        "exit 1 on a >2x fast-path wall-clock regression",
    )
    args = parser.parse_args(argv)

    baseline = _baseline_seconds(args.path, args.scale) if args.check else None

    # --- speedup leg: rank-capped, warm path vs seed solver -------------
    aligned, split = _problem(args.scale)
    exact_model, exact_seconds, exact_peak = _fit(
        aligned, split, args.svd_rank, args.inner, args.outer, exact=True
    )
    fast_model, fast_seconds, fast_peak = _fit(
        aligned, split, args.svd_rank, args.inner, args.outer, exact=False
    )
    exact_auc = _auc(exact_model, split)
    fast_auc = _auc(fast_model, split)
    speedup = exact_seconds / fast_seconds
    engine = fast_model._svt_engine
    applies = max(1, int(engine.stats["applies"]))
    print(
        f"scale {args.scale} ({aligned.target.n_users} users, "
        f"svd_rank {args.svd_rank}): "
        f"exact {exact_seconds:.2f}s / {exact_peak / 1e6:.0f}MB peak, "
        f"fast {fast_seconds:.2f}s / {fast_peak / 1e6:.0f}MB peak "
        f"({speedup:.2f}x), AUC {exact_auc:.3f} -> {fast_auc:.3f}, "
        f"SVT {engine.stats['seconds'] / applies * 1e3:.1f}ms/apply, "
        f"{int(engine.stats['dense_fallbacks'])} fallbacks"
    )
    if not np.isfinite(fast_auc) or abs(fast_auc - exact_auc) > args.auc_gap:
        print(
            f"FAIL: fast-path AUC {fast_auc:.3f} deviates from the seed "
            f"solver's {exact_auc:.3f} by more than {args.auc_gap}"
        )
        return 1

    # --- parity leg: svd_rank=None, the figure-3 configuration ---------
    p_aligned, p_split = _problem(args.parity_scale)
    p_exact, p_exact_seconds, _ = _fit(
        p_aligned, p_split, None, args.inner, args.outer, exact=True
    )
    p_fast, p_fast_seconds, _ = _fit(
        p_aligned, p_split, None, args.inner, args.outer, exact=False
    )
    max_abs_diff = float(
        np.abs(p_exact.score_matrix - p_fast.score_matrix).max()
    )
    print(
        f"parity at scale {args.parity_scale} (svd_rank None): "
        f"exact {p_exact_seconds:.2f}s, fast {p_fast_seconds:.2f}s, "
        f"max|diff|={max_abs_diff:.2e}"
    )
    if not np.isfinite(max_abs_diff) or max_abs_diff > args.parity:
        print(
            f"FAIL: fast-path parity {max_abs_diff:.3e} exceeds "
            f"{args.parity:.1e}"
        )
        return 1

    # --- factored leg: O(nk) estimate at a scale dense cannot reach ----
    # Quality first, at the parity scale where the exact fit exists.
    p_factored, _, _ = _fit(
        p_aligned, p_split, None, args.inner, args.outer,
        exact=False, factored=True,
    )
    p_exact_auc = _auc(p_exact, p_split)
    p_factored_auc = _auc(p_factored, p_split)
    auc_drift = abs(p_factored_auc - p_exact_auc)
    print(
        f"factored AUC at scale {args.parity_scale}: "
        f"exact {p_exact_auc:.4f}, factored {p_factored_auc:.4f} "
        f"(drift {auc_drift:.2e})"
    )
    if not np.isfinite(p_factored_auc) or auc_drift > args.factored_drift:
        print(
            f"FAIL: factored AUC drifts {auc_drift:.3e} from the exact "
            f"solver at scale {args.parity_scale} (> {args.factored_drift})"
        )
        return 1

    # Memory next, at large n.  The dense cost is extrapolated from this
    # run's own exact fit: alloc is quadratic in users, so scale by
    # (factored_n / n_users)².
    adjacency = _synthetic_adjacency(
        args.factored_n, args.factored_degree, seed=7
    )
    training, heldout_pairs, heldout_labels = _holdout_links(
        adjacency, fraction=0.1, seed=8
    )
    factored_model, factored_seconds, factored_peak = _fit_factored(
        training, args.factored_rank, inner=3, outer=2
    )
    factored_auc = float(
        auc_score(
            factored_model.score_pairs(heldout_pairs), heldout_labels
        )
    )
    dense_extrapolated = exact_peak * (
        args.factored_n / aligned.target.n_users
    ) ** 2
    print(
        f"factored n={args.factored_n} (rank {args.factored_rank}): "
        f"{factored_seconds:.2f}s, {factored_peak / 1e6:.1f}MB peak vs "
        f"{dense_extrapolated / 1e6:.0f}MB dense-extrapolated, "
        f"held-out AUC {factored_auc:.3f}"
    )
    if factored_peak >= FACTORED_ALLOC_FRACTION * dense_extrapolated:
        print(
            f"FAIL: factored peak {factored_peak / 1e6:.1f}MB is not under "
            f"{FACTORED_ALLOC_FRACTION:.0%} of the dense extrapolation "
            f"({dense_extrapolated / 1e6:.0f}MB)"
        )
        return 1
    # Two-scale probe: sub-quadratic growth, not just a low absolute.
    half_adjacency = _synthetic_adjacency(
        args.factored_n // 2, args.factored_degree, seed=7
    )
    _, _, half_peak = _fit_factored(
        half_adjacency, args.factored_rank, inner=3, outer=2
    )
    peak_ratio = factored_peak / max(1, half_peak)
    print(
        f"factored peak ratio n/2 -> n: {half_peak / 1e6:.1f}MB -> "
        f"{factored_peak / 1e6:.1f}MB ({peak_ratio:.2f}x)"
    )
    if peak_ratio >= FACTORED_RATIO_LIMIT:
        print(
            f"FAIL: factored peak grew {peak_ratio:.2f}x for 2x users — "
            f"super-linear in n·k (limit {FACTORED_RATIO_LIMIT}x)"
        )
        return 1

    if args.check:
        if baseline is None:
            print(
                "FAIL: no committed bench_fast baseline at this scale in "
                f"{args.path}; run without --check first and commit the file"
            )
            return 1
        if fast_seconds > REGRESSION_FACTOR * baseline:
            print(
                f"FAIL: fast path took {fast_seconds:.2f}s vs committed "
                f"baseline {baseline:.2f}s (> {REGRESSION_FACTOR:.0f}x)"
            )
            return 1
        print(
            f"OK: fast path {fast_seconds:.2f}s vs baseline {baseline:.2f}s "
            f"(<= {REGRESSION_FACTOR:.0f}x)"
        )
        return 0

    context = {
        "scale": args.scale,
        "n_users": int(aligned.target.n_users),
        "svd_rank": args.svd_rank,
        "inner_iterations": args.inner,
        "outer_iterations": args.outer,
    }
    record_snapshot(
        "bench_exact",
        {
            "seconds": exact_seconds,
            "alloc_peak_bytes": exact_peak,
            "auc": exact_auc,
        },
        context=context,
        path=args.path,
    )
    record_snapshot(
        "bench_fast",
        {
            "seconds": fast_seconds,
            "alloc_peak_bytes": fast_peak,
            "speedup": speedup,
            "auc": fast_auc,
            "svt_seconds": engine.stats["seconds"],
            "svt_applies": engine.stats["applies"],
            "svt_seconds_per_apply": engine.stats["seconds"] / applies,
            "svt_dense_fallbacks": engine.stats["dense_fallbacks"],
            "svt_lossy_truncations": engine.stats["lossy_truncations"],
            "svt_rank_grows": engine.stats["rank_grows"],
            "svt_rank_shrinks": engine.stats["rank_shrinks"],
            "final_rank": engine.rank,
        },
        context=context,
        path=args.path,
    )
    record_snapshot(
        "bench_parity",
        {
            "max_abs_diff": max_abs_diff,
            "exact_seconds": p_exact_seconds,
            "fast_seconds": p_fast_seconds,
        },
        context={"scale": args.parity_scale, "svd_rank": None},
        path=args.path,
    )
    record_snapshot(
        "bench_factored",
        {
            "seconds": factored_seconds,
            "alloc_peak_bytes": factored_peak,
            "alloc_peak_half_n_bytes": half_peak,
            "peak_ratio_half_to_full": peak_ratio,
            "dense_extrapolated_bytes": dense_extrapolated,
            "auc": factored_auc,
            "auc_drift_vs_exact": auc_drift,
        },
        context={
            "n_users": args.factored_n,
            "degree": args.factored_degree,
            "svd_rank": args.factored_rank,
            "inner_iterations": 3,
            "outer_iterations": 2,
            "holdout_fraction": 0.1,
            "drift_scale": args.parity_scale,
        },
        path=args.path,
    )
    print(
        "recorded bench_exact/bench_fast/bench_parity/bench_factored to "
        f"{args.path}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
