#!/usr/bin/env python
"""Solver hot-path smoke bench: exact vs fast fit at compact scale.

Two legs, matching the two guarantees the hot path makes:

* **Speedup** (``--scale``, ``--svd-rank``): fits the same rank-capped
  transfer task twice — ``exact=True`` (the seed solver: cold-start
  Lanczos SVT, sequential smooth terms, allocating inner loop) and the
  default hot path (warm-started rank-capped SVT, fused smooth
  objective, workspace-backed loop) — under identical convergence
  criteria.  Both paths compute the same best-effort rank-capped
  operator, so the gate here is predictive quality (AUC must agree to
  ``--auc-gap``), not bitwise parity.
* **Parity** (``--parity-scale``): fits with ``svd_rank=None`` — the
  figure-3 configuration's numerics, where the engine is exact — and
  gates the two score matrices to ``--parity`` (default 1e-6) max
  absolute difference.

Also measures tracemalloc peaks (the allocation-free claim as a number)
and appends everything as snapshots to ``BENCH_solver.json``.  With
``--check`` the fast-path wall-clock is compared against the newest
committed ``bench_fast`` snapshot at the same scale and the run **fails
(exit 1) on a >2x regression** — the CI smoke gate.

Run from the repo root::

    PYTHONPATH=src python tools/solver_bench.py            # record
    PYTHONPATH=src python tools/solver_bench.py --check    # CI gate
"""

from __future__ import annotations

import argparse
import sys
import time
import tracemalloc
import warnings

import numpy as np

sys.path.insert(0, "benchmarks")

from trajectory import BENCH_SOLVER_PATH, load_trajectory, record_snapshot  # noqa: E402

from repro.evaluation.metrics import auc_score  # noqa: E402
from repro.evaluation.splits import k_fold_link_splits  # noqa: E402
from repro.exceptions import TruncatedSVTWarning  # noqa: E402
from repro.models.base import TransferTask  # noqa: E402
from repro.models.slampred import SlamPredT  # noqa: E402
from repro.networks.social import SocialGraph  # noqa: E402
from repro.synth.generator import generate_aligned_pair  # noqa: E402

REGRESSION_FACTOR = 2.0


def _problem(scale):
    aligned = generate_aligned_pair(scale=scale, random_state=1)
    graph = SocialGraph.from_network(aligned.target)
    split = k_fold_link_splits(graph, n_folds=5, random_state=1)[0]
    return aligned, split


def _fit(aligned, split, svd_rank, inner, outer, exact):
    task = TransferTask(
        target=aligned.target,
        training_graph=split.training_graph,
        random_state=np.random.default_rng(1),
    )
    model = SlamPredT(
        svd_rank=svd_rank,
        inner_iterations=inner,
        outer_iterations=outer,
        exact=exact,
    )
    tracemalloc.start()
    start = time.perf_counter()
    with warnings.catch_warnings():
        # Both paths warn on every lossy rank-capped application, by
        # design; a bench run would otherwise drown in them.
        warnings.simplefilter("ignore", TruncatedSVTWarning)
        model.fit(task)
    seconds = time.perf_counter() - start
    _, peak_bytes = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return model, seconds, peak_bytes


def _auc(model, split):
    return float(
        auc_score(model.score_pairs(split.test_pairs), split.test_labels)
    )


def _baseline_seconds(path, scale):
    """Newest committed fast-path wall-clock at this scale, or None."""
    for snap in reversed(load_trajectory(path)["snapshots"]):
        if (
            snap.get("section") == "bench_fast"
            and snap.get("context", {}).get("scale") == scale
        ):
            return float(snap["stats"]["seconds"])
    return None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=int, default=300)
    parser.add_argument("--svd-rank", type=int, default=40, dest="svd_rank")
    parser.add_argument("--inner", type=int, default=8)
    parser.add_argument("--outer", type=int, default=6)
    parser.add_argument("--auc-gap", type=float, default=0.05, dest="auc_gap")
    parser.add_argument(
        "--parity-scale", type=int, default=140, dest="parity_scale"
    )
    parser.add_argument("--parity", type=float, default=1e-6)
    parser.add_argument("--path", default=BENCH_SOLVER_PATH)
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against the committed baseline instead of recording; "
        "exit 1 on a >2x fast-path wall-clock regression",
    )
    args = parser.parse_args(argv)

    baseline = _baseline_seconds(args.path, args.scale) if args.check else None

    # --- speedup leg: rank-capped, warm path vs seed solver -------------
    aligned, split = _problem(args.scale)
    exact_model, exact_seconds, exact_peak = _fit(
        aligned, split, args.svd_rank, args.inner, args.outer, exact=True
    )
    fast_model, fast_seconds, fast_peak = _fit(
        aligned, split, args.svd_rank, args.inner, args.outer, exact=False
    )
    exact_auc = _auc(exact_model, split)
    fast_auc = _auc(fast_model, split)
    speedup = exact_seconds / fast_seconds
    engine = fast_model._svt_engine
    applies = max(1, int(engine.stats["applies"]))
    print(
        f"scale {args.scale} ({aligned.target.n_users} users, "
        f"svd_rank {args.svd_rank}): "
        f"exact {exact_seconds:.2f}s / {exact_peak / 1e6:.0f}MB peak, "
        f"fast {fast_seconds:.2f}s / {fast_peak / 1e6:.0f}MB peak "
        f"({speedup:.2f}x), AUC {exact_auc:.3f} -> {fast_auc:.3f}, "
        f"SVT {engine.stats['seconds'] / applies * 1e3:.1f}ms/apply, "
        f"{int(engine.stats['dense_fallbacks'])} fallbacks"
    )
    if not np.isfinite(fast_auc) or abs(fast_auc - exact_auc) > args.auc_gap:
        print(
            f"FAIL: fast-path AUC {fast_auc:.3f} deviates from the seed "
            f"solver's {exact_auc:.3f} by more than {args.auc_gap}"
        )
        return 1

    # --- parity leg: svd_rank=None, the figure-3 configuration ---------
    p_aligned, p_split = _problem(args.parity_scale)
    p_exact, p_exact_seconds, _ = _fit(
        p_aligned, p_split, None, args.inner, args.outer, exact=True
    )
    p_fast, p_fast_seconds, _ = _fit(
        p_aligned, p_split, None, args.inner, args.outer, exact=False
    )
    max_abs_diff = float(
        np.abs(p_exact.score_matrix - p_fast.score_matrix).max()
    )
    print(
        f"parity at scale {args.parity_scale} (svd_rank None): "
        f"exact {p_exact_seconds:.2f}s, fast {p_fast_seconds:.2f}s, "
        f"max|diff|={max_abs_diff:.2e}"
    )
    if not np.isfinite(max_abs_diff) or max_abs_diff > args.parity:
        print(
            f"FAIL: fast-path parity {max_abs_diff:.3e} exceeds "
            f"{args.parity:.1e}"
        )
        return 1

    if args.check:
        if baseline is None:
            print(
                "FAIL: no committed bench_fast baseline at this scale in "
                f"{args.path}; run without --check first and commit the file"
            )
            return 1
        if fast_seconds > REGRESSION_FACTOR * baseline:
            print(
                f"FAIL: fast path took {fast_seconds:.2f}s vs committed "
                f"baseline {baseline:.2f}s (> {REGRESSION_FACTOR:.0f}x)"
            )
            return 1
        print(
            f"OK: fast path {fast_seconds:.2f}s vs baseline {baseline:.2f}s "
            f"(<= {REGRESSION_FACTOR:.0f}x)"
        )
        return 0

    context = {
        "scale": args.scale,
        "n_users": int(aligned.target.n_users),
        "svd_rank": args.svd_rank,
        "inner_iterations": args.inner,
        "outer_iterations": args.outer,
    }
    record_snapshot(
        "bench_exact",
        {
            "seconds": exact_seconds,
            "alloc_peak_bytes": exact_peak,
            "auc": exact_auc,
        },
        context=context,
        path=args.path,
    )
    record_snapshot(
        "bench_fast",
        {
            "seconds": fast_seconds,
            "alloc_peak_bytes": fast_peak,
            "speedup": speedup,
            "auc": fast_auc,
            "svt_seconds": engine.stats["seconds"],
            "svt_applies": engine.stats["applies"],
            "svt_seconds_per_apply": engine.stats["seconds"] / applies,
            "svt_dense_fallbacks": engine.stats["dense_fallbacks"],
            "svt_lossy_truncations": engine.stats["lossy_truncations"],
            "svt_rank_grows": engine.stats["rank_grows"],
            "svt_rank_shrinks": engine.stats["rank_shrinks"],
            "final_rank": engine.rank,
        },
        context=context,
        path=args.path,
    )
    record_snapshot(
        "bench_parity",
        {
            "max_abs_diff": max_abs_diff,
            "exact_seconds": p_exact_seconds,
            "fast_seconds": p_fast_seconds,
        },
        context={"scale": args.parity_scale, "svd_rank": None},
        path=args.path,
    )
    print(f"recorded bench_exact/bench_fast/bench_parity to {args.path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
