#!/usr/bin/env python
"""Solver hot-path smoke bench: exact vs fast fit at compact scale.

Two legs, matching the two guarantees the hot path makes:

* **Speedup** (``--scale``, ``--svd-rank``): fits the same rank-capped
  transfer task twice — ``exact=True`` (the seed solver: cold-start
  Lanczos SVT, sequential smooth terms, allocating inner loop) and the
  default hot path (warm-started rank-capped SVT, fused smooth
  objective, workspace-backed loop) — under identical convergence
  criteria.  Both paths compute the same best-effort rank-capped
  operator, so the gate here is predictive quality (AUC must agree to
  ``--auc-gap``), not bitwise parity.
* **Parity** (``--parity-scale``): fits with ``svd_rank=None`` — the
  figure-3 configuration's numerics, where the engine is exact — and
  gates the two score matrices to ``--parity`` (default 1e-6) max
  absolute difference.
* **Factored** (``--factored-n``): fits the factored O(nk) estimate on a
  synthetic sparse graph at a scale the dense path cannot reach (default
  n = 5000, where one dense iterate alone is 200 MB), scores a held-out
  link sample, and gates three claims: peak traced allocation under 25%
  of the dense cost extrapolated quadratically from this run's exact
  fit; a two-scale probe showing the peak grows sub-quadratically in n;
  and factored-vs-exact AUC drift at ``--parity-scale`` within
  ``--factored-drift`` (default 1e-3).
* **Sharded** (same block-model graph): fits
  :class:`~repro.sharding.model.ShardedSlamPred` at shards ∈ {1, 2, 4}
  on the n = 5000 training graph and gates four claims: shards=1
  reproduces the unsharded factored trajectory to ``--sharded-parity``
  (default 1e-8, and in practice bit-for-bit); merged held-out AUC at
  every shard count drifts at most ``--sharded-drift`` (default 1e-2)
  from the unsharded fit; solve time decreases monotonically from
  shards=1 to shards=4 (per-shard rank budgets shrink with shard size);
  and under ``--check`` the shards=1 wall-clock stays within 2x of the
  newest committed ``bench_sharded`` snapshot.  A recording run also
  publishes the shards=4 model to a throwaway sharded store and
  snapshots scatter-gather ``batch_top_k`` QPS into
  ``BENCH_serving.json``.

Also measures tracemalloc peaks (the allocation-free claim as a number)
and appends everything as snapshots to ``BENCH_solver.json``.  With
``--check`` the fast-path wall-clock is compared against the newest
committed ``bench_fast`` snapshot at the same scale and the run **fails
(exit 1) on a >2x regression** — the CI smoke gate.

Run from the repo root::

    PYTHONPATH=src python tools/solver_bench.py            # record
    PYTHONPATH=src python tools/solver_bench.py --check    # CI gate
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time
import tracemalloc
import warnings

import numpy as np
from scipy import sparse

sys.path.insert(0, "benchmarks")

from trajectory import BENCH_SOLVER_PATH, load_trajectory, record_snapshot  # noqa: E402

from repro.evaluation.metrics import auc_score  # noqa: E402
from repro.evaluation.splits import k_fold_link_splits  # noqa: E402
from repro.exceptions import TruncatedSVTWarning  # noqa: E402
from repro.models.base import TransferTask  # noqa: E402
from repro.models.slampred import SlamPredH, SlamPredT  # noqa: E402
from repro.networks.social import SocialGraph  # noqa: E402
from repro.sharding import (  # noqa: E402
    ShardedArtifactStore,
    ShardedLinkPredictionService,
    ShardedSlamPred,
)
from repro.synth.generator import generate_aligned_pair  # noqa: E402

REGRESSION_FACTOR = 2.0
# The tentpole's acceptance bar: the factored fit's peak allocation must
# stay under this fraction of the dense solver's quadratic extrapolation.
FACTORED_ALLOC_FRACTION = 0.25
# Doubling n must not quadruple the peak; linear in n·k would be 2x.
FACTORED_RATIO_LIMIT = 3.0
# The sharded sweep: single-shard parity, then the scaling claim.
SHARD_COUNTS = (1, 2, 4)
# Per-step timer jitter allowance for the monotonic solve-time gate —
# the endpoints (shards=4 strictly under shards=1) stay strict.
SHARDED_JITTER = 1.10


def _problem(scale):
    aligned = generate_aligned_pair(scale=scale, random_state=1)
    graph = SocialGraph.from_network(aligned.target)
    split = k_fold_link_splits(graph, n_folds=5, random_state=1)[0]
    return aligned, split


def _fit(aligned, split, svd_rank, inner, outer, exact, factored=False):
    task = TransferTask(
        target=aligned.target,
        training_graph=split.training_graph,
        random_state=np.random.default_rng(1),
    )
    model = SlamPredT(
        svd_rank=svd_rank,
        inner_iterations=inner,
        outer_iterations=outer,
        exact=exact,
        factored=factored,
    )
    tracemalloc.start()
    start = time.perf_counter()
    with warnings.catch_warnings():
        # Both paths warn on every lossy rank-capped application, by
        # design; a bench run would otherwise drown in them.
        warnings.simplefilter("ignore", TruncatedSVTWarning)
        model.fit(task)
    seconds = time.perf_counter() - start
    _, peak_bytes = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return model, seconds, peak_bytes


def _auc(model, split):
    return float(
        auc_score(model.score_pairs(split.test_pairs), split.test_labels)
    )


def _synthetic_adjacency(n, degree, seed, n_blocks=8):
    """A sparse stochastic block model with expected degree ``degree``.

    Built block by block (never a dense n×n mask) so generation itself
    stays O(nk).  Most links live inside one of ``n_blocks`` communities,
    which a rank-``n_blocks`` estimate can recover — held-out links are
    genuinely predictable, unlike in an Erdős–Rényi graph where any AUC
    is chance.
    """
    rng = np.random.default_rng(seed)
    block = -(-n // n_blocks)
    p_in = degree * 0.8 / block
    rows, cols = [], []
    for start in range(0, n, block):
        size = min(block, n - start)
        mask = np.triu(rng.random((size, size)) < p_in, k=1)
        r, c = np.nonzero(mask)
        rows.append(r + start)
        cols.append(c + start)
    n_cross = int(n * degree * 0.2 / 2)
    rows.append(rng.integers(0, n, n_cross))
    cols.append(rng.integers(0, n, n_cross))
    row = np.concatenate(rows)
    col = np.concatenate(cols)
    adjacency = sparse.coo_matrix(
        (np.ones(row.size), (row, col)), shape=(n, n)
    )
    adjacency = ((adjacency + adjacency.T) > 0).astype(float).tocsr()
    adjacency.setdiag(0.0)
    adjacency.eliminate_zeros()
    return adjacency


def _holdout_links(adjacency, fraction, seed):
    """Remove ``fraction`` of links; return (training, pairs, labels).

    Held-out positives are balanced against uniformly sampled non-links
    so the AUC below is a standard balanced link-prediction score.
    """
    rng = np.random.default_rng(seed)
    upper = sparse.triu(adjacency, k=1).tocoo()
    n_links = upper.nnz
    held = np.zeros(n_links, dtype=bool)
    held[
        rng.choice(n_links, size=max(1, int(fraction * n_links)), replace=False)
    ] = True
    training = sparse.coo_matrix(
        (upper.data[~held], (upper.row[~held], upper.col[~held])),
        shape=adjacency.shape,
    )
    training = (training + training.T).tocsr()
    positives = list(zip(upper.row[held].tolist(), upper.col[held].tolist()))
    linked = set(zip(upper.row.tolist(), upper.col.tolist()))
    n = adjacency.shape[0]
    negatives = []
    while len(negatives) < len(positives):
        u, v = sorted(rng.integers(0, n, size=2).tolist())
        if u != v and (u, v) not in linked:
            negatives.append((u, v))
    labels = np.concatenate(
        [np.ones(len(positives)), np.zeros(len(negatives))]
    )
    return training, positives + negatives, labels


def _fit_factored(adjacency, rank, inner, outer, svt_options=None):
    """Factored structural fit under tracemalloc; (model, seconds, peak)."""
    model = SlamPredH(
        factored=True,
        svd_rank=rank,
        inner_iterations=inner,
        outer_iterations=outer,
        tolerance=1e-4,
        svt_options=svt_options,
    )
    tracemalloc.start()
    start = time.perf_counter()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", TruncatedSVTWarning)
        model.fit_adjacency(adjacency)
    seconds = time.perf_counter() - start
    _, peak_bytes = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return model, seconds, peak_bytes


def _baseline_seconds(path, scale):
    """Newest committed fast-path wall-clock at this scale, or None."""
    for snap in reversed(load_trajectory(path)["snapshots"]):
        if (
            snap.get("section") == "bench_fast"
            and snap.get("context", {}).get("scale") == scale
        ):
            return float(snap["stats"]["seconds"])
    return None


def _sharded_baseline_seconds(path, n_users):
    """Newest committed shards=1 wall-clock at this n, or None."""
    for snap in reversed(load_trajectory(path)["snapshots"]):
        if (
            snap.get("section") == "bench_sharded"
            and snap.get("context", {}).get("n_users") == n_users
        ):
            return float(snap["stats"]["seconds_shards_1"])
    return None


def _estimate_gap(first, second):
    """Max absolute difference between two factored estimates' factors.

    Compares the raw u/σ/vᵀ/residual arrays rather than densifying —
    at n = 5000 one dense reconstruction is 200 MB, and the parity claim
    is about the *trajectory* (same arrays out of the same solver), not
    merely the same product.  Shape mismatch means the trajectories
    diverged structurally and reports as ``inf``.
    """
    if first.u.shape != second.u.shape or first.s.shape != second.s.shape:
        return float("inf")
    gaps = [
        float(np.abs(first.u - second.u).max()),
        float(np.abs(first.s - second.s).max()),
        float(np.abs(first.vt - second.vt).max()),
    ]
    residuals = [r for r in (first.residual, second.residual) if r is not None]
    if len(residuals) == 2:
        diff = residuals[0] - residuals[1]
        gaps.append(float(abs(diff).max()) if diff.nnz else 0.0)
    elif len(residuals) == 1:
        gaps.append(
            float(abs(residuals[0]).max()) if residuals[0].nnz else 0.0
        )
    return max(gaps)


def _fit_sharded(training, labels, n_shards, rank):
    """Best-of-2 sharded fit; returns (model, seconds).

    Two runs absorb scheduler jitter in the monotonic solve-time gate —
    the fits themselves are deterministic, so the faster run is the same
    model with less measurement noise.
    """
    best_model, best_seconds = None, None
    for _ in range(2):
        model = ShardedSlamPred(
            n_shards=n_shards,
            svd_rank=rank,
            inner_iterations=3,
            outer_iterations=2,
            tolerance=1e-4,
        )
        start = time.perf_counter()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", TruncatedSVTWarning)
            model.fit(training, labels=labels)
        seconds = time.perf_counter() - start
        if best_seconds is None or seconds < best_seconds:
            best_model, best_seconds = model, seconds
    return best_model, best_seconds


def _scatter_gather_qps(model, training, k=10, n_queries=256):
    """Publish to a throwaway store and time scatter-gather batch_top_k.

    Returns (qps_cold, qps_warm): one pass against an empty ranking
    cache and one fully cached repeat of the same users.
    """
    rng = np.random.default_rng(9)
    users = rng.choice(
        training.shape[0], size=n_queries, replace=False
    ).tolist()
    with tempfile.TemporaryDirectory() as tmp:
        store = ShardedArtifactStore(os.path.join(tmp, "store"))
        store.publish(model, graph=training)
        service = ShardedLinkPredictionService(store)
        start = time.perf_counter()
        service.batch_top_k(users, k=k)
        cold = time.perf_counter() - start
        start = time.perf_counter()
        service.batch_top_k(users, k=k)
        warm = time.perf_counter() - start
    return n_queries / cold, n_queries / warm


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=int, default=300)
    parser.add_argument("--svd-rank", type=int, default=40, dest="svd_rank")
    parser.add_argument("--inner", type=int, default=8)
    parser.add_argument("--outer", type=int, default=6)
    parser.add_argument("--auc-gap", type=float, default=0.05, dest="auc_gap")
    parser.add_argument(
        "--parity-scale", type=int, default=140, dest="parity_scale"
    )
    parser.add_argument("--parity", type=float, default=1e-6)
    parser.add_argument(
        "--factored-n", type=int, default=5000, dest="factored_n"
    )
    parser.add_argument(
        "--factored-degree", type=int, default=6, dest="factored_degree"
    )
    parser.add_argument(
        "--factored-rank", type=int, default=8, dest="factored_rank"
    )
    parser.add_argument(
        "--factored-drift", type=float, default=1e-3, dest="factored_drift"
    )
    parser.add_argument(
        "--sharded-drift", type=float, default=1e-2, dest="sharded_drift"
    )
    parser.add_argument(
        "--sharded-parity", type=float, default=1e-8, dest="sharded_parity"
    )
    parser.add_argument("--path", default=BENCH_SOLVER_PATH)
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against the committed baseline instead of recording; "
        "exit 1 on a >2x fast-path wall-clock regression",
    )
    args = parser.parse_args(argv)

    baseline = _baseline_seconds(args.path, args.scale) if args.check else None

    # --- speedup leg: rank-capped, warm path vs seed solver -------------
    aligned, split = _problem(args.scale)
    exact_model, exact_seconds, exact_peak = _fit(
        aligned, split, args.svd_rank, args.inner, args.outer, exact=True
    )
    fast_model, fast_seconds, fast_peak = _fit(
        aligned, split, args.svd_rank, args.inner, args.outer, exact=False
    )
    exact_auc = _auc(exact_model, split)
    fast_auc = _auc(fast_model, split)
    speedup = exact_seconds / fast_seconds
    engine = fast_model._svt_engine
    applies = max(1, int(engine.stats["applies"]))
    print(
        f"scale {args.scale} ({aligned.target.n_users} users, "
        f"svd_rank {args.svd_rank}): "
        f"exact {exact_seconds:.2f}s / {exact_peak / 1e6:.0f}MB peak, "
        f"fast {fast_seconds:.2f}s / {fast_peak / 1e6:.0f}MB peak "
        f"({speedup:.2f}x), AUC {exact_auc:.3f} -> {fast_auc:.3f}, "
        f"SVT {engine.stats['seconds'] / applies * 1e3:.1f}ms/apply, "
        f"{int(engine.stats['dense_fallbacks'])} fallbacks"
    )
    if not np.isfinite(fast_auc) or abs(fast_auc - exact_auc) > args.auc_gap:
        print(
            f"FAIL: fast-path AUC {fast_auc:.3f} deviates from the seed "
            f"solver's {exact_auc:.3f} by more than {args.auc_gap}"
        )
        return 1

    # --- parity leg: svd_rank=None, the figure-3 configuration ---------
    p_aligned, p_split = _problem(args.parity_scale)
    p_exact, p_exact_seconds, _ = _fit(
        p_aligned, p_split, None, args.inner, args.outer, exact=True
    )
    p_fast, p_fast_seconds, _ = _fit(
        p_aligned, p_split, None, args.inner, args.outer, exact=False
    )
    max_abs_diff = float(
        np.abs(p_exact.score_matrix - p_fast.score_matrix).max()
    )
    print(
        f"parity at scale {args.parity_scale} (svd_rank None): "
        f"exact {p_exact_seconds:.2f}s, fast {p_fast_seconds:.2f}s, "
        f"max|diff|={max_abs_diff:.2e}"
    )
    if not np.isfinite(max_abs_diff) or max_abs_diff > args.parity:
        print(
            f"FAIL: fast-path parity {max_abs_diff:.3e} exceeds "
            f"{args.parity:.1e}"
        )
        return 1

    # --- factored leg: O(nk) estimate at a scale dense cannot reach ----
    # Quality first, at the parity scale where the exact fit exists.
    p_factored, _, _ = _fit(
        p_aligned, p_split, None, args.inner, args.outer,
        exact=False, factored=True,
    )
    p_exact_auc = _auc(p_exact, p_split)
    p_factored_auc = _auc(p_factored, p_split)
    auc_drift = abs(p_factored_auc - p_exact_auc)
    print(
        f"factored AUC at scale {args.parity_scale}: "
        f"exact {p_exact_auc:.4f}, factored {p_factored_auc:.4f} "
        f"(drift {auc_drift:.2e})"
    )
    if not np.isfinite(p_factored_auc) or auc_drift > args.factored_drift:
        print(
            f"FAIL: factored AUC drifts {auc_drift:.3e} from the exact "
            f"solver at scale {args.parity_scale} (> {args.factored_drift})"
        )
        return 1

    # Memory next, at large n.  The dense cost is extrapolated from this
    # run's own exact fit: alloc is quadratic in users, so scale by
    # (factored_n / n_users)².
    adjacency = _synthetic_adjacency(
        args.factored_n, args.factored_degree, seed=7
    )
    training, heldout_pairs, heldout_labels = _holdout_links(
        adjacency, fraction=0.1, seed=8
    )
    factored_model, factored_seconds, factored_peak = _fit_factored(
        training, args.factored_rank, inner=3, outer=2
    )
    factored_auc = float(
        auc_score(
            factored_model.score_pairs(heldout_pairs), heldout_labels
        )
    )
    dense_extrapolated = exact_peak * (
        args.factored_n / aligned.target.n_users
    ) ** 2
    print(
        f"factored n={args.factored_n} (rank {args.factored_rank}): "
        f"{factored_seconds:.2f}s, {factored_peak / 1e6:.1f}MB peak vs "
        f"{dense_extrapolated / 1e6:.0f}MB dense-extrapolated, "
        f"held-out AUC {factored_auc:.3f}"
    )
    if factored_peak >= FACTORED_ALLOC_FRACTION * dense_extrapolated:
        print(
            f"FAIL: factored peak {factored_peak / 1e6:.1f}MB is not under "
            f"{FACTORED_ALLOC_FRACTION:.0%} of the dense extrapolation "
            f"({dense_extrapolated / 1e6:.0f}MB)"
        )
        return 1
    # Two-scale probe: sub-quadratic growth, not just a low absolute.
    half_adjacency = _synthetic_adjacency(
        args.factored_n // 2, args.factored_degree, seed=7
    )
    _, _, half_peak = _fit_factored(
        half_adjacency, args.factored_rank, inner=3, outer=2
    )
    peak_ratio = factored_peak / max(1, half_peak)
    print(
        f"factored peak ratio n/2 -> n: {half_peak / 1e6:.1f}MB -> "
        f"{factored_peak / 1e6:.1f}MB ({peak_ratio:.2f}x)"
    )
    if peak_ratio >= FACTORED_RATIO_LIMIT:
        print(
            f"FAIL: factored peak grew {peak_ratio:.2f}x for 2x users — "
            f"super-linear in n·k (limit {FACTORED_RATIO_LIMIT}x)"
        )
        return 1

    # --- sharded leg: community shards on the same block-model graph ---
    # The generator lays its 8 communities out in contiguous blocks, so
    # the planted labels are simply user // block_size.
    block_size = -(-args.factored_n // 8)
    planted_labels = np.arange(args.factored_n) // block_size
    sharded_models, sharded_seconds, sharded_auc = {}, {}, {}
    for n_shards in SHARD_COUNTS:
        model, seconds = _fit_sharded(
            training, planted_labels, n_shards, args.factored_rank
        )
        sharded_models[n_shards] = model
        sharded_seconds[n_shards] = seconds
        sharded_auc[n_shards] = float(
            auc_score(model.score_pairs(heldout_pairs), heldout_labels)
        )
    # The unsharded comparator under the shard solver's exact options
    # (derived base seed, dense recovery disabled) — what shards=1 must
    # reproduce bit for bit.
    reference, _, _ = _fit_factored(
        training,
        args.factored_rank,
        inner=3,
        outer=2,
        svt_options={
            "seed": sharded_models[1].seed,
            "dense_fallback_cutoff": 0,
        },
    )
    reference_auc = float(
        auc_score(reference.score_pairs(heldout_pairs), heldout_labels)
    )
    sharded_parity = _estimate_gap(
        sharded_models[1].estimates[0], reference.factored_estimate
    )
    print(
        f"sharded n={args.factored_n}: "
        + ", ".join(
            f"shards={s} {sharded_seconds[s]:.2f}s "
            f"AUC {sharded_auc[s]:.3f}"
            for s in SHARD_COUNTS
        )
        + f"; unsharded AUC {reference_auc:.3f}, "
        f"shards=1 parity max|diff|={sharded_parity:.2e}"
    )
    if not sharded_parity <= args.sharded_parity:
        print(
            f"FAIL: shards=1 diverges from the unsharded factored fit by "
            f"{sharded_parity:.3e} (> {args.sharded_parity:.1e})"
        )
        return 1
    for n_shards in SHARD_COUNTS:
        # One-sided: sharding must not *lose* AUC.  Gains are expected —
        # shards spend their whole rank budget on one community's
        # spectrum instead of splitting it across all eight.
        drift = reference_auc - sharded_auc[n_shards]
        if not np.isfinite(sharded_auc[n_shards]) or (
            drift > args.sharded_drift
        ):
            print(
                f"FAIL: shards={n_shards} merged AUC "
                f"{sharded_auc[n_shards]:.4f} degrades {drift:.3e} below "
                f"the unsharded {reference_auc:.4f} (> {args.sharded_drift})"
            )
            return 1
    timeline = [sharded_seconds[s] for s in SHARD_COUNTS]
    steps_ok = all(
        later <= earlier * SHARDED_JITTER
        for earlier, later in zip(timeline, timeline[1:])
    )
    if not steps_ok or timeline[-1] >= timeline[0]:
        print(
            "FAIL: solve time is not monotonically decreasing across "
            + " -> ".join(
                f"shards={s}:{sharded_seconds[s]:.2f}s" for s in SHARD_COUNTS
            )
        )
        return 1

    if args.check:
        sharded_baseline = _sharded_baseline_seconds(
            args.path, args.factored_n
        )
        if sharded_baseline is None:
            print(
                "FAIL: no committed bench_sharded baseline at this n in "
                f"{args.path}; run without --check first and commit the file"
            )
            return 1
        if sharded_seconds[1] > REGRESSION_FACTOR * sharded_baseline:
            print(
                f"FAIL: shards=1 took {sharded_seconds[1]:.2f}s vs committed "
                f"baseline {sharded_baseline:.2f}s "
                f"(> {REGRESSION_FACTOR:.0f}x)"
            )
            return 1
        print(
            f"OK: shards=1 {sharded_seconds[1]:.2f}s vs baseline "
            f"{sharded_baseline:.2f}s (<= {REGRESSION_FACTOR:.0f}x)"
        )
        if baseline is None:
            print(
                "FAIL: no committed bench_fast baseline at this scale in "
                f"{args.path}; run without --check first and commit the file"
            )
            return 1
        if fast_seconds > REGRESSION_FACTOR * baseline:
            print(
                f"FAIL: fast path took {fast_seconds:.2f}s vs committed "
                f"baseline {baseline:.2f}s (> {REGRESSION_FACTOR:.0f}x)"
            )
            return 1
        print(
            f"OK: fast path {fast_seconds:.2f}s vs baseline {baseline:.2f}s "
            f"(<= {REGRESSION_FACTOR:.0f}x)"
        )
        return 0

    context = {
        "scale": args.scale,
        "n_users": int(aligned.target.n_users),
        "svd_rank": args.svd_rank,
        "inner_iterations": args.inner,
        "outer_iterations": args.outer,
    }
    record_snapshot(
        "bench_exact",
        {
            "seconds": exact_seconds,
            "alloc_peak_bytes": exact_peak,
            "auc": exact_auc,
        },
        context=context,
        path=args.path,
    )
    record_snapshot(
        "bench_fast",
        {
            "seconds": fast_seconds,
            "alloc_peak_bytes": fast_peak,
            "speedup": speedup,
            "auc": fast_auc,
            "svt_seconds": engine.stats["seconds"],
            "svt_applies": engine.stats["applies"],
            "svt_seconds_per_apply": engine.stats["seconds"] / applies,
            "svt_dense_fallbacks": engine.stats["dense_fallbacks"],
            "svt_lossy_truncations": engine.stats["lossy_truncations"],
            "svt_rank_grows": engine.stats["rank_grows"],
            "svt_rank_shrinks": engine.stats["rank_shrinks"],
            "final_rank": engine.rank,
        },
        context=context,
        path=args.path,
    )
    record_snapshot(
        "bench_parity",
        {
            "max_abs_diff": max_abs_diff,
            "exact_seconds": p_exact_seconds,
            "fast_seconds": p_fast_seconds,
        },
        context={"scale": args.parity_scale, "svd_rank": None},
        path=args.path,
    )
    record_snapshot(
        "bench_factored",
        {
            "seconds": factored_seconds,
            "alloc_peak_bytes": factored_peak,
            "alloc_peak_half_n_bytes": half_peak,
            "peak_ratio_half_to_full": peak_ratio,
            "dense_extrapolated_bytes": dense_extrapolated,
            "auc": factored_auc,
            "auc_drift_vs_exact": auc_drift,
        },
        context={
            "n_users": args.factored_n,
            "degree": args.factored_degree,
            "svd_rank": args.factored_rank,
            "inner_iterations": 3,
            "outer_iterations": 2,
            "holdout_fraction": 0.1,
            "drift_scale": args.parity_scale,
        },
        path=args.path,
    )
    sharded_stats = {"parity_max_abs_diff": sharded_parity}
    for n_shards in SHARD_COUNTS:
        sharded_stats[f"seconds_shards_{n_shards}"] = sharded_seconds[
            n_shards
        ]
        sharded_stats[f"auc_shards_{n_shards}"] = sharded_auc[n_shards]
    sharded_stats["auc_unsharded"] = reference_auc
    sharded_stats["speedup_max_shards"] = (
        sharded_seconds[SHARD_COUNTS[0]] / sharded_seconds[SHARD_COUNTS[-1]]
    )
    record_snapshot(
        "bench_sharded",
        sharded_stats,
        context={
            "n_users": args.factored_n,
            "degree": args.factored_degree,
            "svd_rank": args.factored_rank,
            "inner_iterations": 3,
            "outer_iterations": 2,
            "shard_counts": list(SHARD_COUNTS),
        },
        path=args.path,
    )
    qps_cold, qps_warm = _scatter_gather_qps(
        sharded_models[SHARD_COUNTS[-1]], training
    )
    print(
        f"scatter-gather shards={SHARD_COUNTS[-1]}: "
        f"{qps_cold:.0f} QPS cold, {qps_warm:.0f} QPS warm"
    )
    record_snapshot(
        "sharded_scatter_gather",
        {"qps_cold": qps_cold, "qps_warm": qps_warm},
        context={
            "n_users": args.factored_n,
            "n_shards": SHARD_COUNTS[-1],
            "k": 10,
            "n_queries": 256,
        },
    )
    print(
        "recorded bench_exact/bench_fast/bench_parity/bench_factored/"
        f"bench_sharded to {args.path} and sharded_scatter_gather to "
        "BENCH_serving.json"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
