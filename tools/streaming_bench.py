#!/usr/bin/env python
"""Streaming ingest bench: ack latency, throughput, delta→servable e2e.

Three numbers for the crash-safe ingestion path, recorded as a
``bench_streaming`` snapshot in ``BENCH_serving.json``:

* **ack latency / throughput** — p50/p95/p99 of :meth:`submit` (encode →
  WAL append → fsync → acknowledge) over a burst of fsynced deltas, plus
  the sustained acks/second of that burst;
* **apply throughput** — deltas/second of the replay-into-state step
  (:meth:`apply_pending`), the recovery-speed proxy;
* **delta→servable latency** — wall-clock from one submit to the
  refit→publish→hot-swap reload completing for a version that contains
  it, over a few submit→tick cycles against a real artifact store and
  service.

With ``--check`` the run compares ack p99 and e2e seconds against the
newest committed ``bench_streaming`` snapshot and **fails (exit 1) on a
>2x regression** — the CI smoke gate, same contract as
``solver_bench.py --check``.

Run from the repo root::

    PYTHONPATH=src python tools/streaming_bench.py          # record
    PYTHONPATH=src python tools/streaming_bench.py --check  # CI gate
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time

import numpy as np

sys.path.insert(0, "benchmarks")

from trajectory import (  # noqa: E402
    BENCH_PATH,
    load_trajectory,
    percentile_summary,
    record_snapshot,
)

from repro.reliability.checkpoints import CheckpointManager  # noqa: E402
from repro.serving.artifacts import ArtifactStore  # noqa: E402
from repro.serving.service import LinkPredictionService  # noqa: E402
from repro.streaming import StreamingPipeline, link_add  # noqa: E402
from repro.streaming.refit import WarmRefitter  # noqa: E402

REGRESSION_FACTOR = 2.0


def _random_links(n_users, count, seed):
    """A deterministic burst of weighted link.add deltas."""
    rng = np.random.default_rng(seed)
    deltas = []
    for _ in range(count):
        u = int(rng.integers(0, n_users - 1))
        v = int(rng.integers(u + 1, n_users))
        deltas.append(link_add(u, v, float(rng.integers(1, 4))))
    return deltas


def _ingest_leg(pipeline, deltas):
    """Submit every delta (fsynced); return (ack_seconds, acks_per_sec)."""
    ack_seconds = []
    start = time.perf_counter()
    for delta in deltas:
        t0 = time.perf_counter()
        pipeline.submit(delta)
        ack_seconds.append(time.perf_counter() - t0)
    elapsed = time.perf_counter() - start
    return ack_seconds, len(deltas) / elapsed


def _apply_leg(pipeline):
    """Replay the pending WAL suffix into state; return deltas/second."""
    pending = pipeline.wal.last_seq - pipeline.state.applied_seq
    start = time.perf_counter()
    pipeline.apply_pending()
    elapsed = time.perf_counter() - start
    return pending / max(elapsed, 1e-9)


def _e2e_leg(pipeline, service, deltas, cycles):
    """Submit → tick → reloaded: seconds until each delta is servable."""
    latencies = []
    for index in range(cycles):
        delta = deltas[index]
        start = time.perf_counter()
        seq = pipeline.submit(delta)
        pipeline.tick()
        latencies.append(time.perf_counter() - start)
        meta = service.artifact.manifest.get("meta", {})
        if int(meta.get("applied_seq", -1)) < seq:
            raise SystemExit(
                f"served version excludes acked seq {seq}: {meta!r}"
            )
    return latencies


def _baseline(path):
    """Newest committed bench_streaming stats, or None."""
    for snap in reversed(load_trajectory(path)["snapshots"]):
        if snap.get("section") == "bench_streaming":
            return snap["stats"]
    return None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n-users", type=int, default=32, dest="n_users")
    parser.add_argument("--deltas", type=int, default=500)
    parser.add_argument("--e2e-cycles", type=int, default=3, dest="e2e_cycles")
    parser.add_argument("--path", default=BENCH_PATH)
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against the committed baseline instead of recording; "
        "exit 1 on a >2x ack-p99 or e2e regression",
    )
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory() as tmp:
        store = ArtifactStore(os.path.join(tmp, "store"))
        pipeline = StreamingPipeline(
            os.path.join(tmp, "stream"),
            n_users=args.n_users,
            store=store,
            refitter=WarmRefitter(
                inner_iterations=8,
                outer_iterations=2,
                checkpoint_manager=CheckpointManager(
                    os.path.join(tmp, "checkpoints")
                ),
            ),
            snapshot_every=1,
        )
        deltas = _random_links(args.n_users, args.deltas + args.e2e_cycles, 11)

        ack_seconds, acks_per_sec = _ingest_leg(
            pipeline, deltas[: args.deltas]
        )
        ack = percentile_summary(ack_seconds)
        print(
            f"ingest: {args.deltas} fsynced acks at {acks_per_sec:.0f}/s, "
            f"p50 {ack['p50_ms']:.2f}ms, p99 {ack['p99_ms']:.2f}ms"
        )

        applies_per_sec = _apply_leg(pipeline)
        print(f"apply: {applies_per_sec:.0f} deltas/s replayed into state")

        pipeline.tick()  # first publish so the service can boot
        service = LinkPredictionService(store)
        pipeline.service = service
        e2e_seconds = _e2e_leg(
            pipeline, service, deltas[args.deltas :], args.e2e_cycles
        )
        e2e_mean = sum(e2e_seconds) / len(e2e_seconds)
        print(
            f"delta->servable: mean {e2e_mean:.2f}s over "
            f"{args.e2e_cycles} submit->tick->reload cycles "
            f"(warm source: {pipeline.refitter.last_warm_source})"
        )
        pipeline.close()

    stats = {
        "acks_per_sec": acks_per_sec,
        "ack_p50_ms": ack["p50_ms"],
        "ack_p95_ms": ack["p95_ms"],
        "ack_p99_ms": ack["p99_ms"],
        "applies_per_sec": applies_per_sec,
        "e2e_seconds_mean": e2e_mean,
    }
    if args.check:
        baseline = _baseline(args.path)
        if baseline is None:
            print(
                "FAIL: no committed bench_streaming baseline in "
                f"{args.path}; run without --check first and commit the file"
            )
            return 1
        for key in ("ack_p99_ms", "e2e_seconds_mean"):
            if stats[key] > REGRESSION_FACTOR * float(baseline[key]):
                print(
                    f"FAIL: {key} {stats[key]:.3f} vs committed baseline "
                    f"{baseline[key]:.3f} (> {REGRESSION_FACTOR:.0f}x)"
                )
                return 1
        print(
            f"OK: ack p99 {stats['ack_p99_ms']:.2f}ms vs baseline "
            f"{float(baseline['ack_p99_ms']):.2f}ms, e2e "
            f"{e2e_mean:.2f}s vs {float(baseline['e2e_seconds_mean']):.2f}s "
            f"(<= {REGRESSION_FACTOR:.0f}x)"
        )
        return 0

    record_snapshot(
        "bench_streaming",
        stats,
        context={
            "n_users": args.n_users,
            "n_deltas": args.deltas,
            "e2e_cycles": args.e2e_cycles,
            "fsync": True,
        },
        path=args.path,
    )
    print(f"recorded bench_streaming to {args.path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
