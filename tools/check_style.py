#!/usr/bin/env python
"""Observability and reliability style gate for ``src/repro``.

Four rules, all born from real production bugs:

1. **No ``time.time()`` duration arithmetic.**  Wall-clock time jumps
   (NTP slew, suspend/resume) corrupt latency and uptime numbers; all
   duration math must use ``time.monotonic()`` or ``time.perf_counter()``.
   A line that genuinely needs a wall-clock *timestamp* (manifest
   ``created_at`` fields and the like) opts out with a ``# wall-clock``
   comment on the same line, which doubles as reviewer documentation.

2. **No bare ``print()`` in library code.**  Library output must go
   through :mod:`repro.observability.logging` so it carries levels,
   request ids and machine-parseable structure.  The experiments package
   and the CLI ``__main__`` modules are presentation layers whose job is
   printing tables to a terminal, so they are allowlisted.

3. **No bare ``except:`` in library code.**  A bare except swallows
   ``KeyboardInterrupt`` and ``SystemExit``, which breaks the kill →
   checkpoint → resume contract of the reliability layer (a fit that
   cannot be interrupted cannot be resumed either).  Catch the narrowest
   exception the handler can actually recover from; an intentional
   catch-(almost)-all must spell out ``except Exception``.

4. **No new dense n×n allocations.**  The factored solver path exists
   precisely so that no code materializes an ``n_users × n_users``
   array; one stray ``np.zeros((n, n))`` silently reinstates the O(n²)
   memory wall the estimate was factored to avoid (the linkless-graph
   fallback did exactly that before it was made sparse).  A square
   allocation that is genuinely part of the exact/dense path — small-n
   oracles, dense feature builders, synthetic generators — opts out
   with a ``# dense-ok`` comment on the same line, which doubles as
   reviewer documentation of why quadratic memory is acceptable there.

Run from the repo root::

    python tools/check_style.py

Exit status 0 when clean; 1 with one ``file:line: message`` per violation
otherwise.
"""

from __future__ import annotations

import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_ROOT = os.path.join(REPO_ROOT, "src", "repro")

WALL_CLOCK_MARKER = "# wall-clock"
DENSE_OK_MARKER = "# dense-ok"

# Presentation layers whose stdout IS the product (tables, CLI banners).
PRINT_ALLOWLIST = (
    os.path.join("src", "repro", "experiments") + os.sep,
    os.path.join("src", "repro", "serving", "__main__.py"),
)

_TIME_TIME = re.compile(r"\btime\.time\(\)")
_BARE_PRINT = re.compile(r"^\s*print\(")
_BARE_EXCEPT = re.compile(r"^\s*except\s*:")
# np.zeros((n, n)) and friends — the same symbol on both axes is the
# signature of a dense square allocation in user-count space.
_DENSE_SQUARE = re.compile(
    r"\bnp\.(?:zeros|ones|empty|full)\(\s*\(\s*"
    r"([A-Za-z_][A-Za-z0-9_]*)\s*,\s*\1\s*[,)]"
)


def _relative(path: str) -> str:
    return os.path.relpath(path, REPO_ROOT)


def _print_allowed(relpath: str) -> bool:
    return any(relpath.startswith(prefix) for prefix in PRINT_ALLOWLIST)


def check_file(path: str) -> list:
    """All style violations in one file, as ``file:line: message`` strings."""
    relpath = _relative(path)
    violations = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            if _TIME_TIME.search(line) and WALL_CLOCK_MARKER not in line:
                violations.append(
                    f"{relpath}:{lineno}: time.time() is wall-clock — use "
                    "time.monotonic()/time.perf_counter() for durations, or "
                    f"mark a real timestamp with '{WALL_CLOCK_MARKER}'"
                )
            if _BARE_PRINT.search(line) and not _print_allowed(relpath):
                violations.append(
                    f"{relpath}:{lineno}: bare print() in library code — "
                    "use repro.observability.logging.get_logger() instead"
                )
            if _BARE_EXCEPT.search(line):
                violations.append(
                    f"{relpath}:{lineno}: bare except: swallows "
                    "KeyboardInterrupt/SystemExit and breaks kill→resume — "
                    "catch a concrete exception (or 'except Exception')"
                )
            if _DENSE_SQUARE.search(line) and DENSE_OK_MARKER not in line:
                violations.append(
                    f"{relpath}:{lineno}: dense square allocation — the "
                    "factored path must stay O(nk); use scipy.sparse or "
                    "FactoredEstimate, or mark a deliberate dense-path "
                    f"site with '{DENSE_OK_MARKER}'"
                )
    return violations


def main() -> int:
    violations = []
    for dirpath, _dirnames, filenames in os.walk(SRC_ROOT):
        for filename in sorted(filenames):
            if filename.endswith(".py"):
                violations.extend(check_file(os.path.join(dirpath, filename)))
    if violations:
        print("\n".join(violations))
        print(f"\n{len(violations)} style violation(s).")
        return 1
    print("style: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
