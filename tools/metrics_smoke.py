#!/usr/bin/env python
"""CI smoke check: boot a real server, scrape /metrics, validate the text.

End-to-end over a throwaway artifact store:

1. publish a tiny synthetic predictor;
2. start :class:`~repro.serving.http.LinkPredictionServer` on a free port;
3. issue traffic (``/healthz``, ``/v1/topk`` twice — miss then hit, one
   404, one request with a caller-chosen ``X-Request-Id``);
4. scrape ``/metrics`` and fail unless the payload parses as Prometheus
   text format 0.0.4 and carries the core serving series with the counts
   the traffic implies.

Run from the repo root::

    PYTHONPATH=src python tools/metrics_smoke.py
"""

from __future__ import annotations

import json
import re
import sys
import tempfile
import threading
import urllib.error
import urllib.request

import numpy as np

from repro.models.persistence import FrozenPredictor
from repro.serving.artifacts import ArtifactStore
from repro.serving.http import make_server
from repro.serving.service import LinkPredictionService

N_USERS = 32
_SAMPLE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? ([^ ]+)$")

REQUIRED_SERIES = (
    "repro_serving_http_request_seconds_bucket",
    "repro_serving_http_request_seconds_sum",
    "repro_serving_http_request_seconds_count",
    "repro_serving_http_not_found_total",
    "repro_serving_cache_hits_total",
    "repro_serving_cache_misses_total",
    "repro_serving_cache_size",
    "repro_serving_uptime_seconds",
    "repro_serving_artifact_version",
)


def parse_prometheus(text):
    """Validate structure; return ({metric: set(labelsets)}, {line: value})."""
    metrics, samples = {}, {}
    typed = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line:
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in (
                "counter", "gauge", "histogram"
            ):
                raise SystemExit(f"metrics:{lineno}: bad TYPE line: {line!r}")
            typed.add(parts[2])
            continue
        match = _SAMPLE.match(line)
        if match is None:
            raise SystemExit(f"metrics:{lineno}: malformed sample: {line!r}")
        name, labels, value = match.groups()
        if value != "+Inf":
            float(value)  # must parse
        metrics.setdefault(name, set()).add(labels or "")
        samples[f"{name}{labels or ''}"] = (
            float("inf") if value == "+Inf" else float(value)
        )
    if not typed:
        raise SystemExit("metrics: no # TYPE lines at all")
    return metrics, samples


def main() -> int:
    rng = np.random.default_rng(7)
    scores = rng.normal(size=(N_USERS, N_USERS))
    with tempfile.TemporaryDirectory() as tmp:
        store = ArtifactStore(tmp)
        store.publish(FrozenPredictor((scores + scores.T) / 2, {"name": "smoke"}))
        service = LinkPredictionService(store)
        server = make_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            with urllib.request.urlopen(f"{base}/healthz", timeout=10) as r:
                assert json.load(r)["status"] == "ok"
            for _ in range(2):  # miss, then cache hit
                req = urllib.request.Request(
                    f"{base}/v1/topk?user=1&k=5",
                    headers={"X-Request-Id": "smoke-req-1"},
                )
                with urllib.request.urlopen(req, timeout=10) as r:
                    assert r.headers["X-Request-Id"] == "smoke-req-1"
                    assert len(json.load(r)["candidates"]) == 5
            try:
                urllib.request.urlopen(f"{base}/definitely-not-a-route")
            except urllib.error.HTTPError as exc:
                assert exc.code == 404
            with urllib.request.urlopen(f"{base}/metrics", timeout=10) as r:
                content_type = r.headers["Content-Type"]
                text = r.read().decode("utf-8")
        finally:
            server.shutdown()
            server.server_close()

    if not content_type.startswith("text/plain; version=0.0.4"):
        raise SystemExit(f"unexpected /metrics content type: {content_type}")
    metrics, samples = parse_prometheus(text)
    missing = [name for name in REQUIRED_SERIES if name not in metrics]
    if missing:
        raise SystemExit(f"missing required series: {missing}")
    checks = {
        "repro_serving_cache_hits_total": 1,
        "repro_serving_cache_misses_total": 1,
        "repro_serving_http_not_found_total": 1,
        'repro_serving_http_request_seconds_count'
        '{route="topk",method="GET",status="200"}': 2,
        "repro_serving_artifact_version": 1,
    }
    for series, minimum in checks.items():
        if samples.get(series, 0) < minimum:
            raise SystemExit(
                f"{series} = {samples.get(series)!r}, expected >= {minimum}"
            )
    print(
        f"metrics smoke: ok — {len(metrics)} series, "
        f"{len(samples)} samples, all required series present"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
