#!/usr/bin/env python
"""Sustained-load benchmark: throughput-vs-latency for both front ends.

An in-repo open-loop load generator for the serving layer.  For each
front end (``aio`` — the asyncio server, and ``legacy`` — the threaded
``ThreadingHTTPServer``) the harness:

1. publishes a tiny :class:`FrozenPredictor` artifact to a throwaway
   store and boots ``python -m repro.serving serve`` in a **subprocess**
   (its own interpreter, so the client's GIL never throttles the
   server under test);
2. sweeps a ladder of offered request rates with *open-loop* arrivals —
   request ``i`` is scheduled at ``i/rate`` regardless of whether the
   previous answer came back, and latency is measured from the
   **scheduled** time, so queueing delay counts against the server —
   recording achieved QPS and p50/p95/p99 per offered rate;
3. runs one closed-loop *saturation* pass (every connection back to
   back) whose achieved QPS is the continuous max-throughput measure —
   the number the CI gate compares across front ends;
4. records everything as ``bench_loadgen`` snapshots (one per front
   end) in the repo-root ``BENCH_serving.json`` trajectory.

**Sustained QPS** is the saturation throughput *provided* its p99 stays
within the SLO; otherwise it falls back to the fastest open-loop sweep
point that met the SLO with ≥90% of its offered rate achieved.

With ``--check`` the run is skipped entirely: the newest committed
``aio`` and ``legacy`` snapshots are compared and the gate **fails
(exit 1)** unless the asyncio front end sustains at least ``--min-ratio``
(default 3x) the legacy throughput with its p99 inside the SLO.

Run from the repo root::

    PYTHONPATH=src python tools/load_bench.py --smoke   # short CI sweep
    PYTHONPATH=src python tools/load_bench.py           # full sweep
    PYTHONPATH=src python tools/load_bench.py --check   # CI ratio gate
"""

from __future__ import annotations

import argparse
import os
import re
import socket
import subprocess
import sys
import tempfile
import threading
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

sys.path.insert(0, "src")
sys.path.insert(0, "benchmarks")

from repro.models.persistence import FrozenPredictor  # noqa: E402
from repro.serving.artifacts import ArtifactStore  # noqa: E402
from trajectory import (  # noqa: E402
    latest_snapshots,
    percentile_summary,
    record_snapshot,
)

N_USERS = 256
TOPK_K = 10
WARMUP_REQUESTS = 30
_BANNER = re.compile(r"on http://[^:]+:(\d+)")
_CONTENT_LENGTH = re.compile(rb"content-length:\s*(\d+)", re.I)


def _publish_bench_artifact(store_dir: str) -> None:
    """One deterministic frozen-score artifact sized for cheap top-k."""
    rng = np.random.default_rng(17)
    scores = rng.normal(size=(N_USERS, N_USERS))
    ArtifactStore(store_dir).publish(
        FrozenPredictor((scores + scores.T) / 2, {"name": "load-bench"})
    )


def _boot_server(
    store_dir: str, frontend: str
) -> Tuple[subprocess.Popen, int]:
    """Start ``repro.serving serve`` in a child process; return (proc, port).

    Telemetry and the batcher are disabled on both front ends so the
    sweep measures the transport, not the instrumentation; ``-u`` keeps
    the startup banner (which carries the bound port) unbuffered.
    """
    command = [
        sys.executable,
        "-u",
        "-m",
        "repro.serving",
        "serve",
        "--store",
        store_dir,
        "--port",
        "0",
        "--no-telemetry",
        "--no-batcher",
        "--log-level",
        "WARNING",
    ]
    if frontend == "legacy":
        command.append("--legacy")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH", "")) if p
    )
    proc = subprocess.Popen(
        command,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    port: Optional[int] = None
    assert proc.stdout is not None
    for line in proc.stdout:
        match = _BANNER.search(line)
        if match:
            port = int(match.group(1))
            break
    if port is None:
        proc.terminate()
        raise SystemExit(
            f"{frontend} server exited before printing its banner "
            f"(rc={proc.wait()})"
        )
    return proc, port


class _Connection:
    """A persistent keep-alive HTTP connection with minimal parsing.

    The client is deliberately leaner than ``http.client`` — on a
    single box the generator shares cores with the server under test,
    so every microsecond of client-side parsing shows up as lost
    server throughput.  When the server answers ``Connection: close``
    (the legacy front end always does) the next request reconnects.
    """

    def __init__(self, port: int):
        self._port = port
        self._sock: Optional[socket.socket] = None
        self._buffer = b""

    def request(self, user: int) -> int:
        """Issue one warm top-k GET; return the HTTP status code."""
        if self._sock is None:
            self._sock = socket.create_connection(
                ("127.0.0.1", self._port), timeout=10
            )
            self._sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
            self._buffer = b""
        self._sock.sendall(
            b"GET /v1/topk?user=%d&k=%d HTTP/1.1\r\n"
            b"Host: bench\r\nConnection: keep-alive\r\n\r\n"
            % (user, TOPK_K)
        )
        head = self._read_head()
        status = int(head.split(b" ", 2)[1])
        length_match = _CONTENT_LENGTH.search(head)
        body_len = int(length_match.group(1)) if length_match else 0
        while len(self._buffer) < body_len:
            self._buffer += self._recv()
        self._buffer = self._buffer[body_len:]
        lowered = head.lower()
        keep = (
            lowered.startswith(b"http/1.1")
            and b"connection: close" not in lowered
        ) or b"connection: keep-alive" in lowered
        if not keep:  # HTTP/1.0 closes implicitly, without the header
            self.close()
        return status

    def _read_head(self) -> bytes:
        """Consume one response head (through the blank line)."""
        while b"\r\n\r\n" not in self._buffer:
            self._buffer += self._recv()
        head, _, self._buffer = self._buffer.partition(b"\r\n\r\n")
        return head

    def _recv(self) -> bytes:
        assert self._sock is not None
        chunk = self._sock.recv(65536)
        if not chunk:
            raise ConnectionError("server closed mid-response")
        return chunk

    def close(self) -> None:
        """Drop the socket (the next request reconnects)."""
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None


def _run_open_loop(
    port: int, rate: float, duration_s: float, connections: int
) -> Dict[str, float]:
    """One open-loop sweep point at a fixed offered rate.

    Arrivals are scheduled on a fixed grid and dealt round-robin to the
    connections; a worker that falls behind keeps sending as fast as it
    can, and every latency is measured from the *scheduled* arrival —
    an overloaded server pays for its queue.
    """
    total = max(1, int(rate * duration_s))
    schedules: List[List[float]] = [[] for _ in range(connections)]
    for i in range(total):
        schedules[i % connections].append(i / rate)
    results: List[Tuple[float, int]] = []
    lock = threading.Lock()
    start = time.perf_counter() + 0.05  # let every worker reach the line

    def worker(schedule: List[float]) -> None:
        """Replay one connection's arrival schedule."""
        conn = _Connection(port)
        local: List[Tuple[float, int]] = []
        user = 0
        for offset in schedule:
            scheduled = start + offset
            delay = scheduled - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            try:
                status = conn.request(user % N_USERS)
            except (OSError, ConnectionError, ValueError):
                conn.close()
                status = 599  # transport failure: counts as an error
            user += 1
            local.append((time.perf_counter() - scheduled, status))
        conn.close()
        with lock:
            results.extend(local)

    threads = [
        threading.Thread(target=worker, args=(s,), daemon=True)
        for s in schedules
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    return _summarize(results, elapsed, offered_qps=rate)


def _run_saturation(
    port: int, duration_s: float, connections: int
) -> Dict[str, float]:
    """Closed-loop saturation: every connection back to back.

    Achieved QPS here is a *continuous* capacity measure (no offered-
    rate quantization), with tail latency bounded by the connection
    count — the number the cross-front-end ratio gate uses.
    """
    results: List[Tuple[float, int]] = []
    lock = threading.Lock()
    stop = threading.Event()

    def worker() -> None:
        """Hammer until told to stop."""
        conn = _Connection(port)
        local: List[Tuple[float, int]] = []
        user = 0
        while not stop.is_set():
            began = time.perf_counter()
            try:
                status = conn.request(user % N_USERS)
            except (OSError, ConnectionError, ValueError):
                conn.close()
                status = 599
            user += 1
            local.append((time.perf_counter() - began, status))
        conn.close()
        with lock:
            results.extend(local)

    threads = [
        threading.Thread(target=worker, daemon=True)
        for _ in range(connections)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    time.sleep(duration_s)
    stop.set()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    return _summarize(results, elapsed, offered_qps=None)


def _summarize(
    results: List[Tuple[float, int]],
    elapsed_s: float,
    offered_qps: Optional[float],
) -> Dict[str, float]:
    """Fold raw (latency, status) samples into one sweep-point record."""
    latencies = [latency for latency, _ in results]
    statuses = [status for _, status in results]
    summary = percentile_summary(latencies)
    n_errors = sum(1 for status in statuses if status >= 400)
    point = {
        "achieved_qps": len(results) / elapsed_s,
        "error_rate": n_errors / len(results),
        **summary,
    }
    if offered_qps is not None:
        point["offered_qps"] = float(offered_qps)
    return point


def _warm(port: int) -> None:
    """Prime the service's score cache so the sweep measures warm serving."""
    conn = _Connection(port)
    for user in range(0, N_USERS, max(1, N_USERS // WARMUP_REQUESTS)):
        conn.request(user)
    conn.close()


def _bench_frontend(
    frontend: str,
    rates: List[float],
    duration_s: float,
    connections: int,
    slo_ms: float,
) -> Dict[str, float]:
    """Sweep one front end; return the flat stats dict for its snapshot."""
    with tempfile.TemporaryDirectory() as tmp:
        _publish_bench_artifact(tmp)
        proc, port = _boot_server(tmp, frontend)
        try:
            _warm(port)
            curve = []
            for rate in rates:
                point = _run_open_loop(port, rate, duration_s, connections)
                curve.append(point)
                print(
                    f"  {frontend}: offered {rate:7.0f} qps -> achieved "
                    f"{point['achieved_qps']:7.0f} qps  "
                    f"p50 {point['p50_ms']:7.2f}ms  "
                    f"p99 {point['p99_ms']:8.2f}ms  "
                    f"errors {point['error_rate']:.1%}"
                )
            saturation = _run_saturation(port, duration_s, connections)
            print(
                f"  {frontend}: saturation         -> achieved "
                f"{saturation['achieved_qps']:7.0f} qps  "
                f"p50 {saturation['p50_ms']:7.2f}ms  "
                f"p99 {saturation['p99_ms']:8.2f}ms  "
                f"errors {saturation['error_rate']:.1%}"
            )
        finally:
            proc.terminate()
            proc.wait(timeout=30)

    stats: Dict[str, float] = {
        "sustained_qps": _sustained_qps(curve, saturation, slo_ms),
        "max_qps": saturation["achieved_qps"],
        "p50_ms": saturation["p50_ms"],
        "p95_ms": saturation["p95_ms"],
        "p99_ms": saturation["p99_ms"],
        "error_rate": saturation["error_rate"],
    }
    for point in curve:
        prefix = f"offered_{int(point['offered_qps'])}"
        stats[f"{prefix}_achieved_qps"] = point["achieved_qps"]
        stats[f"{prefix}_p50_ms"] = point["p50_ms"]
        stats[f"{prefix}_p99_ms"] = point["p99_ms"]
        stats[f"{prefix}_error_rate"] = point["error_rate"]
    return stats


def _sustained_qps(
    curve: List[Dict[str, float]],
    saturation: Dict[str, float],
    slo_ms: float,
) -> float:
    """The headline number: max throughput with p99 inside the SLO.

    Prefer the continuous saturation measure when its tail holds the
    SLO (bounded closed-loop concurrency usually does); otherwise fall
    back to the fastest open-loop point that met the SLO while
    achieving at least 90% of what was offered.
    """
    if saturation["p99_ms"] <= slo_ms and saturation["error_rate"] <= 0.01:
        return saturation["achieved_qps"]
    passing = [
        point["achieved_qps"]
        for point in curve
        if point["p99_ms"] <= slo_ms
        and point["error_rate"] <= 0.01
        and point["achieved_qps"] >= 0.9 * point["offered_qps"]
    ]
    return max(passing) if passing else 0.0


def _latest_stats(frontend: str, path: Optional[str]) -> Dict[str, float]:
    """The newest committed ``bench_loadgen`` stats for one front end."""
    for snap in reversed(latest_snapshots("bench_loadgen", 50, path=path)):
        if (snap.get("context") or {}).get("frontend") == frontend:
            return snap["stats"]
    raise SystemExit(
        f"no bench_loadgen snapshot for frontend={frontend!r}; "
        "run `python tools/load_bench.py --smoke` first"
    )


def run_check(min_ratio: float, slo_ms: float, path: Optional[str]) -> int:
    """The CI gate: asyncio must sustain ``min_ratio`` x legacy QPS."""
    aio = _latest_stats("aio", path)
    legacy = _latest_stats("legacy", path)
    if legacy["sustained_qps"] <= 0:
        raise SystemExit("legacy sustained_qps is zero — rerun the sweep")
    ratio = aio["sustained_qps"] / legacy["sustained_qps"]
    print(
        f"load gate: aio {aio['sustained_qps']:.0f} qps vs legacy "
        f"{legacy['sustained_qps']:.0f} qps -> {ratio:.2f}x "
        f"(gate {min_ratio:.1f}x); aio p99 {aio['p99_ms']:.2f}ms "
        f"(SLO {slo_ms:.0f}ms)"
    )
    if aio["sustained_qps"] == 0 or aio["p99_ms"] > slo_ms:
        print("load gate: FAIL — asyncio p99 outside the deadline SLO")
        return 1
    if ratio < min_ratio:
        print(
            f"load gate: FAIL — asyncio sustained only {ratio:.2f}x "
            f"legacy (< {min_ratio:.1f}x)"
        )
        return 1
    print("load gate: ok")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Parse arguments, then sweep-and-record or check the gate."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="short CI sweep (fewer rates, shorter duration)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare committed snapshots; exit 1 under --min-ratio",
    )
    parser.add_argument(
        "--min-ratio",
        type=float,
        default=3.0,
        help="required aio/legacy sustained-QPS ratio (default 3.0)",
    )
    parser.add_argument(
        "--connections",
        type=int,
        default=8,
        help="concurrent client connections (default 8)",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=None,
        help="seconds per sweep point (default 4.0, smoke 1.5)",
    )
    parser.add_argument(
        "--slo-ms",
        type=float,
        default=250.0,
        help="p99 SLO in milliseconds (default 250)",
    )
    parser.add_argument(
        "--bench-path",
        default=None,
        help="trajectory file (default: repo-root BENCH_serving.json)",
    )
    args = parser.parse_args(argv)

    if args.check:
        return run_check(args.min_ratio, args.slo_ms, args.bench_path)

    if args.smoke:
        rates = [250.0, 500.0, 1000.0, 2000.0, 4000.0]
        duration = args.duration or 1.5
    else:
        rates = [250.0, 500.0, 1000.0, 2000.0, 4000.0, 8000.0]
        duration = args.duration or 4.0

    for frontend in ("legacy", "aio"):
        print(f"load bench: sweeping {frontend} front end")
        stats = _bench_frontend(
            frontend, rates, duration, args.connections, args.slo_ms
        )
        record_snapshot(
            "bench_loadgen",
            stats,
            context={
                "frontend": frontend,
                "mode": "smoke" if args.smoke else "full",
                "connections": args.connections,
                "duration_s": duration,
                "slo_ms": args.slo_ms,
                "n_users": N_USERS,
            },
            path=args.bench_path,
        )
        print(
            f"load bench: {frontend} sustained "
            f"{stats['sustained_qps']:.0f} qps "
            f"(max {stats['max_qps']:.0f} qps, "
            f"p99 {stats['p99_ms']:.2f}ms)"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
