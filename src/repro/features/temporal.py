"""Temporal (activity-pattern) intimacy features.

Users active at the same hours of the day are more likely to interact.  Each
user gets a 24-bin posting-hour histogram; pairs are scored by cosine
similarity of the histograms.
"""

from __future__ import annotations

import numpy as np

from repro.features.spatial import cosine_similarity_matrix
from repro.networks.heterogeneous import HeterogeneousNetwork

N_HOUR_BINS = 24


def user_hour_histograms(network: HeterogeneousNetwork) -> np.ndarray:
    """Hour-of-day posting histograms ``(n_users, 24)`` in user-id order."""
    user_index = network.user_index()
    histograms = np.zeros((network.n_users, N_HOUR_BINS))
    for post in network.posts():
        histograms[user_index[post.author_id], post.hour] += 1
    return histograms


def temporal_similarity(network: HeterogeneousNetwork) -> np.ndarray:
    """Cosine similarity of hour histograms (``n×n``, zero diagonal)."""
    return cosine_similarity_matrix(user_hour_histograms(network))
