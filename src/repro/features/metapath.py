"""Meta-path count features over the heterogeneous network.

The cited feature set (Zhang et al., ICDM 2013; Sun et al., ASONAM 2011)
counts path instances between two users along typed meta paths.  With the
paper's schema (users U, posts P, words W, timestamps T, locations L) the
informative symmetric paths of length four are::

    U → P → W → P → U   (shared vocabulary through posts)
    U → P → T → P → U   (posting at the same hours)
    U → P → L → P → U   (checking in at the same venues)

Because every post has exactly one author, the path count for
``U-P-x-P-U`` equals ``M_x M_xᵀ`` where ``M_x`` is the user-by-``x``
incidence count matrix — so counts reduce to the profile matrices computed by
the spatial / temporal / textual modules, unnormalized.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.exceptions import FeatureError
from repro.features.spatial import user_location_counts
from repro.features.temporal import user_hour_histograms
from repro.features.textual import user_word_counts
from repro.networks.heterogeneous import HeterogeneousNetwork
from repro.utils.matrices import zero_diagonal

_PROFILE_BUILDERS: Dict[str, Callable[[HeterogeneousNetwork], np.ndarray]] = {
    "UPWPU": user_word_counts,
    "UPTPU": user_hour_histograms,
    "UPLPU": user_location_counts,
}

METAPATHS = tuple(_PROFILE_BUILDERS)
"""Names of the supported symmetric meta paths."""


def metapath_count_matrix(
    network: HeterogeneousNetwork, metapath: str
) -> np.ndarray:
    """Path-instance counts between all user pairs for one meta path.

    Parameters
    ----------
    network:
        The heterogeneous network.
    metapath:
        One of :data:`METAPATHS` (``"UPWPU"``, ``"UPTPU"``, ``"UPLPU"``).

    Returns
    -------
    ``n×n`` symmetric count matrix with zero diagonal.
    """
    try:
        builder = _PROFILE_BUILDERS[metapath]
    except KeyError:
        raise FeatureError(
            f"unknown metapath {metapath!r}; supported: {sorted(METAPATHS)}"
        ) from None
    profiles = builder(network)
    if profiles.shape[1] == 0:
        return np.zeros((network.n_users, network.n_users))
    return zero_diagonal(profiles @ profiles.T)
