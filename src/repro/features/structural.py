"""Structural (neighborhood-based) intimacy features.

All functions take a binary symmetric adjacency matrix and return an ``n×n``
score matrix with a zero diagonal.  These are the classical closeness scores
the paper uses both as intimacy features (Section IV-B1) and as the
unsupervised baselines PA / CN / JC.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import FeatureError
from repro.utils.matrices import is_square, zero_diagonal
from repro.utils.validation import check_in_range, check_integer


def _validated(adjacency: np.ndarray) -> np.ndarray:
    adjacency = np.asarray(adjacency, dtype=float)
    if not is_square(adjacency):
        raise FeatureError(
            f"adjacency must be square, got shape {adjacency.shape}"
        )
    return adjacency


def common_neighbors_matrix(adjacency: np.ndarray) -> np.ndarray:
    """Common-neighbor counts: ``(A²)_ij = |Γ(i) ∩ Γ(j)|``."""
    adjacency = _validated(adjacency)
    return zero_diagonal(adjacency @ adjacency)


def jaccard_matrix(adjacency: np.ndarray) -> np.ndarray:
    """Jaccard coefficient ``|Γ(i)∩Γ(j)| / |Γ(i)∪Γ(j)|`` (0 when both empty)."""
    adjacency = _validated(adjacency)
    intersection = adjacency @ adjacency
    degrees = adjacency.sum(axis=1)
    union = degrees[:, None] + degrees[None, :] - intersection
    with np.errstate(divide="ignore", invalid="ignore"):
        scores = np.where(union > 0, intersection / union, 0.0)
    return zero_diagonal(scores)


def adamic_adar_matrix(adjacency: np.ndarray) -> np.ndarray:
    """Adamic-Adar: ``Σ_{z ∈ Γ(i)∩Γ(j)} 1 / log |Γ(z)|``.

    Neighbors of degree <= 1 contribute nothing (their log is undefined or
    zero), matching the usual convention.
    """
    adjacency = _validated(adjacency)
    degrees = adjacency.sum(axis=1)
    weights = np.zeros_like(degrees)
    mask = degrees > 1
    weights[mask] = 1.0 / np.log(degrees[mask])
    weighted = adjacency * weights[None, :]
    return zero_diagonal(weighted @ adjacency)


def resource_allocation_matrix(adjacency: np.ndarray) -> np.ndarray:
    """Resource allocation: ``Σ_{z ∈ Γ(i)∩Γ(j)} 1 / |Γ(z)|``."""
    adjacency = _validated(adjacency)
    degrees = adjacency.sum(axis=1)
    weights = np.zeros_like(degrees)
    mask = degrees > 0
    weights[mask] = 1.0 / degrees[mask]
    weighted = adjacency * weights[None, :]
    return zero_diagonal(weighted @ adjacency)


def preferential_attachment_matrix(adjacency: np.ndarray) -> np.ndarray:
    """Preferential attachment: ``|Γ(i)| · |Γ(j)|``."""
    adjacency = _validated(adjacency)
    degrees = adjacency.sum(axis=1)
    return zero_diagonal(np.outer(degrees, degrees))


def katz_matrix(
    adjacency: np.ndarray, beta: float = 0.05, max_length: int = 4
) -> np.ndarray:
    """Truncated Katz index: ``Σ_{ℓ=1..L} βˡ (Aˡ)_ij``.

    Parameters
    ----------
    beta:
        Path damping factor in ``(0, 1)``.
    max_length:
        Longest path length counted (the truncation ``L``).
    """
    adjacency = _validated(adjacency)
    beta = check_in_range(beta, "beta", 0.0, 1.0, inclusive=False)
    max_length = check_integer(max_length, "max_length", minimum=1)
    power = np.eye(adjacency.shape[0])
    scores = np.zeros_like(adjacency)
    damping = 1.0
    for _ in range(max_length):
        power = power @ adjacency
        damping *= beta
        scores = scores + damping * power
    return zero_diagonal(scores)
