"""Intimacy feature extraction.

Section III-B of the paper scores user pairs with *intimacy features*
extracted from heterogeneous attribute information (the feature families of
Zhang et al., ICDM 2013).  Feature values for all pairs of one network form a
3-way tensor ``X ∈ R^{d×n×n}`` (:class:`FeatureTensor`), whose slice ``k`` is
the k-th feature evaluated on every pair.

Families implemented:

* structural — common neighbors, Jaccard, Adamic-Adar, resource allocation,
  preferential attachment, truncated Katz (:mod:`repro.features.structural`)
* spatial — check-in profile similarity (:mod:`repro.features.spatial`)
* temporal — hour-of-day activity similarity (:mod:`repro.features.temporal`)
* textual — word-usage similarity (:mod:`repro.features.textual`)
* meta-path — U→P→{L,W,T}→P→U path counts over the HIN
  (:mod:`repro.features.metapath`)
"""

from repro.features.tensor import FeatureTensor
from repro.features.structural import (
    common_neighbors_matrix,
    jaccard_matrix,
    adamic_adar_matrix,
    resource_allocation_matrix,
    preferential_attachment_matrix,
    katz_matrix,
)
from repro.features.spatial import user_location_counts, checkin_similarity
from repro.features.temporal import user_hour_histograms, temporal_similarity
from repro.features.textual import user_word_counts, word_usage_similarity
from repro.features.metapath import (
    metapath_count_matrix,
    METAPATHS,
)
from repro.features.intimacy import IntimacyFeatureExtractor

__all__ = [
    "FeatureTensor",
    "common_neighbors_matrix",
    "jaccard_matrix",
    "adamic_adar_matrix",
    "resource_allocation_matrix",
    "preferential_attachment_matrix",
    "katz_matrix",
    "user_location_counts",
    "checkin_similarity",
    "user_hour_histograms",
    "temporal_similarity",
    "user_word_counts",
    "word_usage_similarity",
    "metapath_count_matrix",
    "METAPATHS",
    "IntimacyFeatureExtractor",
]
