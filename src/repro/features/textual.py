"""Textual (word-usage) intimacy features.

Users who write about the same things use overlapping vocabulary.  Each user
gets a bag-of-words vector over the network's vocabulary, optionally IDF
weighted; pairs are scored by cosine similarity.
"""

from __future__ import annotations

import numpy as np

from repro.features.spatial import cosine_similarity_matrix
from repro.networks.heterogeneous import HeterogeneousNetwork


def user_word_counts(network: HeterogeneousNetwork) -> np.ndarray:
    """User-by-word usage counts ``(n_users, n_words)``.

    Columns follow sorted word-id order over the words actually used in the
    network's posts.
    """
    user_index = network.user_index()
    word_ids = sorted(
        {word for post in network.posts() for word in post.word_ids}
    )
    word_index = {wid: i for i, wid in enumerate(word_ids)}
    counts = np.zeros((network.n_users, len(word_ids)))
    for post in network.posts():
        row = user_index[post.author_id]
        for word in post.word_ids:
            counts[row, word_index[word]] += 1
    return counts


def idf_weights(counts: np.ndarray) -> np.ndarray:
    """Smoothed inverse user frequency per word: ``log(1 + n / (1 + df))``."""
    n_users = counts.shape[0]
    document_frequency = (counts > 0).sum(axis=0)
    return np.log(1.0 + n_users / (1.0 + document_frequency))


def word_usage_similarity(
    network: HeterogeneousNetwork, use_idf: bool = True
) -> np.ndarray:
    """Cosine similarity of (optionally IDF-weighted) word profiles."""
    counts = user_word_counts(network)
    if counts.shape[1] == 0:
        return np.zeros((network.n_users, network.n_users))
    if use_idf:
        counts = counts * idf_weights(counts)[None, :]
    return cosine_similarity_matrix(counts)
