"""Sparse-matrix implementations of the structural features.

At the paper's scale (5k+ users) the dense ``A @ A`` products in
:mod:`repro.features.structural` allocate 200MB+ intermediates.  These
variants accept (or convert to) ``scipy.sparse.csr_matrix`` and exploit the
adjacency's sparsity; outputs are returned dense (the score matrices
themselves are dense in general) or sparse where noted.

Every function is numerically identical to its dense counterpart — the
equivalence is asserted by the test suite over random graphs.
"""

from __future__ import annotations

from typing import Union

import numpy as np
import scipy.sparse

from repro.exceptions import FeatureError

AdjacencyLike = Union[np.ndarray, scipy.sparse.spmatrix]


def _as_csr(adjacency: AdjacencyLike) -> scipy.sparse.csr_matrix:
    if scipy.sparse.issparse(adjacency):
        matrix = adjacency.tocsr().astype(float)
    else:
        matrix = scipy.sparse.csr_matrix(np.asarray(adjacency, dtype=float))
    if matrix.shape[0] != matrix.shape[1]:
        raise FeatureError(
            f"adjacency must be square, got shape {matrix.shape}"
        )
    return matrix


def _zero_diagonal_dense(matrix: np.ndarray) -> np.ndarray:
    np.fill_diagonal(matrix, 0.0)
    return matrix


def common_neighbors_sparse(adjacency: AdjacencyLike) -> np.ndarray:
    """Sparse-product common-neighbor counts (dense output)."""
    csr = _as_csr(adjacency)
    return _zero_diagonal_dense((csr @ csr).toarray())


def jaccard_sparse(adjacency: AdjacencyLike) -> np.ndarray:
    """Sparse-product Jaccard coefficients (dense output)."""
    csr = _as_csr(adjacency)
    intersection = (csr @ csr).toarray()
    degrees = np.asarray(csr.sum(axis=1)).ravel()
    union = degrees[:, None] + degrees[None, :] - intersection
    with np.errstate(divide="ignore", invalid="ignore"):
        scores = np.where(union > 0, intersection / union, 0.0)
    return _zero_diagonal_dense(scores)


def adamic_adar_sparse(adjacency: AdjacencyLike) -> np.ndarray:
    """Sparse-product Adamic-Adar scores (dense output)."""
    csr = _as_csr(adjacency)
    degrees = np.asarray(csr.sum(axis=1)).ravel()
    weights = np.zeros_like(degrees)
    mask = degrees > 1
    weights[mask] = 1.0 / np.log(degrees[mask])
    weighted = csr.multiply(weights[None, :]).tocsr()
    return _zero_diagonal_dense((weighted @ csr).toarray())


def resource_allocation_sparse(adjacency: AdjacencyLike) -> np.ndarray:
    """Sparse-product resource-allocation scores (dense output)."""
    csr = _as_csr(adjacency)
    degrees = np.asarray(csr.sum(axis=1)).ravel()
    weights = np.zeros_like(degrees)
    mask = degrees > 0
    weights[mask] = 1.0 / degrees[mask]
    weighted = csr.multiply(weights[None, :]).tocsr()
    return _zero_diagonal_dense((weighted @ csr).toarray())


def preferential_attachment_sparse(adjacency: AdjacencyLike) -> np.ndarray:
    """Degree products (dense output; no matrix product needed)."""
    csr = _as_csr(adjacency)
    degrees = np.asarray(csr.sum(axis=1)).ravel()
    return _zero_diagonal_dense(np.outer(degrees, degrees))


def katz_sparse(
    adjacency: AdjacencyLike, beta: float = 0.05, max_length: int = 4
) -> np.ndarray:
    """Truncated Katz via repeated sparse-dense products (dense output)."""
    if not 0.0 < beta < 1.0:
        raise FeatureError(f"beta must be in (0, 1), got {beta}")
    if max_length < 1:
        raise FeatureError(f"max_length must be >= 1, got {max_length}")
    csr = _as_csr(adjacency)
    n = csr.shape[0]
    power = np.eye(n)
    scores = np.zeros((n, n))  # dense-ok: dense Katz accumulator
    damping = 1.0
    for _ in range(int(max_length)):
        power = csr @ power  # sparse @ dense → dense
        damping *= beta
        scores += damping * power
    return _zero_diagonal_dense(scores)


def top_k_candidates(
    adjacency: AdjacencyLike, scores: np.ndarray, k: int
) -> list:
    """The ``k`` highest-scored non-link pairs (canonical order).

    A memory-light helper for serving: avoids materializing and sorting all
    O(n²) candidate pairs when only the head of the ranking is needed.
    """
    csr = _as_csr(adjacency)
    scores = np.asarray(scores, dtype=float)
    if scores.shape != csr.shape:
        raise FeatureError(
            f"scores shape {scores.shape} does not match adjacency "
            f"{csr.shape}"
        )
    if k < 1:
        raise FeatureError(f"k must be >= 1, got {k}")
    masked = np.triu(scores, k=1).copy()
    rows, cols = csr.nonzero()
    masked[rows, cols] = -np.inf
    masked[np.tril_indices(csr.shape[0])] = -np.inf
    flat = masked.ravel()
    k = min(int(k), int(np.isfinite(flat).sum()))
    if k == 0:
        return []
    top = np.argpartition(-flat, k - 1)[:k]
    top = top[np.argsort(-flat[top], kind="stable")]
    n = csr.shape[0]
    return [(int(idx // n), int(idx % n), float(flat[idx])) for idx in top]
