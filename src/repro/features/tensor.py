"""The d×n×n intimacy feature tensor.

Slice ``k`` of the tensor holds the k-th intimacy feature evaluated on every
user pair of one network (the paper's ``X(k, :, :)``).  The class carries
feature names alongside the values so extracted and projected tensors stay
self-describing, and provides the handful of operations the models need:
per-slice normalization, per-pair feature vectors, slice aggregation, and
linear projection into the shared latent space.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.exceptions import FeatureError


class FeatureTensor:
    """Stack of per-pair feature matrices for one network.

    Parameters
    ----------
    values:
        Array of shape ``(d, n, n)``; each slice should be symmetric with a
        zero diagonal (pairwise scores of an undirected network).
    feature_names:
        Length-``d`` names; defaults to ``f0..f{d-1}``.
    """

    def __init__(self, values: np.ndarray, feature_names: Sequence[str] = None):
        values = np.asarray(values, dtype=float)
        if values.ndim != 3 or values.shape[1] != values.shape[2]:
            raise FeatureError(
                f"feature tensor must have shape (d, n, n), got {values.shape}"
            )
        if feature_names is None:
            feature_names = [f"f{k}" for k in range(values.shape[0])]
        feature_names = [str(name) for name in feature_names]
        if len(feature_names) != values.shape[0]:
            raise FeatureError(
                f"{len(feature_names)} names for {values.shape[0]} slices"
            )
        if len(set(feature_names)) != len(feature_names):
            raise FeatureError(f"duplicate feature names: {feature_names}")
        self._values = values
        self._names = feature_names

    # ------------------------------------------------------------------
    @property
    def values(self) -> np.ndarray:
        """The raw ``(d, n, n)`` array."""
        return self._values

    @property
    def n_features(self) -> int:
        """Number of feature slices ``d``."""
        return self._values.shape[0]

    @property
    def n_users(self) -> int:
        """Matrix dimension ``n``."""
        return self._values.shape[1]

    @property
    def feature_names(self) -> List[str]:
        """Names of the slices."""
        return list(self._names)

    def slice(self, key) -> np.ndarray:
        """One ``n×n`` feature matrix, by index or by name."""
        if isinstance(key, str):
            try:
                key = self._names.index(key)
            except ValueError:
                raise FeatureError(
                    f"unknown feature {key!r}; have {self._names}"
                ) from None
        return self._values[int(key)]

    def pair_vector(self, i: int, j: int) -> np.ndarray:
        """The length-``d`` feature vector of pair ``(i, j)``."""
        return self._values[:, int(i), int(j)].copy()

    def pair_vectors(self, pairs: Sequence[Tuple[int, int]]) -> np.ndarray:
        """Feature vectors for many pairs, stacked as ``(len(pairs), d)``."""
        if len(pairs) == 0:
            return np.zeros((0, self.n_features))
        rows = np.array([p[0] for p in pairs], dtype=int)
        cols = np.array([p[1] for p in pairs], dtype=int)
        return self._values[:, rows, cols].T.copy()

    # ------------------------------------------------------------------
    def normalized(self) -> "FeatureTensor":
        """Scale each slice by its max absolute value (no-op on zero slices).

        Puts heterogeneous feature families (counts vs cosines) on a common
        scale before projection, as the paper's features-from-[28] pipeline
        assumes.
        """
        values = self._values.copy()
        for k in range(values.shape[0]):
            peak = np.abs(values[k]).max()
            if peak > 0:
                values[k] = values[k] / peak
        return FeatureTensor(values, self._names)

    def aggregate(self, weights: Sequence[float] = None) -> np.ndarray:
        """Weighted sum of slices: ``Σ_k w_k · X(k, :, :)``.

        With unit weights this is the constant gradient ``∇v`` of the paper's
        intimacy term.
        """
        if weights is None:
            return self._values.sum(axis=0)
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (self.n_features,):
            raise FeatureError(
                f"weights must have shape ({self.n_features},), got {weights.shape}"
            )
        return np.tensordot(weights, self._values, axes=(0, 0))

    def project(
        self, projection: np.ndarray, names: Sequence[str] = None
    ) -> "FeatureTensor":
        """Apply a ``d×c`` linear map to every pair vector.

        Implements the paper's ``X̂(i, j, :) = Fᵀ X(i, j, :)``; returns a new
        ``(c, n, n)`` tensor in the shared latent space.
        """
        projection = np.asarray(projection, dtype=float)
        if projection.ndim != 2 or projection.shape[0] != self.n_features:
            raise FeatureError(
                f"projection must have shape ({self.n_features}, c), "
                f"got {projection.shape}"
            )
        projected = np.tensordot(projection.T, self._values, axes=(1, 0))
        if names is None:
            names = [f"latent{k}" for k in range(projection.shape[1])]
        return FeatureTensor(projected, names)

    @classmethod
    def from_matrices(
        cls, matrices: Sequence[np.ndarray], names: Sequence[str] = None
    ) -> "FeatureTensor":
        """Stack ``n×n`` matrices into a tensor."""
        if len(matrices) == 0:
            raise FeatureError("cannot build a tensor from zero matrices")
        shapes = {np.asarray(m).shape for m in matrices}
        if len(shapes) != 1:
            raise FeatureError(f"inconsistent slice shapes: {sorted(shapes)}")
        return cls(np.stack([np.asarray(m, dtype=float) for m in matrices]), names)

    def __repr__(self) -> str:
        return (
            f"FeatureTensor(d={self.n_features}, n={self.n_users}, "
            f"features={self._names})"
        )
