"""The end-to-end intimacy feature pipeline.

:class:`IntimacyFeatureExtractor` turns one heterogeneous network (plus a
*training* view of its social structure) into the paper's feature tensor
``X ∈ R^{d×n×n}``.  Structural features are always computed from the
training view so held-out test links never leak into the features.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import FeatureError
from repro.features.metapath import METAPATHS, metapath_count_matrix
from repro.features.spatial import checkin_similarity
from repro.features.structural import (
    adamic_adar_matrix,
    common_neighbors_matrix,
    jaccard_matrix,
    katz_matrix,
    preferential_attachment_matrix,
    resource_allocation_matrix,
)
from repro.features.temporal import temporal_similarity
from repro.features.tensor import FeatureTensor
from repro.features.textual import word_usage_similarity
from repro.networks.heterogeneous import HeterogeneousNetwork
from repro.networks.social import SocialGraph

STRUCTURAL_FEATURES = (
    "common_neighbors",
    "jaccard",
    "adamic_adar",
    "resource_allocation",
    "preferential_attachment",
    "katz",
)
ATTRIBUTE_FEATURES = (
    "checkin_similarity",
    "temporal_similarity",
    "word_similarity",
)
METAPATH_FEATURES = tuple(f"metapath_{mp}" for mp in METAPATHS)

DEFAULT_FEATURES = STRUCTURAL_FEATURES + ATTRIBUTE_FEATURES + METAPATH_FEATURES
"""All features the extractor can produce, in canonical order."""


class IntimacyFeatureExtractor:
    """Extract the intimacy feature tensor of one network.

    Parameters
    ----------
    features:
        Which features to extract, a subset of :data:`DEFAULT_FEATURES`
        (defaults to all of them).
    katz_beta, katz_max_length:
        Parameters of the truncated Katz structural feature.
    normalize:
        Whether to max-normalize each slice (recommended; puts counts and
        cosines on a common scale before domain adaptation).

    Examples
    --------
    >>> from repro.synth import generate_aligned_pair
    >>> aligned = generate_aligned_pair(scale=60, random_state=0)
    >>> extractor = IntimacyFeatureExtractor()
    >>> tensor = extractor.extract(aligned.target)
    >>> tensor.n_users == aligned.target.n_users
    True
    """

    def __init__(
        self,
        features: Sequence[str] = None,
        katz_beta: float = 0.05,
        katz_max_length: int = 3,
        normalize: bool = True,
    ):
        if features is None:
            features = DEFAULT_FEATURES
        unknown = [f for f in features if f not in DEFAULT_FEATURES]
        if unknown:
            raise FeatureError(
                f"unknown features {unknown}; supported: {list(DEFAULT_FEATURES)}"
            )
        if len(features) == 0:
            raise FeatureError("at least one feature must be requested")
        self.features = tuple(features)
        self.katz_beta = katz_beta
        self.katz_max_length = katz_max_length
        self.normalize = normalize

    @property
    def n_features(self) -> int:
        """Number of slices the extractor produces (the paper's d)."""
        return len(self.features)

    def extract(
        self,
        network: HeterogeneousNetwork,
        training_graph: Optional[SocialGraph] = None,
    ) -> FeatureTensor:
        """Build the feature tensor.

        Parameters
        ----------
        network:
            Heterogeneous network supplying attribute information.
        training_graph:
            Social structure to compute structural features from.  Pass the
            *training* view during evaluation so test links do not leak;
            defaults to the network's full structure.
        """
        if training_graph is None:
            training_graph = SocialGraph.from_network(network)
        if training_graph.n_users != network.n_users:
            raise FeatureError(
                f"training graph has {training_graph.n_users} users but the "
                f"network has {network.n_users}"
            )
        adjacency = training_graph.adjacency
        matrices: List[np.ndarray] = []
        for name in self.features:
            matrices.append(self._compute(name, network, adjacency))
        tensor = FeatureTensor.from_matrices(matrices, list(self.features))
        return tensor.normalized() if self.normalize else tensor

    def extract_many(
        self,
        networks: Sequence[HeterogeneousNetwork],
        training_graphs: Optional[Sequence[Optional[SocialGraph]]] = None,
        max_workers: Optional[int] = None,
    ):
        """:meth:`extract` for several networks, fanned out over threads.

        Each network's extraction is independent and spends its time in
        numpy kernels that release the GIL, so the K aligned sources of a
        transfer task extract concurrently.  Returns ``(tensors,
        seconds)`` where both lists follow the input order and
        ``seconds[i]`` is network ``i``'s own extraction wall time.
        """
        from repro.perf.parallel import parallel_map

        networks = list(networks)
        if training_graphs is None:
            training_graphs = [None] * len(networks)
        elif len(training_graphs) != len(networks):
            raise FeatureError(
                f"{len(training_graphs)} training graphs for "
                f"{len(networks)} networks"
            )

        def _one(job):
            network, graph = job
            return self.extract(network, graph)

        return parallel_map(
            _one, list(zip(networks, training_graphs)), max_workers=max_workers
        )

    # ------------------------------------------------------------------
    def _compute(
        self,
        name: str,
        network: HeterogeneousNetwork,
        adjacency: np.ndarray,
    ) -> np.ndarray:
        if name == "common_neighbors":
            return common_neighbors_matrix(adjacency)
        if name == "jaccard":
            return jaccard_matrix(adjacency)
        if name == "adamic_adar":
            return adamic_adar_matrix(adjacency)
        if name == "resource_allocation":
            return resource_allocation_matrix(adjacency)
        if name == "preferential_attachment":
            return preferential_attachment_matrix(adjacency)
        if name == "katz":
            return katz_matrix(adjacency, self.katz_beta, self.katz_max_length)
        if name == "checkin_similarity":
            return checkin_similarity(network)
        if name == "temporal_similarity":
            return temporal_similarity(network)
        if name == "word_similarity":
            return word_usage_similarity(network)
        if name.startswith("metapath_"):
            return metapath_count_matrix(network, name[len("metapath_"):])
        raise FeatureError(f"unknown feature {name!r}")
