"""Spatial (check-in) intimacy features.

Two users who check in at the same venues are "close" in the paper's sense.
We build a user-by-location visit-count matrix from the HIN's posts and score
pairs by cosine similarity of their visit profiles.
"""

from __future__ import annotations

import numpy as np

from repro.networks.heterogeneous import HeterogeneousNetwork
from repro.utils.matrices import zero_diagonal


def user_location_counts(network: HeterogeneousNetwork) -> np.ndarray:
    """User-by-location check-in counts ``(n_users, n_locations)``.

    Rows follow ``network.user_ids`` order; columns follow sorted location
    ids.  Posts without a check-in contribute nothing.
    """
    user_index = network.user_index()
    location_ids = sorted(loc.location_id for loc in network.locations())
    location_index = {lid: i for i, lid in enumerate(location_ids)}
    counts = np.zeros((network.n_users, len(location_ids)))
    for post in network.posts():
        if post.has_checkin:
            counts[user_index[post.author_id], location_index[post.location_id]] += 1
    return counts


def cosine_similarity_matrix(profiles: np.ndarray) -> np.ndarray:
    """Pairwise cosine similarity of row vectors, zero diagonal.

    Rows with zero norm get similarity 0 with everything.
    """
    profiles = np.asarray(profiles, dtype=float)
    norms = np.linalg.norm(profiles, axis=1)
    safe = np.where(norms > 0, norms, 1.0)
    unit = profiles / safe[:, None]
    similarity = unit @ unit.T
    similarity[norms == 0, :] = 0.0
    similarity[:, norms == 0] = 0.0
    return zero_diagonal(similarity)


def checkin_similarity(network: HeterogeneousNetwork) -> np.ndarray:
    """Cosine similarity of user check-in profiles (``n×n``)."""
    return cosine_similarity_matrix(user_location_counts(network))
