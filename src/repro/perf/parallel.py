"""Order-preserving thread fan-out for BLAS-heavy per-source work.

The K-source intimacy pipeline is embarrassingly parallel: each source's
feature extraction and adapted-slice transfer touches only that source's
matrices, and the heavy lifting is numpy/BLAS code that releases the GIL.
A thread pool therefore gives real concurrency without any of the
pickling or memory-duplication cost of processes.

:func:`parallel_map` preserves input order, times every item
individually (so per-source wall time can be published through the
metrics registry), degenerates to a plain sequential loop for a single
item or ``max_workers=1`` (bit-identical semantics, no pool spin-up),
and propagates the first worker exception to the caller.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

T = TypeVar("T")
R = TypeVar("R")

_DEFAULT_WORKER_CAP = 8


def default_workers(n_items: int, max_workers: Optional[int] = None) -> int:
    """Worker count for ``n_items`` tasks: bounded by items, cores and cap."""
    if max_workers is not None:
        if int(max_workers) < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        return min(n_items, int(max_workers))
    return max(1, min(n_items, os.cpu_count() or 1, _DEFAULT_WORKER_CAP))


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    max_workers: Optional[int] = None,
) -> Tuple[List[R], List[float]]:
    """Apply ``fn`` to every item concurrently; returns (results, seconds).

    ``results[i]`` corresponds to ``items[i]`` regardless of completion
    order, and ``seconds[i]`` is that item's own wall time (not the
    batch's).  With one item or ``max_workers=1`` the items run
    sequentially on the calling thread.
    """
    items = list(items)
    seconds = [0.0] * len(items)

    def timed(index_item: Tuple[int, T]) -> R:
        index, item = index_item
        start = time.perf_counter()
        result = fn(item)
        seconds[index] = time.perf_counter() - start
        return result

    if not items:
        return [], []
    workers = default_workers(len(items), max_workers)
    if workers == 1:
        results = [timed(job) for job in enumerate(items)]
    else:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            results = list(pool.map(timed, enumerate(items)))
    return results, seconds
