"""Order-preserving thread and process fan-out for per-item work.

The K-source intimacy pipeline is embarrassingly parallel: each source's
feature extraction and adapted-slice transfer touches only that source's
matrices, and the heavy lifting is numpy/BLAS code that releases the GIL.
A thread pool therefore gives real concurrency without any of the
pickling or memory-duplication cost of processes.

:func:`parallel_map` preserves input order, times every item
individually (so per-source wall time can be published through the
metrics registry), degenerates to a plain sequential loop for a single
item or ``max_workers=1`` (bit-identical semantics, no pool spin-up),
and propagates the first worker exception to the caller.

:func:`parallel_map_processes` is the same contract over a
**process** pool, for work that holds the GIL (pure-Python loops,
scipy code paths that never release it) — the sharded solver fans its
per-shard fits out here so shard count, not user count, bounds the
wall clock on multi-core machines.  Function and items must be
picklable; on platforms where process pools cannot start (sandboxes
without semaphores) it degrades to the thread pool, which is
result-identical because workers are required to be pure functions of
their item.

Both fan-outs snapshot the caller's **runtime context** — request id,
run id and active trace context, via
:func:`~repro.observability.propagation.inject_runtime_context` — and
re-bind it inside every worker (thread *or* child process), so log
records and spans emitted by per-item work carry the same correlation
ids as the request that triggered it.  The payload is a small dict of
strings; pickling it to children costs nothing measurable.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from itertools import repeat
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

from repro.observability.propagation import (
    activate_runtime_context,
    inject_runtime_context,
)

T = TypeVar("T")
R = TypeVar("R")

_DEFAULT_WORKER_CAP = 8


def default_workers(n_items: int, max_workers: Optional[int] = None) -> int:
    """Worker count for ``n_items`` tasks: bounded by items, cores and cap."""
    if max_workers is not None:
        if int(max_workers) < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        return min(n_items, int(max_workers))
    return max(1, min(n_items, os.cpu_count() or 1, _DEFAULT_WORKER_CAP))


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    max_workers: Optional[int] = None,
) -> Tuple[List[R], List[float]]:
    """Apply ``fn`` to every item concurrently; returns (results, seconds).

    ``results[i]`` corresponds to ``items[i]`` regardless of completion
    order, and ``seconds[i]`` is that item's own wall time (not the
    batch's).  With one item or ``max_workers=1`` the items run
    sequentially on the calling thread.  Each worker thread runs under
    the submitting thread's runtime context (request id / trace), so
    per-item logs stay correlated with the triggering request.
    """
    items = list(items)
    seconds = [0.0] * len(items)
    runtime = inject_runtime_context()

    def timed(index_item: Tuple[int, T]) -> R:
        index, item = index_item
        start = time.perf_counter()
        with activate_runtime_context(runtime):
            result = fn(item)
        seconds[index] = time.perf_counter() - start
        return result

    if not items:
        return [], []
    workers = default_workers(len(items), max_workers)
    if workers == 1:
        results = [timed(job) for job in enumerate(items)]
    else:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            results = list(pool.map(timed, enumerate(items)))
    return results, seconds


def _timed_call(
    fn: Callable[[T], R], item: T, runtime=None
) -> Tuple[R, float]:
    """Run one item in a worker process, returning (result, seconds).

    Module-level so it pickles; the item's own wall time is measured
    inside the child, excluding fork/dispatch overhead.  ``runtime`` is
    the parent's serialized runtime context (request id / run id /
    trace); it is re-bound around ``fn`` so the child's log records and
    bridged spans correlate with the originating request.
    """
    start = time.perf_counter()
    with activate_runtime_context(runtime):
        result = fn(item)
    return result, time.perf_counter() - start


def parallel_map_processes(
    fn: Callable[[T], R],
    items: Sequence[T],
    max_workers: Optional[int] = None,
) -> Tuple[List[R], List[float]]:
    """Apply ``fn`` to every item across processes; returns (results, seconds).

    Same contract as :func:`parallel_map` — ``results[i]`` corresponds to
    ``items[i]`` regardless of completion order, ``seconds[i]`` is that
    item's own (in-child) wall time, one item or ``max_workers=1`` runs
    sequentially in the calling process — but workers are separate
    interpreters, so Python-level work scales past the GIL.  ``fn`` and
    every item must be picklable, and ``fn`` must be a pure function of
    its item: results are collected by input index, which is what makes
    the output independent of worker scheduling.  The caller's runtime
    context travels to each child in the task payload and is re-bound
    there via contextvars, so cross-process work keeps its request and
    trace correlation.  When the platform cannot start a process pool at
    all, the call falls back to the thread pool (purity makes that
    result-identical).
    """
    items = list(items)
    if not items:
        return [], []
    workers = default_workers(len(items), max_workers)
    runtime = inject_runtime_context()
    if workers == 1:
        pairs = [_timed_call(fn, item, runtime) for item in items]
        return [r for r, _ in pairs], [s for _, s in pairs]
    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            pairs = list(
                pool.map(_timed_call, repeat(fn), items, repeat(runtime))
            )
    except (
        OSError,
        PermissionError,
        BrokenProcessPool,
        pickle.PicklingError,
        AttributeError,  # local functions/lambdas surface as this
        TypeError,  # unpicklable closed-over state (locks, handles)
    ):
        # No usable process primitives (restricted sandbox), the pool died
        # before producing results, or fn/items cannot cross the process
        # boundary: the thread pool computes the same answers for pure fn,
        # just without GIL-free scaling.
        return parallel_map(fn, items, max_workers)
    return [r for r, _ in pairs], [s for _, s in pairs]
