"""Warm-started, adaptive-rank singular value thresholding.

The dominant cost of every CCCP round is the SVD inside the trace-norm
proximal step.  Consecutive forward-backward iterates differ by O(θ)
(one gradient step plus entry-wise shrinkage), so the singular subspace
the *previous* proximal step computed is an excellent starting guess for
the current one — yet the seed solver cold-started a full dense SVD (or
a fixed-vector Lanczos) from scratch on every single inner iteration.

:class:`WarmStartSVT` is a stateful SVT operator built on randomized
subspace iteration (Halko, Martinsson & Tropp 2011):

1. the range-finder sketch is seeded with the previous step's retained
   right singular subspace (plus deterministic Gaussian oversampling
   columns), so one or two power iterations recover the new subspace;
2. the operating rank *adapts* to the observed spectrum: when the
   smallest computed singular value still exceeds the shrinkage
   threshold the rank doubles and the sketch is rebuilt (nothing above
   the threshold can hide outside the sketch once its smallest Ritz
   value falls below it), and when the retained rank sits well below
   the budget the rank shrinks back;
3. the result is *verified*, not hoped for: Ritz values must stabilize
   across power iterations and every retained triplet must satisfy
   ``‖A v_i − σ_i u_i‖ ≤ residual_tol · σ_max``.  Any doubt — including
   an injected ``solver.svd.truncated`` fault — falls back to the exact
   dense prox (the same backstop the legacy truncated path used), so
   the operator is never silently lossy.

With a ``max_rank`` cap the engine instead reproduces the semantics of
the legacy *truncated* path (a model's ``svd_rank``): the rank never
grows past the cap, and when spectrum above the threshold spills past it
the application is accepted as a best-effort rank-capped prox and the
loss is surfaced exactly like the legacy path surfaced it — a
:class:`TruncatedSVTWarning` plus the ``svt.lossy_truncations`` counter
and ``svt.tail_excess`` metric.  Because a capped operator is only
specified up to the cap's own truncation error (which is O(σ) when the
spectrum is clustered at the cap, making individual boundary triplets
ill-conditioned), capped applications verify against the proportionate
``lossy_ritz_tol`` / ``lossy_residual_tol`` instead of the exactness
tolerances — that is what lets a warm start finish in a handful of
power iterations where a cold Lanczos run pays hundreds of matvecs.

The spectrum of each application is kept on the instance
(:attr:`last_spectrum`, :attr:`last_output_trace_norm`) so objective
evaluations can reuse it instead of paying a second SVD; see
:meth:`repro.optim.proximal.TraceNormProx.value`.

Determinism: the oversampling columns come from a fixed-seed generator
that is re-created on every application, and everything else is plain
LAPACK, so a given matrix sequence always produces the identical output
sequence — same-seed fits remain reproducible.
"""

from __future__ import annotations

import time
import warnings
from typing import Dict, Optional

import numpy as np

from repro.exceptions import TruncatedSVTWarning
from repro.observability.tracer import Tracer, is_tracing
from repro.optim.proximal import _dense_svd, _record_svt_metrics
from repro.reliability.faults import fault_point
from repro.utils.validation import check_non_negative


class WarmStartSVT:
    """Stateful SVT: warm-started randomized range finder, adaptive rank.

    Parameters
    ----------
    initial_rank:
        Starting rank guess (e.g. a model's ``svd_rank``); defaults to
        ``min_rank``.  Unlike a static cap this is only a starting point —
        the operator grows or shrinks it per step.
    max_rank:
        Optional hard ceiling on the adaptive rank.  ``None`` (default)
        means the engine is *exact*: it grows until the whole
        supra-threshold spectrum is captured (or goes dense).  A value
        reproduces the legacy truncated path's rank-capped, possibly
        lossy operator — see the module docstring.
    min_rank:
        Floor of the adaptive rank.
    oversample:
        Extra sketch columns beyond the operating rank; they both
        stabilize the range finder and act as the tail probe.
    shrink_slack:
        How far the retained rank may sit below the operating rank
        before the rank is shrunk for the next application.
    ritz_tol:
        Relative stabilization tolerance on the Ritz values across power
        iterations.
    residual_tol:
        Relative residual bound every *retained* singular triplet must
        satisfy; a violation promotes the step to the exact dense prox.
    lossy_ritz_tol, lossy_residual_tol:
        The capped-mode (``max_rank`` set) counterparts of ``ritz_tol``
        and ``residual_tol``.  Proportionate to the cap's own truncation
        error rather than to machine precision: a clustered spectrum at
        the cap boundary makes individual triplets ill-conditioned, so
        demanding exactness there would force a dense fallback on every
        step of an operator that is approximate by construction.
    max_refinements:
        Power-iteration budget before giving up on the randomized path.
    dense_cutoff:
        Matrices with ``min(shape)`` at or below this size always take
        the exact dense path (a dense SVD is already cheap there, and it
        still seeds the warm subspace for later growth).
    dense_fallback_cutoff:
        Largest ``min(shape)`` at which a failed verification may still
        *recover* through the exact dense prox.  Beyond it the dense
        backstop would materialize the very O(n²) arrays the factored
        path exists to avoid, so the engine instead accepts the
        best-effort randomized triplet — warned via
        :class:`TruncatedSVTWarning` and counted in
        ``stats["unverified_accepts"]`` — keeping the memory contract
        intact at benchmark scale.  Only the factored path consults this;
        the dense path already holds a dense operand.
    seed:
        Seed of the deterministic oversampling columns.
    """

    def __init__(
        self,
        initial_rank: Optional[int] = None,
        max_rank: Optional[int] = None,
        min_rank: int = 8,
        oversample: int = 8,
        shrink_slack: int = 8,
        ritz_tol: float = 1e-11,
        residual_tol: float = 1e-9,
        lossy_ritz_tol: float = 1e-4,
        lossy_residual_tol: float = 2e-2,
        max_refinements: int = 40,
        dense_cutoff: int = 96,
        dense_fallback_cutoff: int = 2048,
        seed: int = 0x5EED,
    ):
        self.min_rank = int(min_rank)
        if self.min_rank < 1:
            raise ValueError(f"min_rank must be >= 1, got {min_rank}")
        if initial_rank is not None and int(initial_rank) < 1:
            raise ValueError(f"initial_rank must be >= 1, got {initial_rank}")
        if max_rank is not None and int(max_rank) < 1:
            raise ValueError(f"max_rank must be >= 1, got {max_rank}")
        self.max_rank = None if max_rank is None else int(max_rank)
        self.oversample = int(oversample)
        if self.oversample < 2:
            raise ValueError(f"oversample must be >= 2, got {oversample}")
        self.shrink_slack = int(shrink_slack)
        self.ritz_tol = float(ritz_tol)
        self.residual_tol = float(residual_tol)
        self.lossy_ritz_tol = float(lossy_ritz_tol)
        self.lossy_residual_tol = float(lossy_residual_tol)
        self.max_refinements = int(max_refinements)
        self.dense_cutoff = int(dense_cutoff)
        self.dense_fallback_cutoff = int(dense_fallback_cutoff)
        self.seed = int(seed)
        self.rank = max(self.min_rank, int(initial_rank or self.min_rank))
        if self.max_rank is not None:
            self.rank = min(self.rank, self.max_rank)
        self._subspace: Optional[np.ndarray] = None
        # Spectrum cache of the most recent application.
        self.last_output: Optional[np.ndarray] = None
        self.last_output_l1: float = 0.0
        self.last_output_trace_norm: float = 0.0
        self.last_spectrum: Optional[np.ndarray] = None
        self.last_threshold: float = 0.0
        self.stats: Dict[str, float] = {
            "applies": 0,
            "factored_applies": 0,
            "dense_applies": 0,
            "dense_fallbacks": 0,
            "unverified_accepts": 0,
            "lossy_truncations": 0,
            "rank_grows": 0,
            "rank_shrinks": 0,
            "refinements": 0,
            "seconds": 0.0,
        }

    def reset(self) -> None:
        """Drop the warm subspace and spectrum cache (rank is kept)."""
        self._subspace = None
        self.last_output = None
        self.last_spectrum = None

    # ------------------------------------------------------------------
    def apply(
        self,
        matrix: np.ndarray,
        threshold: float,
        tracer: Optional[Tracer] = None,
    ) -> np.ndarray:
        """``prox_{threshold‖·‖*}(matrix)`` — exact up to ``residual_tol``."""
        threshold = check_non_negative(threshold, "threshold")
        matrix = np.asarray(matrix, dtype=float)
        start = time.perf_counter()
        self.stats["applies"] += 1
        if is_tracing(tracer):
            with tracer.span("svt"):
                output = self._apply(matrix, threshold, tracer)
        else:
            output = self._apply(matrix, threshold, tracer)
        self.stats["seconds"] += time.perf_counter() - start
        return output

    def _apply(
        self, matrix: np.ndarray, threshold: float, tracer: Optional[Tracer]
    ) -> np.ndarray:
        n_small = min(matrix.shape)
        # Every application traverses the truncated-SVT fault site, like
        # the legacy truncated path did: an injected fault downgrades this
        # step to the dense backstop regardless of matrix size.
        try:
            fault_point("solver.svd.truncated")
        except np.linalg.LinAlgError as exc:
            return self._fallback(matrix, threshold, tracer, repr(exc))
        if n_small <= self.dense_cutoff:
            return self._apply_dense(matrix, threshold, tracer)
        # A cap at (or past) the dense regime is not actually truncating,
        # matching the legacy path's promotion of such ranks to the exact
        # dense prox.
        capped = self.max_rank is not None and self.max_rank < n_small - 1
        rank_ceiling = self.max_rank if capped else n_small
        limit = None
        while True:
            budget = self.rank + self.oversample
            if budget >= n_small - 1:
                # The adaptive rank grew into the dense regime: a sketch
                # this wide costs more than the exact factorization.
                return self._apply_dense(matrix, threshold, tracer)
            can_grow = self.rank < rank_ceiling
            try:
                factors, ritz = self._randomized_factors(
                    matrix, budget, capped, threshold, can_grow
                )
            except np.linalg.LinAlgError as exc:
                return self._fallback(matrix, threshold, tracer, repr(exc))
            if factors is None:
                if ritz is not None and ritz[-1] > threshold and (
                    self.rank < rank_ceiling
                ):
                    # The Ritz values have not settled, but even their
                    # current (under-)estimates show supra-threshold
                    # spectrum beyond the sketch — e.g. a flat spectrum,
                    # where individual triplets never stabilize.  Growing
                    # is the productive move; falling back dense is not.
                    self._grow(rank_ceiling, tracer)
                    continue
                return self._fallback(
                    matrix, threshold, tracer, "refinement budget exhausted"
                )
            u, singular, vt = factors
            if singular[-1] > threshold and can_grow:
                # Even the smallest computed value survives shrinkage, so
                # spectrum above the threshold may extend beyond the
                # sketch: double the rank and resample.
                self._grow(rank_ceiling, tracer)
                continue
            break
        # Uncapped: σ_{budget+1} ≤ σ_budget = singular[-1] ≤ threshold, so
        # every direction outside the sketch is provably shrunk to zero
        # and the truncated prox is exact (up to residual_tol).  Capped:
        # the retained set stops at the cap regardless, and — exactly like
        # the legacy truncated path's probe triplet — a supra-threshold
        # (cap+1)-th singular value means spectrum was dropped: accept the
        # best-effort rank-capped prox and surface the loss.
        if capped:
            limit = self.max_rank
            if (
                singular.size > limit
                and float(singular[limit]) > threshold
            ):
                self._record_lossy(
                    float(singular[limit]) - threshold, tracer
                )
        retained = int(np.count_nonzero(singular[:limit] > threshold))
        if not self._residuals_ok(matrix, u, singular, vt, retained, capped):
            return self._fallback(
                matrix, threshold, tracer, "retained-triplet residual too large"
            )
        return self._finish(u, singular, vt, threshold, tracer, limit=limit)

    def _grow(self, rank_ceiling: int, tracer: Optional[Tracer]) -> None:
        self.rank = min(2 * self.rank, rank_ceiling)
        self.stats["rank_grows"] += 1
        if is_tracing(tracer):
            tracer.count("svt.rank_grows")

    def _record_lossy(self, excess: float, tracer: Optional[Tracer]) -> None:
        self.stats["lossy_truncations"] += 1
        warnings.warn(
            f"warm-started SVT at rank cap {self.max_rank} is lossy: the "
            "(rank+1)-th singular value exceeds the shrinkage threshold, "
            "so part of the spectrum was dropped; raise svd_rank to "
            "recover the exact prox, or inspect the 'svt.tail_excess' "
            "tracer metric for the lost magnitude",
            TruncatedSVTWarning,
            stacklevel=5,
        )
        if is_tracing(tracer):
            tracer.count("svt.lossy_truncations")
            tracer.metric("svt.tail_excess", excess)

    # ------------------------------------------------------------------
    def _randomized_factors(
        self,
        matrix: np.ndarray,
        budget: int,
        capped: bool,
        threshold: float,
        can_grow: bool,
    ):
        """``(factors, ritz)``: verified top-``budget`` triplets, or doubt.

        Randomized subspace iteration seeded from the previous retained
        right subspace.  ``factors`` is descending (u, σ, vt) when the
        Ritz values stabilized (to ``lossy_ritz_tol`` in capped mode,
        ``ritz_tol`` otherwise), else ``None``; ``ritz`` is the last Ritz
        estimate either way, so the caller can distinguish "not yet
        converged but clearly needs a wider sketch" from genuine doubt.

        When ``can_grow`` and the smallest Ritz value already exceeds the
        shrinkage threshold, the iteration bails out immediately: Ritz
        values only sharpen upward, so the sketch is certain to be too
        narrow and every further refinement on it would be wasted — the
        caller grows the rank and rebuilds instead.
        """
        n = matrix.shape[1]
        sketch = np.empty((n, budget))
        filled = 0
        if self._subspace is not None and self._subspace.shape[0] == n:
            filled = min(self._subspace.shape[1], budget)
            sketch[:, :filled] = self._subspace[:, :filled]
        if filled < budget:
            rng = np.random.default_rng(self.seed)
            sketch[:, filled:] = rng.standard_normal((n, budget - filled))
        tolerance = self.lossy_ritz_tol if capped else self.ritz_tol
        q, r = np.linalg.qr(matrix @ sketch)
        estimates = np.linalg.svd(r, compute_uv=False)
        ritz = estimates
        if can_grow and ritz[-1] > threshold:
            return None, ritz
        converged = False
        for refinement in range(self.max_refinements):
            self.stats["refinements"] += 1
            v, _ = np.linalg.qr(matrix.T @ q)
            q, r = np.linalg.qr(matrix @ v)
            ritz = np.linalg.svd(r, compute_uv=False)
            if can_grow and ritz[-1] > threshold:
                return None, ritz
            scale = max(float(ritz[0]), np.finfo(float).tiny)
            if np.max(np.abs(ritz - estimates)) <= tolerance * scale:
                converged = True
                break
            estimates = ritz
        if not converged:
            return None, ritz
        # Rayleigh–Ritz on the converged range.
        small = q.T @ matrix
        u_small, singular, vt = np.linalg.svd(small, full_matrices=False)
        u = q @ u_small
        return (u, singular, vt), ritz

    def _residuals_ok(
        self,
        matrix: np.ndarray,
        u: np.ndarray,
        singular: np.ndarray,
        vt: np.ndarray,
        retained: int,
        capped: bool,
    ) -> bool:
        """``‖A v_i − σ_i u_i‖ ≤ tol · σ_max`` for every retained i."""
        if retained == 0:
            return True
        image = matrix @ vt[:retained].T
        image -= u[:, :retained] * singular[:retained]
        worst = float(np.linalg.norm(image, axis=0).max())
        scale = max(float(singular[0]), np.finfo(float).tiny)
        tolerance = self.lossy_residual_tol if capped else self.residual_tol
        return worst <= tolerance * scale

    # ------------------------------------------------------------------
    def _apply_dense(
        self, matrix: np.ndarray, threshold: float, tracer: Optional[Tracer]
    ) -> np.ndarray:
        self.stats["dense_applies"] += 1
        u, singular, vt = _dense_svd(matrix, tracer)
        return self._finish(u, singular, vt, threshold, tracer)

    def _fallback(
        self,
        matrix: np.ndarray,
        threshold: float,
        tracer: Optional[Tracer],
        reason: str,
    ) -> np.ndarray:
        """Exact dense recovery; mirrors the legacy truncated-path warning."""
        self.stats["dense_fallbacks"] += 1
        if is_tracing(tracer):
            tracer.count("svt.dense_fallbacks")
        warnings.warn(
            "warm-started SVT could not verify its randomized subspace; "
            "falling back to the exact dense SVT for this proximal step "
            f"({reason})",
            TruncatedSVTWarning,
            stacklevel=4,
        )
        return self._apply_dense(matrix, threshold, tracer)

    def _finish(
        self,
        u: np.ndarray,
        singular: np.ndarray,
        vt: np.ndarray,
        threshold: float,
        tracer: Optional[Tracer],
        limit: Optional[int] = None,
    ) -> np.ndarray:
        """Assemble the output from triplets, keeping at most ``limit``."""
        shrunk = np.maximum(singular - threshold, 0.0)
        retained = int(np.count_nonzero(shrunk[:limit]))
        output = (u[:, :retained] * shrunk[:retained]) @ vt[:retained]
        tail = float(singular[retained]) if retained < singular.size else 0.0
        self._update_rank(retained, tracer)
        keep = min(singular.size, self.rank + self.oversample)
        self._subspace = vt[:keep].T.copy()
        self.last_spectrum = singular.copy()
        self.last_threshold = float(threshold)
        self.last_output = output
        self.last_output_trace_norm = float(shrunk[:retained].sum())
        self.last_output_l1 = float(np.abs(output).sum())
        if is_tracing(tracer):
            tracer.metric("svt.adaptive_rank", self.rank)
            _record_svt_metrics(tracer, threshold, retained, tail)
        return output

    # -- factored path --------------------------------------------------
    def apply_factored(self, operand, threshold: float, tracer=None):
        """``prox_{threshold‖·‖*}`` of a factored operand, as factors.

        ``operand`` is anything exposing ``shape``, ``matmat(block)``,
        ``rmatmat(block)`` and ``to_dense()`` — in practice a
        :class:`~repro.factored.estimate.FactoredEstimate`.  The
        range finder runs entirely through matvecs (O(nnz·b + nk·b) per
        sketch multiply), so no dense ``n×n`` matrix is formed unless the
        problem is small (``dense_cutoff``) or verification fails and the
        exact dense backstop takes over.  Returns a pure low-rank
        :class:`~repro.factored.estimate.FactoredEstimate` whose ``s``
        holds the shrunk singular values exactly.

        Shares the warm subspace, adaptive rank and stats with
        :meth:`apply`: the verification tolerances, capped-mode lossy
        semantics and fault sites are identical by construction.
        """
        threshold = check_non_negative(threshold, "threshold")
        start = time.perf_counter()
        self.stats["applies"] += 1
        self.stats["factored_applies"] = (
            self.stats.get("factored_applies", 0) + 1
        )
        if is_tracing(tracer):
            with tracer.span("svt"):
                output = self._apply_factored(operand, threshold, tracer)
        else:
            output = self._apply_factored(operand, threshold, tracer)
        self.stats["seconds"] += time.perf_counter() - start
        return output

    def _apply_factored(self, operand, threshold: float, tracer):
        n_small = min(operand.shape)
        try:
            fault_point("solver.svd.truncated")
        except np.linalg.LinAlgError as exc:
            return self._fallback_factored(operand, threshold, tracer, repr(exc))
        if n_small <= self.dense_cutoff:
            return self._apply_dense_factored(operand, threshold, tracer)
        capped = self.max_rank is not None and self.max_rank < n_small - 1
        rank_ceiling = self.max_rank if capped else n_small
        limit = None
        # Past the fallback cutoff a dense recovery would materialize the
        # O(n²) arrays the factored path exists to avoid: accept the
        # best-effort randomized triplet instead (warned and counted).
        may_go_dense = n_small <= self.dense_fallback_cutoff
        mm, rmm = operand.matmat, operand.rmatmat
        while True:
            budget = self.rank + self.oversample
            if budget >= n_small - 1:
                return self._apply_dense_factored(operand, threshold, tracer)
            can_grow = self.rank < rank_ceiling
            try:
                factors, ritz, converged = self._randomized_factors_op(
                    mm, rmm, n_small, budget, capped, threshold, can_grow
                )
            except np.linalg.LinAlgError as exc:
                if not may_go_dense:
                    raise
                return self._fallback_factored(
                    operand, threshold, tracer, repr(exc)
                )
            if factors is None:
                if ritz is not None and ritz[-1] > threshold and (
                    self.rank < rank_ceiling
                ):
                    self._grow(rank_ceiling, tracer)
                    continue
                return self._fallback_factored(
                    operand, threshold, tracer, "refinement budget exhausted"
                )
            u, singular, vt = factors
            if not converged:
                if may_go_dense:
                    return self._fallback_factored(
                        operand,
                        threshold,
                        tracer,
                        "refinement budget exhausted",
                    )
                self._accept_unverified(
                    "refinement budget exhausted", tracer
                )
                break
            if singular[-1] > threshold and can_grow:
                self._grow(rank_ceiling, tracer)
                continue
            break
        if capped:
            limit = self.max_rank
            if singular.size > limit and float(singular[limit]) > threshold:
                self._record_lossy(float(singular[limit]) - threshold, tracer)
        retained = int(np.count_nonzero(singular[:limit] > threshold))
        if not self._residuals_ok_op(mm, u, singular, vt, retained, capped):
            if may_go_dense:
                return self._fallback_factored(
                    operand,
                    threshold,
                    tracer,
                    "retained-triplet residual too large",
                )
            self._accept_unverified(
                "retained-triplet residual too large", tracer
            )
        return self._finish_factored(
            u, singular, vt, threshold, tracer, limit=limit
        )

    def _accept_unverified(self, reason: str, tracer) -> None:
        """Record keeping the randomized triplet past the dense cutoff."""
        self.stats["unverified_accepts"] = (
            self.stats.get("unverified_accepts", 0) + 1
        )
        if is_tracing(tracer):
            tracer.count("svt.unverified_accepts")
        warnings.warn(
            "warm-started SVT could not verify its randomized subspace "
            f"({reason}); the operand is past dense_fallback_cutoff="
            f"{self.dense_fallback_cutoff}, so the best-effort randomized "
            "triplet was kept to preserve the O(nk) memory contract",
            TruncatedSVTWarning,
            stacklevel=4,
        )

    def _randomized_factors_op(
        self, mm, rmm, n: int, budget: int, capped: bool,
        threshold: float, can_grow: bool,
    ):
        """:meth:`_randomized_factors` driven through matvec closures.

        Deliberately a sibling of the dense version rather than a shared
        implementation: the dense hot path's numerics are pinned by golden
        regressions, so it keeps its exact expressions while this one
        phrases every product as ``mm``/``rmm`` (``q.T @ A`` becomes
        ``rmm(q).T`` — same sums, operator-friendly form).

        Returns ``(factors, ritz, converged)``.  ``factors`` is ``None``
        only on the rank-growth early exits; a refinement budget that
        runs out still yields the best-effort triplet with
        ``converged=False``, so the caller can decide between the dense
        backstop (small operands) and accepting it (operands too large
        to densify).
        """
        sketch = np.empty((n, budget))
        filled = 0
        if self._subspace is not None and self._subspace.shape[0] == n:
            filled = min(self._subspace.shape[1], budget)
            sketch[:, :filled] = self._subspace[:, :filled]
        if filled < budget:
            rng = np.random.default_rng(self.seed)
            sketch[:, filled:] = rng.standard_normal((n, budget - filled))
        tolerance = self.lossy_ritz_tol if capped else self.ritz_tol
        q, r = np.linalg.qr(mm(sketch))
        estimates = np.linalg.svd(r, compute_uv=False)
        ritz = estimates
        if can_grow and ritz[-1] > threshold:
            return None, ritz, False
        converged = False
        for _refinement in range(self.max_refinements):
            self.stats["refinements"] += 1
            v, _ = np.linalg.qr(rmm(q))
            q, r = np.linalg.qr(mm(v))
            ritz = np.linalg.svd(r, compute_uv=False)
            if can_grow and ritz[-1] > threshold:
                return None, ritz, False
            scale = max(float(ritz[0]), np.finfo(float).tiny)
            if np.max(np.abs(ritz - estimates)) <= tolerance * scale:
                converged = True
                break
            estimates = ritz
        small = rmm(q).T  # == q.T @ A, through the operator
        u_small, singular, vt = np.linalg.svd(small, full_matrices=False)
        u = q @ u_small
        return (u, singular, vt), ritz, converged

    def _residuals_ok_op(
        self, mm, u, singular, vt, retained: int, capped: bool
    ) -> bool:
        """:meth:`_residuals_ok` through the operand's matvec closure."""
        if retained == 0:
            return True
        image = mm(vt[:retained].T)
        image -= u[:, :retained] * singular[:retained]
        worst = float(np.linalg.norm(image, axis=0).max())
        scale = max(float(singular[0]), np.finfo(float).tiny)
        tolerance = self.lossy_residual_tol if capped else self.residual_tol
        return worst <= tolerance * scale

    def _apply_dense_factored(self, operand, threshold: float, tracer):
        """Exact dense prox of a small (or unverifiable) factored operand."""
        self.stats["dense_applies"] += 1
        u, singular, vt = _dense_svd(operand.to_dense(), tracer)
        return self._finish_factored(u, singular, vt, threshold, tracer)

    def _fallback_factored(self, operand, threshold: float, tracer, reason):
        """Dense-backstop recovery for the factored path (never silent)."""
        self.stats["dense_fallbacks"] += 1
        if is_tracing(tracer):
            tracer.count("svt.dense_fallbacks")
        warnings.warn(
            "warm-started SVT could not verify its randomized subspace; "
            "falling back to the exact dense SVT for this proximal step "
            f"({reason})",
            TruncatedSVTWarning,
            stacklevel=4,
        )
        return self._apply_dense_factored(operand, threshold, tracer)

    def _finish_factored(
        self, u, singular, vt, threshold: float, tracer, limit=None
    ):
        """Assemble a low-rank estimate from triplets; keep ≤ ``limit``."""
        from repro.factored.estimate import FactoredEstimate

        shrunk = np.maximum(singular - threshold, 0.0)
        retained = int(np.count_nonzero(shrunk[:limit]))
        tail = float(singular[retained]) if retained < singular.size else 0.0
        self._update_rank(retained, tracer)
        keep = min(singular.size, self.rank + self.oversample)
        self._subspace = vt[:keep].T.copy()
        self.last_spectrum = singular.copy()
        self.last_threshold = float(threshold)
        # No dense output exists on this path; the spectrum cache still
        # serves trace-norm evaluations through the estimate's own ``s``.
        self.last_output = None
        self.last_output_trace_norm = float(shrunk[:retained].sum())
        self.last_output_l1 = 0.0
        if is_tracing(tracer):
            tracer.metric("svt.adaptive_rank", self.rank)
            _record_svt_metrics(tracer, threshold, retained, tail)
        return FactoredEstimate.from_lowrank(
            np.ascontiguousarray(u[:, :retained]),
            shrunk[:retained].copy(),
            np.ascontiguousarray(vt[:retained]),
        )

    def _update_rank(self, retained: int, tracer: Optional[Tracer]) -> None:
        """Shrink the operating rank when it overshoots the retained rank."""
        ceiling = max(self.min_rank, retained + self.shrink_slack)
        if self.rank > ceiling:
            self.rank = max(self.min_rank, retained + 2)
            self.stats["rank_shrinks"] += 1
            if is_tracing(tracer):
                tracer.count("svt.rank_shrinks")

    def __repr__(self) -> str:
        return (
            f"WarmStartSVT(rank={self.rank}, max_rank={self.max_rank}, "
            f"oversample={self.oversample}, "
            f"dense_cutoff={self.dense_cutoff})"
        )
