"""Preallocated buffers for the forward-backward inner loop.

Every seed-solver iteration allocated at least four n×n temporaries
(the zero-initialized gradient accumulator, one array per smooth term's
gradient, the gradient-step iterate and the entry-wise prox outputs).
At the paper's 5k-user scale each of those is 200 MB of traffic per
iteration, so the allocator — not the FPU — sets the pace.

A :class:`Workspace` owns the handful of buffers the loop actually
needs: a gradient accumulator, a scratch array for out-parameter
accumulation / in-place proxes, and a ping-pong pair for the
gradient-step iterate (two, so the new iterate never overwrites the
previous one that convergence checks still read).  Buffers are reused
across iterations *and* across CCCP rounds; the solver copies the final
iterate out before returning whenever it still aliases workspace memory.

Workspaces are not thread-safe: one solver instance, one workspace.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


class Workspace:
    """Reusable buffers sized to one solver problem.

    Attributes
    ----------
    gradient:
        Accumulator for the summed smooth-term gradient.
    scratch:
        General-purpose temporary (gradient accumulation of secondary
        terms, sign masks of the in-place soft threshold, norm diffs).
    """

    def __init__(self, shape: Tuple[int, ...], dtype=np.float64):
        self.shape = tuple(shape)
        self.dtype = np.dtype(dtype)
        self.gradient = np.empty(shape, dtype=dtype)
        self.scratch = np.empty(shape, dtype=dtype)
        self._step = (
            np.empty(shape, dtype=dtype),
            np.empty(shape, dtype=dtype),
        )
        self._flip = 0

    @classmethod
    def ensure(
        cls, workspace: Optional["Workspace"], matrix: np.ndarray
    ) -> "Workspace":
        """Return ``workspace`` if it fits ``matrix``, else a fresh one."""
        if (
            workspace is not None
            and workspace.shape == matrix.shape
            and workspace.dtype == matrix.dtype
        ):
            return workspace
        return cls(matrix.shape, dtype=matrix.dtype)

    def step_buffer(self, avoid: Optional[np.ndarray] = None) -> np.ndarray:
        """The next ping-pong iterate buffer, never ``avoid`` itself.

        ``avoid`` is the previous iterate: after a step-halving recovery
        both ping-pong slots can end up on the same side, and handing the
        caller the buffer it is about to read from would corrupt the
        convergence check.
        """
        buffer = self._step[self._flip]
        if buffer is avoid:
            self._flip ^= 1
            buffer = self._step[self._flip]
        self._flip ^= 1
        return buffer

    def owns(self, array: np.ndarray) -> bool:
        """Whether ``array`` is one of this workspace's buffers.

        The solver uses this to decide if its final iterate must be
        copied out before the workspace is reused.
        """
        return (
            array is self.gradient
            or array is self.scratch
            or array is self._step[0]
            or array is self._step[1]
        )

    def l1_norm(self, matrix: np.ndarray) -> float:
        """``Σ|M_ij|`` computed through the scratch buffer (no temporary)."""
        np.abs(matrix, out=self.scratch)
        return float(self.scratch.sum())

    def l1_update_norm(self, current: np.ndarray, previous: np.ndarray) -> float:
        """``Σ|C_ij − P_ij|`` computed through the scratch buffer."""
        np.subtract(current, previous, out=self.scratch)
        np.abs(self.scratch, out=self.scratch)
        return float(self.scratch.sum())

    def __repr__(self) -> str:
        return f"Workspace(shape={self.shape}, dtype={self.dtype})"
