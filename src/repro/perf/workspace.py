"""Preallocated buffers for the forward-backward inner loop.

Every seed-solver iteration allocated at least four n×n temporaries
(the zero-initialized gradient accumulator, one array per smooth term's
gradient, the gradient-step iterate and the entry-wise prox outputs).
At the paper's 5k-user scale each of those is 200 MB of traffic per
iteration, so the allocator — not the FPU — sets the pace.

A :class:`Workspace` owns the handful of buffers the loop actually
needs: a gradient accumulator, a scratch array for out-parameter
accumulation / in-place proxes, and a ping-pong pair for the
gradient-step iterate (two, so the new iterate never overwrites the
previous one that convergence checks still read).  Buffers are reused
across iterations *and* across CCCP rounds; the solver copies the final
iterate out before returning whenever it still aliases workspace memory.

Workspaces are not thread-safe: one solver instance, one workspace.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


class Workspace:
    """Reusable buffers sized to one solver problem.

    Attributes
    ----------
    gradient:
        Accumulator for the summed smooth-term gradient.
    scratch:
        General-purpose temporary (gradient accumulation of secondary
        terms, sign masks of the in-place soft threshold, norm diffs).
    """

    def __init__(self, shape: Tuple[int, ...], dtype=np.float64):
        self.shape = tuple(shape)
        self.dtype = np.dtype(dtype)
        self.gradient = np.empty(shape, dtype=dtype)
        self.scratch = np.empty(shape, dtype=dtype)
        self._step = (
            np.empty(shape, dtype=dtype),
            np.empty(shape, dtype=dtype),
        )
        self._flip = 0

    @classmethod
    def ensure(
        cls, workspace: Optional["Workspace"], matrix: np.ndarray
    ) -> "Workspace":
        """Return ``workspace`` if it fits ``matrix``, else a fresh one."""
        if (
            workspace is not None
            and workspace.shape == matrix.shape
            and workspace.dtype == matrix.dtype
        ):
            return workspace
        return cls(matrix.shape, dtype=matrix.dtype)

    def step_buffer(self, avoid: Optional[np.ndarray] = None) -> np.ndarray:
        """The next ping-pong iterate buffer, never ``avoid`` itself.

        ``avoid`` is the previous iterate: after a step-halving recovery
        both ping-pong slots can end up on the same side, and handing the
        caller the buffer it is about to read from would corrupt the
        convergence check.
        """
        buffer = self._step[self._flip]
        if buffer is avoid:
            self._flip ^= 1
            buffer = self._step[self._flip]
        self._flip ^= 1
        return buffer

    def owns(self, array: np.ndarray) -> bool:
        """Whether ``array`` is one of this workspace's buffers.

        The solver uses this to decide if its final iterate must be
        copied out before the workspace is reused.
        """
        return (
            array is self.gradient
            or array is self.scratch
            or array is self._step[0]
            or array is self._step[1]
        )

    def l1_norm(self, matrix: np.ndarray) -> float:
        """``Σ|M_ij|`` computed through the scratch buffer (no temporary)."""
        np.abs(matrix, out=self.scratch)
        return float(self.scratch.sum())

    def l1_update_norm(self, current: np.ndarray, previous: np.ndarray) -> float:
        """``Σ|C_ij − P_ij|`` computed through the scratch buffer."""
        np.subtract(current, previous, out=self.scratch)
        np.abs(self.scratch, out=self.scratch)
        return float(self.scratch.sum())

    def __repr__(self) -> str:
        return f"Workspace(shape={self.shape}, dtype={self.dtype})"


class FactoredWorkspace:
    """Reusable buffers for the factored forward-backward inner loop.

    The factored iteration's entry-wise work happens on the fixed sparse
    support Ω (DESIGN.md §13): every iteration extracts the low-rank
    iterate's values over Ω, proxes them, and rebuilds the CSR residual
    on the same pattern.  This workspace pins Ω's index arrays once
    (shared by every residual the loop builds — no per-iteration index
    copies) and owns the O(nnz) value buffers.

    Parameters
    ----------
    pattern:
        A scipy CSR matrix whose sparsity pattern *is* Ω (values are
        ignored).  Canonicalized (sorted indices) on ingestion.
    """

    def __init__(self, pattern):
        from scipy import sparse

        pattern = sparse.csr_matrix(pattern)
        pattern.sum_duplicates()
        pattern.sort_indices()
        self.n = int(pattern.shape[0])
        self.indptr = pattern.indptr.copy()
        self.indices = pattern.indices.copy()
        self.rows = np.repeat(
            np.arange(self.n), np.diff(self.indptr)
        ).astype(self.indices.dtype)
        self.nnz = int(self.indices.size)
        self.values = np.empty(self.nnz)
        self.scratch = np.empty(self.nnz)

    @classmethod
    def ensure(cls, workspace, pattern) -> "FactoredWorkspace":
        """Return ``workspace`` if it matches ``pattern``'s Ω, else rebuild."""
        from scipy import sparse

        candidate = sparse.csr_matrix(pattern)
        if (
            workspace is not None
            and workspace.n == candidate.shape[0]
            and workspace.nnz == candidate.nnz
            and np.array_equal(workspace.indptr, candidate.indptr)
            and np.array_equal(workspace.indices, candidate.indices)
        ):
            return workspace
        return cls(candidate)

    def lowrank_entries(self, estimate) -> np.ndarray:
        """The low-rank part's values over Ω, written into ``values``.

        O(nnz·k) work; the gather temporaries are transient, the result
        buffer is reused across iterations.
        """
        if estimate.rank == 0:
            self.values.fill(0.0)
            return self.values
        np.einsum(
            "ik,ik->i",
            estimate.u[self.rows] * estimate.s,
            estimate.vt[:, self.indices].T,
            out=self.values,
        )
        return self.values

    def residual_from(self, data: np.ndarray):
        """A CSR residual over Ω from a data vector (indices shared)."""
        from scipy import sparse

        return sparse.csr_matrix(
            (data, self.indices, self.indptr), shape=(self.n, self.n)
        )

    def __repr__(self) -> str:
        return f"FactoredWorkspace(n={self.n}, nnz={self.nnz})"
