"""Solver hot-path kernels: warm-started SVT, workspaces, thread fan-out.

The fit path of the paper's Algorithm 1 spends essentially all of its time
in three places — the SVD inside every trace-norm proximal step, the
gradient/prox entry-wise arithmetic of the forward-backward inner loop,
and the per-source intimacy extraction pipeline.  This package holds the
kernels that attack each one:

* :class:`~repro.perf.warm_svt.WarmStartSVT` — a stateful singular value
  thresholding operator that warm-starts each proximal step's randomized
  range finder from the previous step's retained singular subspace and
  adapts its rank to the observed spectrum/threshold gap (DESIGN.md §12).
* :class:`~repro.perf.workspace.Workspace` — preallocated buffers that
  make the forward-backward inner loop allocation-free.
* :func:`~repro.perf.parallel.parallel_map` — an order-preserving thread
  fan-out (numpy releases the GIL inside BLAS) used by the K-source
  intimacy pipeline.

``WarmStartSVT`` is loaded lazily (PEP 562) because it imports the
proximal operators, which themselves sit below this package's workspace
in the import graph.
"""

from repro.perf.parallel import (
    default_workers,
    parallel_map,
    parallel_map_processes,
)
from repro.perf.workspace import Workspace

__all__ = [
    "WarmStartSVT",
    "Workspace",
    "default_workers",
    "parallel_map",
    "parallel_map_processes",
]


def __getattr__(name):
    if name == "WarmStartSVT":
        from repro.perf.warm_svt import WarmStartSVT

        return WarmStartSVT
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
