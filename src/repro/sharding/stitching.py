"""Cross-shard score calibration through replicated anchor users.

Each shard's factored fit produces scores on its own (unnormalized)
scale: the SVT trajectory, the sub-problem's spectrum and the per-shard
rank budget all differ, so raw scores from different shards are not
directly comparable when the serving layer merges candidate lists.  The
anchor users replicated by the :class:`~repro.sharding.partition.ShardPlan`
give every pair of adjacent shards a set of user *pairs* both shards
scored; equating the mean positive score over those shared pairs pins
the shards to one common scale.

Formally, with ``m_{st}`` the mean shared-pair score of shard ``s``
against shard ``t``, we solve for per-shard multipliers ``λ_s`` with
``λ_s · m_{st} ≈ λ_t · m_{ts}`` in log space — a least-squares problem
on the shard overlap graph, one equation per overlapping pair, anchored
at ``λ = 1`` on the smallest shard id of each connected component (so
the single-shard plan is stitched with exactly ``λ = [1.0]`` and the
unsharded trajectory passes through untouched).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.sharding.partition import ShardPlan

_MAX_OVERLAP_USERS = 64
"""Shared users sampled per shard pair (all i<j pairs among them)."""

_POSITIVE_EPS = 1e-12
"""Scores below this are treated as zero when forming scale ratios."""


def _shared_pair_means(
    plan: ShardPlan,
    estimates: Sequence,
    s: int,
    t: int,
) -> Tuple[float, float]:
    """Mean positive score of shards ``s`` and ``t`` over shared pairs.

    Returns ``(0.0, 0.0)`` when the shards share fewer than two users or
    neither shard scores any shared pair positively.
    """
    common = np.intersect1d(plan.members[s], plan.members[t])
    if common.size < 2:
        return 0.0, 0.0
    common = common[:_MAX_OVERLAP_USERS]
    rows, cols = np.triu_indices(common.size, k=1)
    users_i, users_j = common[rows], common[cols]
    means = []
    for shard in (s, t):
        local_i = plan.local_indices(shard, users_i)
        local_j = plan.local_indices(shard, users_j)
        values = np.maximum(
            estimates[shard].entries(local_i, local_j), 0.0
        )
        positive = values[values > _POSITIVE_EPS]
        means.append(float(positive.mean()) if positive.size else 0.0)
    return means[0], means[1]


def fit_stitch_scales(
    plan: ShardPlan, estimates: Sequence
) -> np.ndarray:
    """Per-shard multipliers aligning shard score scales via anchors.

    Parameters
    ----------
    plan:
        The shard plan whose replicated members define the overlaps.
    estimates:
        One fitted :class:`~repro.factored.estimate.FactoredEstimate`
        per shard, indexed locally by ``plan.members[shard]``.

    Returns
    -------
    ``(n_shards,)`` float array of positive multipliers ``λ``; shards
    with no usable overlap keep ``λ = 1``.  The reference shard of every
    connected overlap component is its smallest shard id, pinned to 1,
    so a single-shard plan returns exactly ``[1.0]``.
    """
    n_shards = plan.n_shards
    if len(estimates) != n_shards:
        raise ValueError(
            f"{len(estimates)} estimates for {n_shards} shards"
        )
    if n_shards == 1:
        return np.ones(1)
    edges: List[Tuple[int, int, float]] = []
    for s in range(n_shards):
        for t in range(s + 1, n_shards):
            mean_s, mean_t = _shared_pair_means(plan, estimates, s, t)
            if mean_s <= 0.0 or mean_t <= 0.0:
                continue
            # λ_s · mean_s ≈ λ_t · mean_t  ⇒  log λ_s − log λ_t = log(mean_t / mean_s)
            edges.append((s, t, float(np.log(mean_t) - np.log(mean_s))))
    # Connected components of the overlap graph: each gets one λ = 1 anchor.
    component = np.arange(n_shards)

    def _root(node: int) -> int:
        while component[node] != node:
            component[node] = component[component[node]]
            node = component[node]
        return node

    for s, t, _ in edges:
        component[_root(s)] = _root(t)
    anchors = {}
    for s in range(n_shards):
        root = _root(s)
        anchors.setdefault(root, s)
    rows = []
    rhs = []
    for s, t, value in edges:
        row = np.zeros(n_shards)
        row[s], row[t] = 1.0, -1.0
        rows.append(row)
        rhs.append(value)
    for anchor in anchors.values():
        row = np.zeros(n_shards)
        row[anchor] = 1.0
        rows.append(row)
        rhs.append(0.0)
    solution, *_ = np.linalg.lstsq(
        np.asarray(rows), np.asarray(rhs), rcond=None
    )
    return np.exp(solution)


def boundary_disagreement(
    plan: ShardPlan,
    estimates: Sequence,
    scales: Sequence[float],
) -> float:
    """Worst relative score gap on pairs two shards both model.

    For every shard pair's shared user pairs, compares the *stitched*
    scores ``λ_s · max(S_s, 0)`` against ``λ_t · max(S_t, 0)`` and
    returns the maximum of ``|a − b| / max(a, b)`` over pairs where at
    least one shard scores positively.  0.0 when nothing overlaps.
    This is the tolerance the stitching tests (and the sharded bench)
    check boundary-user ranking agreement with.
    """
    scales = np.asarray(scales, dtype=float)
    worst = 0.0
    for s in range(plan.n_shards):
        for t in range(s + 1, plan.n_shards):
            common = np.intersect1d(plan.members[s], plan.members[t])
            if common.size < 2:
                continue
            common = common[:_MAX_OVERLAP_USERS]
            rows, cols = np.triu_indices(common.size, k=1)
            users_i, users_j = common[rows], common[cols]
            stitched = []
            for shard in (s, t):
                local_i = plan.local_indices(shard, users_i)
                local_j = plan.local_indices(shard, users_j)
                stitched.append(
                    scales[shard]
                    * np.maximum(
                        estimates[shard].entries(local_i, local_j), 0.0
                    )
                )
            peak = np.maximum(stitched[0], stitched[1])
            active = peak > _POSITIVE_EPS
            if not np.any(active):
                continue
            gaps = np.abs(stitched[0] - stitched[1])[active] / peak[active]
            worst = max(worst, float(gaps.max()))
    return worst
