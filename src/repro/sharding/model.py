"""The community-sharded SLAMPRED fit: per-shard factored solves.

:class:`ShardedSlamPred` decomposes one large structural link-prediction
problem into per-community sub-problems (DESIGN.md §14): the
:class:`~repro.sharding.partition.ShardPlan` assigns every user a core
shard plus replicated anchors, each shard fits an independent factored
:class:`~repro.models.slampred.SlamPredH` on its induced sub-adjacency,
and the per-shard scores are calibrated onto one scale through the
anchors (:mod:`repro.sharding.stitching`).

Scaling properties:

* **Wall clock.**  Shard fits fan out across *processes*
  (:func:`~repro.perf.parallel.parallel_map_processes`), so Python-level
  solver work scales past the GIL; per-shard SVT rank budgets shrink
  proportionally with shard size, so even a sequential pass over shards
  is cheaper than the monolithic fit.
* **Determinism.**  Every shard's fit is a pure function of its
  sub-adjacency, its rank budget and its derived SVT seed
  (``seed + shard_index``); results are collected by shard index, so two
  same-seed fits are bit-identical regardless of worker scheduling or
  process/thread execution.
* **Parity.**  ``n_shards=1`` degenerates to the plan with every user
  core, rank and seed equal to the unsharded configuration and
  ``λ = [1.0]``, reproducing the unsharded factored trajectory exactly.
* **Recovery.**  With a checkpoint directory, each completed shard fit
  is snapshotted through
  :class:`~repro.reliability.checkpoints.CheckpointManager`
  (``<dir>/shard-000/…``) with the estimate packed into the manager's
  single-array format; a restarted fit skips shards whose checkpoint
  matches its configuration.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro.exceptions import ConfigurationError, NotFittedError
from repro.factored.estimate import FactoredEstimate
from repro.observability.tracer import NullTracer, Span, Tracer
from repro.perf.parallel import parallel_map, parallel_map_processes
from repro.sharding.partition import (
    ShardPlan,
    detect_communities,
    plan_shards,
)
from repro.sharding.stitching import fit_stitch_scales
from repro.utils.validation import check_integer

_DEFAULT_SVT_SEED = 0x5EED
"""Base SVT seed — matches the unsharded WarmStartSVT default, which is
what makes shard 0 of a single-shard plan bit-identical to it."""

_CHECKPOINT_DIR_FORMAT = "shard-%03d"


def _shard_checkpoint_meta(job: Dict) -> Dict:
    """The config fingerprint a shard checkpoint must match to resume."""
    return {
        "shard": int(job["shard"]),
        "n_local": int(job["adjacency"].shape[0]),
        "svd_rank": job["svd_rank"],
        "svt_seed": int(job["svt_seed"]),
        "inner_iterations": int(job["model_kwargs"]["inner_iterations"]),
        "outer_iterations": int(job["model_kwargs"]["outer_iterations"]),
    }


def fit_shard(job: Dict) -> Dict:
    """Fit one shard's factored model — the process-pool work unit.

    A pure function of its job dict (sub-adjacency, rank budget, derived
    SVT seed, solver options), which is what makes the sharded fit's
    output independent of worker scheduling.  Module-level so it pickles
    into :func:`~repro.perf.parallel.parallel_map_processes` workers.
    When the job carries a checkpoint directory, a fresh fit writes one
    validated snapshot and a matching existing snapshot short-circuits
    the solve entirely (``resumed=True``).
    """
    from repro.models.slampred import SlamPredH
    from repro.reliability.checkpoints import CheckpointManager

    manager = None
    expected_meta = _shard_checkpoint_meta(job)
    if job.get("checkpoint_dir"):
        manager = CheckpointManager(
            job["checkpoint_dir"], every=int(job.get("checkpoint_every", 1))
        )
        snapshot = manager.latest()
        if snapshot is not None and all(
            snapshot.meta.get(key) == value
            for key, value in expected_meta.items()
        ):
            return {
                "shard": int(job["shard"]),
                "estimate": FactoredEstimate.unpack(snapshot.solution),
                "round_norms": list(snapshot.round_norms),
                "n_rounds": int(snapshot.n_rounds),
                "converged": bool(snapshot.meta.get("converged", True)),
                "resumed": True,
            }
    svt_options = dict(job["svt_options"])
    svt_options["seed"] = int(job["svt_seed"])
    model = SlamPredH(
        factored=True,
        svd_rank=job["svd_rank"],
        svt_options=svt_options,
        **job["model_kwargs"],
    )
    model.fit_adjacency(job["adjacency"])
    result = model.result
    outcome = {
        "shard": int(job["shard"]),
        "estimate": model.factored_estimate,
        "round_norms": [float(v) for v in result.round_norms],
        "n_rounds": int(result.n_rounds),
        "converged": bool(result.converged),
        "resumed": False,
    }
    if manager is not None:
        manager.save(
            max(1, outcome["n_rounds"]),
            outcome["estimate"].pack(),
            outcome["round_norms"],
            meta={**expected_meta, "converged": outcome["converged"]},
        )
    return outcome


class ShardedSlamPred:
    """Community-sharded factored SLAMPRED-H with anchor stitching.

    Parameters
    ----------
    n_shards:
        Number of shards; 1 reproduces the unsharded factored fit.
    svd_rank:
        Rank budget of the *unsharded* problem.  Each shard receives a
        proportional budget
        ``min(svd_rank, max(min_shard_rank, round(svd_rank · m_s / n)))``
        — community structure splits the spectrum across shards, so the
        total modeled rank stays comparable while every shard's SVT gets
        cheaper.  ``None`` leaves every shard's engine adaptive.
    gamma, tau, step_size, inner_iterations, outer_iterations, tolerance:
        Forwarded to every shard's
        :class:`~repro.models.slampred.SlamPredH` (same defaults).
    seed:
        Base SVT seed; shard ``s`` solves with ``seed + s``, making the
        whole fit deterministic and shard 0 of a single-shard plan
        bit-identical to an unsharded engine seeded with ``seed``.
    min_shard_rank:
        Floor of the proportional per-shard rank budget.
    anchor_fraction, max_anchors:
        Anchor replication budget, see
        :func:`~repro.sharding.partition.plan_shards`.
    use_processes:
        Fan shard fits out across processes (default); ``False`` keeps
        them on threads, which is result-identical but GIL-bound.
    max_workers:
        Worker cap for the shard fan-out.
    checkpoint_dir:
        When given, each shard checkpoints its finished fit under
        ``<checkpoint_dir>/shard-000/…`` and a refit resumes completed
        shards instead of solving them again.
    svt_options:
        Extra :class:`~repro.perf.warm_svt.WarmStartSVT` options layered
        under every shard's derived seed.  ``dense_fallback_cutoff``
        defaults to 0 on shards: sub-problems can fall under the dense
        recovery cutoff, and one O(m³) dense fallback would erase the
        entire sharding speedup (the factored contract stays O(mk)).
    tracer:
        Optional :class:`~repro.observability.Tracer` recording per-shard
        fit seconds and resume counts.
    """

    def __init__(
        self,
        n_shards: int = 2,
        svd_rank: Optional[int] = None,
        gamma: float = 0.05,
        tau: float = 1.0,
        step_size: float = 0.05,
        inner_iterations: int = 25,
        outer_iterations: int = 40,
        tolerance: float = 1e-3,
        seed: int = _DEFAULT_SVT_SEED,
        min_shard_rank: int = 2,
        anchor_fraction: float = 0.05,
        max_anchors: Optional[int] = None,
        use_processes: bool = True,
        max_workers: Optional[int] = None,
        checkpoint_dir: Optional[str] = None,
        checkpoint_every: int = 1,
        svt_options: Optional[dict] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.n_shards = check_integer(n_shards, "n_shards", minimum=1)
        self.svd_rank = (
            None
            if svd_rank is None
            else check_integer(svd_rank, "svd_rank", minimum=1)
        )
        self.gamma = float(gamma)
        self.tau = float(tau)
        self.step_size = float(step_size)
        self.inner_iterations = check_integer(
            inner_iterations, "inner_iterations", minimum=1
        )
        self.outer_iterations = check_integer(
            outer_iterations, "outer_iterations", minimum=1
        )
        self.tolerance = float(tolerance)
        self.seed = int(seed)
        self.min_shard_rank = check_integer(
            min_shard_rank, "min_shard_rank", minimum=1
        )
        self.anchor_fraction = float(anchor_fraction)
        self.max_anchors = (
            None
            if max_anchors is None
            else check_integer(max_anchors, "max_anchors", minimum=0)
        )
        self.use_processes = bool(use_processes)
        self.max_workers = (
            None
            if max_workers is None
            else check_integer(max_workers, "max_workers", minimum=1)
        )
        self.checkpoint_dir = (
            None if checkpoint_dir is None else str(checkpoint_dir)
        )
        self.checkpoint_every = check_integer(
            checkpoint_every, "checkpoint_every", minimum=1
        )
        if svt_options is not None and not isinstance(svt_options, dict):
            raise ConfigurationError(
                "svt_options must be a dict of WarmStartSVT keyword "
                f"arguments, got {type(svt_options).__name__}"
            )
        self.svt_options = dict(svt_options or {})
        self.tracer = tracer if tracer is not None else NullTracer()
        self._plan: Optional[ShardPlan] = None
        self._estimates: Optional[List[FactoredEstimate]] = None
        self._scales: Optional[np.ndarray] = None
        self._shard_stats: List[Dict] = []
        self._fit_seconds: List[float] = []

    @property
    def name(self) -> str:
        """Display name carrying the shard count."""
        return f"SLAMPRED-H-sharded[{self.n_shards}]"

    # -- fitted state ----------------------------------------------------
    def _require_fitted(self) -> None:
        if self._estimates is None:
            raise NotFittedError(f"{self.name} has not been fitted")

    @property
    def plan(self) -> ShardPlan:
        """The fitted shard plan."""
        self._require_fitted()
        return self._plan

    @property
    def estimates(self) -> List[FactoredEstimate]:
        """Per-shard fitted estimates, indexed by ``plan.members``."""
        self._require_fitted()
        return list(self._estimates)

    @property
    def scales(self) -> np.ndarray:
        """Per-shard stitching multipliers λ."""
        self._require_fitted()
        return np.array(self._scales)

    @property
    def shard_stats(self) -> List[Dict]:
        """Per-shard fit records: rounds, convergence, resume, seconds."""
        self._require_fitted()
        return [dict(entry) for entry in self._shard_stats]

    @property
    def n_users(self) -> int:
        """Users covered by the fit."""
        self._require_fitted()
        return self._plan.n_users

    # -- fitting ---------------------------------------------------------
    def shard_rank(self, members: int, n_users: int) -> Optional[int]:
        """The proportional rank budget for a shard of ``members`` users."""
        if self.svd_rank is None:
            return None
        proportional = int(round(self.svd_rank * members / n_users))
        return min(self.svd_rank, max(self.min_shard_rank, proportional))

    def _build_jobs(
        self, adjacency: sparse.csr_matrix, plan: ShardPlan
    ) -> List[Dict]:
        model_kwargs = {
            "gamma": self.gamma,
            "tau": self.tau,
            "step_size": self.step_size,
            "inner_iterations": self.inner_iterations,
            "outer_iterations": self.outer_iterations,
            "tolerance": self.tolerance,
        }
        svt_options = {"dense_fallback_cutoff": 0}
        svt_options.update(self.svt_options)
        svt_options.pop("seed", None)
        jobs = []
        for s, members in enumerate(plan.members):
            sub = adjacency[members][:, members].tocsr()
            jobs.append(
                {
                    "shard": s,
                    "adjacency": sub,
                    "svd_rank": self.shard_rank(
                        members.size, plan.n_users
                    ),
                    "svt_seed": self.seed + s,
                    "svt_options": svt_options,
                    "model_kwargs": model_kwargs,
                    "checkpoint_dir": (
                        None
                        if self.checkpoint_dir is None
                        else os.path.join(
                            self.checkpoint_dir, _CHECKPOINT_DIR_FORMAT % s
                        )
                    ),
                    "checkpoint_every": self.checkpoint_every,
                }
            )
        return jobs

    def fit(self, adjacency, labels=None) -> "ShardedSlamPred":
        """Fit every shard and stitch the scales; returns ``self``.

        Parameters
        ----------
        adjacency:
            Square scipy sparse (or csr-ifiable) structural adjacency.
        labels:
            Community label per user.  ``None`` runs the deterministic
            label-propagation fallback
            (:func:`~repro.sharding.partition.detect_communities`) —
            planted labels from the synthetic generator are both cheaper
            and better aligned with the generative structure when
            available.
        """
        matrix = sparse.csr_matrix(adjacency, dtype=float)
        if matrix.shape[0] != matrix.shape[1]:
            raise ConfigurationError(
                f"adjacency must be square, got shape {matrix.shape}"
            )
        if labels is None:
            with self.tracer.span("sharding.detect_communities"):
                labels = detect_communities(matrix)
        plan = plan_shards(
            labels,
            self.n_shards,
            adjacency=matrix if self.n_shards > 1 else None,
            anchor_fraction=self.anchor_fraction,
            max_anchors=self.max_anchors,
        )
        jobs = self._build_jobs(matrix, plan)
        fan_out = (
            parallel_map_processes if self.use_processes else parallel_map
        )
        with self.tracer.span("sharding.fit_shards") as fit_node:
            outcomes, seconds = fan_out(
                fit_shard, jobs, max_workers=self.max_workers
            )
        # Input order == shard order: scheduling cannot permute results.
        estimates: List[FactoredEstimate] = [None] * plan.n_shards
        stats: List[Dict] = [None] * plan.n_shards
        for outcome, spent in zip(outcomes, seconds):
            s = outcome["shard"]
            estimates[s] = outcome["estimate"]
            stats[s] = {
                "shard": s,
                "members": int(plan.members[s].size),
                "rank": int(estimates[s].rank),
                "n_rounds": outcome["n_rounds"],
                "converged": outcome["converged"],
                "resumed": outcome["resumed"],
                "seconds": float(spent),
            }
            if isinstance(fit_node, Span):
                # Graft each worker's wall time back as a child span so a
                # recorded fit shows per-shard timing under fit_shards
                # (workers ran in other processes; their spans are local).
                fit_node.children.append(
                    Span(
                        name=f"sharding.fit_shard[{s:03d}]",
                        duration=float(spent),
                    )
                )
            self.tracer.metric("sharding.shard_seconds", float(spent))
            if outcome["resumed"]:
                self.tracer.count("sharding.shard_resumed")
        with self.tracer.span("sharding.stitch"):
            scales = fit_stitch_scales(plan, estimates)
        self._plan = plan
        self._estimates = estimates
        self._scales = scales
        self._shard_stats = stats
        self._fit_seconds = list(seconds)
        return self

    # -- scoring ---------------------------------------------------------
    def score_pairs(self, pairs: Sequence[Tuple[int, int]]) -> np.ndarray:
        """Stitched confidence for each ``(u, v)`` pair.

        A pair's score is the maximum of ``λ_s · max(S_s[u, v], 0)``
        over every shard that models both endpoints; pairs no shard
        covers (cross-community non-anchored pairs) score 0.0, exactly
        the "no evidence" convention of the sparse estimate, and the
        diagonal is pinned to 0.
        """
        self._require_fitted()
        rows = np.array([p[0] for p in pairs], dtype=np.int64)
        cols = np.array([p[1] for p in pairs], dtype=np.int64)
        if rows.size and (
            min(rows.min(), cols.min()) < 0
            or max(rows.max(), cols.max()) >= self.n_users
        ):
            raise ConfigurationError(
                f"pair indices must lie in 0..{self.n_users - 1}"
            )
        scores = np.zeros(rows.size, dtype=float)
        for s, members in enumerate(self._plan.members):
            in_shard = np.zeros(self.n_users, dtype=bool)
            in_shard[members] = True
            covered = in_shard[rows] & in_shard[cols]
            if not np.any(covered):
                continue
            local_r = self._plan.local_indices(s, rows[covered])
            local_c = self._plan.local_indices(s, cols[covered])
            values = self._scales[s] * np.maximum(
                self._estimates[s].entries(local_r, local_c), 0.0
            )
            scores[covered] = np.maximum(scores[covered], values)
        scores[rows == cols] = 0.0
        return scores

    def __repr__(self) -> str:
        fitted = self._estimates is not None
        return (
            f"ShardedSlamPred(n_shards={self.n_shards}, "
            f"svd_rank={self.svd_rank}, fitted={fitted})"
        )
