"""Scatter-gather serving over a sharded artifact.

:class:`ShardedLinkPredictionService` exposes the same query surface as
:class:`~repro.serving.service.LinkPredictionService` — ``top_k``,
``batch_top_k``, ``score``, ``is_known_link``, ``reload``, ``stats``,
``metrics_text``, ``ready`` — so the HTTP front-end, the micro-batcher
and the deadline/load-shed middleware work unchanged on top of it.  The
difference is inside: a query for user ``u`` fans out to every shard
that models ``u`` (its core shard plus any shard holding it as an
anchor), each shard scores its own candidate list from O(m·k) factors,
and the answers are merged on the stitched common scale with a
**deterministic tie-break** (higher score first, then smaller candidate
id — never partition order).

Degradation is per shard: artifacts load with ``strict=False`` so a
corrupt shard file drops only that shard's candidates, and a per-shard
circuit breaker isolates scoring failures the same way — surviving
shards keep answering, the loss is counted (``serve.degraded``) and
reported in ``stats()``.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import (
    ConfigurationError,
    RetryExhaustedError,
    SerializationError,
    UnknownNodeError,
)
from repro.observability.cells import CellBank
from repro.observability.logging import current_request_id, get_logger
from repro.observability.metrics import MetricsRegistry
from repro.observability.sampling import SamplingTracer
from repro.observability.tracer import Tracer
from repro.reliability.breaker import OPEN, CircuitBreaker
from repro.reliability.retry import call_with_retry
from repro.serving.cache import RankingCache
from repro.serving.service import DEFAULT_LOAD_RETRY, Ranking
from repro.sharding.artifacts import (
    LoadedShardedArtifact,
    ShardedArtifactStore,
)
from repro.utils.validation import check_integer

_log = get_logger("repro.sharding.service")


class ShardedLinkPredictionService:
    """Serve top-k queries by scatter-gathering across shard models.

    Parameters
    ----------
    store:
        A :class:`~repro.sharding.artifacts.ShardedArtifactStore` or its
        path; the latest version loads (degraded if needed) at
        construction.
    cache_size:
        Capacity of the merged-ranking cache (keyed by version, user, k).
    tracer, registry:
        Telemetry sinks, created live when omitted — same contract as
        the unsharded service (the default tracer is a
        :class:`~repro.observability.sampling.SamplingTracer` recording
        onto the striped cell bank).
    cells:
        Optional :class:`~repro.observability.cells.CellBank` shared
        with other components; created when omitted.  All hot-path
        counters and the per-shard timing histogram record into this
        bank and reach the registry only at drain time
        (``metrics_text``/aggregator).
    version:
        Pin an explicit artifact version instead of the latest.
    shard_failure_threshold:
        Consecutive scoring failures that trip one shard's breaker;
        while open, that shard is skipped (degraded answers) until the
        breaker's recovery probe closes it again.
    """

    def __init__(
        self,
        store: Union[ShardedArtifactStore, str],
        cache_size: int = 1024,
        tracer: Optional[Tracer] = None,
        version: Optional[int] = None,
        registry: Optional[MetricsRegistry] = None,
        load_retry=None,
        reload_breaker: Optional[CircuitBreaker] = None,
        shard_failure_threshold: int = 3,
        cells: Optional[CellBank] = None,
    ):
        self.store = (
            store
            if isinstance(store, ShardedArtifactStore)
            else ShardedArtifactStore(store)
        )
        self.registry = registry if registry is not None else MetricsRegistry()
        self.cells = cells if cells is not None else CellBank(self.registry)
        self.tracer = (
            tracer
            if tracer is not None
            else SamplingTracer(self.registry, cells=self.cells)
        )
        if self.tracer.registry is None and self.tracer.enabled:
            self.tracer.registry = self.registry
        self.cache = RankingCache(
            cache_size, registry=self.registry, cells=self.cells
        )
        self._lock = threading.RLock()
        self._artifact: Optional[LoadedShardedArtifact] = None
        self._breakers: Dict[int, CircuitBreaker] = {}
        self._shard_failure_threshold = check_integer(
            shard_failure_threshold, "shard_failure_threshold", minimum=1
        )
        self._started_at = time.monotonic()
        self._last_reload_error: Optional[str] = None
        self._m_version = self.registry.gauge(
            "sharding.artifact_version",
            help="Sharded artifact version being served.",
        )
        self._m_healthy_shards = self.registry.gauge(
            "sharding.healthy_shards",
            help="Shards currently answering queries.",
        )
        self._m_uptime = self.registry.gauge(
            "serving.uptime_seconds", help="Seconds since service start."
        )
        # Pre-bound hot cells: one attribute load + float add per hit on
        # the scatter-gather path, no dict lookup and no registry lock.
        self._c_requests = self.tracer.hot_counter("serve.requests")
        self._c_topk = self.tracer.hot_counter("serve.topk_requests")
        self._c_score = self.tracer.hot_counter("serve.score_requests")
        self._c_hit = self.tracer.hot_counter("serve.cache_hit")
        self._c_miss = self.tracer.hot_counter("serve.cache_miss")
        self._c_unavailable = self.tracer.hot_counter(
            "serve.shard_unavailable"
        )
        self._c_shortcircuit = self.tracer.hot_counter(
            "serve.shard_shortcircuit"
        )
        self._c_shard_errors = self.tracer.hot_counter("serve.shard_errors")
        self._c_degraded = self.tracer.hot_counter("serve.degraded")
        self._h_shard_seconds = self.tracer.hot_histogram(
            "serve.shard_seconds", registry_name="sharding.shard_seconds"
        )
        self._load_retry = (
            load_retry if load_retry is not None else DEFAULT_LOAD_RETRY
        )
        self._reload_breaker = reload_breaker or CircuitBreaker(
            "sharded-reload",
            failure_threshold=3,
            recovery_timeout=5.0,
            registry=self.registry,
        )
        self._install(self._load(version))

    # -- artifact state -------------------------------------------------
    def _load(self, version: Optional[int]) -> LoadedShardedArtifact:
        """One retried, degradation-tolerant artifact read."""
        return call_with_retry(
            lambda: self.store.load(version, strict=False),
            self._load_retry,
            name="sharded_artifact.load",
            registry=self.registry,
        )

    def _install(self, artifact: LoadedShardedArtifact) -> None:
        """Swap in an artifact and (re)build the per-shard breakers."""
        breakers = {
            s: CircuitBreaker(
                f"shard-{s:03d}",
                failure_threshold=self._shard_failure_threshold,
                recovery_timeout=5.0,
                registry=self.registry,
            )
            for s in artifact.estimates
        }
        with self._lock:
            self._artifact = artifact
            self._breakers = breakers
        self._m_version.set(artifact.version)
        self._m_healthy_shards.set(len(artifact.estimates))
        if artifact.degraded:
            self.tracer.count(
                "serve.shards_dropped", len(artifact.missing_shards)
            )
            _log.warning(
                "sharded artifact loaded degraded",
                version=artifact.version,
                missing_shards=artifact.missing_shards,
            )

    @property
    def version(self) -> int:
        """The artifact version currently being served."""
        return self._artifact.version

    @property
    def n_users(self) -> int:
        """Users covered by the current plan."""
        return self._artifact.n_users

    @property
    def artifact(self) -> LoadedShardedArtifact:
        """The currently-served sharded artifact."""
        return self._artifact

    @property
    def reload_breaker(self) -> CircuitBreaker:
        """The circuit breaker guarding artifact reloads."""
        return self._reload_breaker

    def reload(self) -> bool:
        """Hot-swap to the store's newest version; ``True`` if swapped.

        Same stale-serve contract as the unsharded service: validation
        failures keep the installed artifact serving and trip the reload
        breaker; a degraded-but-loadable newer version *is* installed
        (answering from surviving shards beats serving stale data).
        """
        with self.tracer.span("serve.reload"):
            if not self._reload_breaker.allow():
                self.tracer.count("serve.reload_shortcircuit")
                self._last_reload_error = (
                    "reload circuit breaker is open; serving stale version "
                    f"{self.version}"
                )
                return False
            try:
                latest = self.store.resolve_latest()
                if latest == self.version:
                    self.tracer.count("serve.reload_noop")
                    self._reload_breaker.record_success()
                    return False
                artifact = self._load(latest)
            except (SerializationError, RetryExhaustedError) as exc:
                self._reload_breaker.record_failure()
                self.tracer.count("serve.reload_failed")
                self._last_reload_error = str(exc)
                _log.warning(
                    "sharded artifact reload failed; keeping served version",
                    served_version=self.version,
                    error=str(exc),
                )
                return False
            self._install(artifact)
            self.cache.invalidate()
            self._last_reload_error = None
            self._reload_breaker.record_success()
            self.tracer.count("serve.reloads")
            return True

    def ready(self) -> bool:
        """Whether the service should receive traffic (``/readyz``)."""
        return self._artifact is not None and (
            self._reload_breaker.state != OPEN
        )

    # -- scatter-gather core --------------------------------------------
    def _check_user(self, user: int) -> int:
        user = int(user)
        if not 0 <= user < self.n_users:
            raise UnknownNodeError(
                f"user index {user} out of range (0..{self.n_users - 1})"
            )
        return user

    def _shard_rows(
        self, shard: int, users: np.ndarray
    ) -> Optional[np.ndarray]:
        """Stitched non-negative score rows of ``users`` within ``shard``.

        ``None`` when the shard is unavailable — dropped at load time or
        breaker-open — or when scoring fails (which also records the
        failure on the shard's breaker).  Row columns are the shard's
        local candidate order, ``plan.members[shard]``.
        """
        artifact = self._artifact
        estimate = artifact.estimates.get(shard)
        if estimate is None:
            self._c_unavailable.inc()
            return None
        breaker = self._breakers[shard]
        if not breaker.allow():
            self._c_shortcircuit.inc()
            return None
        try:
            local = artifact.plan.local_indices(shard, users)
            rows = estimate.rows(local)
            np.maximum(rows, 0.0, out=rows)
            rows *= float(artifact.scales[shard])
        except Exception as exc:
            breaker.record_failure()
            self._c_shard_errors.inc()
            _log.warning(
                "shard scoring failed; degrading to remaining shards",
                shard=shard,
                error=str(exc),
                request_id=current_request_id(),
            )
            return None
        breaker.record_success()
        return rows

    def _gather(
        self, users: Sequence[int]
    ) -> Tuple[List[List[Tuple[np.ndarray, np.ndarray]]], bool]:
        """Per-shard candidate contributions, scattered then regrouped.

        Scatters each user's scoring across every shard that models it,
        batching all users of one shard into a single ``rows()`` call.
        Returns, per user, the list of ``(candidate_ids, scores)``
        contributions from its shards — plus a flag telling whether any
        shard contribution was lost (degraded answer).
        """
        artifact = self._artifact
        plan = artifact.plan
        by_shard: Dict[int, List[int]] = {}
        for position, user in enumerate(users):
            for shard in plan.shards_of_user(user):
                by_shard.setdefault(shard, []).append(position)
        merged: List[List[Tuple[np.ndarray, np.ndarray]]] = [
            [] for _ in users
        ]
        degraded = False
        for shard in sorted(by_shard):
            positions = by_shard[shard]
            user_block = np.array(
                [users[p] for p in positions], dtype=np.int64
            )
            # Per-shard child span: inside a sampled request trace this
            # stitches one `serve.shard[NNN]` node per fan-out leg under
            # the request's span tree; outside a trace it costs one
            # is-recording check.
            start = time.perf_counter()
            with self.tracer.span(f"serve.shard[{shard:03d}]"):
                rows = self._shard_rows(shard, user_block)
            self._h_shard_seconds.observe(time.perf_counter() - start)
            if rows is None:
                degraded = True
                continue
            candidates = plan.members[shard]
            for row, position in zip(rows, positions):
                merged[position].append((candidates, row))
        return merged, degraded

    def _rank_merged(
        self,
        user: int,
        contributions: List[Tuple[np.ndarray, np.ndarray]],
        k: int,
    ) -> Ranking:
        """Deterministically rank one user's merged shard contributions.

        Candidates appearing in several shards keep their maximum
        stitched score.  Excludes the user itself and every known link
        of the published global graph (across shard boundaries), then
        orders by descending score with ascending candidate id breaking
        ties — a total order independent of shard iteration or partition
        internals.
        """
        if not contributions:
            return []
        candidates = np.concatenate([c for c, _ in contributions])
        scores = np.concatenate([s for _, s in contributions])
        if len(contributions) > 1:
            # Merge duplicate candidates by max score: sort by
            # (candidate, -score) and keep each candidate's first row.
            order = np.lexsort((-scores, candidates))
            candidates, scores = candidates[order], scores[order]
            first = np.ones(candidates.size, dtype=bool)
            first[1:] = candidates[1:] != candidates[:-1]
            candidates, scores = candidates[first], scores[first]
        keep = candidates != user
        adjacency = self._artifact.adjacency
        if adjacency is not None:
            start, end = adjacency.indptr[user], adjacency.indptr[user + 1]
            known = adjacency.indices[start:end]
            keep &= ~np.isin(candidates, known)
        candidates, scores = candidates[keep], scores[keep]
        if candidates.size == 0:
            return []
        order = np.lexsort((candidates, -scores))[:k]
        return [(int(candidates[i]), float(scores[i])) for i in order]

    # -- queries --------------------------------------------------------
    def score(self, u: int, v: int) -> float:
        """Stitched confidence for ``(u, v)``: max over co-modeling shards."""
        with self.tracer.span("serve.score"):
            self._c_requests.inc()
            self._c_score.inc()
            u, v = self._check_user(u), self._check_user(v)
            if u == v:
                return 0.0
            artifact = self._artifact
            best = 0.0
            for shard in artifact.plan.shards_of_user(u):
                estimate = artifact.estimates.get(shard)
                if estimate is None:
                    continue
                members = artifact.plan.members[shard]
                position = np.searchsorted(members, v)
                if position >= members.size or members[position] != v:
                    continue
                local_u = artifact.plan.local_indices(shard, u)
                value = float(
                    np.maximum(
                        estimate.entries(local_u, np.array([position])), 0.0
                    )[0]
                ) * float(artifact.scales[shard])
                best = max(best, value)
            return best

    def is_known_link(self, u: int, v: int) -> bool:
        """Whether ``(u, v)`` is connected in the published global graph."""
        u, v = self._check_user(u), self._check_user(v)
        adjacency = self._artifact.adjacency
        return bool(adjacency is not None and adjacency[u, v] > 0)

    def top_k(self, user: int, k: int = 10) -> Ranking:
        """The ``k`` best candidates for ``user`` across all its shards.

        Self-loops and known links never appear (including links whose
        endpoints live in different shards — exclusion runs on the
        *global* published graph after the merge).  Cached per
        ``(version, user, k)``; a degraded answer (shard dropped or
        breaker open) is served but never cached, so the next query
        retries the full scatter.
        """
        with self.tracer.span("serve.top_k"):
            self._c_requests.inc()
            self._c_topk.inc()
            user = self._check_user(user)
            k = check_integer(k, "k", minimum=1)
            key = (self.version, user, k)
            cached = self.cache.get(key)
            if cached is not None:
                self._c_hit.inc()
                return cached
            self._c_miss.inc()
            with self._lock:
                merged, degraded = self._gather([user])
                ranking = self._rank_merged(user, merged[0], k)
            if degraded:
                self._c_degraded.inc()
            else:
                self.cache.put(key, ranking)
            return ranking

    def batch_top_k(
        self, users: Sequence[int], k: int = 10
    ) -> List[Ranking]:
        """Top-``k`` for many users with one ``rows()`` pass per shard."""
        return self.batch_top_k_mixed(users, [k] * len(users))

    def batch_top_k_mixed(
        self, users: Sequence[int], ks: Sequence[int]
    ) -> List[Ranking]:
        """Per-request ``k`` values in one scatter-gather pass.

        The micro-batcher's coalescing contract: all requests share the
        per-shard ``rows()`` scatter, and each merged ranking is trimmed
        to its own request's ``k``.
        """
        with self.tracer.span("serve.batch_top_k"):
            if len(users) != len(ks):
                raise ConfigurationError(
                    f"{len(users)} users but {len(ks)} k values"
                )
            ks = [check_integer(k, "k", minimum=1) for k in ks]
            users = [self._check_user(u) for u in users]
            self._c_requests.inc(len(users))
            self._c_topk.inc(len(users))
            version = self.version
            answers: Dict[Tuple[int, int], Ranking] = {}
            missing: List[Tuple[int, int]] = []
            for user, k in zip(users, ks):
                pair = (user, k)
                cached = self.cache.get((version, user, k))
                if cached is not None:
                    self._c_hit.inc()
                    answers[pair] = cached
                elif pair not in answers:
                    self._c_miss.inc()
                    answers[pair] = None
                    missing.append(pair)
            if missing:
                with self._lock:
                    merged, degraded = self._gather(
                        [user for user, _ in missing]
                    )
                    for (user, k), contributions in zip(missing, merged):
                        ranking = self._rank_merged(user, contributions, k)
                        answers[(user, k)] = ranking
                        if not degraded:
                            self.cache.put((version, user, k), ranking)
                if degraded:
                    self._c_degraded.inc(len(missing))
            return [answers[(user, k)] for user, k in zip(users, ks)]

    # -- introspection --------------------------------------------------
    @property
    def uptime_seconds(self) -> float:
        """Seconds since construction, immune to wall-clock jumps."""
        return time.monotonic() - self._started_at

    def observe_uptime(self) -> float:
        """Refresh the uptime gauge (called before every scrape)."""
        uptime = self.uptime_seconds
        self._m_uptime.set(uptime)
        return uptime

    def metrics_text(self) -> str:
        """The registry rendered as Prometheus text (uptime refreshed).

        Drains the striped cell bank (and the tracer's, when it keeps
        one) first, so scrapes observe every hot-path increment even
        without a background aggregator.
        """
        self.observe_uptime()
        self.cells.drain()
        tracer_drain = getattr(self.tracer, "drain", None)
        if tracer_drain is not None:
            tracer_drain()
        return self.registry.render()

    def shard_health(self) -> Dict[int, str]:
        """Shard id → ``"missing"`` or its breaker state."""
        artifact = self._artifact
        health = {}
        for s in range(artifact.n_shards):
            if s in artifact.estimates:
                health[s] = self._breakers[s].state
            else:
                health[s] = "missing"
        return health

    def stats(self) -> Dict:
        """A JSON-compatible snapshot of service state and counters."""
        artifact = self._artifact
        return {
            "version": self.version,
            "model": artifact.manifest.get("name"),
            "n_users": self.n_users,
            "n_shards": artifact.n_shards,
            "missing_shards": list(artifact.missing_shards),
            "shard_health": {
                str(s): state for s, state in self.shard_health().items()
            },
            "store": self.store.root,
            "uptime_seconds": self.observe_uptime(),
            "cache": self.cache.stats(),
            "counters": dict(self.tracer.counters),
            "last_reload_error": self._last_reload_error,
            "ready": self.ready(),
            "reload_breaker": self._reload_breaker.state,
        }
