"""Versioned on-disk store for sharded link-prediction artifacts.

A :class:`ShardedArtifactStore` extends the directory-per-version layout
of :class:`~repro.serving.artifacts.ArtifactStore` to one model made of
many shard files::

    store/
    ├── v0001/
    │   ├── manifest.json     schema version, shard plan summary, per-file
    │   │                     sha256 checksums, stitch scales
    │   ├── plan.npz          shard assignment + anchor replication arrays
    │   ├── graph.npz         optional: global known-link adjacency (CSR)
    │   ├── shard-000.npz     shard 0's factored predictor (save_predictor)
    │   ├── shard-001.npz
    │   └── …
    └── v0002/ …

Publishes stage into a hidden directory and rename into place, so readers
never observe a half-written version.  Loading re-hashes every file
against the manifest; the crucial difference from the unsharded store is
**partial degradation**: with ``strict=False`` a corrupt or missing
*shard* file is skipped and reported in
:attr:`LoadedShardedArtifact.missing_shards` instead of failing the whole
load — the scatter-gather service keeps answering from the surviving
shards.  Corruption of the manifest, the plan or the graph is always
fatal (there is no meaningful artifact without them).
"""

from __future__ import annotations

import json
import os
import shutil
import time
import zipfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np
from scipy import sparse

from repro.exceptions import ArtifactCorruptError, SerializationError
from repro.models.persistence import (
    FrozenFactoredPredictor,
    load_predictor,
    save_predictor,
)
from repro.reliability.faults import fault_point
from repro.serving.artifacts import _VERSION_DIR, file_sha256
from repro.sharding.partition import ShardPlan

SHARDED_MANIFEST_SCHEMA_VERSION = 1
"""Bumped whenever the sharded manifest layout changes incompatibly."""

_MANIFEST = "manifest.json"
_PLAN_FILE = "plan.npz"
_GRAPH_FILE = "graph.npz"
_SHARD_FILE_FORMAT = "shard-%03d.npz"
_STAGING_PREFIX = ".staging-"


@dataclass
class LoadedShardedArtifact:
    """One validated (possibly degraded) sharded artifact.

    Attributes
    ----------
    version:
        The loaded version number.
    manifest:
        The parsed ``manifest.json``.
    plan:
        The deserialized :class:`~repro.sharding.partition.ShardPlan`.
    scales:
        Per-shard stitching multipliers λ.
    estimates:
        Shard id → the shard's
        :class:`~repro.factored.estimate.FactoredEstimate`; shards that
        failed validation under ``strict=False`` are absent.
    adjacency:
        The global known-link CSR adjacency, or ``None``.
    missing_shards:
        Shard ids dropped by a degraded load (empty on a clean one).
    """

    version: int
    manifest: Dict
    plan: ShardPlan
    scales: np.ndarray
    estimates: Dict[int, "FactoredEstimate"] = field(repr=False, default_factory=dict)
    adjacency: Optional[sparse.csr_matrix] = field(default=None, repr=False)
    missing_shards: List[int] = field(default_factory=list)

    @property
    def n_users(self) -> int:
        """Users covered by the plan (independent of shard health)."""
        return self.plan.n_users

    @property
    def n_shards(self) -> int:
        """Shards the artifact was published with."""
        return self.plan.n_shards

    @property
    def degraded(self) -> bool:
        """Whether any shard was dropped during loading."""
        return bool(self.missing_shards)


class ShardedArtifactStore:
    """Directory-per-version store for sharded factored models.

    Parameters
    ----------
    root:
        The store directory; created (with parents) on first use.
    """

    def __init__(self, root: str):
        self.root = str(root)
        os.makedirs(self.root, exist_ok=True)

    # -- layout ---------------------------------------------------------
    def path(self, version: int) -> str:
        """Directory holding the given version."""
        return os.path.join(self.root, f"v{int(version):04d}")

    def shard_file(self, shard: int) -> str:
        """The in-version filename of one shard's predictor archive."""
        return _SHARD_FILE_FORMAT % int(shard)

    def versions(self) -> List[int]:
        """All published version numbers, ascending."""
        found = []
        for entry in os.listdir(self.root):
            match = _VERSION_DIR.match(entry)
            if match and os.path.isfile(
                os.path.join(self.root, entry, _MANIFEST)
            ):
                found.append(int(match.group(1)))
        return sorted(found)

    def resolve_latest(self) -> int:
        """The highest published version number (raises when empty)."""
        versions = self.versions()
        if not versions:
            raise SerializationError(
                f"sharded artifact store {self.root} holds no published "
                "versions"
            )
        return versions[-1]

    # -- publish --------------------------------------------------------
    def publish(self, model, graph=None, meta: Optional[Dict] = None) -> int:
        """Write a fitted :class:`ShardedSlamPred` as the next version.

        Parameters
        ----------
        model:
            A fitted :class:`~repro.sharding.model.ShardedSlamPred`
            (raises ``NotFittedError`` before disk state is touched
            otherwise).
        graph:
            Optional global known-link structure (SocialGraph, ndarray
            or scipy sparse) matching the plan's user count; serving
            excludes these pairs from top-k answers across shard
            boundaries.  Stored sparse.
        meta:
            Extra JSON-compatible metadata for the manifest.
        """
        plan = model.plan  # fitted check before touching disk
        estimates = model.estimates
        scales = np.asarray(model.scales, dtype=float)
        adjacency = None
        if graph is not None:
            adjacency = getattr(graph, "adjacency", graph)
            adjacency = sparse.csr_matrix(adjacency, dtype=float)
            if adjacency.shape != (plan.n_users, plan.n_users):
                raise SerializationError(
                    f"graph adjacency {adjacency.shape} does not match the "
                    f"plan's {(plan.n_users, plan.n_users)}"
                )
        version = (self.versions() or [0])[-1] + 1
        staging = os.path.join(
            self.root, f"{_STAGING_PREFIX}v{version:04d}-{os.getpid()}"
        )
        os.makedirs(staging)
        try:
            files: Dict[str, Dict] = {}
            plan_path = os.path.join(staging, _PLAN_FILE)
            np.savez_compressed(
                plan_path, scales=scales, **plan.to_arrays()
            )
            files[_PLAN_FILE] = self._file_entry(plan_path)
            for s, estimate in enumerate(estimates):
                shard_name = self.shard_file(s)
                shard_path = os.path.join(staging, shard_name)
                predictor = FrozenFactoredPredictor(
                    estimate,
                    {
                        "name": model.name,
                        "shard": s,
                        "n_members": int(plan.members[s].size),
                        "scale": float(scales[s]),
                    },
                )
                save_predictor(predictor, shard_path)
                files[shard_name] = self._file_entry(shard_path)
            if adjacency is not None:
                graph_path = os.path.join(staging, _GRAPH_FILE)
                np.savez_compressed(
                    graph_path,
                    format=np.frombuffer(b"csr", dtype=np.uint8),
                    data=adjacency.data,
                    indices=adjacency.indices,
                    indptr=adjacency.indptr,
                    shape=np.asarray(adjacency.shape, dtype=np.int64),
                )
                files[_GRAPH_FILE] = self._file_entry(graph_path)
            manifest = {
                "schema_version": SHARDED_MANIFEST_SCHEMA_VERSION,
                "version": version,
                "name": model.name,
                "kind": "sharded",
                "n_users": plan.n_users,
                "n_shards": plan.n_shards,
                "shard_sizes": plan.shard_sizes(),
                "scales": [float(v) for v in scales],
                "created_at": time.time(),  # wall-clock: a timestamp, not a duration
                "meta": dict(meta or {}),
                "files": files,
            }
            with open(
                os.path.join(staging, _MANIFEST), "w", encoding="utf-8"
            ) as handle:
                json.dump(manifest, handle, indent=2, sort_keys=True)
            final = self.path(version)
            if os.path.exists(final):
                raise SerializationError(
                    f"version directory {final} already exists; "
                    "concurrent publishers must use distinct stores"
                )
            os.rename(staging, final)
        except BaseException:
            shutil.rmtree(staging, ignore_errors=True)
            raise
        return version

    @staticmethod
    def _file_entry(path: str) -> Dict:
        return {
            "sha256": file_sha256(path),
            "bytes": os.path.getsize(path),
        }

    # -- read -----------------------------------------------------------
    def manifest(self, version: Optional[int] = None) -> Dict:
        """The parsed, schema-checked manifest of a version (default latest)."""
        version = self.resolve_latest() if version is None else int(version)
        manifest_path = os.path.join(self.path(version), _MANIFEST)
        try:
            with open(manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except OSError as exc:
            raise SerializationError(
                f"version {version} not found in {self.root}: {exc}"
            ) from exc
        except ValueError as exc:
            raise SerializationError(
                f"corrupt manifest {manifest_path}: {exc}"
            ) from exc
        schema = manifest.get("schema_version")
        if schema != SHARDED_MANIFEST_SCHEMA_VERSION:
            raise SerializationError(
                f"manifest {manifest_path} has schema version {schema}; "
                f"this build reads version {SHARDED_MANIFEST_SCHEMA_VERSION}"
            )
        return manifest

    def _verify_file(
        self, version: int, manifest: Dict, filename: str
    ) -> str:
        """Hash-check one manifest file; returns its absolute path."""
        entry = manifest.get("files", {}).get(filename)
        if entry is None:
            raise ArtifactCorruptError(
                f"artifact v{version:04d} manifest lists no file {filename}"
            )
        path = os.path.join(self.path(version), filename)
        if not os.path.isfile(path):
            raise ArtifactCorruptError(
                f"artifact v{version:04d} is missing {filename}"
            )
        actual = file_sha256(path)
        if actual != entry.get("sha256"):
            raise ArtifactCorruptError(
                f"artifact file {path} failed its integrity check: "
                f"manifest says sha256 {entry.get('sha256', '?')[:12]}… "
                f"but the file hashes to {actual[:12]}…"
            )
        return path

    def verify(self, version: Optional[int] = None) -> Dict:
        """Re-hash every file of a version; returns the manifest."""
        version = self.resolve_latest() if version is None else int(version)
        manifest = self.manifest(version)
        for filename in manifest.get("files", {}):
            self._verify_file(version, manifest, filename)
        return manifest

    def load(
        self, version: Optional[int] = None, strict: bool = True
    ) -> LoadedShardedArtifact:
        """Load a version (default latest), optionally degrading.

        With ``strict=True`` any invalid file fails the load.  With
        ``strict=False`` invalid *shard* archives are skipped — recorded
        in :attr:`LoadedShardedArtifact.missing_shards` — while the
        manifest, the plan and the graph stay load-or-fail: serving can
        answer from a subset of shards, but not without knowing the
        partition.  The ``sharding.shard_read`` chaos site fires once
        per shard read, modelling exactly the single-corrupt-shard
        degradation the reliability tests pin.
        """
        version = self.resolve_latest() if version is None else int(version)
        manifest = self.manifest(version)
        plan_path = self._verify_file(version, manifest, _PLAN_FILE)
        try:
            with np.load(plan_path) as data:
                plan = ShardPlan.from_arrays(
                    {key: np.asarray(data[key]) for key in data.files}
                )
                scales = np.asarray(data["scales"], dtype=float)
        except (KeyError, ValueError, OSError, zipfile.BadZipFile) as exc:
            raise SerializationError(
                f"cannot load shard plan {plan_path}: {exc}"
            ) from exc
        if scales.size != plan.n_shards:
            raise SerializationError(
                f"plan {plan_path} carries {scales.size} scales for "
                f"{plan.n_shards} shards"
            )
        adjacency = None
        if _GRAPH_FILE in manifest.get("files", {}):
            graph_path = self._verify_file(version, manifest, _GRAPH_FILE)
            from repro.serving.artifacts import _load_graph

            adjacency = _load_graph(graph_path)
            if not sparse.issparse(adjacency):
                adjacency = sparse.csr_matrix(adjacency)
            if adjacency.shape != (plan.n_users, plan.n_users):
                raise SerializationError(
                    f"graph adjacency {adjacency.shape} does not match the "
                    f"plan's {(plan.n_users, plan.n_users)}"
                )
        estimates: Dict[int, object] = {}
        missing: List[int] = []
        for s in range(plan.n_shards):
            try:
                fault_point("sharding.shard_read")
                shard_path = self._verify_file(
                    version, manifest, self.shard_file(s)
                )
                predictor = load_predictor(shard_path)
            except SerializationError:
                if strict:
                    raise
                missing.append(s)
                continue
            if not getattr(predictor, "factored", False):
                if strict:
                    raise SerializationError(
                        f"shard {s} of v{version:04d} is not a factored "
                        "predictor archive"
                    )
                missing.append(s)
                continue
            estimate = predictor.factored_estimate
            if estimate.n_users != plan.members[s].size:
                problem = SerializationError(
                    f"shard {s} of v{version:04d} covers "
                    f"{estimate.n_users} users but the plan lists "
                    f"{plan.members[s].size} members"
                )
                if strict:
                    raise problem
                missing.append(s)
                continue
            estimates[s] = estimate
        if not estimates:
            raise SerializationError(
                f"artifact v{version:04d} has no loadable shards"
            )
        return LoadedShardedArtifact(
            version=version,
            manifest=manifest,
            plan=plan,
            scales=scales,
            estimates=estimates,
            adjacency=adjacency,
            missing_shards=missing,
        )
