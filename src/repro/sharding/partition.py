"""Community-driven shard planning with replicated anchor users.

The sharded solver (DESIGN.md §14) rests on the same observation the
low-rank regularizer does: users form densely connected communities, so
a partition that keeps communities together makes the off-shard part of
the adjacency sparse and each per-shard sub-problem a faithful small
SLAMPRED instance.  This module turns community labels into a
:class:`ShardPlan`:

* every user belongs to exactly one **core** shard (communities are
  greedily binned into the requested number of shards, largest first,
  so shard sizes stay balanced without randomness);
* each shard additionally replicates a bounded set of **anchor** users —
  the outside users with the most edges into the shard's core.  Anchors
  give every boundary edge a shard that sees both endpoints, and the
  replicated scores are what cross-shard stitching calibrates on.

For graphs without planted labels, :func:`detect_communities` provides a
deterministic synchronous label-propagation fallback (smallest-label
tie-breaking, fixed sweep budget), so the partitioner works on real
adjacency data too.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from repro.exceptions import ConfigurationError
from repro.utils.validation import check_integer

_DEFAULT_ANCHOR_FRACTION = 0.05
"""Anchors replicated into a shard, as a fraction of its core size."""

_DEFAULT_DETECT_SWEEPS = 30
"""Label-propagation sweep budget of :func:`detect_communities`."""


class ShardPlan:
    """An immutable users → shards assignment with anchor replication.

    Parameters
    ----------
    shard_of:
        ``(n,)`` int array: each user's core shard id (``0..n_shards-1``).
    anchors:
        Per shard, the sorted global ids of the replicated anchor users
        (never members of that shard's core).

    Attributes
    ----------
    members:
        Per shard, the sorted global ids the shard models — its core
        users plus its anchors.  Local index ``i`` of a shard's
        sub-problem corresponds to global user ``members[shard][i]``.
    """

    def __init__(
        self,
        shard_of: np.ndarray,
        anchors: Sequence[np.ndarray],
    ):
        shard_of = np.asarray(shard_of, dtype=np.int64).ravel()
        n_shards = len(anchors)
        if n_shards < 1:
            raise ConfigurationError("a plan needs at least one shard")
        if shard_of.size == 0:
            raise ConfigurationError("a plan needs at least one user")
        if shard_of.min() < 0 or shard_of.max() >= n_shards:
            raise ConfigurationError(
                f"shard_of values must lie in 0..{n_shards - 1}, got "
                f"range [{shard_of.min()}, {shard_of.max()}]"
            )
        self.shard_of = shard_of
        self.core: Tuple[np.ndarray, ...] = tuple(
            np.flatnonzero(shard_of == s).astype(np.int64)
            for s in range(n_shards)
        )
        cleaned: List[np.ndarray] = []
        for s, shard_anchors in enumerate(anchors):
            shard_anchors = np.unique(
                np.asarray(shard_anchors, dtype=np.int64)
            )
            if shard_anchors.size and (
                shard_anchors.min() < 0
                or shard_anchors.max() >= shard_of.size
            ):
                raise ConfigurationError(
                    f"shard {s} anchors reference users outside "
                    f"0..{shard_of.size - 1}"
                )
            overlap = np.intersect1d(shard_anchors, self.core[s])
            if overlap.size:
                raise ConfigurationError(
                    f"shard {s} anchors {overlap[:5].tolist()} are already "
                    "core members; anchors must be replicated outsiders"
                )
            cleaned.append(shard_anchors)
        self.anchors: Tuple[np.ndarray, ...] = tuple(cleaned)
        self.members: Tuple[np.ndarray, ...] = tuple(
            np.union1d(core, shard_anchors)
            for core, shard_anchors in zip(self.core, self.anchors)
        )
        for s, members in enumerate(self.members):
            if members.size == 0:
                raise ConfigurationError(f"shard {s} has no members")
        shards_by_user: List[List[int]] = [[] for _ in range(shard_of.size)]
        for user, s in enumerate(shard_of):
            shards_by_user[user].append(int(s))
        for s, shard_anchors in enumerate(self.anchors):
            for user in shard_anchors:
                shards_by_user[int(user)].append(s)
        self._shards_by_user: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(entry) for entry in shards_by_user
        )

    # -- queries --------------------------------------------------------
    @property
    def n_users(self) -> int:
        """Users covered by the plan."""
        return int(self.shard_of.size)

    @property
    def n_shards(self) -> int:
        """Shards in the plan."""
        return len(self.members)

    def shards_of_user(self, user: int) -> Tuple[int, ...]:
        """Every shard that models ``user`` — its core shard first."""
        return self._shards_by_user[int(user)]

    def local_indices(self, shard: int, users) -> np.ndarray:
        """Local sub-problem indices of global ``users`` within ``shard``.

        Raises :class:`~repro.exceptions.ConfigurationError` when any of
        the users is not a member of the shard.
        """
        members = self.members[int(shard)]
        users = np.atleast_1d(np.asarray(users, dtype=np.int64))
        local = np.searchsorted(members, users)
        bad = (local >= members.size) | (members[np.minimum(local, members.size - 1)] != users)
        if np.any(bad):
            raise ConfigurationError(
                f"users {users[bad][:5].tolist()} are not members of "
                f"shard {shard}"
            )
        return local

    def shard_sizes(self) -> List[int]:
        """Member count per shard (core plus anchors)."""
        return [int(members.size) for members in self.members]

    # -- serialization ---------------------------------------------------
    def to_arrays(self) -> Dict[str, np.ndarray]:
        """Flat integer arrays for an ``.npz`` round trip."""
        offsets = np.zeros(self.n_shards + 1, dtype=np.int64)
        for s, shard_anchors in enumerate(self.anchors):
            offsets[s + 1] = offsets[s] + shard_anchors.size
        concat = (
            np.concatenate(self.anchors)
            if offsets[-1]
            else np.zeros(0, dtype=np.int64)
        )
        return {
            "shard_of": self.shard_of,
            "anchor_concat": concat.astype(np.int64),
            "anchor_offsets": offsets,
        }

    @classmethod
    def from_arrays(cls, arrays: Dict[str, np.ndarray]) -> "ShardPlan":
        """Rebuild a plan from :meth:`to_arrays` output."""
        offsets = np.asarray(arrays["anchor_offsets"], dtype=np.int64)
        concat = np.asarray(arrays["anchor_concat"], dtype=np.int64)
        anchors = [
            concat[offsets[s]:offsets[s + 1]]
            for s in range(offsets.size - 1)
        ]
        return cls(np.asarray(arrays["shard_of"], dtype=np.int64), anchors)

    def __repr__(self) -> str:
        return (
            f"ShardPlan(n_users={self.n_users}, n_shards={self.n_shards}, "
            f"sizes={self.shard_sizes()})"
        )


def _bin_communities(
    labels: np.ndarray, n_shards: int
) -> np.ndarray:
    """Greedy balanced binning of community labels into shard ids.

    Communities are placed largest-first into the currently-smallest
    shard (ties broken by shard id, communities by label id), which is
    deterministic and keeps shard sizes within one community of each
    other for balanced inputs.  When there are fewer communities than
    shards, the largest communities are split into contiguous halves
    until every shard can receive members.
    """
    labels = np.asarray(labels, dtype=np.int64).ravel()
    groups: List[np.ndarray] = [
        np.flatnonzero(labels == value) for value in np.unique(labels)
    ]
    while len(groups) < n_shards:
        order = sorted(
            range(len(groups)),
            key=lambda g: (-groups[g].size, g),
        )
        largest = order[0]
        group = groups[largest]
        if group.size < 2:
            raise ConfigurationError(
                f"cannot split {labels.size} users into {n_shards} shards: "
                "not enough users"
            )
        half = group.size // 2
        groups[largest] = group[:half]
        groups.append(group[half:])
    shard_of = np.zeros(labels.size, dtype=np.int64)
    loads = [0] * n_shards
    order = sorted(range(len(groups)), key=lambda g: (-groups[g].size, g))
    for g in order:
        target = min(range(n_shards), key=lambda s: (loads[s], s))
        shard_of[groups[g]] = target
        loads[target] += groups[g].size
    return shard_of


def _anchor_users(
    adjacency: sparse.csr_matrix,
    core_mask: np.ndarray,
    max_anchors: int,
) -> np.ndarray:
    """Top outside users by edge count into the shard core.

    Deterministic ordering: more cross edges first, smaller user id on
    ties; users with no edge into the core are never replicated.
    """
    if max_anchors <= 0:
        return np.zeros(0, dtype=np.int64)
    core = np.flatnonzero(core_mask)
    # Column sums of the core rows: how many core users each global user
    # touches.  One sparse row-slice + reduction, no n×n temporaries.
    counts = np.asarray(
        adjacency[core].sum(axis=0)
    ).ravel()
    counts[core_mask] = 0.0
    candidates = np.flatnonzero(counts > 0)
    if candidates.size == 0:
        return np.zeros(0, dtype=np.int64)
    order = np.lexsort((candidates, -counts[candidates]))
    return np.sort(candidates[order[:max_anchors]]).astype(np.int64)


def plan_shards(
    labels: Sequence[int],
    n_shards: int,
    adjacency=None,
    anchor_fraction: float = _DEFAULT_ANCHOR_FRACTION,
    max_anchors: Optional[int] = None,
) -> ShardPlan:
    """Build a :class:`ShardPlan` from community labels.

    Parameters
    ----------
    labels:
        Community label per user (planted via
        :func:`repro.synth.communities.assign_communities` or detected
        via :func:`detect_communities`).
    n_shards:
        Number of shards; 1 yields the trivial plan (everything core,
        no anchors), which is what makes the sharded solve reproduce
        the unsharded trajectory exactly.
    adjacency:
        Optional sparse (or csr-ifiable) adjacency used to pick anchor
        users.  Without it no anchors are replicated and stitching
        falls back to unit scales.
    anchor_fraction:
        Per-shard anchor budget as a fraction of the shard's core size
        (at least 1 when any cross edge exists).
    max_anchors:
        Hard per-shard anchor cap overriding the fraction.
    """
    labels = np.asarray(labels, dtype=np.int64).ravel()
    n_shards = check_integer(n_shards, "n_shards", minimum=1)
    if labels.size == 0:
        raise ConfigurationError("labels must cover at least one user")
    if n_shards > labels.size:
        raise ConfigurationError(
            f"cannot split {labels.size} users into {n_shards} shards"
        )
    if not 0.0 <= float(anchor_fraction) <= 1.0:
        raise ConfigurationError(
            f"anchor_fraction must lie in [0, 1], got {anchor_fraction}"
        )
    shard_of = (
        np.zeros(labels.size, dtype=np.int64)
        if n_shards == 1
        else _bin_communities(labels, n_shards)
    )
    anchors: List[np.ndarray] = [
        np.zeros(0, dtype=np.int64) for _ in range(n_shards)
    ]
    if adjacency is not None and n_shards > 1:
        matrix = sparse.csr_matrix(adjacency)
        if matrix.shape != (labels.size, labels.size):
            raise ConfigurationError(
                f"adjacency shape {matrix.shape} does not match "
                f"{labels.size} labels"
            )
        for s in range(n_shards):
            core_mask = shard_of == s
            budget = (
                int(max_anchors)
                if max_anchors is not None
                else max(1, int(round(anchor_fraction * core_mask.sum())))
            )
            anchors[s] = _anchor_users(matrix, core_mask, budget)
    return ShardPlan(shard_of, anchors)


def detect_communities(
    adjacency,
    max_sweeps: int = _DEFAULT_DETECT_SWEEPS,
) -> np.ndarray:
    """Deterministic label-propagation community detection.

    Synchronous updates: every sweep each user adopts the label carried
    by the largest total edge weight among its neighbors, breaking ties
    toward the smallest label id (and keeping the current label when it
    ties the best).  Isolated users keep their own singleton label.
    The fixed tie-breaking makes the output a pure function of the
    adjacency — no RNG — which the sharded fit's determinism contract
    requires.  Returns dense labels in ``0..n_communities-1``.
    """
    matrix = sparse.csr_matrix(adjacency, dtype=float)
    if matrix.shape[0] != matrix.shape[1]:
        raise ConfigurationError(
            f"adjacency must be square, got shape {matrix.shape}"
        )
    n = matrix.shape[0]
    max_sweeps = check_integer(max_sweeps, "max_sweeps", minimum=1)
    labels = np.arange(n, dtype=np.int64)
    for _ in range(max_sweeps):
        _, compact = np.unique(labels, return_inverse=True)
        n_labels = int(compact.max()) + 1 if n else 0
        # Neighbor label mass: adjacency @ one-hot(labels), kept sparse so
        # the sweep costs O(nnz) — never an n × n_labels dense product.
        onehot = sparse.csr_matrix(
            (np.ones(n), (np.arange(n), compact)), shape=(n, n_labels)
        )
        mass = (matrix @ onehot).tocsr()
        new_labels = compact.copy()
        for user in range(n):
            start, end = mass.indptr[user], mass.indptr[user + 1]
            if start == end:
                continue
            cols = mass.indices[start:end]
            votes = mass.data[start:end]
            winners = cols[votes >= votes.max()]
            current = compact[user]
            # Keeping a tied current label stabilizes the sweep; a fresh
            # winner is the smallest tied id — both rules are RNG-free.
            if current in winners:
                new_labels[user] = current
            else:
                new_labels[user] = int(winners.min())
        if np.array_equal(new_labels, compact):
            labels = compact
            break
        labels = new_labels
    _, final = np.unique(labels, return_inverse=True)
    return final.astype(np.int64)
