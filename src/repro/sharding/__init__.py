"""Community-sharded solving and scatter-gather serving.

The sharding subsystem splits one large aligned-network estimation
problem into per-community sub-problems that fit and serve
independently:

* :mod:`repro.sharding.partition` — assign users to shards from planted
  or detected communities, replicating high-degree boundary users as
  anchors across adjacent shards.
* :mod:`repro.sharding.model` — :class:`ShardedSlamPred` fits one
  factored SLAMPRED-H model per shard, in parallel across processes,
  with deterministic per-shard seeds and per-shard checkpoint
  directories.
* :mod:`repro.sharding.stitching` — calibrate per-shard score scales
  through the replicated anchors so cross-shard rankings agree.
* :mod:`repro.sharding.artifacts` — versioned sha256-verified multi-file
  artifact layout with partial-degradation loading.
* :mod:`repro.sharding.service` — :class:`ShardedLinkPredictionService`
  scatter-gathers per-shard candidates behind the same breaker /
  deadline / load-shed surface as the unsharded service.
"""

from repro.sharding.artifacts import (
    LoadedShardedArtifact,
    ShardedArtifactStore,
)
from repro.sharding.model import ShardedSlamPred, fit_shard
from repro.sharding.partition import (
    ShardPlan,
    detect_communities,
    plan_shards,
)
from repro.sharding.service import ShardedLinkPredictionService
from repro.sharding.stitching import (
    boundary_disagreement,
    fit_stitch_scales,
)

__all__ = [
    "LoadedShardedArtifact",
    "ShardPlan",
    "ShardedArtifactStore",
    "ShardedLinkPredictionService",
    "ShardedSlamPred",
    "boundary_disagreement",
    "detect_communities",
    "fit_shard",
    "fit_stitch_scales",
    "plan_shards",
]
