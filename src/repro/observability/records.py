"""Structured per-iteration telemetry records.

One :class:`IterationRecord` is produced per proximal iteration of a solver
run.  The record is the single source of truth for iteration diagnostics:
:class:`~repro.optim.convergence.IterationHistory` stores these records (its
``variable_norms`` / ``update_norms`` views are derived from them) and the
:class:`~repro.observability.tracer.Tracer` shares the same objects, so the
legacy history API and the run report can never drift apart.

The fields beyond the two Figure-3 norms are only populated when a live
tracer is attached to the solver — the untraced path records exactly what
the seed implementation recorded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional


@dataclass
class IterationRecord:
    """Diagnostics of one proximal iteration.

    Attributes
    ----------
    iteration:
        0-based index within the history the record belongs to.
    variable_norm:
        ``‖S^h‖₁`` (Figure 3, left panel).
    update_norm:
        ``‖S^h − S^{h−1}‖₁`` (Figure 3, right panel — the convergence
        criterion quantity).
    objective:
        Total objective value, when the solver evaluated it.
    objective_terms:
        Objective broken out per term (smooth losses and regularizers),
        keyed by term name; populated only under a live tracer.
    round:
        CCCP outer-round index (1-based) the iteration belongs to, or
        ``None`` when the solver ran outside a CCCP loop.
    step_size:
        Gradient step size θ used for the iteration.
    svd_rank:
        Number of singular values retained by the trace-norm prox
        (the effective rank of the low-rank component).
    svd_tail:
        The first singular value *not* retained — the (rank+1)-th value on
        the truncated path, or the largest thresholded-away value on the
        dense path.  Comparing it to ``svd_threshold`` shows whether the
        truncated-SVT approximation was lossy.
    svd_threshold:
        The effective singular-value threshold ``step · τ`` of the prox.
    phase_seconds:
        Wall-clock seconds per phase of the iteration (``gradient``, one
        entry per prox apply).
    """

    iteration: int
    variable_norm: float
    update_norm: float
    objective: Optional[float] = None
    objective_terms: Dict[str, float] = field(default_factory=dict)
    round: Optional[int] = None
    step_size: Optional[float] = None
    svd_rank: Optional[int] = None
    svd_tail: Optional[float] = None
    svd_threshold: Optional[float] = None
    phase_seconds: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible view (``None`` fields are dropped for brevity)."""
        payload: Dict[str, Any] = {
            "iteration": self.iteration,
            "variable_norm": float(self.variable_norm),
            "update_norm": float(self.update_norm),
        }
        if self.objective is not None:
            payload["objective"] = float(self.objective)
        if self.objective_terms:
            payload["objective_terms"] = {
                name: float(value)
                for name, value in self.objective_terms.items()
            }
        if self.round is not None:
            payload["round"] = int(self.round)
        if self.step_size is not None:
            payload["step_size"] = float(self.step_size)
        if self.svd_rank is not None:
            payload["svd_rank"] = int(self.svd_rank)
        if self.svd_tail is not None:
            payload["svd_tail"] = float(self.svd_tail)
        if self.svd_threshold is not None:
            payload["svd_threshold"] = float(self.svd_threshold)
        if self.phase_seconds:
            payload["phase_seconds"] = {
                name: float(value)
                for name, value in self.phase_seconds.items()
            }
        return payload
