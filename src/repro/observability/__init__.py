"""Solver telemetry: tracing, per-iteration records, run reports.

The subsystem has three pieces:

* :mod:`repro.observability.tracer` — :class:`Tracer` (nested timed spans,
  counters, metric streams) and the free :class:`NullTracer`;
* :mod:`repro.observability.records` — the per-iteration
  :class:`IterationRecord` shared between
  :class:`~repro.optim.convergence.IterationHistory` and the tracer;
* :mod:`repro.observability.report` — the schema-versioned
  :class:`RunReport` JSON archive with its human ``summary()``.

Every solver entry point (``ForwardBackwardSolver.solve``,
``CCCPSolver.solve``, ``SlamPred(tracer=...)``, ``evaluate_model``) accepts
an optional tracer; passing ``None`` (the default) keeps the hot path
untouched.  See DESIGN.md §"Telemetry & run reports".
"""

from repro.observability.records import IterationRecord
from repro.observability.tracer import NullTracer, Span, Tracer, is_tracing
from repro.observability.report import (
    DEFAULT_REPORT_DIR,
    SCHEMA_VERSION,
    RunReport,
    build_run_report,
    default_report_path,
)

__all__ = [
    "IterationRecord",
    "Tracer",
    "NullTracer",
    "Span",
    "is_tracing",
    "RunReport",
    "build_run_report",
    "default_report_path",
    "SCHEMA_VERSION",
    "DEFAULT_REPORT_DIR",
]
