"""Telemetry: tracing, metrics, structured logging, run reports.

The subsystem is a **two-tier pipeline** (DESIGN.md §15):

* :mod:`repro.observability.cells` — the hot tier: lock-striped
  per-thread Counter/Histogram cells (:class:`StripedCounter`,
  :class:`StripedHistogram`, power-of-two bucket index) collected in a
  :class:`CellBank` and drained — synchronously at scrape time or by a
  :class:`CellAggregator` thread — into the registry;
* :mod:`repro.observability.metrics` — the cold tier: the scrapeable
  :class:`MetricsRegistry` (Counter/Gauge/Histogram with Prometheus text
  exposition) and the free :class:`NullRegistry`;
* :mod:`repro.observability.tracer` — :class:`Tracer` (nested timed
  spans, counters, metric streams) and the free :class:`NullTracer`;
* :mod:`repro.observability.sampling` — :class:`SamplingTracer`:
  deterministic hash-based head sampling per request with
  always-sample-on-error, per-route rates and a bounded finished-trace
  buffer;
* :mod:`repro.observability.propagation` — :class:`TraceContext`
  minted at the HTTP edge and re-bound across threads, the
  micro-batcher and ``parallel_map_processes`` shard workers, so one
  request yields one stitched span tree;
* :mod:`repro.observability.profiler` — :class:`ContinuousProfiler`, a
  sampling wall-clock profiler attributing stack samples to active span
  labels, exported via ``/debug/profile`` and the experiments CLI;
* :mod:`repro.observability.logging` — structured JSON logging
  (:func:`get_logger`) with request/run-id propagation via contextvars;
* :mod:`repro.observability.records` — the per-iteration
  :class:`IterationRecord` shared between
  :class:`~repro.optim.convergence.IterationHistory` and the tracer;
* :mod:`repro.observability.report` — the schema-versioned
  :class:`RunReport` JSON archive with its human ``summary()``.

Every solver entry point (``ForwardBackwardSolver.solve``,
``CCCPSolver.solve``, ``SlamPred(tracer=...)``, ``evaluate_model``) accepts
an optional tracer; passing ``None`` (the default) keeps the hot path
untouched.  A tracer built with ``Tracer(registry=...)`` additionally
publishes solver series (``solver.svt_seconds``, ``solver.objective``,
``solver.rank``) into the registry the serving stack scrapes.  See
DESIGN.md §"Telemetry & run reports", §"Metrics, logs & tracing" and
§15 "Two-tier telemetry".
"""

from repro.observability.records import IterationRecord
from repro.observability.tracer import NullTracer, Span, Tracer, is_tracing
from repro.observability.metrics import (
    BATCH_SIZE_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    NullRegistry,
    NULL_REGISTRY,
)
from repro.observability.cells import (
    CellAggregator,
    CellBank,
    PowerOfTwoBucketIndex,
    StripedCounter,
    StripedHistogram,
)
from repro.observability.propagation import (
    RemoteTrace,
    TraceContext,
    activate_runtime_context,
    bind_trace,
    current_trace,
    current_trace_context,
    inject_runtime_context,
    new_span_id,
    new_trace_id,
    sampling_decision,
    sampling_threshold,
)
from repro.observability.sampling import (
    DEFAULT_SAMPLE_RATE,
    ActiveTrace,
    SamplingTracer,
)
from repro.observability.profiler import (
    GLOBAL_PROFILER,
    ContinuousProfiler,
    global_profiler,
)
from repro.observability.logging import (
    configure_logging,
    current_request_id,
    current_run_id,
    get_logger,
    new_request_id,
    request_context,
    run_context,
)
from repro.observability.report import (
    DEFAULT_REPORT_DIR,
    SCHEMA_VERSION,
    RunReport,
    build_run_report,
    default_report_path,
)

__all__ = [
    "IterationRecord",
    "Tracer",
    "NullTracer",
    "Span",
    "is_tracing",
    "SamplingTracer",
    "ActiveTrace",
    "DEFAULT_SAMPLE_RATE",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_LATENCY_BUCKETS",
    "BATCH_SIZE_BUCKETS",
    "CellBank",
    "CellAggregator",
    "StripedCounter",
    "StripedHistogram",
    "PowerOfTwoBucketIndex",
    "TraceContext",
    "RemoteTrace",
    "bind_trace",
    "current_trace",
    "current_trace_context",
    "inject_runtime_context",
    "activate_runtime_context",
    "new_trace_id",
    "new_span_id",
    "sampling_decision",
    "sampling_threshold",
    "ContinuousProfiler",
    "GLOBAL_PROFILER",
    "global_profiler",
    "configure_logging",
    "get_logger",
    "new_request_id",
    "current_request_id",
    "current_run_id",
    "request_context",
    "run_context",
    "RunReport",
    "build_run_report",
    "default_report_path",
    "SCHEMA_VERSION",
    "DEFAULT_REPORT_DIR",
]
