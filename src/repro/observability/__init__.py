"""Telemetry: tracing, metrics, structured logging, run reports.

The subsystem has five pieces:

* :mod:`repro.observability.tracer` — :class:`Tracer` (nested timed spans,
  counters, metric streams) and the free :class:`NullTracer`;
* :mod:`repro.observability.metrics` — the scrapeable
  :class:`MetricsRegistry` (Counter/Gauge/Histogram with Prometheus text
  exposition) and the free :class:`NullRegistry`;
* :mod:`repro.observability.logging` — structured JSON logging
  (:func:`get_logger`) with request/run-id propagation via contextvars;
* :mod:`repro.observability.records` — the per-iteration
  :class:`IterationRecord` shared between
  :class:`~repro.optim.convergence.IterationHistory` and the tracer;
* :mod:`repro.observability.report` — the schema-versioned
  :class:`RunReport` JSON archive with its human ``summary()``.

Every solver entry point (``ForwardBackwardSolver.solve``,
``CCCPSolver.solve``, ``SlamPred(tracer=...)``, ``evaluate_model``) accepts
an optional tracer; passing ``None`` (the default) keeps the hot path
untouched.  A tracer built with ``Tracer(registry=...)`` additionally
publishes solver series (``solver.svt_seconds``, ``solver.objective``,
``solver.rank``) into the registry the serving stack scrapes.  See
DESIGN.md §"Telemetry & run reports" and §"Metrics, logs & tracing".
"""

from repro.observability.records import IterationRecord
from repro.observability.tracer import NullTracer, Span, Tracer, is_tracing
from repro.observability.metrics import (
    BATCH_SIZE_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    NullRegistry,
    NULL_REGISTRY,
)
from repro.observability.logging import (
    configure_logging,
    current_request_id,
    current_run_id,
    get_logger,
    new_request_id,
    request_context,
    run_context,
)
from repro.observability.report import (
    DEFAULT_REPORT_DIR,
    SCHEMA_VERSION,
    RunReport,
    build_run_report,
    default_report_path,
)

__all__ = [
    "IterationRecord",
    "Tracer",
    "NullTracer",
    "Span",
    "is_tracing",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_LATENCY_BUCKETS",
    "BATCH_SIZE_BUCKETS",
    "configure_logging",
    "get_logger",
    "new_request_id",
    "current_request_id",
    "current_run_id",
    "request_context",
    "run_context",
    "RunReport",
    "build_run_report",
    "default_report_path",
    "SCHEMA_VERSION",
    "DEFAULT_REPORT_DIR",
]
