"""Dependency-free metrics: counters, gauges, histograms, Prometheus text.

The registry is the aggregation half of the observability subsystem (the
:class:`~repro.observability.tracer.Tracer` is the per-run half): serving
and solver code publish into one :class:`MetricsRegistry`, and a scraper
reads the whole thing back as Prometheus text format from ``/metrics``.

Three metric kinds, all thread-safe and all supporting labels:

* :class:`Counter` — monotonically increasing (requests, cache hits);
* :class:`Gauge` — a settable level (uptime, current objective, rank);
* :class:`Histogram` — cumulative fixed buckets (latency, batch sizes)
  plus a bounded streaming window from which p50/p95/p99 are read back
  without a scrape (:meth:`Histogram.quantile`).

Mirroring the ``Tracer``/``NullTracer`` contract, :class:`NullRegistry`
turns every operation into a free no-op and reports ``enabled = False``,
so instrumented code can gate optional work and the disabled hot path
costs nothing beyond an attribute load.

Only the standard library is used — the registry runs in the same
numpy-only container as the serving stack.
"""

from __future__ import annotations

import math
import threading
import time
from bisect import bisect_left
from collections import deque
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_LATENCY_BUCKETS",
    "BATCH_SIZE_BUCKETS",
    "prometheus_name",
]

DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)
"""Latency buckets (seconds) spanning cache hits to cold paper-scale fits."""

BATCH_SIZE_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256)
"""Coalesce-size buckets for the micro-batcher histogram."""

_QUANTILE_WINDOW = 1024
"""Observations retained per histogram child for streaming quantiles."""


def prometheus_name(name: str) -> str:
    """Map a dotted registry name to a legal Prometheus metric name."""
    sanitized = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _escape_label(value: str) -> str:
    """Escape a label value per the Prometheus text-format rules."""
    return (
        str(value)
        .replace("\\", r"\\")
        .replace("\n", r"\n")
        .replace('"', r'\"')
    )


def _escape_help(text: str) -> str:
    """Escape HELP text per the Prometheus text-format rules.

    HELP lines escape only backslash and newline (quotes stay literal,
    unlike label values), so a help string containing either still
    round-trips through a text-format parser as one line.
    """
    return str(text).replace("\\", r"\\").replace("\n", r"\n")


def _render_labels(names: Sequence[str], values: Sequence[str]) -> str:
    if not names:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label(value)}"'
        for name, value in zip(names, values)
    )
    return "{" + inner + "}"


class _QuantileSummary:
    """Bounded sliding window of the most recent observations.

    A full streaming sketch is overkill at serving scale; a 1024-sample
    window answers "what are p50/p95/p99 *right now*" with bounded memory,
    which is exactly what the benchmark trajectory recorder needs.
    Callers must hold the owning metric's lock.
    """

    __slots__ = ("_window",)

    def __init__(self, window: int = _QUANTILE_WINDOW):
        self._window: deque = deque(maxlen=window)

    def add(self, value: float) -> None:
        self._window.append(value)

    def quantile(self, q: float) -> float:
        """The q-quantile (0..1) of the window; NaN when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._window:
            return math.nan
        ordered = sorted(self._window)
        index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return float(ordered[index])

    def __len__(self) -> int:
        return len(self._window)


class _Metric:
    """Shared plumbing of one child (one label-value combination)."""

    __slots__ = ("_lock",)

    def __init__(self) -> None:
        self._lock = threading.Lock()


class Counter(_Metric):
    """A monotonically increasing count."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        super().__init__()
        self._value = 0.0

    def inc(self, value: float = 1.0) -> None:
        """Add ``value`` (must be >= 0) to the counter."""
        if value < 0:
            raise ValueError(f"counters only go up, got increment {value}")
        with self._lock:
            self._value += value

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def _set_total(self, value: float) -> None:
        """Overwrite the total (monotone: never moves the counter down).

        This is the drain target for lock-striped hot-tier cells
        (:mod:`repro.observability.cells`): the drain recomputes the
        merged total from per-thread cells and *overwrites* the registry
        series to match, which is idempotent and exact at quiescence.
        The max() guard keeps the series monotone if a racing drain
        observed a slightly staler merge.
        """
        with self._lock:
            self._value = max(self._value, float(value))


class Gauge(_Metric):
    """A level that can go up and down."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        super().__init__()
        self._value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        with self._lock:
            self._value = float(value)

    def inc(self, value: float = 1.0) -> None:
        """Add ``value`` (may be negative)."""
        with self._lock:
            self._value += value

    def dec(self, value: float = 1.0) -> None:
        """Subtract ``value``."""
        self.inc(-value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class _Timer:
    """Context manager observing its wall-clock duration into a histogram."""

    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: "Histogram"):
        self._histogram = histogram
        self._start = 0.0

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._histogram.observe(time.perf_counter() - self._start)


class Histogram(_Metric):
    """Cumulative fixed-bucket histogram plus a streaming quantile window."""

    __slots__ = ("_buckets", "_counts", "_sum", "_count", "_summary")

    def __init__(self, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS):
        super().__init__()
        ordered = tuple(float(b) for b in buckets)
        if not ordered:
            raise ValueError("histogram needs at least one bucket bound")
        if list(ordered) != sorted(set(ordered)):
            raise ValueError(
                f"bucket bounds must be strictly increasing, got {buckets}"
            )
        self._buckets = ordered
        self._counts = [0] * len(ordered)
        self._sum = 0.0
        self._count = 0
        self._summary = _QuantileSummary()

    def observe(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        index = bisect_left(self._buckets, value)
        with self._lock:
            if index < len(self._counts):
                self._counts[index] += 1
            self._sum += value
            self._count += 1
            self._summary.add(value)

    def time(self) -> _Timer:
        """``with histogram.time():`` — observe the block's duration."""
        return _Timer(self)

    def quantile(self, q: float) -> float:
        """Streaming q-quantile over the recent-observation window."""
        with self._lock:
            return self._summary.quantile(q)

    def snapshot(self) -> Dict[str, float]:
        """Count, sum and p50/p95/p99 of the recent window (one lock hold)."""
        with self._lock:
            return {
                "count": self._count,
                "sum": self._sum,
                "p50": self._summary.quantile(0.50),
                "p95": self._summary.quantile(0.95),
                "p99": self._summary.quantile(0.99),
            }

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def _cumulative(self) -> Tuple[List[int], float, int]:
        """(cumulative bucket counts, sum, count) under the lock."""
        with self._lock:
            running, cumulative = 0, []
            for bucket_count in self._counts:
                running += bucket_count
                cumulative.append(running)
            return cumulative, self._sum, self._count

    def _set_state(
        self,
        bucket_counts: Sequence[int],
        total_sum: float,
        total_count: int,
        window: Sequence[float],
    ) -> None:
        """Overwrite the histogram to a merged striped-cell state.

        Drain target for :class:`repro.observability.cells.StripedHistogram`:
        ``bucket_counts`` are per-bucket (non-cumulative) counts aligned
        with this histogram's bounds, ``window`` replaces the recent
        quantile window.  Monotone guard as in :meth:`Counter._set_total`.
        """
        counts = [int(c) for c in bucket_counts]
        if len(counts) != len(self._counts):
            raise ValueError(
                f"expected {len(self._counts)} bucket counts, "
                f"got {len(counts)}"
            )
        with self._lock:
            if int(total_count) < self._count:
                return  # stale merge; a fresher drain already landed
            self._counts = counts
            self._sum = float(total_sum)
            self._count = int(total_count)
            self._summary._window.clear()
            self._summary._window.extend(float(v) for v in window)


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class _Family:
    """One named metric family: shared help/type plus per-label children."""

    def __init__(
        self,
        name: str,
        kind: str,
        help: str,
        label_names: Tuple[str, ...],
        buckets: Optional[Sequence[float]] = None,
    ):
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = label_names
        self._buckets = buckets
        self._children: Dict[Tuple[str, ...], _Metric] = {}
        self._lock = threading.Lock()

    def labels(self, **labels: str) -> _Metric:
        """The child metric for one combination of label values."""
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                if self.kind == "histogram":
                    child = Histogram(self._buckets or DEFAULT_LATENCY_BUCKETS)
                else:
                    child = _KINDS[self.kind]()
                self._children[key] = child
            return child

    def children(self) -> List[Tuple[Tuple[str, ...], _Metric]]:
        """Stable-ordered (label values, child) pairs."""
        with self._lock:
            return sorted(self._children.items())


class _FamilyHandle:
    """What ``registry.counter(...)`` returns: the family, callable as its
    unlabeled child when no labels were declared."""

    __slots__ = ("_family", "_default")

    def __init__(self, family: _Family):
        self._family = family
        self._default = family.labels() if not family.label_names else None

    def labels(self, **labels: str) -> _Metric:
        """The child for one label-value combination."""
        return self._family.labels(**labels)

    def _unlabeled(self) -> _Metric:
        if self._default is None:
            raise ValueError(
                f"metric {self._family.name!r} declares labels "
                f"{self._family.label_names}; call .labels(...) first"
            )
        return self._default

    # Convenience pass-throughs for the (common) unlabeled case.
    def inc(self, value: float = 1.0) -> None:
        """Increment the unlabeled child."""
        self._unlabeled().inc(value)  # type: ignore[union-attr]

    def dec(self, value: float = 1.0) -> None:
        """Decrement the unlabeled gauge child."""
        self._unlabeled().dec(value)  # type: ignore[union-attr]

    def set(self, value: float) -> None:
        """Set the unlabeled gauge child."""
        self._unlabeled().set(value)  # type: ignore[union-attr]

    def observe(self, value: float) -> None:
        """Observe into the unlabeled histogram child."""
        self._unlabeled().observe(value)  # type: ignore[union-attr]

    def time(self) -> _Timer:
        """Time a block into the unlabeled histogram child."""
        return self._unlabeled().time()  # type: ignore[union-attr]

    def quantile(self, q: float) -> float:
        """Streaming quantile of the unlabeled histogram child."""
        return self._unlabeled().quantile(q)  # type: ignore[union-attr]

    def snapshot(self) -> Dict[str, float]:
        """Snapshot of the unlabeled histogram child."""
        return self._unlabeled().snapshot()  # type: ignore[union-attr]

    @property
    def value(self) -> float:
        """Value of the unlabeled counter/gauge child."""
        return self._unlabeled().value  # type: ignore[union-attr]


class MetricsRegistry:
    """A process-wide family registry with Prometheus text exposition.

    Parameters
    ----------
    namespace:
        Prefix prepended (``<namespace>_``) to every exposed metric name.

    Examples
    --------
    >>> registry = MetricsRegistry()
    >>> registry.counter("demo.requests", help="requests served").inc()
    >>> hist = registry.histogram("demo.latency_seconds", labels=("route",))
    >>> hist.labels(route="topk").observe(0.003)
    >>> "repro_demo_requests_total 1" in registry.render()
    True
    """

    enabled: bool = True

    def __init__(self, namespace: str = "repro"):
        self.namespace = namespace
        self._families: Dict[str, _FamilyHandle] = {}
        self._lock = threading.Lock()

    # -- declaration ----------------------------------------------------
    def _family(
        self,
        name: str,
        kind: str,
        help: str,
        labels: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
    ) -> _FamilyHandle:
        label_names = tuple(labels)
        with self._lock:
            handle = self._families.get(name)
            if handle is not None:
                family = handle._family
                if family.kind != kind or family.label_names != label_names:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{family.kind} with labels {family.label_names}"
                    )
                return handle
            handle = _FamilyHandle(
                _Family(name, kind, help, label_names, buckets)
            )
            self._families[name] = handle
            return handle

    def counter(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> _FamilyHandle:
        """Register (or fetch) a counter family."""
        return self._family(name, "counter", help, labels)

    def gauge(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> _FamilyHandle:
        """Register (or fetch) a gauge family."""
        return self._family(name, "gauge", help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> _FamilyHandle:
        """Register (or fetch) a histogram family with fixed buckets."""
        return self._family(name, "histogram", help, labels, buckets)

    # -- read-back ------------------------------------------------------
    def families(self) -> List[str]:
        """Registered family names, sorted."""
        with self._lock:
            return sorted(self._families)

    def get(self, name: str) -> Optional[_FamilyHandle]:
        """The family handle for ``name``, or ``None`` if unregistered."""
        with self._lock:
            return self._families.get(name)

    def _iter_families(self) -> Iterator[_Family]:
        with self._lock:
            handles = [self._families[name] for name in sorted(self._families)]
        for handle in handles:
            yield handle._family

    def render(self) -> str:
        """The whole registry as Prometheus text format (version 0.0.4)."""
        lines: List[str] = []
        for family in self._iter_families():
            exposed = f"{self.namespace}_{prometheus_name(family.name)}"
            if family.kind == "counter" and not exposed.endswith("_total"):
                exposed += "_total"
            if family.help:
                lines.append(
                    f"# HELP {exposed} {_escape_help(family.help)}"
                )
            lines.append(f"# TYPE {exposed} {family.kind}")
            for values, child in family.children():
                if family.kind == "histogram":
                    lines.extend(
                        self._render_histogram(
                            exposed, family, values, child  # type: ignore[arg-type]
                        )
                    )
                else:
                    labels = _render_labels(family.label_names, values)
                    lines.append(
                        f"{exposed}{labels} {_format_value(child.value)}"  # type: ignore[union-attr]
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    @staticmethod
    def _render_histogram(
        exposed: str,
        family: _Family,
        values: Tuple[str, ...],
        child: Histogram,
    ) -> List[str]:
        cumulative, total_sum, total_count = child._cumulative()
        lines = []
        label_names = family.label_names
        for bound, running in zip(child._buckets, cumulative):
            labels = _render_labels(
                label_names + ("le",), values + (_format_value(bound),)
            )
            lines.append(f"{exposed}_bucket{labels} {running}")
        inf_labels = _render_labels(
            label_names + ("le",), values + ("+Inf",)
        )
        lines.append(f"{exposed}_bucket{inf_labels} {total_count}")
        plain = _render_labels(label_names, values)
        lines.append(f"{exposed}_sum{plain} {_format_value(total_sum)}")
        lines.append(f"{exposed}_count{plain} {total_count}")
        return lines


def _format_value(value: float) -> str:
    """Render a sample value the way Prometheus expects (ints unpadded)."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    as_float = float(value)
    if as_float.is_integer() and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


class _NullMetric:
    """One shared do-nothing child standing in for every metric kind."""

    def labels(self, **labels: str) -> "_NullMetric":
        """Return itself — label combinations are not tracked."""
        return self

    def inc(self, value: float = 1.0) -> None:
        """Discard."""

    def dec(self, value: float = 1.0) -> None:
        """Discard."""

    def set(self, value: float) -> None:
        """Discard."""

    def observe(self, value: float) -> None:
        """Discard."""

    def time(self) -> "_NullTimer":
        """A timer that never reads the clock."""
        return _NULL_TIMER

    def quantile(self, q: float) -> float:
        """NaN — nothing was recorded."""
        return math.nan

    def snapshot(self) -> Dict[str, float]:
        """An empty snapshot."""
        return {
            "count": 0, "sum": 0.0,
            "p50": math.nan, "p95": math.nan, "p99": math.nan,
        }

    @property
    def value(self) -> float:
        return 0.0


class _NullTimer:
    """Do-nothing timer context manager."""

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_METRIC = _NullMetric()
_NULL_TIMER = _NullTimer()


class NullRegistry(MetricsRegistry):
    """A registry whose every operation is a free no-op.

    Mirrors the :class:`~repro.observability.tracer.NullTracer` contract:
    ``enabled`` is False so instrumented code can skip optional work, every
    ``counter``/``gauge``/``histogram`` call returns one shared no-op child
    (no allocation, no locking), and ``render()`` is empty.  Constructing a
    service with ``registry=NullRegistry()`` restores the uninstrumented
    hot path.
    """

    enabled = False

    def _family(self, name, kind, help, labels, buckets=None):  # type: ignore[override]
        """Return the shared no-op metric regardless of kind or labels."""
        return _NULL_METRIC

    def render(self) -> str:
        """Nothing is ever recorded."""
        return ""


NULL_REGISTRY = NullRegistry()
"""Shared null registry for ``registry or NULL_REGISTRY`` defaulting."""
