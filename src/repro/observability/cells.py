"""Hot-tier lock-striped metric cells drained into the Prometheus registry.

The registry's :class:`~repro.observability.metrics.Counter` and
:class:`~repro.observability.metrics.Histogram` take a lock per record,
which BENCH_serving.json's ``telemetry_overhead`` snapshot priced at
~20% of request latency on the top-k hot path.  This module is the hot
tier that removes that cost:

* :class:`StripedCounter` / :class:`StripedHistogram` keep one **cell
  per recording thread** (``threading.local``).  The record path is an
  attribute lookup plus a float add / list increment — no lock, no
  allocation; the only lock is taken once per thread's *first* record,
  to register its cell with the drainer.
* :class:`PowerOfTwoBucketIndex` turns histogram bucket search into a
  precomputed power-of-two table lookup (via :func:`math.frexp`) plus a
  bounded linear probe, replacing :func:`bisect.bisect_left` per sample.
* :class:`CellBank` owns the striped metrics and the **drain**: it
  recomputes merged totals across cells and *overwrites* the matching
  registry series (``Counter._set_total`` / ``Histogram._set_state``).
  Overwrite-to-match is idempotent and exact at quiescence — no delta
  bookkeeping, no lost increments — at the price that a striped series
  must only ever be written through its cells (never mixed with direct
  registry ``.inc()``).
* :class:`CellAggregator` is the optional background thread that drains
  on a cadence; scrape paths also drain synchronously, so the thread is
  only needed for freshness between scrapes and is never started by
  plain construction (the no-telemetry path spawns nothing).

Cross-thread visibility relies on the CPython GIL: the owner thread
writes its cell, the drainer reads it; reads may be one increment stale
mid-flight but converge exactly once writers quiesce, which the drain
exactness tests pin down.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.observability.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    _QUANTILE_WINDOW,
    _QuantileSummary,
)


class PowerOfTwoBucketIndex:
    """Constant-time histogram bucket lookup from precomputed bounds.

    For strictly positive bounds the table maps a value's binary
    exponent (``math.frexp``) to the first candidate bucket, after which
    at most a few linear probes reach the exact ``bisect_left`` answer —
    the probe length is bounded by how many bounds share one octave.
    Non-positive bounds (or values) fall back to :func:`bisect_left`.
    """

    __slots__ = ("_bounds", "_n", "_min_exp", "_table")

    def __init__(self, bounds: Sequence[float]) -> None:
        self._bounds = tuple(float(b) for b in bounds)
        if list(self._bounds) != sorted(set(self._bounds)):
            raise ValueError(
                f"bucket bounds must be strictly increasing, got {bounds}"
            )
        self._n = len(self._bounds)
        if not self._bounds or self._bounds[0] <= 0.0:
            self._min_exp = 0
            self._table: Optional[Tuple[int, ...]] = None
            return
        self._min_exp = math.frexp(self._bounds[0])[1]
        max_exp = math.frexp(self._bounds[-1])[1]
        # table[e - min_exp] = first bucket that can hold the smallest
        # value whose frexp exponent is e (that value is 2**(e-1)).
        self._table = tuple(
            bisect_left(self._bounds, math.ldexp(0.5, exp))
            for exp in range(self._min_exp, max_exp + 1)
        )

    @property
    def bounds(self) -> Tuple[float, ...]:
        """The (sorted, strictly increasing) bucket upper bounds."""
        return self._bounds

    def __call__(self, value: float) -> int:
        """Bucket index for ``value`` — equals ``bisect_left(bounds, value)``."""
        bounds = self._bounds
        table = self._table
        if table is None or value <= 0.0:
            return bisect_left(bounds, value)
        if value > bounds[-1]:
            return self._n
        exp = math.frexp(value)[1]
        if exp < self._min_exp:
            return 0  # below the smallest bound's octave
        index = table[exp - self._min_exp]
        while bounds[index] < value:
            index += 1
        return index


class _CounterCell:
    """One thread's private count (owner writes, drainer reads)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0


class StripedCounter:
    """Lock-free-on-record counter striped across per-thread cells."""

    __slots__ = ("name", "_local", "_cells", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._local = threading.local()
        self._cells: List[_CounterCell] = []
        self._lock = threading.Lock()

    def _new_cell(self) -> _CounterCell:
        cell = _CounterCell()
        with self._lock:
            self._cells.append(cell)
        self._local.cell = cell
        return cell

    def inc(self, value: float = 1.0) -> None:
        """Add ``value`` to the calling thread's cell (no lock taken)."""
        try:
            cell = self._local.cell
        except AttributeError:
            cell = self._new_cell()
        cell.value += value

    def total(self) -> float:
        """Merged total across all cells (exact once writers quiesce)."""
        with self._lock:
            cells = list(self._cells)
        return sum((cell.value for cell in cells), 0.0)


class _HistogramCell:
    """One thread's private histogram shard (owner writes, drainer reads)."""

    __slots__ = ("counts", "sum", "count", "window")

    def __init__(self, n_buckets: int, window: int) -> None:
        self.counts = [0] * n_buckets
        self.sum = 0.0
        self.count = 0
        self.window: deque = deque(maxlen=window)


class StripedHistogram:
    """Lock-free-on-record histogram striped across per-thread cells.

    Bucketing uses :class:`PowerOfTwoBucketIndex`; each cell also keeps
    a bounded recent-value window so the drained registry histogram can
    answer p50/p95/p99 like a directly-observed one.
    """

    __slots__ = ("name", "_index", "_local", "_cells", "_lock", "_window")

    def __init__(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        window: int = _QUANTILE_WINDOW,
    ) -> None:
        self.name = name
        self._index = PowerOfTwoBucketIndex(buckets)
        self._local = threading.local()
        self._cells: List[_HistogramCell] = []
        self._lock = threading.Lock()
        self._window = int(window)

    @property
    def bounds(self) -> Tuple[float, ...]:
        """Bucket upper bounds (matches the registry histogram's)."""
        return self._index.bounds

    def _new_cell(self) -> _HistogramCell:
        cell = _HistogramCell(len(self._index.bounds), self._window)
        with self._lock:
            self._cells.append(cell)
        self._local.cell = cell
        return cell

    def observe(self, value: float) -> None:
        """Record one sample into the calling thread's cell (no lock)."""
        value = float(value)
        try:
            cell = self._local.cell
        except AttributeError:
            cell = self._new_cell()
        index = self._index(value)
        if index < len(cell.counts):
            cell.counts[index] += 1
        cell.sum += value
        cell.count += 1
        cell.window.append(value)

    def merged_state(self) -> Tuple[List[int], float, int, List[float]]:
        """(bucket counts, sum, count, merged window) across all cells.

        The merged window concatenates per-cell windows and keeps the
        most recent ``window`` values overall only in the sense of a
        bounded multiset — per-cell recency is preserved, cross-cell
        ordering is by cell registration, which is enough for quantiles.
        """
        with self._lock:
            cells = list(self._cells)
        n = len(self._index.bounds)
        counts = [0] * n
        total = 0.0
        count = 0
        window: List[float] = []
        for cell in cells:
            cell_counts = cell.counts
            for i in range(n):
                counts[i] += cell_counts[i]
            total += cell.sum
            count += cell.count
            window.extend(cell.window)
        if len(window) > self._window:
            window = window[-self._window:]
        return counts, total, count, window

    def snapshot(self) -> Dict[str, float]:
        """Merged count/sum/p50/p95/p99 (mirrors ``Histogram.snapshot``)."""
        _, total, count, window = self.merged_state()
        summary = _QuantileSummary(window=max(1, self._window))
        for value in window:
            summary.add(value)
        return {
            "count": count,
            "sum": total,
            "p50": summary.quantile(0.50),
            "p95": summary.quantile(0.95),
            "p99": summary.quantile(0.99),
        }


class CellBank:
    """Registry of striped metrics plus the drain that reconciles them.

    ``counter()``/``histogram()`` hand out striped metrics keyed by hot
    name; a ``registry_name`` links each to the Prometheus series the
    drain overwrites.  ``add_source()`` registers extra overwrite-style
    sync callbacks (e.g. the ranking cache pushing its exact internal
    tallies).  ``drain()`` is a no-op against a disabled registry, so
    the no-telemetry path costs nothing.
    """

    def __init__(self, registry: Optional[Any] = None) -> None:
        self.registry = registry
        self._lock = threading.Lock()
        self._counters: Dict[str, StripedCounter] = {}
        self._counter_targets: Dict[str, Tuple[str, str]] = {}
        self._histograms: Dict[str, StripedHistogram] = {}
        self._histogram_targets: Dict[str, Tuple[str, str]] = {}
        self._sources: List[Callable[[Any], None]] = []

    def counter(
        self,
        name: str,
        help: str = "",
        registry_name: Optional[str] = None,
    ) -> StripedCounter:
        """The striped counter for ``name`` (created on first use)."""
        counter = self._counters.get(name)
        if counter is None:
            with self._lock:
                counter = self._counters.get(name)
                if counter is None:
                    counter = StripedCounter(name)
                    self._counters[name] = counter
                    if registry_name:
                        self._counter_targets[name] = (registry_name, help)
        return counter

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        help: str = "",
        registry_name: Optional[str] = None,
    ) -> StripedHistogram:
        """The striped histogram for ``name`` (created on first use)."""
        histogram = self._histograms.get(name)
        if histogram is None:
            with self._lock:
                histogram = self._histograms.get(name)
                if histogram is None:
                    histogram = StripedHistogram(name, buckets=buckets)
                    self._histograms[name] = histogram
                    if registry_name:
                        self._histogram_targets[name] = (
                            registry_name,
                            help,
                        )
        return histogram

    def add_source(self, sync: Callable[[Any], None]) -> None:
        """Register an extra drain callback ``sync(registry)``."""
        with self._lock:
            self._sources.append(sync)

    def counter_totals(self) -> Dict[str, float]:
        """Merged totals of every striped counter, keyed by hot name."""
        with self._lock:
            counters = dict(self._counters)
        return {name: c.total() for name, c in counters.items()}

    def drain(self) -> None:
        """Overwrite linked registry series to match the merged cells."""
        registry = self.registry
        if registry is None or not getattr(registry, "enabled", True):
            return
        with self._lock:
            counter_targets = dict(self._counter_targets)
            histogram_targets = dict(self._histogram_targets)
            sources = list(self._sources)
        for name, (series, help) in counter_targets.items():
            handle = registry.counter(series, help=help)
            handle._unlabeled()._set_total(self._counters[name].total())
        for name, (series, help) in histogram_targets.items():
            striped = self._histograms[name]
            handle = registry.histogram(
                series, help=help, buckets=striped.bounds
            )
            counts, total, count, window = striped.merged_state()
            handle._unlabeled()._set_state(counts, total, count, window)
        for sync in sources:
            sync(registry)


class CellAggregator:
    """Background thread draining a :class:`CellBank` on a cadence.

    Never started implicitly — entry points that want continuous drains
    between scrapes (the serving CLI) call :meth:`start`; everything
    else relies on the synchronous drain at scrape time.
    """

    def __init__(self, bank: CellBank, interval_s: float = 1.0) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        self.bank = bank
        self.interval_s = float(interval_s)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    @property
    def running(self) -> bool:
        """Whether the drain thread is currently alive."""
        thread = self._thread
        return thread is not None and thread.is_alive()

    def start(self) -> "CellAggregator":
        """Start the drain thread (idempotent)."""
        if self.running:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-metrics-aggregator", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the thread after one final drain."""
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=5.0)
        self._thread = None
        self.bank.drain()

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.bank.drain()

    def __enter__(self) -> "CellAggregator":
        """Start on entry so ``with CellAggregator(bank):`` works."""
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        """Stop (with a final drain) when the ``with`` block exits."""
        self.stop()
