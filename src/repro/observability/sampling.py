"""Head-sampled request tracing for the serving hot path.

:class:`SamplingTracer` replaces unconditional span capture with a
per-request decision made once, at the edge, from the trace id alone
(:func:`repro.observability.propagation.sampling_decision` — CRC-32
against a per-route threshold).  The three resulting span paths are:

* **no active trace** — ``span()`` returns the shared null span: the
  solver-style cold names keep their registry-histogram bridge, but a
  bare hot-path call costs one contextvar read and one dict probe;
* **unsampled trace** — a :class:`_WatchSpan` that records nothing
  unless the block raises, in which case the span (and the whole trace)
  is promoted to an error trace — errors are *always* captured;
* **sampled trace** — a real :class:`~repro.observability.tracer.Span`
  tree rooted at the request, stitched across the micro-batcher and
  scatter-gather shard workers via grafted child spans.

Counters recorded through a sampling tracer live in lock-striped
:mod:`~repro.observability.cells`, so the ``tracer.count``/``counters``
surface stays intact while the record path takes no lock.  Committed
traces land in a bounded in-memory buffer (``finished()``) for tests,
debugging endpoints and post-hoc "explain this p99" queries.
"""

from __future__ import annotations

import threading
import time
import zlib
from collections import deque
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence

import repro.observability.profiler as _profiler
from repro.observability.cells import CellBank
from repro.observability.propagation import (
    _ACTIVE,
    TraceContext,
    new_span_id,
    new_trace_id,
    sampling_threshold,
)
from repro.observability.tracer import (
    _COUNTER_BRIDGE,
    _NULL_SPAN,
    _SPAN_HISTOGRAMS,
    Span,
    Tracer,
)

#: Default head-sampling rate: 1 in 100 requests carries a full span tree.
DEFAULT_SAMPLE_RATE = 0.01

_SAMPLE_SCALE = 1 << 32


def _decide(trace_id: str, threshold: int) -> bool:
    """Threshold form of the deterministic head-sampling decision."""
    if threshold >= _SAMPLE_SCALE:
        return True
    if threshold <= 0:
        return False
    return (zlib.crc32(trace_id.encode("utf-8")) & 0xFFFFFFFF) < threshold


class ActiveTrace:
    """One in-flight request trace: context, span tree, error state.

    Doubles as the carrier bound into the propagation contextvar, so
    ``span()`` sites and downstream workers reach it without threading
    it through call signatures.
    """

    __slots__ = (
        "context",
        "route",
        "request_id",
        "sampled",
        "error",
        "error_message",
        "duration",
        "root",
        "_span_stack",
    )

    is_recording = True

    def __init__(
        self,
        context: TraceContext,
        route: str,
        request_id: Optional[str] = None,
    ) -> None:
        self.context = context
        self.route = route
        self.request_id = request_id
        self.sampled = context.sampled
        self.error = False
        self.error_message: Optional[str] = None
        self.duration = 0.0
        self.root: Optional[Span] = None
        self._span_stack: List[Span] = []
        if self.sampled:
            self.ensure_root()

    def ensure_root(self) -> Span:
        """The trace's root span, created on first need."""
        if self.root is None:
            self.root = Span(name=f"request.{self.route}")
            self._span_stack = [self.root]
        return self.root

    def mark_error(self, message: str = "") -> None:
        """Flag the trace as errored (promotes it past head sampling)."""
        self.error = True
        if message and self.error_message is None:
            self.error_message = str(message)

    def add_span(
        self,
        name: str,
        duration: float,
        attrs: Optional[Dict[str, Any]] = None,
        error: Optional[str] = None,
    ) -> Span:
        """Graft one pre-timed child span (batcher pass, remote shard)."""
        node = Span(
            name=name, duration=float(duration), attrs=attrs, error=error
        )
        self.ensure_root().children.append(node)
        return node

    def spans(self) -> Iterator[Span]:
        """Depth-first iteration over the recorded span tree."""
        if self.root is not None:
            yield from self.root.iter_spans()

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible view of the whole trace."""
        payload: Dict[str, Any] = {
            "trace_id": self.context.trace_id,
            "span_id": self.context.span_id,
            "route": self.route,
            "request_id": self.request_id,
            "sampled": self.sampled,
            "error": self.error,
            "seconds": float(self.duration),
        }
        if self.error_message:
            payload["error_message"] = self.error_message
        if self.root is not None:
            payload["spans"] = self.root.to_dict()
        return payload


class _RecordedSpan:
    """Span context manager for sampled traces (records into the tree)."""

    __slots__ = ("_tracer", "_record", "_name", "_node")

    def __init__(
        self, tracer: "SamplingTracer", record: ActiveTrace, name: str
    ) -> None:
        self._tracer = tracer
        self._record = record
        self._name = name
        self._node: Optional[Span] = None

    def __enter__(self) -> Span:
        record = self._record
        record.ensure_root()
        node = Span(name=self._name, start=time.perf_counter())
        record._span_stack[-1].children.append(node)
        record._span_stack.append(node)
        self._node = node
        if _profiler.TRACKING:
            _profiler.push_label(self._name)
        return node

    def __exit__(self, exc_type, exc, tb) -> None:
        node = self._node
        node.duration = time.perf_counter() - node.start
        record = self._record
        if len(record._span_stack) > 1:
            record._span_stack.pop()
        if _profiler.TRACKING:
            _profiler.pop_label()
        if exc is not None:
            node.error = f"{exc_type.__name__}: {exc}"
            record.mark_error(node.error)
        self._tracer._bridge_span(self._name, node.duration)
        return None


class _WatchSpan:
    """Span context manager for unsampled traces: records only on error.

    The success path allocates this object, reads two clocks and
    records nothing; when the block raises, the span materializes with
    its duration and the owning trace is promoted to an error trace.
    """

    __slots__ = ("_tracer", "_record", "_name", "_start")

    def __init__(
        self, tracer: "SamplingTracer", record: ActiveTrace, name: str
    ) -> None:
        self._tracer = tracer
        self._record = record
        self._name = name
        self._start = 0.0

    def __enter__(self) -> Span:
        self._start = time.perf_counter()
        if _profiler.TRACKING:
            _profiler.push_label(self._name)
        return _NULL_SPAN  # type: ignore[return-value]

    def __exit__(self, exc_type, exc, tb) -> None:
        if _profiler.TRACKING:
            _profiler.pop_label()
        duration = time.perf_counter() - self._start
        if exc is not None:
            message = f"{exc_type.__name__}: {exc}"
            self._record.add_span(self._name, duration, error=message)
            self._record.mark_error(message)
        self._tracer._bridge_span(self._name, duration)
        return None


class _BridgedSpan:
    """Span context manager for bridge-mapped names outside any trace.

    Keeps cold solver/serving spans (``svt``, ``serve.reload``, …)
    feeding their registry histograms even though no request trace is
    active to record them.
    """

    __slots__ = ("_tracer", "_name", "_start")

    def __init__(self, tracer: "SamplingTracer", name: str) -> None:
        self._tracer = tracer
        self._name = name
        self._start = 0.0

    def __enter__(self) -> Span:
        self._start = time.perf_counter()
        if _profiler.TRACKING:
            _profiler.push_label(self._name)
        return _NULL_SPAN  # type: ignore[return-value]

    def __exit__(self, *exc_info) -> None:
        if _profiler.TRACKING:
            _profiler.pop_label()
        self._tracer._bridge_span(
            self._name, time.perf_counter() - self._start
        )
        return None


class SamplingTracer(Tracer):
    """A tracer whose span capture is head-sampled per request.

    Parameters
    ----------
    registry:
        Optional metrics registry the striped cells drain into.
    default_rate:
        Head-sampling probability for routes without an explicit rate.
    route_rates:
        Per-route overrides, e.g. ``{"topk": 0.05, "score": 0.0}``.
    buffer_size:
        Bound on retained finished traces (sampled or errored).
    cells:
        Optional shared :class:`~repro.observability.cells.CellBank`;
        by default the tracer owns a private bank over ``registry``.
    """

    def __init__(
        self,
        registry=None,
        default_rate: float = DEFAULT_SAMPLE_RATE,
        route_rates: Optional[Dict[str, float]] = None,
        buffer_size: int = 256,
        cells: Optional[CellBank] = None,
    ) -> None:
        super().__init__(registry)
        self.cells = cells if cells is not None else CellBank(registry)
        self.default_rate = float(default_rate)
        self.route_rates = dict(route_rates or {})
        self._default_threshold = sampling_threshold(self.default_rate)
        self._route_thresholds = {
            route: sampling_threshold(rate)
            for route, rate in self.route_rates.items()
        }
        self._buffer: deque = deque(maxlen=int(buffer_size))
        self._buffer_lock = threading.Lock()
        self._hot: Dict[str, Any] = {}
        self._c_started = self.cells.counter(
            "trace.started",
            help="Request traces opened at the edge.",
            registry_name="trace.started",
        )
        self._c_sampled = self.cells.counter(
            "trace.sampled",
            help="Request traces head-sampled into full span capture.",
            registry_name="trace.sampled",
        )
        self._c_errors = self.cells.counter(
            "trace.errors",
            help="Request traces promoted to the buffer by an error.",
            registry_name="trace.errors",
        )

    # -- counters over striped cells -------------------------------------

    @property
    def counters(self) -> Dict[str, Any]:
        """Merged striped-cell totals (ints where integral)."""
        merged: Dict[str, Any] = {}
        for name, total in self.cells.counter_totals().items():
            merged[name] = int(total) if total.is_integer() else total
        return merged

    def count(self, name: str, value: int = 1) -> None:
        """Increment a striped counter (no lock on the record path)."""
        try:
            cell = self._hot[name]
        except KeyError:
            cell = self.cells.counter(
                name, registry_name=_COUNTER_BRIDGE.get(name)
            )
            self._hot[name] = cell
        cell.inc(value)

    def hot_counter(self, name: str, registry_name: Optional[str] = None):
        """The striped cell for ``name`` — bind once, ``.inc()`` per hit."""
        cell = self._hot.get(name)
        if cell is None:
            cell = self.cells.counter(
                name,
                registry_name=registry_name or _COUNTER_BRIDGE.get(name),
            )
            self._hot[name] = cell
        return cell

    def hot_histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        registry_name: Optional[str] = None,
    ):
        """A striped histogram handle (power-of-two bucket index)."""
        if buckets is None:
            return self.cells.histogram(name, registry_name=registry_name)
        return self.cells.histogram(
            name, buckets=buckets, registry_name=registry_name
        )

    def drain(self) -> None:
        """Flush striped cells into the attached registry."""
        self.cells.drain()

    # -- sampling ---------------------------------------------------------

    def sample_rate_for(self, route: str) -> float:
        """The effective head-sampling rate for ``route``."""
        return self.route_rates.get(route, self.default_rate)

    def _threshold_for(self, route: str) -> int:
        return self._route_thresholds.get(route, self._default_threshold)

    # -- request traces ---------------------------------------------------

    @contextmanager
    def trace(
        self,
        route: str,
        trace_id: Optional[str] = None,
        parent: Optional[TraceContext] = None,
        request_id: Optional[str] = None,
    ) -> Iterator[ActiveTrace]:
        """Open one request trace; sampling decided here, once.

        ``parent`` (a cross-hop :class:`TraceContext`) pins both the
        trace id and the upstream sampling verdict; otherwise the
        decision is a pure function of the (given or minted) trace id,
        so it is reproducible offline.  The record commits to the
        finished-trace buffer iff sampled or errored; exceptions raised
        inside the block mark the trace errored and propagate.
        """
        if parent is not None:
            context = TraceContext(
                parent.trace_id, new_span_id(), parent.sampled
            )
        else:
            tid = trace_id if trace_id else new_trace_id()
            context = TraceContext(
                tid, new_span_id(), _decide(tid, self._threshold_for(route))
            )
        record = ActiveTrace(context, route, request_id=request_id)
        self._c_started.inc()
        token = _ACTIVE.set(record)
        start = time.perf_counter()
        try:
            yield record
        except BaseException as exc:
            record.mark_error(f"{type(exc).__name__}: {exc}")
            raise
        finally:
            _ACTIVE.reset(token)
            record.duration = time.perf_counter() - start
            self._finish(record)

    def _finish(self, record: ActiveTrace) -> None:
        if record.sampled:
            self._c_sampled.inc()
        if record.error:
            self._c_errors.inc()
        if record.sampled or record.error:
            root = record.ensure_root()
            root.duration = record.duration
            if record.error_message and root.error is None:
                root.error = record.error_message
            with self._buffer_lock:
                self._buffer.append(record)

    def finished(self) -> List[ActiveTrace]:
        """Committed traces, oldest first (bounded by ``buffer_size``)."""
        with self._buffer_lock:
            return list(self._buffer)

    def find_trace(self, trace_id: str) -> Optional[ActiveTrace]:
        """The most recent committed trace with ``trace_id``, if any."""
        with self._buffer_lock:
            for record in reversed(self._buffer):
                if record.context.trace_id == trace_id:
                    return record
        return None

    # -- spans ------------------------------------------------------------

    def span(self, name: str):  # type: ignore[override]
        """A span scoped to the active trace's sampling verdict.

        Outside any trace this is (nearly) free: bridge-mapped solver
        names get a timing shim, everything else the shared null span.
        """
        carrier = _ACTIVE.get()
        if carrier is not None and carrier.__class__ is ActiveTrace:
            if carrier.sampled:
                return _RecordedSpan(self, carrier, name)
            return _WatchSpan(self, carrier, name)
        if name in _SPAN_HISTOGRAMS or _profiler.TRACKING:
            return _BridgedSpan(self, name)
        return _NULL_SPAN

    def _bridge_span(self, name: str, duration: float) -> None:
        """Feed a span duration into its mapped registry histogram."""
        if self._bridging():
            series = _SPAN_HISTOGRAMS.get(name)
            if series is not None:
                self.registry.histogram(series).observe(duration)