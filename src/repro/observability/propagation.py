"""Distributed trace context: minted at the edge, re-bound across workers.

One request's identity is a :class:`TraceContext` — trace-id, span-id
and the head-sampling decision — created by the HTTP front end (or any
entry point) and carried everywhere the request's work happens:

* **within a process** via a single :mod:`contextvars` variable holding
  the active *carrier* (the tracer's recording object, or a
  :class:`RemoteTrace` shell when the record lives elsewhere);
* **across threads and processes** via :func:`inject_runtime_context` /
  :func:`activate_runtime_context`, which serialize the context (plus
  the structured-logging request/run ids) into a plain dict that rides
  in the task payload and is re-bound in the worker — this is how
  ``parallel_map_processes`` shard workers join the request's trace;
* **across HTTP hops** via :meth:`TraceContext.to_header` /
  :meth:`TraceContext.from_header` (the ``X-Trace-Context`` header).

The contextvar is owned here so the tracer and the pools agree on one
binding point and neither imports the other's internals.
"""

from __future__ import annotations

import random
import zlib
from contextlib import ExitStack, contextmanager
from contextvars import ContextVar
from typing import Any, Dict, Iterator, Optional

from repro.observability.logging import (
    current_request_id,
    current_run_id,
    request_context,
    run_context,
)

_SAMPLE_SCALE = 1 << 32


def new_trace_id() -> str:
    """A fresh 64-bit lowercase-hex trace id."""
    return "%016x" % random.getrandbits(64)


def new_span_id() -> str:
    """A fresh 32-bit lowercase-hex span id."""
    return "%08x" % random.getrandbits(32)


def sampling_threshold(rate: float) -> int:
    """The 32-bit hash threshold for a sampling ``rate`` in [0, 1]."""
    if rate >= 1.0:
        return _SAMPLE_SCALE
    if rate <= 0.0:
        return 0
    return int(rate * _SAMPLE_SCALE)


def sampling_decision(trace_id: str, rate: float) -> bool:
    """Deterministic head-sampling decision for ``trace_id`` at ``rate``.

    The decision is a pure function of the trace id (CRC-32 against a
    scaled threshold), so every process that sees the same id — edge,
    batcher, shard worker — independently reaches the same verdict, and
    a trace seen in the buffer can be replayed from its id alone.
    """
    threshold = sampling_threshold(rate)
    if threshold >= _SAMPLE_SCALE:
        return True
    if threshold <= 0:
        return False
    return (zlib.crc32(trace_id.encode("utf-8")) & 0xFFFFFFFF) < threshold


class TraceContext:
    """Immutable (trace-id, span-id, sampled) triple crossing boundaries."""

    __slots__ = ("trace_id", "span_id", "sampled")

    def __init__(self, trace_id: str, span_id: str, sampled: bool) -> None:
        self.trace_id = str(trace_id)
        self.span_id = str(span_id)
        self.sampled = bool(sampled)

    def __repr__(self) -> str:
        """Debug form, e.g. ``TraceContext('ab..', 'cd..', sampled=True)``."""
        return (
            f"TraceContext({self.trace_id!r}, {self.span_id!r}, "
            f"sampled={self.sampled})"
        )

    def __eq__(self, other: object) -> bool:
        """Contexts are equal when all three fields match."""
        return (
            isinstance(other, TraceContext)
            and self.trace_id == other.trace_id
            and self.span_id == other.span_id
            and self.sampled == other.sampled
        )

    def __hash__(self) -> int:
        """Hash over the identifying triple."""
        return hash((self.trace_id, self.span_id, self.sampled))

    def child(self) -> "TraceContext":
        """A child context: same trace and decision, fresh span id."""
        return TraceContext(self.trace_id, new_span_id(), self.sampled)

    # -- HTTP header form --------------------------------------------

    def to_header(self) -> str:
        """Serialize as ``<trace_id>-<span_id>-<01|00>``."""
        return (
            f"{self.trace_id}-{self.span_id}-"
            f"{'01' if self.sampled else '00'}"
        )

    @classmethod
    def from_header(cls, header: Optional[str]) -> Optional["TraceContext"]:
        """Parse :meth:`to_header` output; ``None`` on absent/malformed."""
        if not header:
            return None
        parts = header.strip().rsplit("-", 2)
        if len(parts) != 3:
            return None
        trace_id, span_id, flag = parts
        if not trace_id or not span_id or flag not in ("00", "01"):
            return None
        return cls(trace_id, span_id, flag == "01")

    # -- task-payload form -------------------------------------------

    def to_payload(self) -> Dict[str, Any]:
        """Serialize into a plain dict for task payloads."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "sampled": self.sampled,
        }

    @classmethod
    def from_payload(
        cls, payload: Optional[Dict[str, Any]]
    ) -> Optional["TraceContext"]:
        """Rebuild from :meth:`to_payload` output; ``None`` if absent."""
        if not payload:
            return None
        trace_id = payload.get("trace_id")
        span_id = payload.get("span_id")
        if not trace_id or not span_id:
            return None
        return cls(trace_id, span_id, bool(payload.get("sampled")))


class RemoteTrace:
    """Carrier for a context whose span record lives in another process.

    Binding one of these makes :func:`current_trace_context` work in a
    worker (so the context keeps propagating downstream) without any
    local span recording — ``is_recording`` stays false, so tracer span
    sites fall through to their null path.
    """

    __slots__ = ("context",)

    is_recording = False

    def __init__(self, context: TraceContext) -> None:
        self.context = context


_ACTIVE: ContextVar[Optional[Any]] = ContextVar(
    "repro_active_trace", default=None
)


def current_trace() -> Optional[Any]:
    """The bound carrier (tracer record or :class:`RemoteTrace`), if any."""
    return _ACTIVE.get()


def current_trace_context() -> Optional[TraceContext]:
    """The active :class:`TraceContext`, or ``None`` outside a trace."""
    carrier = _ACTIVE.get()
    return None if carrier is None else carrier.context


@contextmanager
def bind_trace(carrier: Any) -> Iterator[Any]:
    """Bind ``carrier`` (anything with ``.context``) for the block."""
    token = _ACTIVE.set(carrier)
    try:
        yield carrier
    finally:
        _ACTIVE.reset(token)


def inject_runtime_context() -> Optional[Dict[str, Any]]:
    """Snapshot the ambient request identity into a picklable dict.

    Returns ``None`` when nothing is bound (the common offline-fit
    case), so callers can skip per-item payload plumbing entirely.
    """
    payload: Dict[str, Any] = {}
    request_id = current_request_id()
    if request_id is not None:
        payload["request_id"] = request_id
    run_id = current_run_id()
    if run_id is not None:
        payload["run_id"] = run_id
    context = current_trace_context()
    if context is not None:
        payload["trace"] = context.to_payload()
    return payload or None


@contextmanager
def activate_runtime_context(
    payload: Optional[Dict[str, Any]],
) -> Iterator[None]:
    """Re-bind an :func:`inject_runtime_context` snapshot in a worker.

    Restores the request id and run id for structured logging and binds
    a :class:`RemoteTrace` so downstream code sees the originating
    trace context.  A falsy payload makes this a no-op, so the wrapper
    is safe on every worker invocation.
    """
    if not payload:
        yield
        return
    with ExitStack() as stack:
        request_id = payload.get("request_id")
        if request_id is not None:
            stack.enter_context(request_context(request_id))
        run_id = payload.get("run_id")
        if run_id is not None:
            stack.enter_context(run_context(run_id))
        context = TraceContext.from_payload(payload.get("trace"))
        if context is not None:
            stack.enter_context(bind_trace(RemoteTrace(context)))
        yield
