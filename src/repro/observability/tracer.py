"""Structured tracing of solver runs: nested timed spans, counters, metrics.

Two implementations share one interface:

* :class:`Tracer` — records everything: a tree of wall-clock
  :class:`Span` objects (CCCP round → gradient step → prox apply → SVD),
  monotonic counters, named scalar metric streams and the shared
  per-iteration :class:`~repro.observability.records.IterationRecord` list.
* :class:`NullTracer` — every operation is a no-op and ``enabled`` is
  False, so instrumented code can gate any extra computation (objective
  breakdowns, tail-singular-value probes) behind ``tracer.enabled`` and the
  untraced hot path stays bit-identical to — and as fast as — the
  uninstrumented code.

Solvers accept ``tracer=None`` and treat ``None`` like a null tracer, so
callers never pay for observability they did not ask for.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

import repro.observability.profiler as _profiler
from repro.observability.records import IterationRecord

# Solver-side bridge into a MetricsRegistry: which tracer events surface as
# which registry series.  Span durations, counters and metric samples not
# named here stay tracer-only (they still land in run reports).
_SPAN_HISTOGRAMS: Dict[str, str] = {
    "svt": "solver.svt_seconds",
    "gradient": "solver.gradient_seconds",
    "cccp_round": "solver.cccp_round_seconds",
    "serve.reload": "serving.reload_seconds",
}
_COUNTER_BRIDGE: Dict[str, str] = {
    "cccp.rounds": "solver.cccp_rounds",
    "cccp.checkpoints": "solver.checkpoints",
    "cccp.resumes": "solver.resumes",
    "fb.iterations": "solver.fb_iterations",
    "fb.step_halvings": "solver.step_halvings",
    "gfb.iterations": "solver.gfb_iterations",
    "gfb.step_halvings": "solver.step_halvings",
    "svt.lossy_truncations": "solver.svt_lossy_truncations",
    "svt.rank_grows": "solver.svt_rank_grows",
    "svt.rank_shrinks": "solver.svt_rank_shrinks",
    # Both SVD recovery paths roll up into one degradation counter.
    "svt.dense_fallbacks": "reliability.svd_fallbacks",
    "svt.eigh_fallbacks": "reliability.svd_fallbacks",
}
_GAUGE_BRIDGE: Dict[str, str] = {
    "svt.retained_rank": "solver.rank",
    "svt.tail_excess": "solver.svt_tail_excess",
    "svt.adaptive_rank": "solver.svt_adaptive_rank",
    "intimacy.n_sources": "solver.intimacy_sources",
}
# Metric samples that feed a registry histogram rather than a gauge —
# per-item wall times whose distribution (not last value) matters.
_HISTOGRAM_BRIDGE: Dict[str, str] = {
    "intimacy.source_seconds": "solver.source_extract_seconds",
    "intimacy.transfer_seconds": "solver.source_transfer_seconds",
}


@dataclass
class Span:
    """One timed region of a run; spans nest to form a tree."""

    name: str
    start: float = 0.0
    duration: float = 0.0
    children: List["Span"] = field(default_factory=list)
    attrs: Optional[Dict[str, Any]] = None
    error: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible view of the span subtree."""
        payload: Dict[str, Any] = {
            "name": self.name,
            "seconds": float(self.duration),
        }
        if self.attrs:
            payload["attrs"] = dict(self.attrs)
        if self.error:
            payload["error"] = self.error
        if self.children:
            payload["children"] = [child.to_dict() for child in self.children]
        return payload

    def iter_spans(self) -> Iterator["Span"]:
        """Depth-first iteration over the subtree (self included)."""
        yield self
        for child in self.children:
            yield from child.iter_spans()


class _InertTrace:
    """What :meth:`Tracer.trace` yields when nothing is recorded.

    Shares the request-trace surface (``context``, ``sampled``,
    ``mark_error``) so HTTP-edge code is tracer-agnostic; every field is
    a class attribute and the single instance is reused.
    """

    __slots__ = ()

    context = None
    sampled = False
    error = False
    is_recording = False

    def mark_error(self, message: str = "") -> None:
        """Discard the error mark (nothing is being recorded)."""
        return None


_INERT_TRACE = _InertTrace()


class _CounterAdapter:
    """A hot-counter handle backed by ``tracer.count`` (full tracers)."""

    __slots__ = ("_tracer", "_name")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self._tracer = tracer
        self._name = name

    def inc(self, value: float = 1.0) -> None:
        """Forward the increment to the owning tracer's counter."""
        self._tracer.count(self._name, value)


class _HistogramAdapter:
    """A hot-histogram handle backed by ``tracer.metric`` (full tracers)."""

    __slots__ = ("_tracer", "_name")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self._tracer = tracer
        self._name = name

    def observe(self, value: float) -> None:
        """Forward the sample to the owning tracer's metric stream."""
        self._tracer.metric(self._name, value)


class _NullCell:
    """Shared do-nothing hot counter/histogram for :class:`NullTracer`."""

    __slots__ = ()

    def inc(self, value: float = 1.0) -> None:
        """Discard the increment."""
        return None

    def observe(self, value: float) -> None:
        """Discard the sample."""
        return None


_NULL_CELL = _NullCell()


class Tracer:
    """Collects spans, counters, metrics and iteration records of one run.

    Examples
    --------
    >>> tracer = Tracer()
    >>> with tracer.span("outer"):
    ...     with tracer.span("inner"):
    ...         tracer.count("steps")
    >>> [s.name for s in tracer.iter_spans()]
    ['outer', 'inner']
    >>> tracer.counters["steps"]
    1
    """

    enabled: bool = True

    def __init__(self, registry=None) -> None:
        self.roots: List[Span] = []
        self._counter_store: Dict[str, int] = {}
        self.metrics: Dict[str, List[float]] = {}
        self.iterations: List[IterationRecord] = []
        self._stack: List[Span] = []
        # Optional MetricsRegistry bridge: when attached (and enabled),
        # solver events additionally publish scrapeable series
        # (solver.svt_seconds, solver.objective, solver.rank, …).
        self.registry = registry

    @property
    def counters(self) -> Dict[str, int]:
        """Monotonic counters recorded so far, keyed by name.

        A property so subclasses (:class:`SamplingTracer
        <repro.observability.sampling.SamplingTracer>`) can materialize
        the view from striped cells instead of a plain dict.
        """
        return self._counter_store

    def _bridging(self) -> bool:
        registry = self.registry
        return registry is not None and registry.enabled

    # -- spans ----------------------------------------------------------
    @contextmanager
    def span(self, name: str) -> Iterator[Span]:
        """Time a named region; nests under the currently open span."""
        node = Span(name=name, start=time.perf_counter())
        if self._stack:
            self._stack[-1].children.append(node)
        else:
            self.roots.append(node)
        self._stack.append(node)
        tracking = _profiler.TRACKING
        if tracking:
            _profiler.push_label(name)
        try:
            yield node
        finally:
            node.duration = time.perf_counter() - node.start
            self._stack.pop()
            if tracking:
                _profiler.pop_label()
            if self._bridging():
                series = _SPAN_HISTOGRAMS.get(name)
                if series is not None:
                    self.registry.histogram(series).observe(node.duration)

    # -- request traces --------------------------------------------------
    @contextmanager
    def trace(
        self,
        route: str,
        trace_id: Optional[str] = None,
        parent: Optional[Any] = None,
        request_id: Optional[str] = None,
    ) -> Iterator[Any]:
        """Open one request-scoped trace around a served route.

        The base tracer records it as a plain ``request.<route>`` span
        and yields the shared inert trace handle (no context, no
        sampling); :class:`SamplingTracer
        <repro.observability.sampling.SamplingTracer>` overrides this
        with real trace contexts, head sampling and error promotion.
        """
        with self.span(f"request.{route}"):
            yield _INERT_TRACE

    # -- hot-tier handles ------------------------------------------------
    def hot_counter(self, name: str, registry_name: Optional[str] = None):
        """A pre-bindable ``.inc()`` handle for a hot-path counter.

        Serving code binds these once at construction so the per-request
        cost is a single method call.  The base tracer adapts onto
        :meth:`count`; :class:`SamplingTracer
        <repro.observability.sampling.SamplingTracer>` returns a
        lock-free striped cell draining into ``registry_name``.
        """
        return _CounterAdapter(self, name)

    def hot_histogram(
        self,
        name: str,
        buckets: Optional[Any] = None,
        registry_name: Optional[str] = None,
    ):
        """A pre-bindable ``.observe()`` handle for a hot-path histogram.

        Base-tracer counterpart of :meth:`hot_counter`: adapts onto
        :meth:`metric`; the sampling tracer returns a striped histogram
        with a power-of-two bucket index.
        """
        return _HistogramAdapter(self, name)

    def drain(self) -> None:
        """Flush hot-tier cells into the registry (no-op on the base)."""
        return None

    def iter_spans(self) -> Iterator[Span]:
        """Depth-first iteration over every recorded span."""
        for root in self.roots:
            yield from root.iter_spans()

    def phase_totals(self) -> Dict[str, Dict[str, float]]:
        """Aggregate wall-clock per span name: ``{name: {count, seconds}}``."""
        totals: Dict[str, Dict[str, float]] = {}
        for node in self.iter_spans():
            slot = totals.setdefault(node.name, {"count": 0, "seconds": 0.0})
            slot["count"] += 1
            slot["seconds"] += node.duration
        return totals

    # -- counters & metrics ---------------------------------------------
    def count(self, name: str, value: int = 1) -> None:
        """Increment a monotonic counter."""
        store = self._counter_store
        store[name] = store.get(name, 0) + int(value)
        if self._bridging():
            series = _COUNTER_BRIDGE.get(name)
            if series is not None:
                self.registry.counter(series).inc(value)

    def metric(self, name: str, value: float) -> None:
        """Append one sample to a named scalar metric stream."""
        self.metrics.setdefault(name, []).append(float(value))
        if self._bridging():
            series = _GAUGE_BRIDGE.get(name)
            if series is not None:
                self.registry.gauge(series).set(value)
            histogram = _HISTOGRAM_BRIDGE.get(name)
            if histogram is not None:
                self.registry.histogram(histogram).observe(value)

    def last_metric(self, name: str, default: Optional[float] = None):
        """The most recent sample of a metric, or ``default`` if unseen."""
        samples = self.metrics.get(name)
        return samples[-1] if samples else default

    # -- iteration records ----------------------------------------------
    def record_iteration(self, record: IterationRecord) -> None:
        """Attach a solver iteration record to the trace (shared object)."""
        self.iterations.append(record)
        if self._bridging():
            self.registry.counter("solver.iterations").inc()
            if record.objective is not None:
                self.registry.gauge("solver.objective").set(record.objective)


class _NullSpan:
    """Reusable do-nothing span context manager."""

    name = ""
    duration = 0.0
    children: List[Span] = []

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer(Tracer):
    """A tracer whose every operation is a free no-op.

    ``enabled`` is False so instrumented code skips any extra computation;
    the remaining methods are overridden to avoid even allocation, making
    the instrumented solver path cost nothing when tracing is off.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def span(self, name: str):  # type: ignore[override]
        """Return the shared do-nothing span context manager."""
        return _NULL_SPAN

    def count(self, name: str, value: int = 1) -> None:
        """Discard the counter increment."""
        return None

    def metric(self, name: str, value: float) -> None:
        """Discard the metric sample."""
        return None

    def record_iteration(self, record: IterationRecord) -> None:
        """Discard the iteration record."""
        return None

    @contextmanager
    def trace(
        self,
        route: str,
        trace_id: Optional[str] = None,
        parent: Optional[Any] = None,
        request_id: Optional[str] = None,
    ) -> Iterator[Any]:
        """Yield the shared inert trace without recording anything."""
        yield _INERT_TRACE

    def hot_counter(self, name: str, registry_name: Optional[str] = None):
        """Return the shared do-nothing hot-counter handle."""
        return _NULL_CELL

    def hot_histogram(
        self,
        name: str,
        buckets: Optional[Any] = None,
        registry_name: Optional[str] = None,
    ):
        """Return the shared do-nothing hot-histogram handle."""
        return _NULL_CELL


def is_tracing(tracer: Optional[Tracer]) -> bool:
    """Whether ``tracer`` is a live (non-null) tracer."""
    return tracer is not None and tracer.enabled
