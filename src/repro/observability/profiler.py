"""Continuous sampling wall-clock profiler attributed to active span labels.

A single daemon thread wakes every ``interval_s`` seconds, snapshots every
thread's stack via :func:`sys._current_frames`, and attributes each sample
to the innermost *span label* active on that thread (pushed by the tracer
when a span such as ``cccp_round``, ``svt`` or ``serve.top_k`` opens).
The result is a flame-style aggregate table — ``(label, leaf frame) →
sample count`` — cheap enough to leave running in production and exported
through ``/debug/profile`` and the experiments CLI.

Two properties keep the instrumented hot path honest:

* **Zero cost when off.**  Span sites consult the module-level
  :data:`TRACKING` flag (one attribute read) before touching the label
  stacks, and no thread exists until :meth:`ContinuousProfiler.start`.
* **No imports from the rest of ``repro.observability``.**  The tracer
  imports this module, never the reverse, so the label hooks cannot
  create a cycle.  The optional registry handed to the constructor is
  duck-typed (anything with ``.counter(...)``).
"""

from __future__ import annotations

import os
import sys
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

#: Global switch read by span sites before pushing labels.  ``start()``
#: flips it on; ``stop()`` flips it off once no profiler is running.
TRACKING: bool = False

# Per-thread stacks of active span labels, keyed by thread ident.  Owner
# threads push/pop their own entry; the sampler thread only reads.  Both
# directions are safe under the GIL (list append/pop are atomic enough:
# the sampler tolerates seeing a stack one element stale).
_LABEL_STACKS: Dict[int, List[str]] = {}

_lock = threading.Lock()
_active_profilers = 0


def push_label(label: str) -> None:
    """Mark ``label`` as the innermost active span on the calling thread."""
    ident = threading.get_ident()
    stack = _LABEL_STACKS.get(ident)
    if stack is None:
        stack = []
        _LABEL_STACKS[ident] = stack
    stack.append(label)


def pop_label() -> None:
    """Pop the calling thread's innermost span label (tolerates empty)."""
    stack = _LABEL_STACKS.get(threading.get_ident())
    if stack:
        stack.pop()


def current_label(ident: int) -> Optional[str]:
    """The innermost active span label on thread ``ident``, if any."""
    stack = _LABEL_STACKS.get(ident)
    if stack:
        try:
            return stack[-1]
        except IndexError:  # raced a pop; treat as unlabeled
            return None
    return None


def _leaf_frame(frame: Any) -> str:
    """Format a frame as ``func (file.py:lineno)`` for the aggregate table."""
    code = frame.f_code
    return (
        f"{code.co_name} "
        f"({os.path.basename(code.co_filename)}:{frame.f_lineno})"
    )


class ContinuousProfiler:
    """Sampling profiler thread aggregating stacks under span labels.

    Parameters
    ----------
    interval_s:
        Sleep between stack snapshots.  The default (10 ms → ~100 Hz)
        keeps sampler CPU well under 1% while resolving solver rounds.
    registry:
        Optional metrics registry; when given, a ``profiler.samples``
        counter tracks total samples taken.
    max_entries:
        Bound on distinct ``(label, frame)`` rows kept; once full, new
        rows fold into an ``(label, "<other>")`` bucket so memory stays
        bounded under pathological label churn.
    include_unlabeled:
        When true, samples on threads with no active span label are kept
        under the ``<unlabeled>`` pseudo-label instead of dropped.
    """

    def __init__(
        self,
        interval_s: float = 0.01,
        registry: Optional[Any] = None,
        max_entries: int = 4096,
        include_unlabeled: bool = False,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        self.interval_s = float(interval_s)
        self.max_entries = int(max_entries)
        self.include_unlabeled = bool(include_unlabeled)
        self._counts: Dict[Tuple[str, str], int] = {}
        self._total = 0
        self._data_lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._m_samples = None
        if registry is not None and getattr(registry, "enabled", True):
            self._m_samples = registry.counter(
                "profiler.samples",
                help="Stack samples taken by the continuous profiler.",
            )

    # -- lifecycle ---------------------------------------------------

    @property
    def running(self) -> bool:
        """Whether the sampler thread is currently alive."""
        thread = self._thread
        return thread is not None and thread.is_alive()

    def start(self) -> "ContinuousProfiler":
        """Start the sampler thread (idempotent) and enable label tracking."""
        global TRACKING, _active_profilers
        if self.running:
            return self
        with _lock:
            _active_profilers += 1
            TRACKING = True
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the sampler thread and release the tracking flag."""
        global TRACKING, _active_profilers
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=5.0)
        self._thread = None
        with _lock:
            _active_profilers = max(0, _active_profilers - 1)
            if _active_profilers == 0:
                TRACKING = False

    def __enter__(self) -> "ContinuousProfiler":
        """Start on entry so ``with ContinuousProfiler(...) as prof:`` works."""
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        """Stop the sampler when the ``with`` block exits."""
        self.stop()

    # -- sampling ----------------------------------------------------

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.sample_once()

    def sample_once(self) -> int:
        """Take one snapshot of every thread; returns samples recorded."""
        my_ident = threading.get_ident()
        recorded = 0
        frames = sys._current_frames()
        with self._data_lock:
            for ident, frame in frames.items():
                if ident == my_ident:
                    continue  # never profile the sampler itself
                label = current_label(ident)
                if label is None:
                    if not self.include_unlabeled:
                        continue
                    label = "<unlabeled>"
                key = (label, _leaf_frame(frame))
                if key not in self._counts and (
                    len(self._counts) >= self.max_entries
                ):
                    key = (label, "<other>")
                self._counts[key] = self._counts.get(key, 0) + 1
                recorded += 1
            self._total += recorded
        if recorded and self._m_samples is not None:
            self._m_samples.inc(recorded)
        return recorded

    # -- export ------------------------------------------------------

    def snapshot(self, top: int = 50) -> Dict[str, Any]:
        """Aggregate table: top ``(label, frame)`` rows by sample count."""
        with self._data_lock:
            rows = sorted(
                self._counts.items(), key=lambda kv: (-kv[1], kv[0])
            )[: int(top)]
            total = self._total
        return {
            "running": self.running,
            "interval_s": self.interval_s,
            "total_samples": total,
            "entries": [
                {
                    "label": label,
                    "frame": frame,
                    "samples": count,
                    "share": (count / total) if total else 0.0,
                }
                for (label, frame), count in rows
            ],
        }

    def render_table(self, top: int = 20) -> str:
        """The snapshot as an aligned text table for CLI output."""
        snap = self.snapshot(top=top)
        lines = [
            f"profiler: {snap['total_samples']} samples "
            f"@ {self.interval_s * 1e3:.1f}ms"
        ]
        for entry in snap["entries"]:
            lines.append(
                f"  {entry['share'] * 100:5.1f}%  "
                f"{entry['label']:<24s} {entry['frame']}"
            )
        return "\n".join(lines)

    def reset(self) -> None:
        """Clear accumulated samples (the thread keeps running if started)."""
        with self._data_lock:
            self._counts.clear()
            self._total = 0


#: Process-wide profiler used by ``/debug/profile`` and the CLIs.  Created
#: unstarted: no thread (and no label-tracking cost) exists until some
#: entry point calls ``GLOBAL_PROFILER.start()``.
GLOBAL_PROFILER = ContinuousProfiler()


def global_profiler() -> ContinuousProfiler:
    """The process-wide profiler instance (never started implicitly)."""
    return GLOBAL_PROFILER
