"""Machine-readable run reports built from a :class:`Tracer`.

A :class:`RunReport` is the archival form of one traced solver/experiment
run: schema-versioned JSON (written next to ``results/`` by convention) plus
a human ``summary()`` table.  The schema is deliberately flat:

.. code-block:: text

    {
      "schema_version": 1,
      "name": "<run name>",
      "meta": {...},                      # caller-supplied context
      "spans": [...],                     # nested {name, seconds, children}
      "phase_totals": {name: {count, seconds}},
      "counters": {name: int},
      "metrics": {name: [float, ...]},
      "iterations": [IterationRecord.to_dict(), ...]
    }

Bump ``SCHEMA_VERSION`` whenever a field changes meaning; readers should
check it before interpreting a report.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.observability.tracer import Tracer

SCHEMA_VERSION = 1
"""Version of the run-report JSON layout."""

DEFAULT_REPORT_DIR = "results"
"""Directory run reports are written to by convention."""


@dataclass
class RunReport:
    """One traced run, ready to archive or render.

    Build with :func:`build_run_report`; persist with :meth:`save`; read
    back with :meth:`load`.
    """

    name: str
    meta: Dict[str, Any] = field(default_factory=dict)
    spans: List[Dict[str, Any]] = field(default_factory=list)
    phase_totals: Dict[str, Dict[str, float]] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    metrics: Dict[str, List[float]] = field(default_factory=dict)
    iterations: List[Dict[str, Any]] = field(default_factory=list)
    schema_version: int = SCHEMA_VERSION

    # -- serialization ---------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """The JSON payload of the report."""
        return {
            "schema_version": self.schema_version,
            "name": self.name,
            "meta": self.meta,
            "spans": self.spans,
            "phase_totals": self.phase_totals,
            "counters": self.counters,
            "metrics": self.metrics,
            "iterations": self.iterations,
        }

    def save(self, path: str) -> str:
        """Write the report as pretty-printed JSON; returns ``path``."""
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
        return path

    @classmethod
    def load(cls, path: str) -> "RunReport":
        """Read a report written by :meth:`save`."""
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        version = payload.get("schema_version")
        if version != SCHEMA_VERSION:
            raise ValueError(
                f"run report {path!r} has schema_version {version!r}; "
                f"this reader understands {SCHEMA_VERSION}"
            )
        return cls(
            name=payload.get("name", ""),
            meta=payload.get("meta", {}),
            spans=payload.get("spans", []),
            phase_totals=payload.get("phase_totals", {}),
            counters=payload.get("counters", {}),
            metrics=payload.get("metrics", {}),
            iterations=payload.get("iterations", []),
            schema_version=version,
        )

    # -- human rendering -------------------------------------------------
    def summary(self) -> str:
        """A terminal-friendly digest: phases, counters, iteration stats."""
        lines = [f"run report — {self.name} (schema v{self.schema_version})"]
        if self.phase_totals:
            lines.append("")
            lines.append(f"{'phase':<28} {'calls':>7} {'seconds':>10}")
            for name in sorted(
                self.phase_totals,
                key=lambda n: -self.phase_totals[n]["seconds"],
            ):
                slot = self.phase_totals[name]
                lines.append(
                    f"{name:<28} {int(slot['count']):>7} "
                    f"{slot['seconds']:>10.4f}"
                )
        if self.iterations:
            final = self.iterations[-1]
            lines.append("")
            lines.append(f"iterations: {len(self.iterations)}")
            if "objective" in final:
                lines.append(f"final objective: {final['objective']:.6g}")
            ranks = [
                record["svd_rank"]
                for record in self.iterations
                if "svd_rank" in record
            ]
            if ranks:
                lines.append(
                    f"retained SVD rank: first {ranks[0]}, "
                    f"last {ranks[-1]}, max {max(ranks)}"
                )
        if self.counters:
            lines.append("")
            for name in sorted(self.counters):
                lines.append(f"{name}: {self.counters[name]}")
        return "\n".join(lines)


def build_run_report(
    tracer: Tracer,
    name: str,
    meta: Optional[Dict[str, Any]] = None,
) -> RunReport:
    """Snapshot a tracer's collected telemetry into a :class:`RunReport`."""
    return RunReport(
        name=name,
        meta=dict(meta or {}),
        spans=[root.to_dict() for root in tracer.roots],
        phase_totals=tracer.phase_totals(),
        counters=dict(tracer.counters),
        metrics={k: list(v) for k, v in tracer.metrics.items()},
        iterations=[record.to_dict() for record in tracer.iterations],
    )


def default_report_path(name: str, directory: str = DEFAULT_REPORT_DIR) -> str:
    """Conventional location of a run report: ``results/run_report.<name>.json``."""
    return os.path.join(directory, f"run_report.{name}.json")
