"""Structured JSON logging with request/run-id context propagation.

Every log record is one JSON object per line — machine-parseable by any
log pipeline — carrying the logger name, level, message, an ISO-8601
timestamp and whatever structured fields the call site attached::

    log = get_logger("repro.serving.http")
    log.debug("http request", method="GET", path="/v1/topk", status=200)

Two pieces of ambient context ride along automatically via
:mod:`contextvars`:

* the **request id** — bound by the HTTP front-end for the duration of one
  request (:func:`request_context`), so every record emitted anywhere down
  the stack (service → cache → batcher) carries the same ``request_id``;
* the **run id** — bound around one training/experiment run
  (:func:`run_context`), stitching solver-side records together.

Importing this module configures nothing: the ``repro`` logger hierarchy
gets a ``NullHandler`` so library users see no output unless they (or the
serving CLI) call :func:`configure_logging`.
"""

from __future__ import annotations

import contextvars
import datetime
import io
import json
import logging
import uuid
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional

__all__ = [
    "get_logger",
    "configure_logging",
    "JsonFormatter",
    "StructuredLogger",
    "new_request_id",
    "current_request_id",
    "current_run_id",
    "request_context",
    "run_context",
]

_ROOT_LOGGER_NAME = "repro"

_request_id: "contextvars.ContextVar[Optional[str]]" = contextvars.ContextVar(
    "repro_request_id", default=None
)
_run_id: "contextvars.ContextVar[Optional[str]]" = contextvars.ContextVar(
    "repro_run_id", default=None
)

logging.getLogger(_ROOT_LOGGER_NAME).addHandler(logging.NullHandler())


# -- context propagation -------------------------------------------------
def new_request_id() -> str:
    """A fresh short request id (12 hex chars — unique enough per process)."""
    return uuid.uuid4().hex[:12]


def current_request_id() -> Optional[str]:
    """The request id bound to the current context, or ``None``."""
    return _request_id.get()


def current_run_id() -> Optional[str]:
    """The run id bound to the current context, or ``None``."""
    return _run_id.get()


@contextmanager
def request_context(request_id: Optional[str] = None) -> Iterator[str]:
    """Bind a request id for the block (generated when not given).

    Examples
    --------
    >>> with request_context("req-1") as rid:
    ...     current_request_id() == rid == "req-1"
    True
    >>> current_request_id() is None
    True
    """
    rid = request_id or new_request_id()
    token = _request_id.set(rid)
    try:
        yield rid
    finally:
        _request_id.reset(token)


@contextmanager
def run_context(run_id: Optional[str] = None) -> Iterator[str]:
    """Bind a run id (training/experiment scope) for the block."""
    rid = run_id or new_request_id()
    token = _run_id.set(rid)
    try:
        yield rid
    finally:
        _run_id.reset(token)


# -- formatting ----------------------------------------------------------
class JsonFormatter(logging.Formatter):
    """One JSON object per record: ts, level, logger, message, context."""

    def format(self, record: logging.LogRecord) -> str:
        """Render one record as a single-line JSON object."""
        payload: Dict[str, Any] = {
            "ts": datetime.datetime.fromtimestamp(
                record.created, tz=datetime.timezone.utc
            ).isoformat(timespec="milliseconds"),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        request_id = getattr(record, "request_id", None) or _request_id.get()
        run_id = getattr(record, "run_id", None) or _run_id.get()
        if request_id is not None:
            payload["request_id"] = request_id
        if run_id is not None:
            payload["run_id"] = run_id
        fields = getattr(record, "structured_fields", None)
        if fields:
            for key, value in fields.items():
                payload.setdefault(key, _json_safe(value))
        if record.exc_info and record.exc_info[0] is not None:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str)


def _json_safe(value: Any) -> Any:
    """Pass JSON scalars/containers through; stringify everything else."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _json_safe(item) for key, item in value.items()}
    return str(value)


class StructuredLogger:
    """A thin façade over :mod:`logging` accepting keyword fields.

    The stdlib logger API has no place for structured payloads; this
    wrapper routes ``**fields`` through ``extra`` so :class:`JsonFormatter`
    can emit them, while staying a plain stdlib logger underneath (levels,
    handlers and propagation all behave normally).
    """

    __slots__ = ("_logger",)

    def __init__(self, logger: logging.Logger):
        self._logger = logger

    @property
    def name(self) -> str:
        """The underlying stdlib logger's name."""
        return self._logger.name

    @property
    def stdlib(self) -> logging.Logger:
        """The wrapped :class:`logging.Logger` (for handler surgery)."""
        return self._logger

    def isEnabledFor(self, level: int) -> bool:  # noqa: N802 (stdlib name)
        """Whether records at ``level`` would be emitted."""
        return self._logger.isEnabledFor(level)

    def log(self, level: int, message: str, /, **fields: Any) -> None:
        """Emit ``message`` at ``level`` with structured ``fields``."""
        if self._logger.isEnabledFor(level):
            self._logger.log(
                level, message, extra={"structured_fields": fields}
            )

    def debug(self, message: str, /, **fields: Any) -> None:
        """DEBUG-level structured record."""
        self.log(logging.DEBUG, message, **fields)

    def info(self, message: str, /, **fields: Any) -> None:
        """INFO-level structured record."""
        self.log(logging.INFO, message, **fields)

    def warning(self, message: str, /, **fields: Any) -> None:
        """WARNING-level structured record."""
        self.log(logging.WARNING, message, **fields)

    def error(self, message: str, /, **fields: Any) -> None:
        """ERROR-level structured record."""
        self.log(logging.ERROR, message, **fields)

    def exception(self, message: str, /, **fields: Any) -> None:
        """ERROR-level record carrying the active exception traceback."""
        if self._logger.isEnabledFor(logging.ERROR):
            self._logger.error(
                message, exc_info=True, extra={"structured_fields": fields}
            )


def get_logger(name: str) -> StructuredLogger:
    """A structured logger under the ``repro`` hierarchy.

    ``name`` may be fully qualified (``repro.serving.http``) or relative
    (``serving.http``) — both land on the same logger.
    """
    if name != _ROOT_LOGGER_NAME and not name.startswith(
        _ROOT_LOGGER_NAME + "."
    ):
        name = f"{_ROOT_LOGGER_NAME}.{name}"
    return StructuredLogger(logging.getLogger(name))


def configure_logging(
    level: int | str = logging.INFO,
    stream: Optional[io.TextIOBase] = None,
    force: bool = False,
) -> logging.Handler:
    """Attach one JSON handler to the ``repro`` logger hierarchy.

    Idempotent: a second call adjusts the level of the existing handler
    unless ``force`` re-creates it (useful for pointing at a new stream in
    tests).  Returns the active handler.
    """
    if isinstance(level, str):
        level = logging.getLevelName(level.upper())
        if not isinstance(level, int):
            raise ValueError(f"unknown log level {level!r}")
    root = logging.getLogger(_ROOT_LOGGER_NAME)
    existing = [
        handler
        for handler in root.handlers
        if isinstance(handler.formatter, JsonFormatter)
    ]
    if existing and not force:
        handler = existing[0]
        handler.setLevel(level)
        root.setLevel(level)
        return handler
    for handler in existing:
        root.removeHandler(handler)
    handler = logging.StreamHandler(stream) if stream is not None else (
        logging.StreamHandler()
    )
    handler.setFormatter(JsonFormatter())
    handler.setLevel(level)
    root.addHandler(handler)
    root.setLevel(level)
    root.propagate = False
    return handler
