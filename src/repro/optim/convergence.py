"""Convergence criteria and iteration history records."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.utils.matrices import l1_norm
from repro.utils.validation import check_integer, check_positive


@dataclass(frozen=True)
class ConvergenceCriterion:
    """When to declare an iterative matrix sequence converged.

    Convergence is declared when the entry-wise ℓ1 norm of the update
    ``‖S^{h} − S^{h−1}‖₁`` (the quantity Figure 3 of the paper plots) falls
    below ``tolerance``, or after ``max_iterations`` rounds.
    """

    tolerance: float = 1e-4
    max_iterations: int = 300

    def __post_init__(self) -> None:
        check_positive(self.tolerance, "tolerance")
        check_integer(self.max_iterations, "max_iterations", minimum=1)

    def satisfied(self, current: np.ndarray, previous: np.ndarray) -> bool:
        """Whether the update from ``previous`` to ``current`` is below tolerance."""
        return l1_norm(current - previous) < self.tolerance


@dataclass
class IterationHistory:
    """Per-iteration diagnostics of a solver run.

    Attributes
    ----------
    variable_norms:
        ``‖S^h‖₁`` per iteration (Figure 3, left panel).
    update_norms:
        ``‖S^h − S^{h−1}‖₁`` per iteration (Figure 3, right panel).
    objective_values:
        Objective value per iteration when the solver computes it.
    """

    variable_norms: List[float] = field(default_factory=list)
    update_norms: List[float] = field(default_factory=list)
    objective_values: List[float] = field(default_factory=list)

    def record(
        self,
        current: np.ndarray,
        previous: np.ndarray,
        objective: float = None,
    ) -> None:
        """Append one iteration's diagnostics."""
        self.variable_norms.append(l1_norm(current))
        self.update_norms.append(l1_norm(current - previous))
        if objective is not None:
            self.objective_values.append(float(objective))

    @property
    def n_iterations(self) -> int:
        """Number of recorded iterations."""
        return len(self.variable_norms)

    def extend(self, other: "IterationHistory") -> None:
        """Concatenate another history (used to chain CCCP rounds)."""
        self.variable_norms.extend(other.variable_norms)
        self.update_norms.extend(other.update_norms)
        self.objective_values.extend(other.objective_values)
