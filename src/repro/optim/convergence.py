"""Convergence criteria and iteration history records."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.observability.records import IterationRecord
from repro.utils.matrices import l1_norm
from repro.utils.validation import check_integer, check_positive


@dataclass(frozen=True)
class ConvergenceCriterion:
    """When to declare an iterative matrix sequence converged.

    Convergence is declared when the entry-wise ℓ1 norm of the update
    ``‖S^{h} − S^{h−1}‖₁`` (the quantity Figure 3 of the paper plots) falls
    below ``tolerance``, or after ``max_iterations`` rounds.
    """

    tolerance: float = 1e-4
    max_iterations: int = 300

    def __post_init__(self) -> None:
        check_positive(self.tolerance, "tolerance")
        check_integer(self.max_iterations, "max_iterations", minimum=1)

    def satisfied(self, current: np.ndarray, previous: np.ndarray) -> bool:
        """Whether the update from ``previous`` to ``current`` is below tolerance."""
        return l1_norm(current - previous) < self.tolerance

    def satisfied_value(self, update_norm: float) -> bool:
        """:meth:`satisfied` for a caller that already has the update norm.

        The workspace-backed solver computes ``‖S^h − S^{h−1}‖₁`` through
        its scratch buffer for the iteration record anyway; this avoids
        recomputing it (and the full-size temporary) here.
        """
        return update_norm < self.tolerance


class IterationHistory:
    """Per-iteration diagnostics of a solver run.

    Backed by a list of
    :class:`~repro.observability.records.IterationRecord` — the same
    objects a live :class:`~repro.observability.tracer.Tracer` collects —
    so the legacy norm views and the telemetry run report read one
    bookkeeping path.

    The constructor still accepts the historical parallel lists
    (``variable_norms``, ``update_norms``, ``objective_values``) and zips
    them into records.

    Attributes
    ----------
    records:
        The underlying iteration records, in order.
    variable_norms:
        ``‖S^h‖₁`` per iteration (Figure 3, left panel).
    update_norms:
        ``‖S^h − S^{h−1}‖₁`` per iteration (Figure 3, right panel).
    objective_values:
        Objective value per iteration when the solver computed it.
    """

    def __init__(
        self,
        variable_norms: Optional[Sequence[float]] = None,
        update_norms: Optional[Sequence[float]] = None,
        objective_values: Optional[Sequence[float]] = None,
    ):
        self.records: List[IterationRecord] = []
        if variable_norms is None and update_norms is None:
            return
        variable_norms = list(variable_norms or [])
        update_norms = list(update_norms or [])
        if len(variable_norms) != len(update_norms):
            raise ValueError(
                f"{len(variable_norms)} variable norms but "
                f"{len(update_norms)} update norms"
            )
        objectives = list(objective_values or [])
        for index, (variable, update) in enumerate(
            zip(variable_norms, update_norms)
        ):
            self.records.append(
                IterationRecord(
                    iteration=index,
                    variable_norm=float(variable),
                    update_norm=float(update),
                    objective=(
                        float(objectives[index])
                        if index < len(objectives)
                        else None
                    ),
                )
            )

    @property
    def variable_norms(self) -> List[float]:
        return [record.variable_norm for record in self.records]

    @property
    def update_norms(self) -> List[float]:
        return [record.update_norm for record in self.records]

    @property
    def objective_values(self) -> List[float]:
        return [
            record.objective
            for record in self.records
            if record.objective is not None
        ]

    def record(
        self,
        current: np.ndarray,
        previous: np.ndarray,
        objective: float = None,
    ) -> IterationRecord:
        """Append one iteration's diagnostics; returns the new record.

        Solvers enrich the returned record in place (objective breakdown,
        SVD rank, phase timings) when tracing is enabled.
        """
        record = IterationRecord(
            iteration=len(self.records),
            variable_norm=l1_norm(current),
            update_norm=l1_norm(current - previous),
            objective=None if objective is None else float(objective),
        )
        self.records.append(record)
        return record

    def record_norms(
        self,
        variable_norm: float,
        update_norm: float,
        objective: float = None,
    ) -> IterationRecord:
        """:meth:`record` for precomputed norms (allocation-free path)."""
        record = IterationRecord(
            iteration=len(self.records),
            variable_norm=float(variable_norm),
            update_norm=float(update_norm),
            objective=None if objective is None else float(objective),
        )
        self.records.append(record)
        return record

    @property
    def n_iterations(self) -> int:
        """Number of recorded iterations."""
        return len(self.records)

    def extend(self, other: "IterationHistory") -> None:
        """Concatenate another history (used to chain CCCP rounds).

        Records are shared, not copied; their ``iteration`` indices keep
        the numbering of the history that produced them.
        """
        self.records.extend(other.records)
